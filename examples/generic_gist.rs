//! The paper's closing vision, running: a *generalized* search tree
//! registered as a DataBlade, extended through an operator class.
//!
//! Section 7: "a generic extendible tree-based access method ... would
//! support the broad class of tree-based access methods by providing a
//! simple, high-level extension interface ... It is also possible to
//! implement such a generic access method as a DataBlade."
//!
//! ```text
//! cargo run --example generic_gist
//! ```

use grtree_datablade::gist::am::install_gist_blade;
use grtree_datablade::gist::{GistTree, GistTreeOptions, IntRange, IntRangeExt, RectExt, RectKey};
use grtree_datablade::ids::{Database, DatabaseOptions};
use grtree_datablade::sbspace::{IsolationLevel, LockMode, Sbspace, SbspaceOptions};

fn main() {
    // ---- the extension interface, used directly -----------------------
    println!("== one skeleton, two access methods ==\n");
    let sb = Sbspace::mem(SbspaceOptions::default());
    let txn = sb.begin(IsolationLevel::ReadCommitted);

    // Instantiation 1: an interval tree (B-tree flavour).
    let lo = sb.create_lo(&txn).unwrap();
    let h = sb.open_lo(&txn, lo, LockMode::Exclusive).unwrap();
    let mut intervals = GistTree::create(IntRangeExt, h, GistTreeOptions::default()).unwrap();
    for i in 0..1_000i64 {
        intervals
            .insert(&IntRange::new(i * 3, i * 3 + 10), i as u64)
            .unwrap();
    }
    let hits = intervals.search(&IntRange::new(500, 520)).unwrap();
    println!(
        "interval tree: {} entries, height {}, query [500, 520] -> {} hits",
        intervals.len(),
        intervals.height(),
        hits.len()
    );
    intervals.check().unwrap();

    // Instantiation 2: a rectangle tree (R-tree flavour) — same
    // skeleton, different four primitives.
    let lo = sb.create_lo(&txn).unwrap();
    let h = sb.open_lo(&txn, lo, LockMode::Exclusive).unwrap();
    let mut rects = GistTree::create(RectExt, h, GistTreeOptions::default()).unwrap();
    for i in 0..1_000i32 {
        let x = (i * 37) % 900;
        let y = (i * 59) % 900;
        rects
            .insert(&RectKey::new(x, x + 8, y, y + 8), i as u64)
            .unwrap();
    }
    let hits = rects.search(&RectKey::new(100, 200, 100, 200)).unwrap();
    println!(
        "rectangle tree: {} entries, height {}, window query -> {} hits",
        rects.len(),
        rects.height(),
        hits.len()
    );
    rects.check().unwrap();

    // ---- and as a DataBlade -------------------------------------------
    println!("\n== the same skeleton as a registered access method ==\n");
    let db = Database::new(DatabaseOptions::default());
    install_gist_blade(&db).unwrap();
    let conn = db.connect();
    conn.exec("CREATE TABLE reservations (room integer, span IntRange_t)")
        .unwrap();
    conn.exec("CREATE INDEX res_ix ON reservations(span gist_range_ops) USING gist_am")
        .unwrap();
    for room in 0..50i64 {
        for slot in 0..8i64 {
            let start = room * 100 + slot * 12;
            conn.exec(&format!(
                "INSERT INTO reservations VALUES ({room}, '{start}..{}')",
                start + 10
            ))
            .unwrap();
        }
    }
    let r = conn
        .exec("SELECT room, span FROM reservations WHERE RangeOverlaps(span, '1205..1215')")
        .unwrap();
    println!(
        "who holds slots overlapping [1205, 1215]?\n{}",
        r.to_table()
    );
    conn.exec("CHECK INDEX res_ix").unwrap();
    println!("gist_am index consistent.");
    let (_, ams) = db.catalog_dump("sysams").unwrap();
    println!("\nsysams now lists: {}", ams[0][0]);
}
