//! A developer's tour of the extension machinery: what a DataBlade
//! author sees — the registration script, the system catalogs, the
//! purpose-function call sequences, the step-level traces, and the
//! index statistics and consistency check.
//!
//! ```text
//! cargo run --example blade_anatomy
//! ```

use grtree_datablade::blade::{install_grtree_blade, install_rstar_blade, GrTreeAmOptions};
use grtree_datablade::ids::{Database, DatabaseOptions};
use grtree_datablade::rstar::bitemporal::NowStrategy;
use grtree_datablade::rstar::RStarOptions;
use grtree_datablade::temporal::{Clock, Day, MockClock};
use std::sync::Arc;

fn main() {
    let clock = MockClock::new(Day::from_ymd(1998, 9, 2).unwrap());
    let db = Database::new(DatabaseOptions {
        clock: Arc::new(clock.clone()),
        ..Default::default()
    });

    println!("== step 1-4: registration (the BladeSmith-generated script) ==\n");
    let script = install_grtree_blade(&db, GrTreeAmOptions::default()).unwrap();
    println!("{script}");
    install_rstar_blade(&db, NowStrategy::MaxTimestamp, RStarOptions::default()).unwrap();

    println!("== the system catalogs after registration ==\n");
    for cat in ["sysams", "sysopclasses", "sysprocedures"] {
        let (hdr, rows) = db.catalog_dump(cat).unwrap();
        println!("{cat}:");
        println!("  {}", hdr.join(" | "));
        for r in rows {
            println!(
                "  {}",
                r.iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join(" | ")
            );
        }
        println!();
    }

    println!("== steps 5-6: a table with a virtual index ==\n");
    let conn = db.connect();
    conn.exec("CREATE TABLE t (id integer, Time_Extent GRT_TimeExtent_t)")
        .unwrap();
    conn.exec("CREATE INDEX tix ON t(Time_Extent grt_opclass) USING grtree_am IN spc")
        .unwrap();
    let (hdr, rows) = db.catalog_dump("sysindices").unwrap();
    println!("sysindices: {}", hdr.join(" | "));
    for r in rows {
        println!(
            "            {}",
            r.iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join(" | ")
        );
    }
    let (_, frags) = db.catalog_dump("sysfragments").unwrap();
    println!("sysfragments (index -> BLOB handle): {frags:?}\n");

    println!("== purpose-function call sequences (trace class AM) ==\n");
    let trace = db.trace();
    trace.on("AM", 1);
    trace.on("GRT", 2);
    conn.exec("INSERT INTO t VALUES (1, '09/02/1998, UC, 09/02/1998, NOW')")
        .unwrap();
    let calls: Vec<String> = trace
        .take()
        .into_iter()
        .filter(|e| e.class == "AM")
        .map(|e| e.message)
        .collect();
    println!("INSERT: {}", calls.join(" -> "));
    conn.exec("SELECT id FROM t WHERE Overlaps(Time_Extent, '09/02/1998, UC, 09/02/1998, NOW')")
        .unwrap();
    let events = trace.take();
    let calls: Vec<String> = events
        .iter()
        .filter(|e| e.class == "AM")
        .map(|e| e.message.clone())
        .collect();
    println!("SELECT: {}", calls.join(" -> "));
    println!("\nstep-level trace (class GRT) of the same SELECT:");
    for e in events.iter().filter(|e| e.class == "GRT") {
        println!("  {}", e.message);
    }

    println!("\n== maintenance statements ==\n");
    for i in 2..300 {
        clock.advance(1);
        let (y, m, d) = clock.today().to_ymd();
        conn.exec(&format!(
            "INSERT INTO t VALUES ({i}, '{m:02}/{d:02}/{y}, UC, {m:02}/{d:02}/{y}, NOW')"
        ))
        .unwrap();
    }
    let stats = conn.exec("UPDATE STATISTICS FOR INDEX tix").unwrap();
    println!("UPDATE STATISTICS -> {}", stats.message);
    conn.exec("CHECK INDEX tix").unwrap();
    println!("CHECK INDEX -> consistent");
    println!("\nio counters: {}", db.io_stats().snapshot());
}
