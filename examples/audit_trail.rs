//! An accountability workload: transaction time as an audit trail.
//!
//! The paper motivates transaction time for "applications where
//! traceability or accountability are important". This example keeps a
//! price list whose corrections never destroy history: every change is
//! a logical deletion plus a re-insertion, and "as-of" queries replay
//! what the database believed at any past moment. It finishes with the
//! Section 5.5 vacuuming step: dropping ancient closed tuples by
//! rebuilding the index with the bulk loader.
//!
//! ```text
//! cargo run --example audit_trail
//! ```

use grtree_datablade::blade::{install_grtree_blade, GrTreeAmOptions};
use grtree_datablade::grtree::bulk::{bulk_load_pairs, not_older_than};
use grtree_datablade::grtree::GrTreeOptions;
use grtree_datablade::ids::{Database, DatabaseOptions};
use grtree_datablade::sbspace::{IsolationLevel, LockMode, Sbspace, SbspaceOptions};
use grtree_datablade::temporal::{Day, MockClock, Predicate, TimeExtent, TtEnd, VtEnd};
use std::sync::Arc;

fn d(text: &str) -> Day {
    Day::parse(text).unwrap()
}

fn main() {
    let clock = MockClock::new(d("01/02/2020"));
    let db = Database::new(DatabaseOptions {
        clock: Arc::new(clock.clone()),
        ..Default::default()
    });
    install_grtree_blade(&db, GrTreeAmOptions::default()).unwrap();
    let conn = db.connect();
    conn.exec("CREATE TABLE Prices (item text, cents integer, Time_Extent GRT_TimeExtent_t)")
        .unwrap();
    conn.exec("CREATE INDEX price_ix ON Prices(Time_Extent grt_opclass) USING grtree_am")
        .unwrap();

    // 2020-01-02: widgets cost 100, valid since new year, until changed.
    conn.exec("INSERT INTO Prices VALUES ('widget', 100, '01/02/2020, UC, 01/01/2020, NOW')")
        .unwrap();

    // 2020-03-15: a correction — the price had actually risen to 120 on
    // March 1st. History is preserved: close the old belief, assert the
    // corrected ones.
    clock.set(d("03/15/2020"));
    conn.exec(
        "UPDATE Prices SET Time_Extent = '01/02/2020, 03/14/2020, 01/01/2020, NOW' \
         WHERE item = 'widget' AND cents = 100",
    )
    .unwrap();
    conn.exec(
        "INSERT INTO Prices VALUES ('widget', 100, '03/15/2020, UC, 01/01/2020, 02/29/2020')",
    )
    .unwrap();
    conn.exec("INSERT INTO Prices VALUES ('widget', 120, '03/15/2020, UC, 03/01/2020, NOW')")
        .unwrap();

    clock.set(d("06/01/2020"));
    println!("== audit questions, all answered by one Overlaps() probe ==\n");
    // What did we believe on Feb 1st about Feb 1st?
    let asof = |tt: &str, vt: &str| {
        let r = conn
            .exec(&format!(
                "SELECT item, cents FROM Prices \
                 WHERE Overlaps(Time_Extent, '{tt}, {tt}, {vt}, {vt}')"
            ))
            .unwrap();
        r.rendered
            .iter()
            .map(|row| format!("{} = {}", row[0], row[1]))
            .collect::<Vec<_>>()
            .join(", ")
    };
    println!(
        "believed on 02/01 about 02/01 (pre-correction): {}",
        asof("02/01/2020", "02/01/2020")
    );
    println!(
        "believed on 04/01 about 02/01 (post-correction): {}",
        asof("04/01/2020", "02/01/2020")
    );
    println!(
        "believed on 04/01 about 04/01 (current price):   {}",
        asof("04/01/2020", "04/01/2020")
    );

    // The audit trail itself: every version of the widget price.
    let trail = conn
        .exec("SELECT cents, Time_Extent FROM Prices WHERE item = 'widget'")
        .unwrap();
    println!("\n== full audit trail ==\n{}", trail.to_table());

    // ---- vacuuming (Section 5.5) ------------------------------------
    // Years later, tuples closed before 2021 are vacuumed by rebuilding
    // the index from scratch with the bulk loader — "drop the index and
    // then create it from scratch using a bulk loading algorithm".
    println!("== vacuuming via bulk reload (direct index API) ==");
    let sb = Sbspace::mem(SbspaceOptions::default());
    let txn = sb.begin(IsolationLevel::ReadCommitted);
    let mk_lo = |txn: &grtree_datablade::sbspace::Txn| {
        let lo = sb.create_lo(txn).unwrap();
        sb.open_lo(txn, lo, LockMode::Exclusive).unwrap()
    };
    let ct = d("01/01/2030");
    let data: Vec<(u64, TimeExtent)> = (0..2000)
        .map(|i| {
            let start = Day(18_000 + i);
            let extent = if i % 3 == 0 {
                TimeExtent::from_parts(start, TtEnd::Uc, start, VtEnd::Now).unwrap()
            } else {
                TimeExtent::from_parts(
                    start,
                    TtEnd::Ground(start.plus(30)),
                    start,
                    VtEnd::Ground(start.plus(45)),
                )
                .unwrap()
            };
            (i as u64, extent)
        })
        .collect();
    let tree = bulk_load_pairs(mk_lo(&txn), &data, ct, GrTreeOptions::default()).unwrap();
    println!(
        "before vacuum: {} entries, {} pages",
        tree.len(),
        tree.pages()
    );
    let cutoff = Day(18_000 + 1500);
    let (vacuumed, removed) = grtree_datablade::grtree::bulk::vacuum_rebuild(
        tree,
        mk_lo(&txn),
        ct,
        not_older_than(cutoff),
    )
    .unwrap();
    println!(
        "after vacuum (cutoff day {}): {} entries, {} pages ({} removed)",
        cutoff.0,
        vacuumed.len(),
        vacuumed.pages(),
        removed
    );
    vacuumed.check(ct).unwrap();
    let probe = TimeExtent::from_parts(
        Day(19_990),
        TtEnd::Ground(Day(19_999)),
        Day(17_000),
        VtEnd::Ground(Day(20_100)),
    )
    .unwrap();
    let hits = vacuumed.search(Predicate::Overlaps, &probe, ct).unwrap();
    println!("post-vacuum probe still answers: {} hits", hits.len());
}
