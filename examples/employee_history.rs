//! The paper's running example, end to end: the EmpDep relation of
//! Table 1 is built through SQL insertions, logical deletions, and
//! updates as the clock advances from 3/97 to 9/97, and then queried
//! bitemporally — including the Table 3 "Julie" query that breaks
//! per-interval decomposition.
//!
//! ```text
//! cargo run --example employee_history
//! ```

use grtree_datablade::blade::{install_grtree_blade, GrTreeAmOptions};
use grtree_datablade::ids::{Database, DatabaseOptions};
use grtree_datablade::temporal::{Day, MockClock};
use std::sync::Arc;

fn month(m: u32, y: i32) -> Day {
    Day::from_ymd(y, m, 1).unwrap()
}

fn main() {
    let clock = MockClock::new(month(1, 1997));
    let db = Database::new(DatabaseOptions {
        clock: Arc::new(clock.clone()),
        ..Default::default()
    });
    install_grtree_blade(&db, GrTreeAmOptions::default()).unwrap();
    let conn = db.connect();
    conn.exec("CREATE TABLE Employees (Name text, Department text, Time_Extent GRT_TimeExtent_t)")
        .unwrap();
    conn.exec("CREATE INDEX grt_index ON Employees(Time_Extent grt_opclass) USING grtree_am")
        .unwrap();

    println!("== playing the EmpDep history ==");
    clock.set(month(3, 1997));
    conn.exec("INSERT INTO Employees VALUES ('Tom', 'Management', '3/97, UC, 6/97, 8/97')")
        .unwrap();
    conn.exec("INSERT INTO Employees VALUES ('Julie', 'Sales', '3/97, UC, 3/97, NOW')")
        .unwrap();
    println!("3/97: recorded Tom's future stint and Julie's open-ended job");

    clock.set(month(4, 1997));
    conn.exec("INSERT INTO Employees VALUES ('John', 'Advertising', '4/97, UC, 3/97, 5/97')")
        .unwrap();
    println!("4/97: recorded John's already-bounded stint");

    clock.set(month(5, 1997));
    conn.exec("INSERT INTO Employees VALUES ('Jane', 'Sales', '5/97, UC, 5/97, NOW')")
        .unwrap();
    conn.exec("INSERT INTO Employees VALUES ('Michelle', 'Management', '5/97, UC, 3/97, NOW')")
        .unwrap();
    println!("5/97: Jane joins; Michelle's job (true since 3/97) is recorded late");

    clock.set(month(8, 1997));
    // Bitemporal deletion/modification is an application-level rewrite
    // of the 4TS attributes — exactly as in the paper's data model.
    conn.exec(
        "UPDATE Employees SET Time_Extent = '3/97, 07/31/1997, 6/97, 8/97' WHERE Name = 'Tom'",
    )
    .unwrap();
    conn.exec(
        "UPDATE Employees SET Time_Extent = '3/97, 07/31/1997, 3/97, NOW' WHERE Name = 'Julie'",
    )
    .unwrap();
    conn.exec("INSERT INTO Employees VALUES ('Julie', 'Sales', '8/97, UC, 3/97, 7/97')")
        .unwrap();
    println!("8/97: Tom logically deleted; Julie's tuple closed and re-asserted");

    clock.set(month(9, 1997));
    println!("\n== the relation at CT = 9/97 (the paper's Table 1) ==");
    let r = conn
        .exec("SELECT Name, Department, Time_Extent FROM Employees")
        .unwrap();
    println!("{}", r.to_table());

    println!("== bitemporal queries ==");
    let current = conn
        .exec(
            "SELECT Name, Department FROM Employees \
             WHERE Overlaps(Time_Extent, '9/97, 9/97, 9/97, 9/97')",
        )
        .unwrap();
    println!(
        "current state (who works where, as known now):\n{}",
        current.to_table()
    );

    let julie_q = conn
        .exec(
            "SELECT Name FROM Employees \
             WHERE Overlaps(Time_Extent, '5/97, 5/97, 7/97, 7/97') AND Department = 'Sales'",
        )
        .unwrap();
    println!(
        "who worked in Sales during 7/97 as known during 5/97? -> {} rows",
        julie_q.rows.len()
    );
    println!(
        "(the naive per-interval check would wrongly return Julie —\n\
         her region is a stair shape, not a rectangle; see Section 5.1)\n"
    );

    // The index keeps answering correctly as time passes, with no
    // refresh: that is the GR-tree's whole point.
    clock.set(month(6, 1999));
    let later = conn
        .exec(
            "SELECT Name FROM Employees \
             WHERE Overlaps(Time_Extent, '6/99, 6/99, 6/99, 6/99')",
        )
        .unwrap();
    println!(
        "current state two years later (grown stairs, zero maintenance):\n{}",
        later.to_table()
    );

    let stats = conn.exec("UPDATE STATISTICS FOR INDEX grt_index").unwrap();
    println!("{}", stats.message);
}
