//! Quickstart: boot the engine, install the GR-tree DataBlade, and run
//! the paper's flagship query.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use grtree_datablade::blade::{install_grtree_blade, GrTreeAmOptions};
use grtree_datablade::ids::{Database, DatabaseOptions};
use grtree_datablade::temporal::{Day, MockClock};
use std::sync::Arc;

fn main() {
    // A deterministic clock: bitemporal answers depend on "now".
    let clock = MockClock::new(Day::from_ymd(1995, 12, 10).unwrap());
    let db = Database::new(DatabaseOptions {
        clock: Arc::new(clock.clone()),
        ..Default::default()
    });

    // Step 0 (the paper's Section 4, steps 1-4): install the DataBlade —
    // the opaque type, the strategy-function UDRs, the access method,
    // and the operator class, all via the generated registration script.
    let script = install_grtree_blade(&db, GrTreeAmOptions::default()).unwrap();
    println!("-- registered the GR-tree DataBlade with:\n{script}");

    let conn = db.connect();
    // Steps 5-6: storage space and the virtual index.
    conn.exec("CREATE TABLE Employees (Name text, Time_Extent GRT_TimeExtent_t)")
        .unwrap();
    conn.exec(
        "CREATE INDEX grt_index ON Employees(Time_Extent grt_opclass) USING grtree_am IN spc",
    )
    .unwrap();

    // Insert some bitemporal facts. "UC" and "NOW" are the variables of
    // Section 2: this tuple is current and valid until the current time.
    conn.exec("INSERT INTO Employees VALUES ('Ada', '12/10/95, UC, 12/10/95, NOW')")
        .unwrap();
    conn.exec("INSERT INTO Employees VALUES ('Grace', '12/10/95, UC, 01/01/1995, 06/01/1995')")
        .unwrap();

    // Two years pass. Ada's region has been growing the whole time;
    // nobody reindexed anything.
    clock.set(Day::from_ymd(1997, 12, 10).unwrap());

    let r = conn
        .exec(
            "SELECT Name FROM Employees \
             WHERE Overlaps(Time_Extent, '06/01/1997, UC, 06/01/1997, NOW')",
        )
        .unwrap();
    println!(
        "who is in the current state overlapping mid-1997?\n{}",
        r.to_table()
    );
    assert_eq!(r.rows.len(), 1, "only Ada's growing region reaches 1997");

    conn.exec("CHECK INDEX grt_index").unwrap();
    println!("index is consistent; io: {}", db.io_stats().snapshot());
}
