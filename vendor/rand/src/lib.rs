//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors the subset it uses: a seedable [`rngs::StdRng`]
//! (xoshiro256**), [`Rng::gen_range`] over integer ranges, and
//! [`Rng::gen_bool`]. Not cryptographic; deterministic per seed.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next raw 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: Copy {
    /// Uniform sample from `[lo, hi]` (inclusive).
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty => $wide:ty),+ $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty sample range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                // Multiply-shift bounded sampling (bias negligible for
                // the test/benchmark workloads this stub serves).
                let v = ((rng.next_u64() as u128 * (span as u128 + 1)) >> 64) as u64;
                ((lo as $wide).wrapping_add(v as $wide)) as $t
            }
        }
    )+};
}

impl_sample_uniform!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

/// Ranges a value can be drawn from.
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd + Dec> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty gen_range");
        T::sample_inclusive(rng, self.start, self.end.dec())
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Integer decrement, used to turn an exclusive bound inclusive.
pub trait Dec {
    /// `self - 1`.
    fn dec(self) -> Self;
}

macro_rules! impl_dec {
    ($($t:ty),+ $(,)?) => {$(
        impl Dec for $t {
            fn dec(self) -> Self { self - 1 }
        }
    )+};
}

impl_dec!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from an integer range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli sample with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        // 53 random mantissa bits against the threshold.
        let v = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        v < p
    }
}

impl<R: RngCore> Rng for R {}

/// Deterministically seedable generators.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Constructs from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let v = splitmix64(&mut sm);
            let bytes = v.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Named generator types.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The standard generator: xoshiro256** seeded from 32 bytes.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> StdRng {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                *word = u64::from_le_bytes(seed[i * 8..i * 8 + 8].try_into().unwrap());
            }
            if s.iter().all(|&w| w == 0) {
                // The all-zero state is a fixed point; nudge it.
                let mut sm = 0x5eed_5eed_5eed_5eed;
                for word in s.iter_mut() {
                    *word = splitmix64(&mut sm);
                }
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let va: Vec<i32> = (0..16).map(|_| a.gen_range(-50..50)).collect();
        let vb: Vec<i32> = (0..16).map(|_| b.gen_range(-50..50)).collect();
        assert_eq!(va, vb);
        let mut c = StdRng::seed_from_u64(43);
        let vc: Vec<i32> = (0..16).map(|_| c.gen_range(-50..50)).collect();
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_respected() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..2000 {
            let v = r.gen_range(3..10);
            assert!((3..10).contains(&v));
            let w: i64 = r.gen_range(-20i64..=40);
            assert!((-20..=40).contains(&w));
            let u = r.gen_range(0usize..1);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn gen_bool_extremes_and_balance() {
        let mut r = StdRng::seed_from_u64(9);
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
        let hits = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&hits), "biased: {hits}");
    }

    #[test]
    fn from_seed_all_zero_is_not_degenerate() {
        let mut r = StdRng::from_seed([0u8; 32]);
        let v: Vec<u64> = (0..4).map(|_| super::RngCore::next_u64(&mut r)).collect();
        assert!(v.iter().any(|&x| x != 0));
    }
}
