//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to a crates.io registry, so the
//! workspace vendors the small API subset it actually uses, implemented
//! over `std::sync`. Poisoning is ignored (parking_lot has none): a
//! panicked holder does not wedge later lockers.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::{Duration, Instant};

/// A mutual-exclusion lock with parking_lot's unpoisoned `lock()` API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard of [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so a `Condvar` wait can temporarily take the std guard.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard active")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard active")
    }
}

/// A reader-writer lock with parking_lot's unpoisoned API.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// RAII guard of [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// RAII guard of [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Attempts shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(RwLockReadGuard {
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(RwLockWriteGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(RwLockWriteGuard {
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True when the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable usable with [`MutexGuard`].
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Blocks until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard active");
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
    }

    /// Blocks until notified or `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let timeout = deadline.saturating_duration_since(Instant::now());
        self.wait_for(guard, timeout)
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard active");
        let (g, res) = self
            .inner
            .wait_timeout(g, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
        WaitTimeoutResult(res.timed_out())
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn condvar_times_out_and_wakes() {
        let m = Mutex::new(false);
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(res.timed_out());
        drop(g);

        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            *pair2.0.lock() = true;
            pair2.1.notify_all();
        });
        let mut g = pair.0.lock();
        while !*g {
            let r = pair
                .1
                .wait_until(&mut g, Instant::now() + Duration::from_secs(5));
            assert!(!r.timed_out(), "worker never notified");
        }
        t.join().unwrap();
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }
}
