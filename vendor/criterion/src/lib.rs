//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors the API subset its benches use: [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], `Bencher::iter`, and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement model: each benchmark runs `sample_size` samples after
//! one warm-up sample; a sample times enough iterations to fill a small
//! time slice and reports mean ns/iter. Results print as one line per
//! benchmark (`<id> ... <mean> ns/iter (min <..> max <..>)`), which is
//! all the repo's bench scripts consume. There are no plots, baselines,
//! or statistical significance tests.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-exported for API compatibility; the optimizer barrier matters
/// even in this stand-in so benched code isn't eliminated.
pub use std::hint::black_box;

const SAMPLE_SLICE: Duration = Duration::from_millis(20);

/// The top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <substring>` filters by benchmark id, and the
        // harness may also pass `--bench`; ignore flag-like args.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion {
            sample_size: 30,
            filter,
        }
    }
}

impl Criterion {
    /// Applies CLI configuration (no-op beyond what `default` reads).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Sets the default number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let sample_size = self.sample_size;
        self.run_one(id, sample_size, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&self, id: &str, sample_size: usize, mut f: F) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut samples = Vec::with_capacity(sample_size);
        // One warm-up sample, discarded.
        for i in 0..=sample_size {
            let mut b = Bencher { ns_per_iter: 0.0 };
            f(&mut b);
            if i > 0 {
                samples.push(b.ns_per_iter);
            }
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(0.0f64, f64::max);
        println!("{id:<56} {mean:>14.1} ns/iter (min {min:.1} max {max:.1})");
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = Some(n);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        let n = self.sample_size.unwrap_or(self.criterion.sample_size);
        self.criterion.run_one(&full, n, f);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (all output is already printed; kept for API fit).
    pub fn finish(self) {}
}

/// A benchmark identifier: function name plus a parameter rendering.
pub struct BenchmarkId {
    rendered: String,
}

impl BenchmarkId {
    /// An id like `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            rendered: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id carrying only a parameter rendering.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            rendered: parameter.to_string(),
        }
    }
}

/// Values usable as benchmark ids.
pub trait IntoBenchmarkId {
    /// The id string.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.rendered
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Times the closure handed to `bench_function`.
pub struct Bencher {
    ns_per_iter: f64,
}

impl Bencher {
    /// Times `routine`, running it enough times to fill the sample
    /// slice, and records mean ns per iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: how many iterations fit the slice?
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters = (SAMPLE_SLICE.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        let total = start.elapsed();
        self.ns_per_iter = total.as_nanos() as f64 / iters as f64;
    }
}

/// Declares a benchmark group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `fn main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_reports_positive_time() {
        let mut b = Bencher { ns_per_iter: 0.0 };
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..100u64 {
                acc = acc.wrapping_add(black_box(i));
            }
            acc
        });
        assert!(b.ns_per_iter > 0.0);
    }

    #[test]
    fn benchmark_id_renders_name_and_param() {
        let id = BenchmarkId::new("readers", 4);
        assert_eq!(id.into_benchmark_id(), "readers/4");
    }

    #[test]
    fn groups_and_functions_run() {
        let mut c = Criterion::default().sample_size(2);
        c.filter = None;
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let mut ran = 0u32;
        group.bench_with_input(BenchmarkId::new("f", 1), &7u64, |b, &x| {
            b.iter(|| x + 1);
        });
        group.finish();
        c.bench_function("standalone", |b| {
            ran += 1;
            b.iter(|| 1 + 1);
        });
        assert!(ran >= 2, "warm-up plus samples should run the closure");
    }
}
