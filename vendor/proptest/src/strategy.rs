//! Value-generation strategies (no shrinking in this stand-in).

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A source of random values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }

    /// Type-erases the strategy (cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }

    /// Builds recursive values: `recurse` receives a strategy of the
    /// level below and wraps it one level; leaves come from `self`.
    /// `depth` bounds the nesting; the size hints are accepted for API
    /// compatibility but unused.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + Clone + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            // Each level bottoms out on a leaf half the time, so the
            // expected tree stays finite and varied.
            strat = Union::new(vec![leaf.clone(), recurse(strat).boxed()]).boxed();
        }
        strat
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// The strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// Uniform choice among type-erased strategies ([`crate::prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union of the given arms (must be nonempty).
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = (rng.next_u64() % self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
        }
    }
}

/// Length bounds of a generated collection.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // inclusive
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n }
    }
}

/// [`crate::collection::vec`] strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> VecStrategy<S> {
    pub(crate) fn new(element: S, size: SizeRange) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64 + 1;
        let len = self.size.lo + (rng.next_u64() % span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),+ $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u128 + 1;
                let v = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo + v) as $t
            }
        }
    )+};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

impl<S: Strategy, const N: usize> Strategy for [S; N] {
    type Value = [S::Value; N];
    fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
        std::array::from_fn(|i| self[i].generate(rng))
    }
}

/// String patterns act as strategies; this stand-in ignores the regex
/// and generates printable ASCII, honouring a trailing `{lo,hi}` length
/// bound when present (e.g. `"\\PC{0,120}"`).
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (lo, hi) = parse_len_bounds(self).unwrap_or((0, 64));
        let span = (hi - lo) as u64 + 1;
        let len = lo + (rng.next_u64() % span) as usize;
        (0..len)
            .map(|_| (b' ' + (rng.next_u64() % 95) as u8) as char)
            .collect()
    }
}

fn parse_len_bounds(pattern: &str) -> Option<(usize, usize)> {
    let inner = pattern.strip_suffix('}')?;
    let brace = inner.rfind('{')?;
    let (lo, hi) = inner[brace + 1..].split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_tuples_vecs_compose() {
        let mut rng = TestRng::for_case(3);
        let s = crate::collection::vec((0i32..10, -5i64..=5, crate::bool::ANY), 2..6);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            for (a, b, _) in v {
                assert!((0..10).contains(&a));
                assert!((-5..=5).contains(&b));
            }
        }
    }

    #[test]
    fn arrays_and_map() {
        let mut rng = TestRng::for_case(0);
        let s = [0i64..4, 0i64..4, 0i64..4].prop_map(|[a, b, c]| a + b + c);
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!((0..=9).contains(&v));
        }
    }

    #[test]
    fn union_hits_every_arm() {
        let mut rng = TestRng::for_case(1);
        let s = Union::new(vec![Just(1u32).boxed(), Just(2u32).boxed()]);
        let draws: Vec<u32> = (0..64).map(|_| s.generate(&mut rng)).collect();
        assert!(draws.contains(&1) && draws.contains(&2));
    }

    #[test]
    fn recursive_bottoms_out() {
        #[derive(Debug, Clone)]
        enum T {
            Leaf(#[allow(dead_code)] i32),
            Pair(Box<T>, Box<T>),
        }
        fn depth(t: &T) -> u32 {
            match t {
                T::Leaf(_) => 0,
                T::Pair(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let leaf = (0i32..8).prop_map(T::Leaf);
        let s = leaf.prop_recursive(3, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| T::Pair(Box::new(a), Box::new(b)))
        });
        let mut rng = TestRng::for_case(5);
        let mut max = 0;
        for _ in 0..200 {
            max = max.max(depth(&s.generate(&mut rng)));
        }
        assert!(max >= 1, "never recursed");
        assert!(max <= 3, "depth bound violated: {max}");
    }

    #[test]
    fn string_pattern_honours_length() {
        let mut rng = TestRng::for_case(2);
        let s = "\\PC{0,120}";
        for _ in 0..100 {
            let v = Strategy::generate(&s, &mut rng);
            assert!(v.len() <= 120);
            assert!(v.chars().all(|c| (' '..='~').contains(&c)));
        }
    }
}
