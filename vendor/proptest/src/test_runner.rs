//! Deterministic case RNG, run configuration, and failure reporting.

/// Configuration of a [`crate::proptest!`] block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The deterministic per-case generator (SplitMix64). Case `i` of every
/// run sees the same stream, so failures reproduce without a seed file.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The RNG of case number `case`.
    pub fn for_case(case: u32) -> TestRng {
        TestRng {
            state: 0x9e37_79b9_7f4a_7c15_u64.wrapping_mul(case as u64 + 1) ^ 0x5bf0_3635,
        }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Prints the failing case's inputs when a property body panics.
pub struct CaseGuard {
    name: &'static str,
    case: u32,
    rendered: String,
    armed: bool,
}

impl CaseGuard {
    /// Arms a guard around one case with its pre-rendered inputs.
    pub fn new(name: &'static str, case: u32, rendered: String) -> CaseGuard {
        CaseGuard {
            name,
            case,
            rendered,
            armed: true,
        }
    }

    /// Marks the case as passed (the guard stays silent on drop).
    pub fn disarm(mut self) {
        self.armed = false;
    }
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if self.armed && std::thread::panicking() {
            eprintln!(
                "proptest: property `{}` failed at case {} with inputs:\n{}",
                self.name, self.case, self.rendered
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_case_rng_is_deterministic() {
        let a: Vec<u64> = {
            let mut r = TestRng::for_case(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::for_case(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let mut r = TestRng::for_case(8);
        let c: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
        assert_ne!(a, c);
    }
}
