//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors the API subset its property tests use: the [`proptest!`]
//! macro, `prop_assert*`, [`prop_oneof!`], [`strategy::Just`], numeric
//! range strategies, tuple/array composition, `prop_map`,
//! `prop_recursive`, [`collection::vec`], and `bool`/`any` strategies.
//!
//! Semantics: each case draws values from a deterministic per-case RNG
//! (seeded by case index), so failures are reproducible by re-running
//! the test. There is **no shrinking** — the failing case's inputs are
//! printed instead.

pub mod strategy;
pub mod test_runner;

/// Strategies for collections.
pub mod collection {
    use crate::strategy::{SizeRange, Strategy, VecStrategy};

    /// A strategy producing `Vec`s whose elements come from `element`
    /// and whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy::new(element, size.into())
    }
}

/// Strategies for `bool`.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The strategy of uniformly random booleans.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any;

    /// A uniformly random boolean.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Types with a canonical strategy ([`arbitrary::any`]).
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A type with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// The canonical strategy.
        type Strategy: Strategy<Value = Self>;
        /// Builds the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// The canonical strategy of `T` (e.g. `any::<u8>()`).
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }

    /// Full-domain strategy of a primitive.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct AnyPrimitive<T>(std::marker::PhantomData<T>);

    macro_rules! impl_arbitrary_int {
        ($($t:ty),+ $(,)?) => {$(
            impl Strategy for AnyPrimitive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
            impl Arbitrary for $t {
                type Strategy = AnyPrimitive<$t>;
                fn arbitrary() -> Self::Strategy {
                    AnyPrimitive(std::marker::PhantomData)
                }
            }
        )+};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        type Strategy = crate::bool::Any;
        fn arbitrary() -> Self::Strategy {
            crate::bool::ANY
        }
    }
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Runs one property-test function: `cases` iterations, each with a
/// deterministic RNG. Used by the [`proptest!`] macro expansion.
pub fn run_cases(cases: u32, mut case: impl FnMut(&mut test_runner::TestRng, u32)) {
    for i in 0..cases {
        let mut rng = test_runner::TestRng::for_case(i);
        case(&mut rng, i);
    }
}

/// Asserts a condition inside a property test (panics on failure; this
/// stand-in has no shrinking to feed, so it is `assert!` with a prefix).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond, "prop_assert failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Uniform choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Declares property-test functions:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn holds(x in 0i32..10, v in collection::vec(any::<u8>(), 0..4)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr); ) => {};
    (($config:expr);
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            $crate::run_cases(config.cases, |__rng, __case| {
                $(let $arg = $crate::strategy::Strategy::generate(&$strategy, __rng);)+
                // Render inputs up front: the body may move them, and on
                // a panic the guard prints this for reproduction.
                let __guard = $crate::test_runner::CaseGuard::new(
                    stringify!($name),
                    __case,
                    format!(
                        concat!($("  ", stringify!($arg), " = {:?}\n"),+),
                        $(&$arg),+
                    ),
                );
                { $body }
                __guard.disarm();
            });
        }
        $crate::__proptest_items! { ($config); $($rest)* }
    };
}
