//! Multi-session contention stress harness.
//!
//! N sessions run a mixed bitemporal insert / update / delete / scan
//! workload against one GR-tree-indexed table, deliberately provoking
//! lock waits, shared→exclusive upgrade deadlocks (half the sessions
//! run REPEATABLE READ), automatic victim retries, and mid-scan
//! condenses; a third of the sessions run their index scans through
//! the parallel executor (`SET PARALLEL 4`), racing the pinned read
//! path against concurrent writers. The harness then checks the
//! engine-level invariants:
//!
//! * no scan ever returns a duplicate row (the Section 5.5
//!   restart-after-condense rule, plus cursor emitted-row memory);
//! * the lock manager is empty at quiesce — no transaction leaked a
//!   lock past its commit or victim abort;
//! * the counters reconcile exactly: statements = issued + retries,
//!   every attempt ran in exactly one transaction that either
//!   committed or aborted, and every abort maps to a failed attempt.
//!
//! A third of the sessions run over the wire: their statements go
//! through a `RemoteDriver` against a loopback `grt-server` sharing
//! the same database, so the TCP/session-pool layer faces the same
//! contention (and the same exact counter reconciliation) as the
//! embedded paths.
//!
//! On top of the mixed workers, a pool of read-only REPEATABLE READ
//! sessions (half of them over the wire) runs explicit transaction
//! blocks on the snapshot path: each block must see one frozen view
//! across all its scans while writers commit and condense underneath,
//! and at quiesce every snapshot must have been released
//! (`snapshots_open` back to zero).
//!
//! Quick by default (CI's `stress-smoke` job); scale with
//! `STRESS_SESSIONS` / `STRESS_OPS`.

use grtree_datablade::blade::{install_grtree_blade, GrTreeAmOptions};
use grtree_datablade::client::{ClientError, Driver, EmbeddedDriver, RemoteDriver};
use grtree_datablade::ids::{Database, DatabaseOptions};
use grtree_datablade::sbspace::SbspaceOptions;
use grtree_datablade::server::{Server, ServerOptions};
use grtree_datablade::temporal::{Day, MockClock};
use std::collections::HashSet;
use std::sync::Arc;
use std::time::Duration;

/// Deterministic xorshift64* — no external RNG, reproducible per seed.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// A handful of valid extents; variety drives splits and condenses.
const EXTENTS: [&str; 4] = [
    "05/18/1997, UC, 05/18/1997, NOW",
    "03/01/1997, UC, 03/01/1997, 09/30/1997",
    "06/10/1997, UC, 06/10/1997, NOW",
    "01/05/1997, UC, 01/05/1997, 12/20/1997",
];

const QUERY: &str = "Overlaps(Time_Extent, '01/01/1997, UC, 01/01/1997, NOW')";

#[derive(Default)]
struct WorkerTally {
    ok: u64,
    failed: u64,
}

#[test]
fn stress_mixed_workload_reconciles() {
    let sessions = env_usize("STRESS_SESSIONS", 8);
    let ops = env_usize("STRESS_OPS", 40);

    // Day 10,100 ≈ late August 1997: safely after every transaction-
    // time begin in `EXTENTS`, so logical updates can close them.
    let clock = MockClock::new(Day(10_100));
    let db = Database::new(DatabaseOptions {
        space: SbspaceOptions {
            pool_pages: 2048,
            lock_timeout: Duration::from_millis(1_000),
            ..Default::default()
        },
        clock: Arc::new(clock),
        deadlock_retries: 10,
        retry_backoff: Duration::from_millis(1),
        scan_workers: 1,
        ..Default::default()
    });
    install_grtree_blade(&db, GrTreeAmOptions::default()).unwrap();
    let setup = db.connect();
    setup
        .exec("CREATE TABLE t (id integer, Time_Extent GRT_TimeExtent_t)")
        .unwrap();
    setup
        .exec("CREATE INDEX tix ON t(Time_Extent grt_opclass) USING grtree_am")
        .unwrap();

    // A loopback server over the *same* database: remote sessions'
    // statements land in the same counter registry, so the exact
    // reconciliation below covers both paths.
    let mut server = Server::new(db.clone(), ServerOptions::default())
        .start()
        .expect("loopback server");
    let server_addr = server.local_addr().to_string();

    // Connections (and their isolation levels, and any PREPAREs) are
    // set up *before* the metric snapshot: from here on, every
    // statement is auto-commit DML/SELECT and must map 1:1 onto a
    // transaction. Every third session is a wire client.
    let conns: Vec<Box<dyn Driver>> = (0..sessions)
        .map(|i| {
            let conn: Box<dyn Driver> = if i % 3 == 2 {
                Box::new(RemoteDriver::connect(&*server_addr).expect("wire connect"))
            } else {
                Box::new(EmbeddedDriver::connect(&db))
            };
            if i % 2 == 1 {
                conn.exec("SET ISOLATION TO REPEATABLE READ").unwrap();
            }
            // A third of the sessions scan in parallel, so the
            // work-stealing read path runs concurrently with writers
            // (and with the serial cursors of everyone else).
            if i % 3 == 0 {
                conn.exec("SET PARALLEL 4").unwrap();
            }
            // Another third compile once and execute many: the whole
            // workload goes through PREPARE/EXECUTE handles, racing
            // cached plans against everyone else's ad-hoc statements.
            if i % 3 == 1 {
                conn.exec("PREPARE ins FROM 'INSERT INTO t VALUES (?, ?)'")
                    .unwrap();
                conn.exec("PREPARE upd FROM 'UPDATE t SET Time_Extent = ? WHERE id = ?'")
                    .unwrap();
                conn.exec("PREPARE del FROM 'DELETE FROM t WHERE id = ?'")
                    .unwrap();
                conn.exec(
                    "PREPARE sel FROM 'SELECT id FROM t \
                     WHERE Overlaps(Time_Extent, ?)'",
                )
                .unwrap();
            }
            conn
        })
        .collect();

    // Read-only sessions: explicit REPEATABLE READ blocks that must
    // ride the snapshot path end to end. Half run over the wire. The
    // warmup scan (before the metric snapshot) publishes the heap and
    // index page tables so no later snapshot ever needs a seeding lock.
    setup
        .exec(&format!("SELECT id FROM t WHERE {QUERY}"))
        .unwrap();
    let ro_sessions = (sessions / 2).max(1);
    let ro_blocks = (ops / 8).max(3);
    let ro_conns: Vec<Box<dyn Driver>> = (0..ro_sessions)
        .map(|i| {
            let conn: Box<dyn Driver> = if i % 2 == 1 {
                Box::new(RemoteDriver::connect(&*server_addr).expect("wire connect"))
            } else {
                Box::new(EmbeddedDriver::connect(&db))
            };
            conn.exec("SET ISOLATION TO REPEATABLE READ").unwrap();
            conn
        })
        .collect();
    let before = db.metrics_snapshot();

    let (tallies, ro_tallies): (Vec<WorkerTally>, Vec<(u64, u64)>) = std::thread::scope(|s| {
        // Read-only sessions: `ro_blocks` explicit transaction blocks of
        // three scans each. No statement here may fail — the snapshot
        // path takes no LO-level lock, so there is nothing to contend
        // on — and within one block every scan must return the same
        // rows (repeatable read = the block's pinned frozen view),
        // regardless of what the writers commit in between.
        let ro_handles: Vec<_> = ro_conns
            .iter()
            .enumerate()
            .map(|(w, conn)| {
                s.spawn(move || {
                    let mut stmts = 0u64;
                    for block in 0..ro_blocks {
                        conn.exec("BEGIN WORK").unwrap();
                        stmts += 1;
                        let mut first = None;
                        for _ in 0..3 {
                            let out = conn
                                .exec(&format!("SELECT id FROM t WHERE {QUERY}"))
                                .unwrap();
                            stmts += 1;
                            let ids: Vec<_> = out.rows.iter().map(|row| row[0].clone()).collect();
                            let unique: HashSet<_> = ids.iter().collect();
                            assert_eq!(
                                unique.len(),
                                ids.len(),
                                "ro worker {w} scan returned duplicate rows"
                            );
                            match &first {
                                None => first = Some(ids),
                                Some(f) => assert_eq!(
                                    f, &ids,
                                    "ro worker {w} block {block}: repeatable read drifted"
                                ),
                            }
                        }
                        conn.exec("COMMIT WORK").unwrap();
                        stmts += 1;
                    }
                    (stmts, ro_blocks as u64)
                })
            })
            .collect();
        let handles: Vec<_> = conns
            .iter()
            .enumerate()
            .map(|(w, conn)| {
                s.spawn(move || {
                    let mut rng = Rng(0x9e37_79b9 + w as u64);
                    let mut tally = WorkerTally::default();
                    let mut my_ids: Vec<u64> = Vec::new();
                    let prepared = w % 3 == 1;
                    let record = |r: Result<_, ClientError>, tally: &mut WorkerTally| match r {
                        Ok(_) => {
                            tally.ok += 1;
                            true
                        }
                        // Contention losses are allowed (and keep
                        // their exact engine shape across the wire);
                        // anything else is a real bug.
                        Err(e) if e.is_contention() => {
                            tally.failed += 1;
                            false
                        }
                        Err(other) => panic!("worker {w}: unexpected error {other}"),
                    };
                    for op in 0..ops {
                        match rng.below(10) {
                            // 40% inserts
                            0..=3 => {
                                let id = w as u64 * 1_000_000 + op as u64;
                                let e = EXTENTS[rng.below(4) as usize];
                                let sql = if prepared {
                                    format!("EXECUTE ins USING {id}, '{e}'")
                                } else {
                                    format!("INSERT INTO t VALUES ({id}, '{e}')")
                                };
                                if record(conn.exec(&sql), &mut tally) {
                                    my_ids.push(id);
                                }
                            }
                            // 20% updates of an own row
                            4..=5 if !my_ids.is_empty() => {
                                let id = my_ids[rng.below(my_ids.len() as u64) as usize];
                                let e = EXTENTS[rng.below(4) as usize];
                                let sql = if prepared {
                                    format!("EXECUTE upd USING '{e}', {id}")
                                } else {
                                    format!("UPDATE t SET Time_Extent = '{e}' WHERE id = {id}")
                                };
                                record(conn.exec(&sql), &mut tally);
                            }
                            // 20% deletes of an own row (drives condense)
                            6..=7 if !my_ids.is_empty() => {
                                let i = rng.below(my_ids.len() as u64) as usize;
                                let id = my_ids[i];
                                let sql = if prepared {
                                    format!("EXECUTE del USING {id}")
                                } else {
                                    format!("DELETE FROM t WHERE id = {id}")
                                };
                                if record(conn.exec(&sql), &mut tally) {
                                    my_ids.swap_remove(i);
                                }
                            }
                            // the rest: index scans with a duplicate check
                            _ => {
                                let r = if prepared {
                                    conn.exec(
                                        "EXECUTE sel USING \
                                         '01/01/1997, UC, 01/01/1997, NOW'",
                                    )
                                } else {
                                    conn.exec(&format!("SELECT id FROM t WHERE {QUERY}"))
                                };
                                if let Ok(ref out) = r {
                                    let ids: Vec<&_> = out.rows.iter().map(|row| &row[0]).collect();
                                    let unique: HashSet<_> = ids.iter().collect();
                                    assert_eq!(
                                        unique.len(),
                                        ids.len(),
                                        "worker {w} scan returned duplicate rows"
                                    );
                                }
                                record(r, &mut tally);
                            }
                        }
                    }
                    tally
                })
            })
            .collect();
        (
            handles.into_iter().map(|h| h.join().unwrap()).collect(),
            ro_handles.into_iter().map(|h| h.join().unwrap()).collect(),
        )
    });

    let issued: u64 = tallies.iter().map(|t| t.ok + t.failed).sum();
    let failed: u64 = tallies.iter().map(|t| t.failed).sum();
    let d = db.metrics_snapshot().since(&before);

    // Zero leaked locks: every transaction released everything.
    assert!(
        db.space().locks_quiescent(),
        "lock manager not empty at quiesce: {} objects locked, {} waiters",
        db.space().locked_objects(),
        db.space().lock_waiters()
    );

    // Counter reconciliation. Each mixed-worker statement ran 1 + (its
    // retries) attempts, each attempt one `ids.statements` tick and
    // exactly one transaction. The read-only sessions add their BEGIN /
    // SELECT / COMMIT statements to the statement count but only one
    // transaction per block — and none of them may ever fail or retry.
    let ro_statements: u64 = ro_tallies.iter().map(|(stmts, _)| *stmts).sum();
    let ro_txns: u64 = ro_tallies.iter().map(|(_, blocks)| *blocks).sum();
    let statements = d.get("ids.statements");
    let retries = d.get("stmt.retries");
    let errors = d.get("ids.statement_errors");
    assert_eq!(
        statements,
        issued + retries + ro_statements,
        "attempt accounting drifted: {d}"
    );
    assert_eq!(
        errors,
        retries + failed,
        "every retry and every surfaced failure is one failed attempt: {d}"
    );
    assert_eq!(
        d.get("sbspace.txn_commits") + d.get("sbspace.txn_aborts"),
        issued + retries + ro_txns,
        "transactions drifted from statement attempts: {d}"
    );
    assert_eq!(
        d.get("sbspace.txn_aborts"),
        errors,
        "victim aborts must match failed attempts: {d}"
    );

    // Snapshot hygiene: the read-only blocks (and every auto-commit
    // scan that rode a statement snapshot) pinned and released their
    // frozen views — none may outlive its statement or block.
    assert!(
        d.get("sbspace.snapshot_reads") >= ro_txns,
        "read-only blocks never reached the snapshot path: {d}"
    );
    assert_eq!(
        db.space().snapshots_open(),
        0,
        "space snapshots leaked past quiesce"
    );

    // Retirement hygiene: the churn superseded published page tables
    // (every committed DML republishes its object's table), and with
    // every snapshot closed a single checkpoint must sweep the whole
    // deferred-reclamation queue — nothing stays stranded behind an
    // epoch that already drained — while the wal.live_bytes gauge
    // tracks the log exactly.
    assert!(
        d.get("sbspace.page_tables_retired") > 0,
        "churn never superseded a published page table: {d}"
    );
    db.space().checkpoint().unwrap();
    assert_eq!(
        db.space().retired_batches(),
        0,
        "retired batches stranded with no snapshot open"
    );
    assert_eq!(
        db.metrics_snapshot().gauge("wal.live_bytes"),
        db.space().wal_live_bytes().unwrap(),
        "wal.live_bytes gauge drifted from the log"
    );

    // The workload must have actually contended — otherwise the
    // harness proves nothing. Waits are guaranteed at 2+ sessions;
    // deadlocks/retries are probabilistic, so only assert that the
    // counters agree with each other (above), not that they are
    // non-zero.
    if sessions > 1 {
        assert!(d.get("lock.waits") > 0, "no lock contention provoked: {d}");
    }

    // Plan-cache reconciliation: every planner decision in this
    // workload runs through a statement handle (named or transparent),
    // so cache hits + misses must account for exactly the planned
    // attempts — and with every worker repeating a handful of
    // statement shapes, the cache must actually be hitting.
    assert_eq!(
        d.get("ids.plan_cache_hits") + d.get("ids.plan_cache_misses"),
        d.get("ids.plans_index") + d.get("ids.plans_seq"),
        "plan-cache accounting drifted from planner decisions: {d}"
    );
    assert!(
        d.get("ids.plan_cache_hits") > 0,
        "repeated statement shapes never hit the plan cache: {d}"
    );

    // Final consistency: a quiesced scan sees each live row once.
    let r = setup
        .exec(&format!("SELECT id FROM t WHERE {QUERY}"))
        .unwrap();
    let ids: Vec<&_> = r.rows.iter().map(|row| &row[0]).collect();
    let unique: HashSet<_> = ids.iter().collect();
    assert_eq!(unique.len(), ids.len(), "final scan returned duplicates");
    setup.exec("CHECK INDEX tix").unwrap();

    // Zero leaked prepared handles: dropping the sessions (and, for
    // the wire third, joining the server workers that reap them)
    // closes every PREPAREd statement they still held.
    drop(conns);
    drop(ro_conns);
    server.shutdown();
    assert_eq!(
        db.prepared_live(),
        0,
        "prepared handles leaked past session drop"
    );
    let m = db.metrics_snapshot();
    assert_eq!(
        m.get("ids.prepared_opened"),
        m.get("ids.prepared_closed"),
        "prepared open/close accounting drifted"
    );
}
