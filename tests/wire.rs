//! End-to-end tests of the wire layer: a real `grt-server` on a
//! loopback socket, driven through `grt-client`.
//!
//! Covers the tentpole guarantees: remote and embedded drivers are
//! observably identical behind the [`Driver`] trait; results stream
//! through cursors; overload sheds with a clean backpressure error;
//! framing and message-grammar violations fail the *connection* (and
//! reap its session, aborting any open transaction) without ever
//! failing the server; shutdown leaks nothing.

use grtree_datablade::blade::{install_grtree_blade, GrTreeAmOptions};
use grtree_datablade::client::proto::{
    read_frame, write_frame, ErrorCode, Request, Response, MAX_FRAME, PROTOCOL_VERSION,
};
use grtree_datablade::client::{ClientError, Driver, EmbeddedDriver, RemoteDriver};
use grtree_datablade::ids::{Database, DatabaseOptions, Value};
use grtree_datablade::server::{Server, ServerHandle, ServerOptions};
use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

const EXTENT: &str = "05/18/1997, UC, 05/18/1997, NOW";
const OVERLAP: &str = "01/01/1997, UC, 01/01/1997, NOW";

fn fresh_db() -> Database {
    let db = Database::new(DatabaseOptions::default());
    install_grtree_blade(&db, GrTreeAmOptions::default()).unwrap();
    db
}

fn boot(opts: ServerOptions) -> (Database, ServerHandle) {
    let db = fresh_db();
    let handle = Server::new(db.clone(), opts).start().unwrap();
    (db, handle)
}

fn addr(h: &ServerHandle) -> String {
    h.local_addr().to_string()
}

/// Runs the same script through a driver and returns the SELECT's
/// rows — used to compare embedded and remote behaviour verbatim.
fn script(driver: &dyn Driver) -> Vec<Vec<Value>> {
    driver
        .exec("CREATE TABLE s (id integer, Time_Extent GRT_TimeExtent_t)")
        .unwrap();
    driver
        .exec("CREATE INDEX six ON s(Time_Extent grt_opclass) USING grtree_am")
        .unwrap();
    driver
        .prepare("ins", "INSERT INTO s VALUES (?, ?)")
        .unwrap();
    for id in 0..10i64 {
        driver
            .execute("ins", &[Value::Int(id), Value::Text(EXTENT.into())])
            .unwrap();
    }
    driver.deallocate("ins").unwrap();
    let out = driver
        .exec(&format!(
            "SELECT id FROM s WHERE Overlaps(Time_Extent, '{OVERLAP}')"
        ))
        .unwrap();
    assert!(!out.columns.is_empty());
    let mut rows = out.rows;
    rows.sort_by_key(|r| match r[0] {
        Value::Int(v) => v,
        _ => panic!("non-integer id"),
    });
    rows
}

#[test]
fn remote_driver_matches_embedded_driver() {
    let (_db, mut server) = boot(ServerOptions::default());
    let remote = RemoteDriver::connect(addr(&server)).unwrap();
    let remote_rows = script(&remote);

    let embedded_db = fresh_db();
    let embedded = EmbeddedDriver::connect(&embedded_db);
    let embedded_rows = script(&embedded);

    assert_eq!(remote_rows, embedded_rows);

    // Engine errors keep their exact shape across the wire.
    let e = remote.exec("SELECT id FROM nope").unwrap_err();
    let embedded_e = embedded.exec("SELECT id FROM nope").unwrap_err();
    match (&e, &embedded_e) {
        (ClientError::Engine(re), ClientError::Engine(ee)) => assert_eq!(re, ee),
        other => panic!("expected engine errors on both paths, got {other:?}"),
    }

    remote.goodbye().unwrap();
    server.shutdown();
}

#[test]
fn results_stream_through_cursors() {
    // A 7-row head forces the 25-row result through multiple fetches.
    let (_db, mut server) = boot(ServerOptions {
        fetch_rows: 7,
        ..Default::default()
    });
    let driver = RemoteDriver::connect(addr(&server)).unwrap();
    driver
        .exec("CREATE TABLE c (id integer, Time_Extent GRT_TimeExtent_t)")
        .unwrap();
    for id in 0..25i64 {
        driver
            .exec(&format!("INSERT INTO c VALUES ({id}, '{EXTENT}')"))
            .unwrap();
    }
    let out = driver.exec("SELECT id FROM c").unwrap();
    assert_eq!(out.rows.len(), 25);
    assert_eq!(out.rendered.len(), 25);
    driver.goodbye().unwrap();
    server.shutdown();
}

#[test]
fn eight_concurrent_wire_clients() {
    let (db, mut server) = boot(ServerOptions::default());
    let setup = RemoteDriver::connect(addr(&server)).unwrap();
    setup
        .exec("CREATE TABLE w (id integer, Time_Extent GRT_TimeExtent_t)")
        .unwrap();
    setup
        .exec("CREATE INDEX wix ON w(Time_Extent grt_opclass) USING grtree_am")
        .unwrap();

    let a = addr(&server);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|w| {
                let a = a.clone();
                s.spawn(move || {
                    let driver = RemoteDriver::connect(a).unwrap();
                    driver
                        .prepare("ins", "INSERT INTO w VALUES (?, ?)")
                        .unwrap();
                    for i in 0..16i64 {
                        driver
                            .execute(
                                "ins",
                                &[Value::Int(w * 1000 + i), Value::Text(EXTENT.into())],
                            )
                            .unwrap();
                    }
                    let got = driver
                        .exec(&format!(
                            "SELECT id FROM w WHERE Overlaps(Time_Extent, '{OVERLAP}')"
                        ))
                        .unwrap();
                    assert!(got.rows.len() >= 16);
                    driver.goodbye().unwrap();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    });

    let total = setup.exec("SELECT id FROM w").unwrap();
    assert_eq!(total.rows.len(), 8 * 16);
    setup.goodbye().unwrap();
    server.shutdown();

    // Every wire session was reaped; nothing leaked.
    assert_eq!(server.engine().pool.live(), 0);
    let m = db.metrics_snapshot();
    assert_eq!(m.get("ids.sessions_opened"), m.get("ids.sessions_closed"));
    assert_eq!(m.get("ids.prepared_opened"), m.get("ids.prepared_closed"));
}

#[test]
fn overload_sheds_with_backpressure_error() {
    let (_db, mut server) = boot(ServerOptions {
        max_sessions: 2,
        ..Default::default()
    });
    let a = addr(&server);
    let first = RemoteDriver::connect(&*a).unwrap();
    let second = RemoteDriver::connect(&*a).unwrap();
    // The pool is full: the third connection is answered, not hung.
    match RemoteDriver::connect(&*a) {
        Err(ClientError::Backpressure) => {}
        Err(other) => panic!("expected backpressure, got {other}"),
        Ok(_) => panic!("expected backpressure, got an admitted session"),
    }
    // Releasing a session re-admits.
    first.goodbye().unwrap();
    // The worker releases its permit asynchronously after the Bye;
    // poll briefly rather than racing it.
    let mut admitted = None;
    for _ in 0..100 {
        match RemoteDriver::connect(&*a) {
            Ok(d) => {
                admitted = Some(d);
                break;
            }
            Err(ClientError::Backpressure) => std::thread::sleep(Duration::from_millis(10)),
            Err(other) => panic!("unexpected error {other}"),
        }
    }
    let third = admitted.expect("slot never released after goodbye");
    third.goodbye().unwrap();
    second.goodbye().unwrap();
    server.shutdown();
}

/// Raw-socket helper: handshake, then return the stream.
fn raw_handshake(addr: &str) -> TcpStream {
    let mut s = TcpStream::connect(addr).unwrap();
    write_frame(
        &mut s,
        &Request::Hello {
            version: PROTOCOL_VERSION,
        }
        .encode(),
    )
    .unwrap();
    let frame = read_frame(&mut s).unwrap();
    assert!(matches!(
        Response::decode(&frame).unwrap(),
        Response::Welcome { .. }
    ));
    s
}

fn expect_protocol_error_then_close(mut s: TcpStream) {
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let frame = read_frame(&mut s).unwrap();
    match Response::decode(&frame).unwrap() {
        Response::Err { code, .. } => assert_eq!(code, ErrorCode::Protocol),
        other => panic!("expected protocol error, got {other:?}"),
    }
    // And then the server closes the connection.
    assert!(read_frame(&mut s).is_err());
}

#[test]
fn framing_violations_fail_the_connection_cleanly() {
    let (_db, mut server) = boot(ServerOptions::default());
    let a = addr(&server);

    // Zero-length frame.
    let s = raw_handshake(&a);
    (&s).write_all(&0u32.to_le_bytes()).unwrap();
    expect_protocol_error_then_close(s);

    // Oversized declared length — rejected from the prefix alone,
    // before any payload is sent.
    let s = raw_handshake(&a);
    (&s).write_all(&((MAX_FRAME as u32) + 1).to_le_bytes())
        .unwrap();
    expect_protocol_error_then_close(s);

    // Malformed message: unknown request tag inside a valid frame.
    let s = raw_handshake(&a);
    write_frame(&mut &s, &[0xEE, 1, 2, 3]).unwrap();
    expect_protocol_error_then_close(s);

    // Truncated message body (valid frame, short payload).
    let s = raw_handshake(&a);
    let mut query = Request::Query {
        sql: "SELECT 1".into(),
    }
    .encode();
    query.truncate(query.len() - 3);
    write_frame(&mut &s, &query).unwrap();
    expect_protocol_error_then_close(s);

    // Statement before handshake.
    let mut s = TcpStream::connect(&a).unwrap();
    write_frame(
        &mut s,
        &Request::Query {
            sql: "SELECT 1".into(),
        }
        .encode(),
    )
    .unwrap();
    expect_protocol_error_then_close(s);

    // After all that abuse the server still serves normal clients.
    let driver = RemoteDriver::connect(&*a).unwrap();
    driver.exec("CREATE TABLE ok (id integer)").unwrap();
    driver.goodbye().unwrap();
    server.shutdown();
}

#[test]
fn mid_statement_disconnect_aborts_open_transaction() {
    let (db, mut server) = boot(ServerOptions::default());
    let a = addr(&server);
    {
        let driver = RemoteDriver::connect(&*a).unwrap();
        driver.exec("CREATE TABLE d (id integer)").unwrap();
        driver.exec("BEGIN WORK").unwrap();
        driver.exec("INSERT INTO d VALUES (1)").unwrap();
        // Drop the TCP connection with the transaction still open
        // (and write locks still held).
    }
    // Shutdown joins the worker, which must have reaped the session —
    // aborting the transaction and releasing its locks.
    server.shutdown();
    assert!(
        db.space().locks_quiescent(),
        "disconnected session leaked locks"
    );
    let m = db.metrics_snapshot();
    assert_eq!(m.get("ids.sessions_opened"), m.get("ids.sessions_closed"));
    // The uncommitted insert rolled back.
    let check = fresh_check(&db);
    assert_eq!(check, 0);
}

fn fresh_check(db: &Database) -> usize {
    let conn = db.connect();
    conn.exec("SELECT id FROM d").unwrap().rows.len()
}

#[test]
fn trace_rides_the_wire() {
    let (_db, mut server) = boot(ServerOptions::default());
    let driver = RemoteDriver::connect(addr(&server)).unwrap();
    driver
        .exec("CREATE TABLE tr (id integer, Time_Extent GRT_TimeExtent_t)")
        .unwrap();
    driver
        .exec("CREATE INDEX trix ON tr(Time_Extent grt_opclass) USING grtree_am")
        .unwrap();
    driver.exec("SET TRACE ON 'AM'").unwrap();
    driver
        .exec(&format!("INSERT INTO tr VALUES (1, '{EXTENT}')"))
        .unwrap();
    driver
        .exec(&format!(
            "SELECT id FROM tr WHERE Overlaps(Time_Extent, '{OVERLAP}')"
        ))
        .unwrap();
    let events = driver.trace(64).unwrap();
    assert!(
        !events.is_empty(),
        "SET TRACE ON produced no events over the wire"
    );
    driver.goodbye().unwrap();
    server.shutdown();
}

#[test]
fn metrics_ride_the_wire() {
    let (db, mut server) = boot(ServerOptions::default());
    let driver = RemoteDriver::connect(addr(&server)).unwrap();
    driver.exec("CREATE TABLE m (id integer)").unwrap();
    driver.exec("INSERT INTO m VALUES (1)").unwrap();
    let wire = driver.metrics().unwrap();
    let get = |k: &str| wire.iter().find(|(n, _)| n == k).map(|&(_, v)| v);
    assert!(get("ids.statements").unwrap_or(0) >= 2);
    // The wire view is the same flattening the embedded driver uses.
    let local = grtree_datablade::client::flatten_metrics(&db);
    let names: std::collections::BTreeSet<_> = wire.iter().map(|(n, _)| n.clone()).collect();
    for (n, _) in &local {
        assert!(names.contains(n), "metric {n} missing from the wire view");
    }
    driver.goodbye().unwrap();
    server.shutdown();
}
