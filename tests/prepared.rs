//! Prepared statements, the transparent plan cache, and DDL
//! invalidation — the compile-once / execute-many contract:
//!
//! * `PREPARE` / `EXECUTE ... USING` / `DEALLOCATE` lifecycle, with
//!   bind-time arity and type checks (a bad binding never starts
//!   executing);
//! * repeated `EXECUTE` serves the plan from the compiled handle
//!   (`ids.plan_cache_hits` ticks, `SET EXPLAIN` says `plan: cached`);
//! * ad-hoc DML that differs only in its literals shares one
//!   transparent cache entry;
//! * DDL touching the statement's table forces a replan — including
//!   `DROP INDEX` + `CREATE INDEX` with a *different* access method,
//!   and DDL that is rolled back inside `BEGIN WORK … ROLLBACK WORK`.

use grtree_datablade::blade::{install_grtree_blade, install_rstar_blade, GrTreeAmOptions};
use grtree_datablade::ids::{Connection, Database, DatabaseOptions, IdsError};
use grtree_datablade::rstar::bitemporal::NowStrategy;
use grtree_datablade::rstar::RStarOptions;
use grtree_datablade::temporal::{Day, MockClock};
use std::sync::Arc;

fn render(day: i32) -> String {
    let (y, m, d) = Day(day).to_ymd();
    format!("{m:02}/{d:02}/{y:04}")
}

/// A GR-tree-indexed table with 200 rows: big enough that a narrow
/// probe prices the index below the heap sweep.
fn seeded_db() -> (Database, MockClock, Connection) {
    let clock = MockClock::new(Day(10_000));
    let db = Database::new(DatabaseOptions {
        clock: Arc::new(clock.clone()),
        ..Default::default()
    });
    install_grtree_blade(&db, GrTreeAmOptions::default()).unwrap();
    let conn = db.connect();
    conn.exec("CREATE TABLE t (id integer, Time_Extent GRT_TimeExtent_t)")
        .unwrap();
    conn.exec("CREATE INDEX tix ON t(Time_Extent grt_opclass) USING grtree_am")
        .unwrap();
    for i in 0..200 {
        clock.set(Day(10_000 + i));
        let s = render(10_000 + i);
        conn.exec(&format!("INSERT INTO t VALUES ({i}, '{s}, UC, {s}, NOW')"))
            .unwrap();
    }
    clock.set(Day(10_300));
    (db, clock, conn)
}

/// The narrow-probe extent literal the seeded table answers with a
/// handful of rows through the index.
fn narrow() -> String {
    format!(
        "{}, {}, {}, {}",
        render(10_005),
        render(10_012),
        render(10_004),
        render(10_013)
    )
}

#[test]
fn prepare_execute_deallocate_lifecycle() {
    let (db, _clock, conn) = seeded_db();
    let r = conn
        .exec("PREPARE q FROM 'SELECT id FROM t WHERE Overlaps(Time_Extent, ?)'")
        .unwrap();
    assert!(r.message.contains("prepared"), "{}", r.message);

    let before = db.metrics_snapshot();
    let first = conn
        .exec(&format!("EXECUTE q USING '{}'", narrow()))
        .unwrap();
    assert!(!first.rows.is_empty());
    let second = conn
        .exec(&format!("EXECUTE q USING '{}'", narrow()))
        .unwrap();
    assert_eq!(first.rows, second.rows, "same binding, same answer");
    let d = db.metrics_snapshot().since(&before);
    // First EXECUTE plans fresh and memoizes; the second serves the
    // memo. Both went through the index.
    assert_eq!(d.get("ids.plan_cache_misses"), 1, "{d}");
    assert!(d.get("ids.plan_cache_hits") >= 1, "{d}");
    assert_eq!(d.get("ids.plans_index"), 2, "{d}");
    // EXECUTE counts as one client statement per call.
    assert_eq!(d.get("ids.statements"), 2, "{d}");

    // DEALLOCATE drops the handle; both spellings work, and a second
    // deallocation is an error.
    let r = conn.exec("DEALLOCATE q").unwrap();
    assert!(r.message.contains("deallocated"), "{}", r.message);
    match conn.exec(&format!("EXECUTE q USING '{}'", narrow())) {
        Err(IdsError::NotFound(m)) => assert!(m.contains('q'), "{m}"),
        other => panic!("EXECUTE after DEALLOCATE: {other:?}"),
    }
    assert!(matches!(
        conn.exec("DEALLOCATE PREPARE q"),
        Err(IdsError::NotFound(_))
    ));

    // Re-preparing the same name replaces the old handle.
    conn.exec("PREPARE q FROM 'SELECT id FROM t WHERE id = ?'")
        .unwrap();
    conn.exec("PREPARE q FROM 'SELECT id FROM t WHERE id < ?'")
        .unwrap();
    let r = conn.exec("EXECUTE q USING 3").unwrap();
    assert_eq!(r.rows.len(), 3, "the replacement handle runs");
}

#[test]
fn explain_distinguishes_cached_from_fresh_plans() {
    let (db, _clock, conn) = seeded_db();
    conn.exec("PREPARE q FROM 'SELECT id FROM t WHERE Overlaps(Time_Extent, ?)'")
        .unwrap();
    conn.exec("SET EXPLAIN ON").unwrap();
    db.trace().take();
    conn.exec(&format!("EXECUTE q USING '{}'", narrow()))
        .unwrap();
    let first: Vec<String> = db
        .trace()
        .take()
        .into_iter()
        .filter(|e| e.class == "EXPLAIN")
        .map(|e| e.message)
        .collect();
    assert!(
        first.iter().any(|m| m.contains("plan: fresh")),
        "first execution must plan fresh: {first:?}"
    );
    conn.exec(&format!("EXECUTE q USING '{}'", narrow()))
        .unwrap();
    let second: Vec<String> = db
        .trace()
        .take()
        .into_iter()
        .filter(|e| e.class == "EXPLAIN")
        .map(|e| e.message)
        .collect();
    assert!(
        second.iter().any(|m| m.contains("plan: cached")),
        "repeat execution must serve the memo: {second:?}"
    );
}

#[test]
fn transparent_cache_shares_statements_differing_in_literals() {
    let (db, _clock, conn) = seeded_db();
    let len_before = db.plan_cache_len();
    let before = db.metrics_snapshot();
    // Same statement shape, different literal bindings: one compiled
    // entry serves them all.
    for id in [5, 5, 7, 9, 11, 13] {
        conn.exec(&format!("SELECT id FROM t WHERE id = {id}"))
            .unwrap();
    }
    assert_eq!(
        db.plan_cache_len(),
        len_before + 1,
        "literals lifted: one entry for all six statements"
    );
    let d = db.metrics_snapshot().since(&before);
    // The repeated id=5 matches the memoized binding outright; 7, 9
    // and 11 re-cost under new bindings (custom plans) and all agree
    // on the choice, so by id=13 the memo is generic and serves any
    // binding without re-costing.
    assert_eq!(d.get("ids.plan_cache_misses"), 4, "{d}");
    assert_eq!(d.get("ids.plan_cache_hits"), 2, "{d}");
}

#[test]
fn cached_plan_stays_value_sensitive() {
    let (db, _clock, conn) = seeded_db();
    // Narrow probe → index; full-range probe of the *same normalized
    // statement* → heap sweep. The shared cache entry must not let the
    // first choice leak into the second.
    let before = db.metrics_snapshot();
    conn.exec(&format!(
        "SELECT id FROM t WHERE Overlaps(Time_Extent, '{}')",
        narrow()
    ))
    .unwrap();
    let d = db.metrics_snapshot().since(&before);
    assert_eq!(d.get("ids.plans_index"), 1, "narrow probe: {d}");

    let before = db.metrics_snapshot();
    let wide = conn
        .exec(
            "SELECT id FROM t WHERE Overlaps(Time_Extent, \
             '01/01/1997, UC, 01/01/1997, NOW')",
        )
        .unwrap();
    assert_eq!(wide.rows.len(), 200);
    let d = db.metrics_snapshot().since(&before);
    assert_eq!(d.get("ids.plans_seq"), 1, "full-range probe: {d}");
    assert_eq!(d.get("ids.plans_index"), 0, "{d}");
}

#[test]
fn bind_errors_are_reported_before_execution() {
    let (db, _clock, conn) = seeded_db();
    conn.exec("PREPARE ins FROM 'INSERT INTO t VALUES (?, ?)'")
        .unwrap();
    conn.exec("PREPARE sel FROM 'SELECT id FROM t WHERE id = ?'")
        .unwrap();

    // Arity mismatch.
    match conn.exec("EXECUTE sel USING 1, 2") {
        Err(IdsError::Type(m)) => assert!(m.contains("takes 1 parameters"), "{m}"),
        other => panic!("arity mismatch: {other:?}"),
    }
    match conn.exec("EXECUTE sel") {
        Err(IdsError::Type(m)) => assert!(m.contains("0 given"), "{m}"),
        other => panic!("missing parameters: {other:?}"),
    }

    // Type mismatch on a typed slot: a bind-time error naming the
    // statement, and nothing was inserted.
    let before = db.metrics_snapshot();
    match conn.exec("EXECUTE ins USING 'not-a-number', 'also-wrong'") {
        Err(IdsError::Type(m)) => assert!(m.contains("binding parameters of ins"), "{m}"),
        other => panic!("type mismatch: {other:?}"),
    }
    let d = db.metrics_snapshot().since(&before);
    assert_eq!(
        d.get("sbspace.txn_commits"),
        0,
        "bind error ran no txn: {d}"
    );
    assert_eq!(conn.exec("SELECT id FROM t").unwrap().rows.len(), 200);

    // Non-literal USING values are rejected.
    assert!(matches!(
        conn.exec("EXECUTE sel USING id"),
        Err(IdsError::Semantic(_))
    ));

    // EXECUTE of an unknown name.
    assert!(matches!(
        conn.exec("EXECUTE nope USING 1"),
        Err(IdsError::NotFound(_))
    ));

    // NULL binds cleanly and behaves exactly like the ad-hoc literal.
    let via_param = conn.exec("EXECUTE sel USING NULL").unwrap();
    let ad_hoc = conn.exec("SELECT id FROM t WHERE id = NULL").unwrap();
    assert_eq!(via_param.rows, ad_hoc.rows);
    assert!(via_param.rows.is_empty(), "NULL matches no row");
}

#[test]
fn prepare_rejects_unpreparable_statements() {
    let (_db, _clock, conn) = seeded_db();
    // Unknown table fails at PREPARE time, not first EXECUTE.
    assert!(conn
        .exec("PREPARE bad FROM 'SELECT id FROM missing WHERE id = ?'")
        .is_err());
    // Transaction control and nested prepared-statement control cannot
    // be prepared.
    for sql in [
        "PREPARE p FROM 'BEGIN WORK'",
        "PREPARE p FROM 'EXECUTE p'",
        "PREPARE p FROM 'PREPARE q FROM ''SELECT id FROM t'''",
    ] {
        assert!(
            matches!(conn.exec(sql), Err(IdsError::Semantic(_))),
            "{sql} must be rejected"
        );
    }
}

#[test]
fn ddl_invalidation_replans_onto_a_new_access_method() {
    let (db, _clock, conn) = seeded_db();
    install_rstar_blade(&db, NowStrategy::MaxTimestamp, RStarOptions::default()).unwrap();
    conn.exec("PREPARE q FROM 'SELECT id FROM t WHERE Overlaps(Time_Extent, ?)'")
        .unwrap();
    let baseline = conn
        .exec(&format!("EXECUTE q USING '{}'", narrow()))
        .unwrap();
    assert!(!baseline.rows.is_empty());

    // Swap the index out from under the prepared statement.
    let before = db.metrics_snapshot();
    conn.exec("DROP INDEX tix").unwrap();
    let d = db.metrics_snapshot().since(&before);
    assert!(
        d.get("ids.plan_cache_invalidations") >= 1,
        "DROP INDEX must invalidate the handle's memo: {d}"
    );

    // Without any index the replanned EXECUTE sweeps the heap.
    let before = db.metrics_snapshot();
    let swept = conn
        .exec(&format!("EXECUTE q USING '{}'", narrow()))
        .unwrap();
    assert_eq!(swept.rows, baseline.rows);
    let d = db.metrics_snapshot().since(&before);
    assert_eq!(d.get("ids.plans_seq"), 1, "replanned to seq: {d}");

    // A replacement index under a *different* access method: the next
    // EXECUTE replans again and probes the R*-tree.
    conn.exec("CREATE INDEX rix ON t(Time_Extent rstar_opclass) USING rstar_am")
        .unwrap();
    let before = db.metrics_snapshot();
    let probed = conn
        .exec(&format!("EXECUTE q USING '{}'", narrow()))
        .unwrap();
    assert_eq!(probed.rows, baseline.rows, "same answer through rstar");
    let d = db.metrics_snapshot().since(&before);
    assert_eq!(d.get("ids.plans_index"), 1, "replanned to the index: {d}");
    assert!(d.get("rstar.searches") > 0, "the new AM ran the probe: {d}");
}

#[test]
fn rolled_back_ddl_restores_the_plan() {
    let (db, _clock, conn) = seeded_db();
    conn.exec("PREPARE q FROM 'SELECT id FROM t WHERE Overlaps(Time_Extent, ?)'")
        .unwrap();
    let baseline = conn
        .exec(&format!("EXECUTE q USING '{}'", narrow()))
        .unwrap();

    // DROP INDEX inside an explicit transaction, observed mid-flight…
    conn.exec("BEGIN WORK").unwrap();
    conn.exec("DROP INDEX tix").unwrap();
    let before = db.metrics_snapshot();
    let mid = conn
        .exec(&format!("EXECUTE q USING '{}'", narrow()))
        .unwrap();
    assert_eq!(mid.rows, baseline.rows);
    let d = db.metrics_snapshot().since(&before);
    assert_eq!(d.get("ids.plans_seq"), 1, "index gone inside the txn: {d}");
    // …then rolled back: the catalog entry and the index pages return.
    conn.exec("ROLLBACK WORK").unwrap();

    let before = db.metrics_snapshot();
    let after = conn
        .exec(&format!("EXECUTE q USING '{}'", narrow()))
        .unwrap();
    assert_eq!(after.rows, baseline.rows);
    let d = db.metrics_snapshot().since(&before);
    assert_eq!(
        d.get("ids.plans_index"),
        1,
        "rolled-back DROP INDEX must restore the index plan: {d}"
    );
    conn.exec("CHECK INDEX tix").unwrap();
}

#[test]
fn zero_capacity_disables_the_transparent_cache_but_not_prepare() {
    // `plan_cache_size: 0` is the compile-every-time ablation the
    // `sessions` bench measures prepared statements against: ad-hoc
    // statements never share a compiled plan, while a PREPAREd handle
    // still memoizes on its own.
    let clock = MockClock::new(Day(10_000));
    let db = Database::new(DatabaseOptions {
        clock: Arc::new(clock.clone()),
        plan_cache_size: 0,
        ..Default::default()
    });
    install_grtree_blade(&db, GrTreeAmOptions::default()).unwrap();
    let conn = db.connect();
    conn.exec("CREATE TABLE t (id integer, Time_Extent GRT_TimeExtent_t)")
        .unwrap();
    conn.exec("INSERT INTO t VALUES (1, '05/18/1997, UC, 05/18/1997, NOW')")
        .unwrap();

    let before = db.metrics_snapshot();
    for _ in 0..4 {
        conn.exec("SELECT id FROM t WHERE id = 1").unwrap();
    }
    assert_eq!(db.plan_cache_len(), 0, "nothing is ever admitted");
    let d = db.metrics_snapshot().since(&before);
    assert_eq!(d.get("ids.plan_cache_misses"), 4, "{d}");
    assert_eq!(d.get("ids.plan_cache_hits"), 0, "{d}");

    // The prepared handle's memo lives on the handle, not in the
    // shared cache, so EXECUTE still compiles once.
    conn.exec("PREPARE q FROM 'SELECT id FROM t WHERE id = ?'")
        .unwrap();
    let before = db.metrics_snapshot();
    for _ in 0..4 {
        conn.exec("EXECUTE q USING 1").unwrap();
    }
    let d = db.metrics_snapshot().since(&before);
    assert_eq!(d.get("ids.plan_cache_misses"), 1, "{d}");
    assert_eq!(d.get("ids.plan_cache_hits"), 3, "{d}");
}

#[test]
fn prepared_handles_do_not_leak() {
    let (db, _clock, _conn) = seeded_db();
    let before = db.metrics_snapshot();
    {
        let c = db.connect();
        c.exec("PREPARE a FROM 'SELECT id FROM t WHERE id = ?'")
            .unwrap();
        c.exec("PREPARE b FROM 'SELECT id FROM t WHERE id < ?'")
            .unwrap();
        // Replacing a handle closes the old one.
        c.exec("PREPARE a FROM 'SELECT id FROM t WHERE id > ?'")
            .unwrap();
        c.exec("DEALLOCATE b").unwrap();
        assert_eq!(db.prepared_live(), 1, "only the replacement for a is live");
        // `a` is still open when the connection drops.
    }
    assert_eq!(db.prepared_live(), 0, "disconnect reaps prepared handles");
    let d = db.metrics_snapshot().since(&before);
    assert_eq!(
        d.get("ids.prepared_opened"),
        d.get("ids.prepared_closed"),
        "every prepared handle was closed: {d}"
    );
    assert_eq!(d.get("ids.prepared_opened"), 3, "{d}");
}
