//! Trace-driven regression test for the Figure 6 call sequences: with
//! the `"AM"` trace class enabled, `CREATE INDEX` over a populated
//! table followed by one index probe must emit exactly the golden
//! purpose-function sequence. Any drift in how the engine drives the
//! virtual-index interface shows up as a diff against the golden file
//! (regenerate deliberately with `UPDATE_GOLDEN=1`).

use grtree_datablade::blade::{install_grtree_blade, GrTreeAmOptions};
use grtree_datablade::ids::{Database, DatabaseOptions};
use grtree_datablade::temporal::{Day, MockClock};
use std::sync::Arc;

const GOLDEN: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/figure6_am.txt");

#[test]
fn create_index_and_probe_match_golden_am_sequence() {
    let clock = MockClock::new(Day(10_000));
    let db = Database::new(DatabaseOptions {
        clock: Arc::new(clock.clone()),
        ..Default::default()
    });
    // Default tree fanout: the whole index stays a few pages, and the
    // probe below is narrow, so the planner's qual-aware estimate beats
    // the sequential scan and exercises the Figure 6(b) sequence.
    install_grtree_blade(&db, GrTreeAmOptions::default()).unwrap();
    let conn = db.connect();
    conn.exec("CREATE TABLE t (id integer, Time_Extent GRT_TimeExtent_t)")
        .unwrap();
    // Preloaded rows, so CREATE INDEX walks the heap and bulk-builds
    // the index through `am_build` (with `am_insert` as the engine's
    // fallback), and so the planner later picks the index over a
    // sequential scan.
    for i in 0..40i32 {
        clock.set(Day(10_000 + i));
        let (y, m, d) = Day(10_000 + i).to_ymd();
        conn.exec(&format!(
            "INSERT INTO t VALUES ({i}, '{m:02}/{d:02}/{y}, UC, {m:02}/{d:02}/{y}, NOW')"
        ))
        .unwrap();
    }

    conn.exec("SET TRACE ON 'AM'").unwrap();
    conn.exec("CREATE INDEX tix ON t(Time_Extent grt_opclass) USING grtree_am")
        .unwrap();
    // A narrow ground-extent probe: it covers a sliver of the indexed
    // region, so the qual-aware `am_scancost` beats the sequential scan.
    let (y1, m1, d1) = Day(10_005).to_ymd();
    let (y2, m2, d2) = Day(10_010).to_ymd();
    conn.exec(&format!(
        "SELECT id FROM t WHERE Overlaps(Time_Extent, \
         '{m1:02}/{d1:02}/{y1}, {m2:02}/{d2:02}/{y2}, \
          {m1:02}/{d1:02}/{y1}, {m2:02}/{d2:02}/{y2}')"
    ))
    .unwrap();
    conn.exec("SET TRACE OFF").unwrap();

    let events: Vec<_> = db
        .trace()
        .events_for(conn.session().id())
        .into_iter()
        .filter(|e| e.class == "AM")
        .collect();

    // The two statements are distinct spans: every event carries one of
    // exactly two non-zero span ids, in two contiguous runs.
    let spans: Vec<u64> = events.iter().map(|e| e.span).collect();
    let mut distinct = spans.clone();
    distinct.dedup();
    assert_eq!(distinct.len(), 2, "expected two statement spans: {spans:?}");
    assert!(distinct.iter().all(|&s| s != 0));

    let got: String = events
        .iter()
        .map(|e| e.message.as_str())
        .collect::<Vec<_>>()
        .join("\n")
        + "\n";
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN, &got).unwrap();
    }
    let want = std::fs::read_to_string(GOLDEN)
        .expect("golden file missing — regenerate with UPDATE_GOLDEN=1");
    // The probe must actually have used the index, or the golden
    // sequence is not the Figure 6(b) one.
    assert!(
        want.contains("grt_beginscan"),
        "golden trace does not contain an index scan"
    );
    assert_eq!(
        got, want,
        "AM call sequence drifted from the golden Figure 6 trace \
         (UPDATE_GOLDEN=1 regenerates after a deliberate change)"
    );
}
