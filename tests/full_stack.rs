//! Cross-crate integration tests: big SQL workloads through the blade,
//! equivalence across access paths, and index-level crash recovery.

use grtree_datablade::blade::{install_grtree_blade, install_rstar_blade, GrTreeAmOptions};
use grtree_datablade::grtree::{GrTree, GrTreeOptions};
use grtree_datablade::ids::{Database, DatabaseOptions, Value};
use grtree_datablade::rstar::bitemporal::NowStrategy;
use grtree_datablade::rstar::RStarOptions;
use grtree_datablade::sbspace::{IsolationLevel, LockMode, Sbspace, SbspaceOptions};
use grtree_datablade::temporal::{Day, MockClock, Predicate, TimeExtent};
use grtree_datablade::workload::{History, HistoryEvent, HistoryParams};
use std::sync::Arc;

fn date(day: Day) -> String {
    let (y, m, d) = day.to_ymd();
    format!("{m:02}/{d:02}/{y:04}")
}

fn extent_sql(e: &TimeExtent) -> String {
    e.to_string()
}

#[test]
fn workload_through_sql_matches_oracle() {
    let clock = MockClock::new(Day(10_000));
    let db = Database::new(DatabaseOptions {
        clock: Arc::new(clock.clone()),
        ..Default::default()
    });
    install_grtree_blade(
        &db,
        GrTreeAmOptions {
            tree: GrTreeOptions {
                max_entries: 8,
                ..Default::default()
            },
            ..Default::default()
        },
    )
    .unwrap();
    install_rstar_blade(
        &db,
        NowStrategy::MaxTimestamp,
        RStarOptions {
            max_entries: 8,
            ..Default::default()
        },
    )
    .unwrap();
    let conn = db.connect();
    for t in ["w_grt", "w_rst"] {
        conn.exec(&format!(
            "CREATE TABLE {t} (id integer, Time_Extent GRT_TimeExtent_t)"
        ))
        .unwrap();
    }
    conn.exec("CREATE INDEX wg ON w_grt(Time_Extent grt_opclass) USING grtree_am")
        .unwrap();
    conn.exec("CREATE INDEX wr ON w_rst(Time_Extent rstar_opclass) USING rstar_am")
        .unwrap();

    // Replay a generated history through SQL against both blades while
    // keeping an in-memory oracle.
    let h = History::generate(HistoryParams {
        inserts: 250,
        delete_rate: 0.3,
        seed: 21,
        ..Default::default()
    });
    let mut oracle: std::collections::HashMap<u64, TimeExtent> = Default::default();
    for (day, ev) in &h.events {
        clock.set(*day);
        match ev {
            HistoryEvent::Insert { id, extent } => {
                for t in ["w_grt", "w_rst"] {
                    conn.exec(&format!(
                        "INSERT INTO {t} VALUES ({id}, '{}')",
                        extent_sql(extent)
                    ))
                    .unwrap();
                }
                oracle.insert(*id, *extent);
            }
            HistoryEvent::LogicalDelete { id, new, .. } => {
                for t in ["w_grt", "w_rst"] {
                    conn.exec(&format!(
                        "UPDATE {t} SET Time_Extent = '{}' WHERE id = {id}",
                        extent_sql(new)
                    ))
                    .unwrap();
                }
                oracle.insert(*id, *new);
            }
        }
    }

    for probe_day in [h.end, h.end.plus(500)] {
        clock.set(probe_day);
        let windows = [
            (h.params.start.plus(100), 40, h.params.start.plus(80), 60),
            (h.end.plus(-50), 100, h.end.plus(-200), 300),
        ];
        for (tb, tspan, vb, vspan) in windows {
            let q = format!(
                "Overlaps(Time_Extent, '{}, {}, {}, {}')",
                date(tb),
                date(tb.plus(tspan)),
                date(vb),
                date(vb.plus(vspan))
            );
            let query_extent = TimeExtent::parse(&format!(
                "{}, {}, {}, {}",
                date(tb),
                date(tb.plus(tspan)),
                date(vb),
                date(vb.plus(vspan))
            ))
            .unwrap();
            let mut expected: Vec<i64> = oracle
                .iter()
                .filter(|(_, e)| Predicate::Overlaps.eval(e, &query_extent, probe_day))
                .map(|(id, _)| *id as i64)
                .collect();
            expected.sort_unstable();
            for t in ["w_grt", "w_rst"] {
                let r = conn.exec(&format!("SELECT id FROM {t} WHERE {q}")).unwrap();
                let mut got: Vec<i64> = r
                    .rows
                    .iter()
                    .map(|row| match &row[0] {
                        Value::Int(i) => *i,
                        other => panic!("{other}"),
                    })
                    .collect();
                got.sort_unstable();
                assert_eq!(got, expected, "{t} at {probe_day:?}: {q}");
            }
        }
    }
    conn.exec("CHECK INDEX wg").unwrap();
    conn.exec("CHECK INDEX wr").unwrap();
}

#[test]
fn grtree_survives_crash_recovery_in_file_space() {
    let dir = std::env::temp_dir().join(format!("grt-recovery-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let ct = Day(12_000);
    let opts = SbspaceOptions::default();
    let lo_id;
    {
        let sb = Sbspace::file(&dir, opts.clone()).unwrap();
        let txn = sb.begin(IsolationLevel::ReadCommitted);
        let lo = sb.create_lo(&txn).unwrap();
        lo_id = lo;
        let handle = sb.open_lo(&txn, lo, LockMode::Exclusive).unwrap();
        let mut tree = GrTree::create(
            handle,
            GrTreeOptions {
                max_entries: 8,
                ..Default::default()
            },
        )
        .unwrap();
        for i in 0..200i32 {
            let e = TimeExtent::insert(
                ct,
                Day(12_000 - i % 50),
                grtree_datablade::temporal::VtEnd::Now,
            )
            .unwrap();
            tree.insert(e, i as u64, ct).unwrap();
        }
        tree.into_lo().unwrap().close().unwrap();
        txn.commit().unwrap();

        // An uncommitted transaction is in flight when we "crash".
        let doomed = sb.begin(IsolationLevel::ReadCommitted);
        let handle = sb.open_lo(&doomed, lo, LockMode::Exclusive).unwrap();
        let mut tree = GrTree::open(handle).unwrap();
        for i in 200..260i32 {
            let e = TimeExtent::insert(
                ct.plus(10),
                Day(12_000),
                grtree_datablade::temporal::VtEnd::Now,
            )
            .unwrap();
            tree.insert(e, i as u64, ct.plus(10)).unwrap();
        }
        std::mem::forget(tree);
        std::mem::forget(doomed);
        // Space dropped without commit: crash.
    }
    {
        let sb = Sbspace::file(&dir, opts).unwrap();
        let txn = sb.begin(IsolationLevel::ReadCommitted);
        let handle = sb.open_lo(&txn, lo_id, LockMode::Shared).unwrap();
        let tree = GrTree::open(handle).unwrap();
        assert_eq!(
            tree.len(),
            200,
            "committed entries survive, doomed ones do not"
        );
        tree.check(ct.plus(100)).unwrap();
        let q = TimeExtent::insert(
            ct.plus(100),
            Day(11_990),
            grtree_datablade::temporal::VtEnd::Now,
        )
        .unwrap();
        let hits = tree.search(Predicate::Overlaps, &q, ct.plus(100)).unwrap();
        assert!(!hits.is_empty());
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn catalogs_reflect_the_full_installation() {
    let db = Database::new(DatabaseOptions::default());
    install_grtree_blade(&db, GrTreeAmOptions::default()).unwrap();
    install_rstar_blade(&db, NowStrategy::MaxTimestamp, RStarOptions::default()).unwrap();
    let (_, ams) = db.catalog_dump("sysams").unwrap();
    assert_eq!(ams.len(), 2, "grtree_am and rstar_am");
    let (_, ocs) = db.catalog_dump("sysopclasses").unwrap();
    assert_eq!(ocs.len(), 2);
    let (_, procs) = db.catalog_dump("sysprocedures").unwrap();
    // 14 purpose functions + 4 strategies + 3 support + 3 rstar stubs.
    assert!(procs.len() >= 24, "got {}", procs.len());
}

#[test]
fn load_command_imports_time_extents() {
    // Section 6.3, support-function family 3: "making it possible to
    // use the command LOAD for loading values of a new type from a text
    // file to a table" — with the GR-tree index maintained during the
    // load.
    let clock = MockClock::new(Day::from_ymd(1997, 9, 1).unwrap());
    let db = Database::new(DatabaseOptions {
        clock: Arc::new(clock.clone()),
        ..Default::default()
    });
    install_grtree_blade(&db, GrTreeAmOptions::default()).unwrap();
    let conn = db.connect();
    conn.exec("CREATE TABLE Employees (Name text, Department text, Time_Extent GRT_TimeExtent_t)")
        .unwrap();
    conn.exec("CREATE INDEX grt_index ON Employees(Time_Extent grt_opclass) USING grtree_am")
        .unwrap();
    let path = std::env::temp_dir().join(format!("empdep-{}.unl", std::process::id()));
    std::fs::write(
        &path,
        "John|Advertising|4/97, UC, 3/97, 5/97\n\
         Tom|Management|3/97, 7/97, 6/97, 8/97\n\
         Jane|Sales|5/97, UC, 5/97, NOW\n\
         Michelle|Management|5/97, UC, 3/97, NOW\n",
    )
    .unwrap();
    let r = conn
        .exec(&format!(
            "LOAD FROM '{}' INSERT INTO Employees",
            path.display()
        ))
        .unwrap();
    assert_eq!(r.message, "4 rows loaded");
    // The loaded rows are index-visible.
    let r = conn
        .exec("SELECT Name FROM Employees WHERE Overlaps(Time_Extent, '5/97, UC, 5/97, NOW')")
        .unwrap();
    assert!(r.rows.len() >= 2, "{r:?}");
    conn.exec("CHECK INDEX grt_index").unwrap();
    // A malformed line fails the whole load atomically.
    std::fs::write(&path, "Bad|Row|not an extent\n").unwrap();
    assert!(conn
        .exec(&format!(
            "LOAD FROM '{}' INSERT INTO Employees",
            path.display()
        ))
        .is_err());
    let after = conn.exec("SELECT Name FROM Employees").unwrap();
    assert_eq!(after.rows.len(), 4, "failed load must not leave rows");
    std::fs::remove_file(&path).ok();
}
