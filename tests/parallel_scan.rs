//! Parallel index-scan equivalence: for any degree, `SET PARALLEL n`
//! must change only the execution strategy, never the answer. The
//! suite drives the SQL surface end to end — session degree override,
//! the planner picking the index, the work-stealing traversal over the
//! pinned read path, and the merged-batch cursor contract (no
//! duplicate rows, restart-after-condense) — and cross-checks the
//! `scan.parallel_*` counters.

use grtree_datablade::blade::{install_grtree_blade, GrTreeAmOptions};
use grtree_datablade::grtree::GrTreeOptions;
use grtree_datablade::ids::{Connection, Database, DatabaseOptions, Value};
use grtree_datablade::sbspace::SbspaceOptions;
use grtree_datablade::temporal::{Day, MockClock};
use std::sync::Arc;

fn render(day: i32) -> String {
    let (y, m, d) = Day(day).to_ymd();
    format!("{m:02}/{d:02}/{y:04}")
}

/// A database whose GR-tree uses a small fan-out, so a few hundred
/// rows spread the index over enough pages to clear the parallel-scan
/// threshold.
fn db_small_fanout() -> (Database, MockClock) {
    let clock = MockClock::new(Day(10_000));
    let db = Database::new(DatabaseOptions {
        clock: Arc::new(clock.clone()),
        ..Default::default()
    });
    install_grtree_blade(
        &db,
        GrTreeAmOptions {
            tree: GrTreeOptions {
                max_entries: 8,
                ..Default::default()
            },
            ..Default::default()
        },
    )
    .unwrap();
    (db, clock)
}

/// Populates `t` with `n` rows: even ids now-relative (`UC`/`NOW`),
/// odd ids with closed extents — the mix the GR-tree's stair encoding
/// exists for.
fn populate(conn: &Connection, clock: &MockClock, n: i32) {
    conn.exec("CREATE TABLE t (id integer, Time_Extent GRT_TimeExtent_t)")
        .unwrap();
    conn.exec("CREATE INDEX tix ON t(Time_Extent grt_opclass) USING grtree_am")
        .unwrap();
    for i in 0..n {
        clock.set(Day(10_000 + i));
        let start = render(10_000 + i);
        let extent = if i % 2 == 0 {
            format!("{start}, UC, {start}, NOW")
        } else {
            format!("{start}, UC, {start}, {}", render(10_000 + i + 30))
        };
        conn.exec(&format!("INSERT INTO t VALUES ({i}, '{extent}')"))
            .unwrap();
    }
}

fn ids_of(conn: &Connection, query: &str) -> Vec<i64> {
    let mut out: Vec<i64> = conn
        .exec(query)
        .unwrap()
        .rows
        .into_iter()
        .map(|row| match row[0] {
            Value::Int(v) => v,
            ref other => panic!("unexpected id value {other:?}"),
        })
        .collect();
    out.sort_unstable();
    out
}

#[test]
fn parallel_scan_matches_serial_across_degrees() {
    let (db, clock) = db_small_fanout();
    let conn = db.connect();
    populate(&conn, &clock, 300);
    clock.set(Day(10_400));

    // Two selective slices of the history — one early, one late enough
    // to cut across the still-growing `UC`/`NOW` stairs. Either way the
    // qual-aware estimate keeps the index cheaper than the heap sweep.
    let probes = [
        format!(
            "Overlaps(Time_Extent, '{}, {}, {}, {}')",
            render(10_050),
            render(10_080),
            render(10_040),
            render(10_090)
        ),
        format!(
            "Overlaps(Time_Extent, '{}, {}, {}, {}')",
            render(10_150),
            render(10_190),
            render(10_140),
            render(10_200)
        ),
    ];

    for probe in &probes {
        let query = format!("SELECT id FROM t WHERE {probe}");
        let serial = ids_of(&conn, &query);
        assert!(
            !serial.is_empty(),
            "probe must match rows or the test proves nothing: {probe}"
        );
        for degree in [1usize, 2, 4, 8] {
            conn.exec(&format!("SET PARALLEL {degree}")).unwrap();
            let before = db.metrics_snapshot();
            let got = ids_of(&conn, &query);
            assert_eq!(
                got, serial,
                "degree {degree} changed the answer for {probe}"
            );
            let d = db.metrics_snapshot().since(&before);
            assert_eq!(
                d.get("ids.plans_index"),
                1,
                "probe must go through the index: {probe}"
            );
            if degree > 1 {
                assert!(
                    d.get("scan.parallel_scans") >= 1,
                    "degree {degree} never took the parallel path: {d}"
                );
                assert!(
                    d.histogram("scan.parallel_worker_ns").count > 0,
                    "worker latency histogram unobserved: {d}"
                );
            } else {
                assert_eq!(
                    d.get("scan.parallel_scans"),
                    0,
                    "degree 1 must stay on the serial cursor: {d}"
                );
            }
        }
        conn.exec("SET PARALLEL 1").unwrap();
    }
}

#[test]
fn small_trees_fall_back_to_serial() {
    // A handful of rows: the index stays under the page threshold, so
    // even a high requested degree runs the serial cursor and ticks
    // the fallback counter instead.
    let clock = MockClock::new(Day(10_000));
    let db = Database::new(DatabaseOptions {
        clock: Arc::new(clock.clone()),
        ..Default::default()
    });
    install_grtree_blade(&db, GrTreeAmOptions::default()).unwrap();
    let conn = db.connect();
    conn.exec("CREATE TABLE t (id integer, Time_Extent GRT_TimeExtent_t)")
        .unwrap();
    conn.exec("CREATE INDEX tix ON t(Time_Extent grt_opclass) USING grtree_am")
        .unwrap();
    for i in 0..10 {
        clock.set(Day(10_000 + i));
        let s = render(10_000 + i);
        conn.exec(&format!("INSERT INTO t VALUES ({i}, '{s}, UC, {s}, NOW')"))
            .unwrap();
    }
    conn.exec("SET PARALLEL 8").unwrap();
    let probe = format!(
        "Overlaps(Time_Extent, '{}, {}, {}, {}')",
        render(10_002),
        render(10_006),
        render(10_001),
        render(10_007)
    );
    let before = db.metrics_snapshot();
    let got = ids_of(&conn, &format!("SELECT id FROM t WHERE {probe}"));
    assert!(!got.is_empty());
    let d = db.metrics_snapshot().since(&before);
    assert_eq!(d.get("scan.parallel_scans"), 0, "tiny tree went parallel");
    if d.get("ids.plans_index") == 1 {
        assert!(
            d.get("scan.parallel_fallbacks") >= 1,
            "fallback went uncounted: {d}"
        );
    }
}

#[test]
fn parallel_delete_mid_scan_condenses_and_restarts() {
    // The Section 5.5 contract under the parallel executor: a DELETE
    // through the index interleaves getnext with deletions, deletions
    // condense the tree, and every condense must throw away the
    // buffered parallel batch and re-derive it from the new root —
    // without ever deleting a row twice or leaving one behind.
    let (db, clock) = db_small_fanout();
    let conn = db.connect();
    populate(&conn, &clock, 300);
    clock.set(Day(10_400));
    conn.exec("SET PARALLEL 4").unwrap();

    let before = db.metrics_snapshot();
    conn.exec(&format!(
        "DELETE FROM t WHERE Overlaps(Time_Extent, '{}, {}, {}, {}')",
        render(10_000),
        render(10_250),
        render(9_990),
        render(10_251)
    ))
    .unwrap();
    let d = db.metrics_snapshot().since(&before);
    assert!(
        d.get("grtree.condenses") > 0,
        "the mass delete never condensed the tree: {d}"
    );

    // Rows 251..299 began after the probe's transaction-time window
    // closed; everything else is gone.
    let left = ids_of(&conn, "SELECT id FROM t");
    assert_eq!(left.len(), 49, "rows 251..299 remain: {left:?}");
    assert!(left.iter().all(|&id| id >= 251), "{left:?}");
    conn.exec("CHECK INDEX tix").unwrap();

    // And a parallel scan over the condensed tree still agrees with
    // the serial one.
    let probe = format!(
        "SELECT id FROM t WHERE Overlaps(Time_Extent, '{}, {}, {}, {}')",
        render(10_251),
        render(10_299),
        render(10_240),
        render(10_330)
    );
    conn.exec("SET PARALLEL 1").unwrap();
    let serial = ids_of(&conn, &probe);
    conn.exec("SET PARALLEL 4").unwrap();
    assert_eq!(ids_of(&conn, &probe), serial);
}

#[test]
fn prefetched_scans_match_serial_and_parallel() {
    // Prefetch must change only I/O timing, never answers: the same
    // probes over a prefetching database (workers announce internal
    // nodes' children ahead of the descent) return exactly the row-set
    // of the serial and parallel scans on a non-prefetching one.
    let (db, clock) = db_small_fanout();
    let conn = db.connect();
    populate(&conn, &clock, 300);
    clock.set(Day(10_400));

    let clock_pf = MockClock::new(Day(10_000));
    let db_pf = Database::new(DatabaseOptions {
        clock: Arc::new(clock_pf.clone()),
        space: SbspaceOptions {
            prefetch_workers: 2,
            ..Default::default()
        },
        ..Default::default()
    });
    install_grtree_blade(
        &db_pf,
        GrTreeAmOptions {
            tree: GrTreeOptions {
                max_entries: 8,
                ..Default::default()
            },
            ..Default::default()
        },
    )
    .unwrap();
    let conn_pf = db_pf.connect();
    populate(&conn_pf, &clock_pf, 300);
    clock_pf.set(Day(10_400));

    let probe = format!(
        "SELECT id FROM t WHERE Overlaps(Time_Extent, '{}, {}, {}, {}')",
        render(10_050),
        render(10_080),
        render(10_040),
        render(10_090)
    );
    let serial = ids_of(&conn, &probe);
    assert!(!serial.is_empty(), "probe must match rows");
    for degree in [1usize, 2, 4, 8] {
        conn.exec(&format!("SET PARALLEL {degree}")).unwrap();
        conn_pf.exec(&format!("SET PARALLEL {degree}")).unwrap();
        assert_eq!(
            ids_of(&conn, &probe),
            serial,
            "degree {degree} without prefetch drifted"
        );
        assert_eq!(
            ids_of(&conn_pf, &probe),
            serial,
            "degree {degree} with prefetch drifted"
        );
    }
}

/// A database like [`db_small_fanout`] but with an explicit executor
/// batch size for `am_getnext_batch`.
fn db_with_batch(batch: usize) -> (Database, MockClock) {
    let clock = MockClock::new(Day(10_000));
    let db = Database::new(DatabaseOptions {
        clock: Arc::new(clock.clone()),
        scan_batch_rows: batch,
        ..Default::default()
    });
    install_grtree_blade(
        &db,
        GrTreeAmOptions {
            tree: GrTreeOptions {
                max_entries: 8,
                ..Default::default()
            },
            ..Default::default()
        },
    )
    .unwrap();
    (db, clock)
}

#[test]
fn batch_size_changes_execution_not_answers() {
    // The batched-fetch contract: `scan_batch_rows` ∈ {1, 16, 256}
    // must change only how many rows each am_getnext_batch call hands
    // back, never the rows themselves — serially, in parallel, and
    // through a condense-mid-DELETE cursor restart.
    let mut reference: Option<(Vec<i64>, Vec<i64>)> = None;
    for batch in [1usize, 16, 256] {
        let (db, clock) = db_with_batch(batch);
        let conn = db.connect();
        populate(&conn, &clock, 300);
        clock.set(Day(10_400));

        let probe = format!(
            "SELECT id FROM t WHERE Overlaps(Time_Extent, '{}, {}, {}, {}')",
            render(10_050),
            render(10_080),
            render(10_040),
            render(10_090)
        );
        let before = db.metrics_snapshot();
        let serial = ids_of(&conn, &probe);
        let d = db.metrics_snapshot().since(&before);
        assert_eq!(d.get("ids.plans_index"), 1, "probe through the index: {d}");
        let h = d.histogram("scan.batch_rows");
        assert!(h.count > 0, "batch fills unobserved: {d}");
        assert!(
            h.mean_ns() <= batch as u64,
            "a batch cannot exceed scan_batch_rows={batch}: {d}"
        );
        conn.exec("SET PARALLEL 4").unwrap();
        let parallel = ids_of(&conn, &probe);
        assert_eq!(parallel, serial, "parallel ≠ serial at batch {batch}");
        conn.exec("SET PARALLEL 1").unwrap();

        // The condense-mid-DELETE restart: deletions interleave with
        // batched fetches through the same descriptor.
        let before = db.metrics_snapshot();
        conn.exec(&format!(
            "DELETE FROM t WHERE Overlaps(Time_Extent, '{}, {}, {}, {}')",
            render(10_000),
            render(10_250),
            render(9_990),
            render(10_251)
        ))
        .unwrap();
        let d = db.metrics_snapshot().since(&before);
        assert!(
            d.get("grtree.condenses") > 0,
            "mass delete at batch {batch} never condensed: {d}"
        );
        let left = ids_of(&conn, "SELECT id FROM t");
        conn.exec("CHECK INDEX tix").unwrap();

        match &reference {
            None => reference = Some((serial, left)),
            Some((ref_serial, ref_left)) => {
                assert_eq!(&serial, ref_serial, "scan drifted at batch {batch}");
                assert_eq!(&left, ref_left, "delete drifted at batch {batch}");
            }
        }
    }
}
