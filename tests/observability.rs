//! End-to-end observability: the `sysmetrics` virtual catalog, the
//! `MetricsSnapshot` diff API, session-scoped tracing, and
//! `SET EXPLAIN` — one registry covering engine, access method, and
//! storage counters.

use grtree_datablade::blade::{install_grtree_blade, GrTreeAmOptions};
use grtree_datablade::ids::{Connection, Database, DatabaseOptions, Value};
use grtree_datablade::temporal::{Day, MockClock};
use std::collections::HashMap;
use std::sync::Arc;

fn blade_db() -> (Database, MockClock) {
    let clock = MockClock::new(Day(10_000));
    let db = Database::new(DatabaseOptions {
        clock: Arc::new(clock.clone()),
        ..Default::default()
    });
    // Default fanout: the tree stays a handful of pages, so the
    // planner's cost estimate still picks the index for the probe, and
    // one page worth of entries (~170) is enough to split the root.
    install_grtree_blade(&db, GrTreeAmOptions::default()).unwrap();
    (db, clock)
}

fn insert(conn: &Connection, clock: &MockClock, i: i32) {
    clock.set(Day(10_000 + i));
    let (y, m, d) = Day(10_000 + i).to_ymd();
    conn.exec(&format!(
        "INSERT INTO t VALUES ({i}, '{m:02}/{d:02}/{y}, UC, {m:02}/{d:02}/{y}, NOW')"
    ))
    .unwrap();
}

/// `SELECT * FROM sysmetrics` as a name → value map.
fn sysmetrics(conn: &Connection) -> HashMap<String, i64> {
    conn.exec("SELECT * FROM sysmetrics")
        .unwrap()
        .rows
        .into_iter()
        .map(|row| match (&row[0], &row[1]) {
            (Value::Text(name), &Value::Int(v)) => (name.clone(), v),
            other => panic!("unexpected sysmetrics row {other:?}"),
        })
        .collect()
}

#[test]
fn sysmetrics_reports_live_counters_from_every_layer() {
    let (db, clock) = blade_db();
    let conn = db.connect();
    conn.exec("CREATE TABLE t (id integer, Time_Extent GRT_TimeExtent_t)")
        .unwrap();
    conn.exec("CREATE INDEX tix ON t(Time_Extent grt_opclass) USING grtree_am")
        .unwrap();
    for i in 0..180 {
        insert(&conn, &clock, i);
    }
    // A narrow ground-extent probe: wide enough to hit some entries,
    // narrow enough that the qual-aware cost estimate picks the index.
    let (y1, m1, d1) = Day(10_005).to_ymd();
    let (y2, m2, d2) = Day(10_020).to_ymd();
    conn.exec(&format!(
        "SELECT id FROM t WHERE Overlaps(Time_Extent, \
         '{m1:02}/{d1:02}/{y1}, {m2:02}/{d2:02}/{y2}, \
          {m1:02}/{d1:02}/{y1}, {m2:02}/{d2:02}/{y2}')"
    ))
    .unwrap();
    // A probe against an unindexed table evaluates the strategy
    // function as a plain UDR over a sequential scan.
    conn.exec("CREATE TABLE u (id integer, Time_Extent GRT_TimeExtent_t)")
        .unwrap();
    conn.exec("INSERT INTO u VALUES (1, '01/01/1997, UC, 01/01/1997, NOW')")
        .unwrap();
    conn.exec(
        "SELECT id FROM u WHERE Overlaps(Time_Extent, \
         '01/01/1997, UC, 01/01/1997, NOW')",
    )
    .unwrap();

    let m = sysmetrics(&conn);
    // Engine layer.
    assert!(m["ids.statements"] > 180);
    assert!(m["am.am_insert"] >= 180, "per-purpose UDR counters missing");
    assert!(m["ids.udr_calls"] > 0, "strategy functions went uncounted");
    assert!(
        m["ids.plans_index"] + m["ids.plans_seq"] >= 1,
        "planner decisions counted"
    );
    assert!(m["ids.exec_ns.count"] > 180, "statement latency histogram");
    // Access-method layer.
    assert!(m["grtree.searches"] > 0);
    assert!(m["grtree.nodes_visited"] > 0);
    assert!(m["grtree.splits"] > 0, "180 entries overflow one leaf page");
    // Storage layer.
    assert!(m["sbspace.logical_writes"] > 0);
    assert!(m["sbspace.txn_commits"] > 180);
    // Trace ring adoption.
    assert_eq!(m["trace.dropped"], db.trace().dropped() as i64);

    // Projection works like any catalog; WHERE is rejected.
    let names = conn.exec("SELECT name FROM sysmetrics").unwrap();
    assert_eq!(names.columns, vec!["name".to_string()]);
    assert!(conn
        .exec("SELECT name FROM sysmetrics WHERE name = 'x'")
        .is_err());
}

#[test]
fn sysmetrics_exposes_plan_cache_and_batched_fetch_counters() {
    let (db, clock) = blade_db();
    let conn = db.connect();
    conn.exec("CREATE TABLE t (id integer, Time_Extent GRT_TimeExtent_t)")
        .unwrap();
    conn.exec("CREATE INDEX tix ON t(Time_Extent grt_opclass) USING grtree_am")
        .unwrap();
    for i in 0..40 {
        insert(&conn, &clock, i);
    }

    // An index probe, repeated: the first execution plans fresh, the
    // repeat hits the transparent plan cache and pulls its rows through
    // am_getnext_batch.
    let (y1, m1, d1) = Day(10_005).to_ymd();
    let (y2, m2, d2) = Day(10_020).to_ymd();
    let probe = format!(
        "SELECT id FROM t WHERE Overlaps(Time_Extent, \
         '{m1:02}/{d1:02}/{y1}, {m2:02}/{d2:02}/{y2}, \
          {m1:02}/{d1:02}/{y1}, {m2:02}/{d2:02}/{y2}')"
    );
    conn.exec(&probe).unwrap();
    conn.exec(&probe).unwrap();

    // An explicit prepared handle, and a DDL statement that must knock
    // the cached plans over t out of the cache.
    conn.exec("PREPARE q FROM 'SELECT id FROM t WHERE id < ?'")
        .unwrap();
    conn.exec("EXECUTE q USING 5").unwrap();
    conn.exec("DEALLOCATE q").unwrap();
    conn.exec("DROP INDEX tix").unwrap();

    let m = sysmetrics(&conn);
    assert!(m["ids.plan_cache_misses"] > 0, "first plan is a miss");
    assert!(m["ids.plan_cache_hits"] > 0, "repeat never hit the cache");
    assert!(
        m["ids.plan_cache_invalidations"] >= 1,
        "DROP INDEX left cached plans standing"
    );
    assert!(
        m.contains_key("ids.plan_cache_evictions"),
        "eviction counter unregistered"
    );
    assert_eq!(m["ids.prepared_opened"], 1);
    assert_eq!(m["ids.prepared_closed"], 1);
    assert!(
        m["am.am_getnext_batch"] > 0,
        "index probe bypassed the batched fetch"
    );
    assert!(
        m["scan.batch_rows.count"] > 0,
        "batch-fill histogram missing from sysmetrics"
    );
}

#[test]
fn snapshot_diff_isolates_one_statement() {
    let (db, clock) = blade_db();
    let conn = db.connect();
    conn.exec("CREATE TABLE t (id integer, Time_Extent GRT_TimeExtent_t)")
        .unwrap();
    conn.exec("CREATE INDEX tix ON t(Time_Extent grt_opclass) USING grtree_am")
        .unwrap();
    insert(&conn, &clock, 0);

    let before = db.metrics_snapshot();
    insert(&conn, &clock, 1);
    let d = db.metrics_snapshot().since(&before);
    assert_eq!(d.get("ids.statements"), 1);
    assert_eq!(d.get("am.am_insert"), 1, "exactly one index maintained");
    assert_eq!(d.get("sbspace.txn_commits"), 1);
    assert!(d.get("sbspace.logical_writes") > 0);
    assert_eq!(d.get("ids.statement_errors"), 0);
    assert_eq!(d.histogram("ids.exec_ns").count, 1);
    // The diff keeps untouched counters at zero rather than dropping
    // them, so trailers can always subtract.
    assert_eq!(d.get("grtree.condenses"), 0);
}

#[test]
fn trace_is_session_scoped_and_explain_rides_it() {
    let (db, clock) = blade_db();
    let c1 = db.connect();
    let c2 = db.connect();
    c1.exec("CREATE TABLE t (id integer, Time_Extent GRT_TimeExtent_t)")
        .unwrap();
    c1.exec("CREATE INDEX tix ON t(Time_Extent grt_opclass) USING grtree_am")
        .unwrap();

    // Only session 1 turns AM tracing on; both sessions insert.
    c1.exec("SET TRACE ON 'AM'").unwrap();
    insert(&c1, &clock, 1);
    insert(&c2, &clock, 2);
    let am_events: Vec<u64> = db
        .trace()
        .events()
        .into_iter()
        .filter(|e| e.class == "AM")
        .map(|e| e.session)
        .collect();
    assert!(!am_events.is_empty());
    assert!(
        am_events.iter().all(|&s| s == c1.session().id()),
        "another session's events leaked into a session-scoped trace"
    );

    // SET TRACE OFF clears the session's filters.
    c1.exec("SET TRACE OFF").unwrap();
    let before = db.trace().events().len();
    insert(&c1, &clock, 3);
    assert_eq!(db.trace().events().len(), before);

    // The global form records everyone.
    c2.exec("SET TRACE 'AM' TO 1").unwrap();
    insert(&c1, &clock, 4);
    insert(&c2, &clock, 5);
    let sessions: std::collections::HashSet<u64> = db
        .trace()
        .events()
        .into_iter()
        .filter(|e| e.class == "AM")
        .map(|e| e.session)
        .collect();
    assert!(sessions.contains(&c1.session().id()));
    assert!(sessions.contains(&c2.session().id()));
    c2.exec("SET TRACE 'AM' OFF").unwrap();

    // SET EXPLAIN: planner decisions as EXPLAIN-class events, scoped to
    // the enabling session.
    c1.exec("SET EXPLAIN ON").unwrap();
    let probe = "SELECT id FROM t WHERE Overlaps(Time_Extent, \
                 '01/01/1997, UC, 01/01/1997, NOW')";
    c1.exec(probe).unwrap();
    c2.exec(probe).unwrap();
    let explains: Vec<_> = db
        .trace()
        .events()
        .into_iter()
        .filter(|e| e.class == "EXPLAIN")
        .collect();
    assert!(!explains.is_empty(), "SET EXPLAIN produced no trace");
    assert!(explains.iter().all(|e| e.session == c1.session().id()));
    assert!(
        explains.iter().any(|e| e.message.contains("chose")),
        "no chosen-plan line: {explains:?}"
    );
    c1.exec("SET EXPLAIN OFF").unwrap();
    c1.exec(probe).unwrap();
    let after: usize = db
        .trace()
        .events()
        .iter()
        .filter(|e| e.class == "EXPLAIN")
        .count();
    assert_eq!(after, explains.len(), "EXPLAIN kept tracing after OFF");
}
