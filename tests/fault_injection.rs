//! Failure injection through the whole stack: backend I/O faults during
//! DML must fail the statement, roll the transaction back, and leave
//! both heap and GR-tree consistent.

use grt_sbspace::wal::MemWal;
use grt_sbspace::{FaultInjector, MemBackend, Sbspace, SbspaceOptions};
use grtree_datablade::blade::{install_grtree_blade, GrTreeAmOptions};
use grtree_datablade::grtree::GrTreeOptions;
use grtree_datablade::ids::Database;
use grtree_datablade::temporal::{Day, MockClock};
use std::sync::Arc;

fn faulty_db() -> (Database, Arc<FaultInjector<MemBackend>>, MockClock) {
    let backend = Arc::new(FaultInjector::new(MemBackend::new()));
    let wal = Arc::new(MemWal::new());
    let space = Sbspace::open_with(Arc::clone(&backend), wal, SbspaceOptions::default()).unwrap();
    let clock = MockClock::new(Day(10_000));
    let db = Database::with_space(space, Arc::new(clock.clone()));
    install_grtree_blade(
        &db,
        GrTreeAmOptions {
            tree: GrTreeOptions {
                max_entries: 6,
                ..Default::default()
            },
            ..Default::default()
        },
    )
    .unwrap();
    (db, backend, clock)
}

#[test]
fn io_fault_mid_statement_rolls_back_cleanly() {
    let (db, backend, clock) = faulty_db();
    let conn = db.connect();
    conn.exec("CREATE TABLE t (id integer, Time_Extent GRT_TimeExtent_t)")
        .unwrap();
    conn.exec("CREATE INDEX tix ON t(Time_Extent grt_opclass) USING grtree_am")
        .unwrap();
    for i in 0..60i32 {
        clock.set(Day(10_000 + i));
        let (y, m, d) = Day(10_000 + i).to_ymd();
        conn.exec(&format!(
            "INSERT INTO t VALUES ({i}, '{m:02}/{d:02}/{y}, UC, {m:02}/{d:02}/{y}, NOW')"
        ))
        .unwrap();
    }
    let before = conn.exec("SELECT id FROM t").unwrap().rows.len();

    // Break the disk mid-flight: some statement soon fails.
    backend.fail_after(10);
    let mut failures = 0;
    for i in 100..120i32 {
        let (y, m, d) = Day(10_150).to_ymd();
        if conn
            .exec(&format!(
                "INSERT INTO t VALUES ({i}, '{m:02}/{d:02}/{y}, UC, {m:02}/{d:02}/{y}, NOW')"
            ))
            .is_err()
        {
            failures += 1;
        }
    }
    assert!(failures > 0, "the injected fault must surface");
    backend.heal();

    // Every failed statement rolled back atomically: the table and the
    // index agree, and the index passes its consistency check.
    let rows = conn.exec("SELECT id FROM t").unwrap().rows.len();
    let via_index = conn
        .exec(
            "SELECT id FROM t WHERE Overlaps(Time_Extent, \
             '01/01/1997, UC, 01/01/1997, NOW')",
        )
        .unwrap()
        .rows
        .len();
    assert_eq!(rows, via_index, "heap and index diverged after faults");
    assert!(rows >= before, "committed rows must survive");
    conn.exec("CHECK INDEX tix").unwrap();

    // And the system keeps working after healing.
    clock.set(Day(10_200));
    conn.exec("INSERT INTO t VALUES (999, '10/01/1997, UC, 10/01/1997, NOW')")
        .unwrap();
    let after = conn.exec("SELECT id FROM t").unwrap().rows.len();
    assert_eq!(after, rows + 1);
}
