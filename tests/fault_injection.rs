//! Failure injection through the whole stack: backend I/O faults during
//! DML must fail the statement, roll the transaction back, and leave
//! both heap and GR-tree consistent.

use grt_sbspace::wal::MemWal;
use grt_sbspace::{
    FaultInjector, IsolationLevel, LockMode, MemBackend, Sbspace, SbspaceOptions, PAGE_SIZE,
};
use grtree_datablade::blade::{install_grtree_blade, GrTreeAmOptions};
use grtree_datablade::grtree::GrTreeOptions;
use grtree_datablade::ids::Database;
use grtree_datablade::temporal::{Day, MockClock};
use std::sync::Arc;

fn faulty_db() -> (Database, Arc<FaultInjector<MemBackend>>, MockClock) {
    faulty_db_opts(SbspaceOptions::default())
}

fn faulty_db_opts(opts: SbspaceOptions) -> (Database, Arc<FaultInjector<MemBackend>>, MockClock) {
    let backend = Arc::new(FaultInjector::new(MemBackend::new()));
    let wal = Arc::new(MemWal::with_segment_bytes(opts.wal_segment_bytes));
    let space = Sbspace::open_with(Arc::clone(&backend), wal, opts).unwrap();
    let clock = MockClock::new(Day(10_000));
    let db = Database::with_space(space, Arc::new(clock.clone()));
    install_grtree_blade(
        &db,
        GrTreeAmOptions {
            tree: GrTreeOptions {
                max_entries: 6,
                ..Default::default()
            },
            ..Default::default()
        },
    )
    .unwrap();
    (db, backend, clock)
}

#[test]
fn io_fault_mid_statement_rolls_back_cleanly() {
    let (db, backend, clock) = faulty_db();
    let conn = db.connect();
    conn.exec("CREATE TABLE t (id integer, Time_Extent GRT_TimeExtent_t)")
        .unwrap();
    conn.exec("CREATE INDEX tix ON t(Time_Extent grt_opclass) USING grtree_am")
        .unwrap();
    for i in 0..60i32 {
        clock.set(Day(10_000 + i));
        let (y, m, d) = Day(10_000 + i).to_ymd();
        conn.exec(&format!(
            "INSERT INTO t VALUES ({i}, '{m:02}/{d:02}/{y}, UC, {m:02}/{d:02}/{y}, NOW')"
        ))
        .unwrap();
    }
    let before = conn.exec("SELECT id FROM t").unwrap().rows.len();

    // Break the disk mid-flight: some statement soon fails.
    backend.fail_after(10);
    let mut failures = 0;
    for i in 100..120i32 {
        let (y, m, d) = Day(10_150).to_ymd();
        if conn
            .exec(&format!(
                "INSERT INTO t VALUES ({i}, '{m:02}/{d:02}/{y}, UC, {m:02}/{d:02}/{y}, NOW')"
            ))
            .is_err()
        {
            failures += 1;
        }
    }
    assert!(failures > 0, "the injected fault must surface");
    backend.heal();

    // Every failed statement rolled back atomically: the table and the
    // index agree, and the index passes its consistency check.
    let rows = conn.exec("SELECT id FROM t").unwrap().rows.len();
    let via_index = conn
        .exec(
            "SELECT id FROM t WHERE Overlaps(Time_Extent, \
             '01/01/1997, UC, 01/01/1997, NOW')",
        )
        .unwrap()
        .rows
        .len();
    assert_eq!(rows, via_index, "heap and index diverged after faults");
    assert!(rows >= before, "committed rows must survive");
    conn.exec("CHECK INDEX tix").unwrap();

    // And the system keeps working after healing.
    clock.set(Day(10_200));
    conn.exec("INSERT INTO t VALUES (999, '10/01/1997, UC, 10/01/1997, NOW')")
        .unwrap();
    let after = conn.exec("SELECT id FROM t").unwrap().rows.len();
    assert_eq!(after, rows + 1);
}

/// Every counter in the unified registry must reconcile across a fault
/// window: each auto-commit statement ends exactly one transaction (as
/// a commit or an abort), statement errors are counted, and every
/// failed statement traces back to at least one injected fault.
#[test]
fn metrics_reconcile_across_aborted_transactions() {
    let (db, backend, clock) = faulty_db();
    let conn = db.connect();
    conn.exec("CREATE TABLE t (id integer, Time_Extent GRT_TimeExtent_t)")
        .unwrap();
    conn.exec("CREATE INDEX tix ON t(Time_Extent grt_opclass) USING grtree_am")
        .unwrap();
    for i in 0..30i32 {
        clock.set(Day(10_000 + i));
        let (y, m, d) = Day(10_000 + i).to_ymd();
        conn.exec(&format!(
            "INSERT INTO t VALUES ({i}, '{m:02}/{d:02}/{y}, UC, {m:02}/{d:02}/{y}, NOW')"
        ))
        .unwrap();
    }

    let base = db.metrics_snapshot();
    let injected_base = backend.injected();
    backend.fail_after(10);
    let statements = 20u64;
    let mut failures = 0u64;
    for i in 100..120i32 {
        let (y, m, d) = Day(10_150).to_ymd();
        if conn
            .exec(&format!(
                "INSERT INTO t VALUES ({i}, '{m:02}/{d:02}/{y}, UC, {m:02}/{d:02}/{y}, NOW')"
            ))
            .is_err()
        {
            failures += 1;
        }
    }
    backend.heal();
    let d = db.metrics_snapshot().since(&base);

    assert!(failures > 0, "the injected fault must surface");
    assert_eq!(d.get("ids.statements"), statements);
    assert_eq!(d.get("ids.statement_errors"), failures);
    // Exactly one transaction outcome per auto-commit statement. A
    // statement failing after its commit record became durable counts
    // as a commit plus a statement error, so aborts can undercount
    // failures but commits + aborts never drift from the statements.
    assert_eq!(
        d.get("sbspace.txn_commits") + d.get("sbspace.txn_aborts"),
        statements,
        "transaction outcomes drifted from statements: {d}"
    );
    assert!(d.get("sbspace.txn_aborts") <= failures);
    assert!(d.get("sbspace.txn_commits") >= statements - failures);
    // The failures trace back to the injector (one injected fault can
    // cascade into several statement failures, so no exact equality).
    let injected = backend.injected() - injected_base;
    assert!(injected > 0, "statements failed without an injected fault");
}

/// A rolled-back write is counted once. An abort does pay a fixed
/// compensation cost (freed pages go back to the free list), but it
/// must be exactly that: identical aborted transactions yield identical
/// counter deltas, and a commit costs the same whether or not aborts
/// ran in between — nothing leaks or double-counts across rollback.
#[test]
fn rollback_does_not_double_count_writes() {
    let (db, _backend, _clock) = faulty_db();
    let sb = db.space();

    let measure = |commit: bool| -> (u64, u64) {
        let before = db.metrics_snapshot();
        let txn = sb.begin(IsolationLevel::ReadCommitted);
        let lo = sb.create_lo(&txn).unwrap();
        let mut h = sb.open_lo(&txn, lo, LockMode::Exclusive).unwrap();
        h.append_page(&[7u8; PAGE_SIZE]).unwrap();
        h.close().unwrap();
        if commit {
            txn.commit().unwrap();
        } else {
            txn.abort().unwrap();
        }
        let d = db.metrics_snapshot().since(&before);
        (d.get("sbspace.logical_writes"), d.get("sbspace.txn_aborts"))
    };

    let (commit_before, ca) = measure(true);
    let (abort_first, aa1) = measure(false);
    let (abort_second, aa2) = measure(false);
    let (commit_after, cb) = measure(true);
    assert_eq!((ca, cb), (0, 0));
    assert_eq!((aa1, aa2), (1, 1), "each rollback is counted exactly once");
    assert_eq!(
        abort_first, abort_second,
        "identical aborted transactions logged different write counts"
    );
    assert_eq!(
        commit_before, commit_after,
        "a commit after rollbacks costs more than one before — aborted \
         work leaked into the write counters"
    );
    assert!(
        abort_first < 2 * commit_before,
        "abort compensation rewrote the transaction's own writes: \
         {abort_first} vs {commit_before} committed"
    );
}

/// An I/O fault during the checkpoint's data flush must fail that
/// checkpoint and nothing else: no WAL segment is recycled (the
/// previous checkpoint stays authoritative, so recovery can still
/// replay everything), committed data stays readable, and the next
/// checkpoint after healing succeeds and resumes recycling.
#[test]
fn checkpoint_flush_fault_keeps_previous_checkpoint_authoritative() {
    let (db, backend, clock) = faulty_db_opts(SbspaceOptions {
        // No-force commits leave committed-dirty frames for the
        // checkpoint flush to write — the path the fault targets.
        group_commit: true,
        wal_segment_bytes: 8 * 1024,
        ..Default::default()
    });
    let conn = db.connect();
    conn.exec("CREATE TABLE t (id integer, Time_Extent GRT_TimeExtent_t)")
        .unwrap();
    conn.exec("CREATE INDEX tix ON t(Time_Extent grt_opclass) USING grtree_am")
        .unwrap();
    for i in 0..40i32 {
        clock.set(Day(10_000 + i));
        let (y, m, d) = Day(10_000 + i).to_ymd();
        conn.exec(&format!(
            "INSERT INTO t VALUES ({i}, '{m:02}/{d:02}/{y}, UC, {m:02}/{d:02}/{y}, NOW')"
        ))
        .unwrap();
    }
    let sb = db.space();
    let segs_before = sb.wal_segment_count().unwrap();
    assert!(segs_before > 1, "churn should have rolled segments");

    let base = db.metrics_snapshot();
    backend.fail_after(1);
    assert!(sb.checkpoint().is_err(), "flush fault must surface");
    backend.heal();
    let d = db.metrics_snapshot().since(&base);
    assert_eq!(d.get("sbspace.checkpoint_failures"), 1);
    assert_eq!(d.get("sbspace.checkpoints"), 0);
    assert_eq!(
        d.get("wal.segments_recycled"),
        0,
        "a failed checkpoint must never recycle segments"
    );
    assert_eq!(
        sb.wal_segment_count().unwrap(),
        segs_before,
        "WAL must be intact after a failed checkpoint"
    );

    // Committed data is still all there, and the engine keeps working.
    assert_eq!(conn.exec("SELECT id FROM t").unwrap().rows.len(), 40);
    conn.exec("CHECK INDEX tix").unwrap();

    // Healed, the retry succeeds and recycling resumes.
    sb.checkpoint().unwrap();
    let d = db.metrics_snapshot().since(&base);
    assert_eq!(d.get("sbspace.checkpoints"), 1);
    assert!(
        sb.wal_segment_count().unwrap() < segs_before,
        "the healed checkpoint should recycle the replayed prefix"
    );
    assert_eq!(conn.exec("SELECT id FROM t").unwrap().rows.len(), 40);
}
