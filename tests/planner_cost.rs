//! Qual-aware index costing: `am_scancost` reads the predicate it is
//! handed. A narrow probe over a big table must price the index below
//! the heap sweep (before this, a blind `pages * 0.25` estimate let
//! wide scans masquerade as cheap), and a full-range probe — which
//! really does visit everything — must lose to the sequential scan.

use grtree_datablade::blade::{install_grtree_blade, GrTreeAmOptions};
use grtree_datablade::ids::{Database, DatabaseOptions};
use grtree_datablade::temporal::{Day, MockClock};
use std::sync::Arc;

fn render(day: i32) -> String {
    let (y, m, d) = Day(day).to_ymd();
    format!("{m:02}/{d:02}/{y:04}")
}

#[test]
fn narrow_probe_beats_sequential_scan_and_full_range_does_not() {
    let clock = MockClock::new(Day(10_000));
    let db = Database::new(DatabaseOptions {
        clock: Arc::new(clock.clone()),
        ..Default::default()
    });
    install_grtree_blade(&db, GrTreeAmOptions::default()).unwrap();
    let conn = db.connect();
    conn.exec("CREATE TABLE t (id integer, Time_Extent GRT_TimeExtent_t)")
        .unwrap();
    conn.exec("CREATE INDEX tix ON t(Time_Extent grt_opclass) USING grtree_am")
        .unwrap();
    for i in 0..200 {
        clock.set(Day(10_000 + i));
        let s = render(10_000 + i);
        conn.exec(&format!("INSERT INTO t VALUES ({i}, '{s}, UC, {s}, NOW')"))
            .unwrap();
    }
    clock.set(Day(10_300));

    // A sliver of the indexed region: the overlap-derived selectivity
    // prices the index probe below the 200-row heap sweep.
    let before = db.metrics_snapshot();
    let narrow = conn
        .exec(&format!(
            "SELECT id FROM t WHERE Overlaps(Time_Extent, '{}, {}, {}, {}')",
            render(10_005),
            render(10_012),
            render(10_004),
            render(10_013)
        ))
        .unwrap();
    assert!(!narrow.rows.is_empty());
    let d = db.metrics_snapshot().since(&before);
    assert_eq!(
        d.get("ids.plans_index"),
        1,
        "narrow probe must use the index: {d}"
    );
    assert_eq!(d.get("ids.plans_seq"), 0, "{d}");
    assert!(d.get("grtree.searches") > 0, "{d}");

    // A probe covering the whole history: selectivity ≈ 1, so the
    // index would touch every page *and* pay the tree overhead — the
    // sequential scan wins.
    let before = db.metrics_snapshot();
    let wide = conn
        .exec(
            "SELECT id FROM t WHERE Overlaps(Time_Extent, \
             '01/01/1997, UC, 01/01/1997, NOW')",
        )
        .unwrap();
    assert_eq!(wide.rows.len(), 200);
    let d = db.metrics_snapshot().since(&before);
    assert_eq!(
        d.get("ids.plans_seq"),
        1,
        "full-range probe must sweep the heap: {d}"
    );
    assert_eq!(d.get("ids.plans_index"), 0, "{d}");
}
