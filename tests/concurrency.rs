//! Multi-session tests: the LO-level locking regime of Section 5.3
//! observed through the engine — readers coexist, writers serialize on
//! the whole index, isolation levels change shared-lock lifetimes, and
//! deadlocks are detected rather than hung.

use grtree_datablade::blade::{install_grtree_blade, GrTreeAmOptions};
use grtree_datablade::ids::{Database, DatabaseOptions, IdsError};
use grtree_datablade::sbspace::{IsolationLevel, LockMode, SbError, Sbspace, SbspaceOptions};
use grtree_datablade::temporal::{Day, MockClock};
use std::sync::Arc;
use std::time::Duration;

fn quick_db() -> (Database, MockClock) {
    let clock = MockClock::new(Day(10_000));
    let db = Database::new(DatabaseOptions {
        space: SbspaceOptions {
            pool_pages: 512,
            lock_timeout: Duration::from_millis(300),
            ..Default::default()
        },
        clock: Arc::new(clock.clone()),
    });
    install_grtree_blade(&db, GrTreeAmOptions::default()).unwrap();
    let conn = db.connect();
    conn.exec("CREATE TABLE t (id integer, Time_Extent GRT_TimeExtent_t)")
        .unwrap();
    conn.exec("CREATE INDEX tix ON t(Time_Extent grt_opclass) USING grtree_am")
        .unwrap();
    for i in 0..20 {
        conn.exec(&format!(
            "INSERT INTO t VALUES ({i}, '05/18/1997, UC, 05/18/1997, NOW')"
        ))
        .unwrap();
    }
    (db, clock)
}

#[test]
fn concurrent_readers_coexist() {
    let (db, _clock) = quick_db();
    std::thread::scope(|s| {
        for _ in 0..4 {
            let db = db.clone();
            s.spawn(move || {
                let conn = db.connect();
                for _ in 0..10 {
                    let r = conn
                        .exec(
                            "SELECT id FROM t WHERE \
                             Overlaps(Time_Extent, '05/18/1997, UC, 05/18/1997, NOW')",
                        )
                        .unwrap();
                    assert_eq!(r.rows.len(), 20);
                }
            });
        }
    });
}

#[test]
fn writer_blocks_reader_in_open_transaction() {
    let (db, _clock) = quick_db();
    let writer = db.connect();
    writer.exec("BEGIN WORK").unwrap();
    // The writer's insert takes the X lock on the index LO and holds it
    // to transaction end (two-phase locking).
    writer
        .exec("INSERT INTO t VALUES (99, '05/18/1997, UC, 05/18/1997, NOW')")
        .unwrap();

    let reader = db.connect();
    let err = reader
        .exec("SELECT id FROM t WHERE Overlaps(Time_Extent, '05/18/1997, UC, 05/18/1997, NOW')")
        .unwrap_err();
    match err {
        IdsError::Storage(SbError::LockTimeout(_)) | IdsError::AccessMethod(_) => {}
        other => panic!("expected a lock timeout, got {other:?}"),
    }

    // After commit the reader proceeds.
    writer.exec("COMMIT WORK").unwrap();
    let r = reader
        .exec("SELECT id FROM t WHERE Overlaps(Time_Extent, '05/18/1997, UC, 05/18/1997, NOW')")
        .unwrap();
    assert_eq!(r.rows.len(), 21);
}

#[test]
fn repeatable_read_holds_shared_locks_to_commit() {
    let (db, _clock) = quick_db();
    let reader = db.connect();
    reader.exec("SET ISOLATION TO REPEATABLE READ").unwrap();
    reader.exec("BEGIN WORK").unwrap();
    reader
        .exec("SELECT id FROM t WHERE Overlaps(Time_Extent, '05/18/1997, UC, 05/18/1997, NOW')")
        .unwrap();
    // The shared lock on the index (and the heap) persists past the
    // statement: a writer times out.
    let writer = db.connect();
    assert!(writer
        .exec("INSERT INTO t VALUES (99, '05/18/1997, UC, 05/18/1997, NOW')")
        .is_err());
    reader.exec("COMMIT WORK").unwrap();
    writer
        .exec("INSERT INTO t VALUES (99, '05/18/1997, UC, 05/18/1997, NOW')")
        .unwrap();
}

#[test]
fn read_committed_releases_shared_locks_at_statement_end() {
    let (db, _clock) = quick_db();
    let reader = db.connect();
    reader.exec("BEGIN WORK").unwrap();
    reader
        .exec("SELECT id FROM t WHERE Overlaps(Time_Extent, '05/18/1997, UC, 05/18/1997, NOW')")
        .unwrap();
    // Under the default committed-read isolation, the S locks were
    // released when the LOs were closed at statement end — a writer in
    // another session proceeds even though the reader's transaction is
    // still open.
    let writer = db.connect();
    writer
        .exec("INSERT INTO t VALUES (99, '05/18/1997, UC, 05/18/1997, NOW')")
        .unwrap();
    reader.exec("COMMIT WORK").unwrap();
}

#[test]
fn deadlock_is_detected_not_hung() {
    // Raw sbspace sessions arranged into a classic two-object cycle.
    let sb = Sbspace::mem(SbspaceOptions {
        pool_pages: 128,
        lock_timeout: Duration::from_secs(5),
        ..Default::default()
    });
    let setup = sb.begin(IsolationLevel::ReadCommitted);
    let a = sb.create_lo(&setup).unwrap();
    let b = sb.create_lo(&setup).unwrap();
    setup.commit().unwrap();

    let t1 = sb.begin(IsolationLevel::ReadCommitted);
    let t2 = sb.begin(IsolationLevel::ReadCommitted);
    let _h1 = sb.open_lo(&t1, a, LockMode::Exclusive).unwrap();
    let _h2 = sb.open_lo(&t2, b, LockMode::Exclusive).unwrap();
    let sb2 = sb.clone();
    let waiter = std::thread::spawn(move || sb2.open_lo(&t1, b, LockMode::Exclusive).map(|_| t1));
    std::thread::sleep(Duration::from_millis(100));
    let err = sb.open_lo(&t2, a, LockMode::Exclusive).err().unwrap();
    assert!(matches!(err, SbError::Deadlock(_)), "{err}");
    // The victim aborts; the waiter is granted and finishes.
    t2.abort().unwrap();
    let t1 = waiter
        .join()
        .unwrap()
        .expect("waiter granted after victim aborts");
    t1.commit().unwrap();
}
