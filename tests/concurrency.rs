//! Multi-session tests: the concurrency regime observed through the
//! engine — read-only statements run on lock-free published snapshots
//! (Section 5.3's LO locks remain for writers only), writers serialize
//! on the whole index, isolation levels pick the snapshot lifetime, and
//! deadlocks are detected rather than hung.

use grtree_datablade::blade::{install_grtree_blade, GrTreeAmOptions};
use grtree_datablade::ids::{Database, DatabaseOptions, IdsError};
use grtree_datablade::sbspace::{IsolationLevel, LockMode, SbError, Sbspace, SbspaceOptions};
use grtree_datablade::temporal::{Day, MockClock};
use std::sync::Arc;
use std::time::Duration;

fn quick_db() -> (Database, MockClock) {
    // deadlock_retries: 0 — these tests assert the *surfaced* error
    // semantics; automatic retry is exercised separately below and in
    // tests/stress_concurrency.rs.
    quick_db_with_retries(0)
}

fn quick_db_with_retries(deadlock_retries: u32) -> (Database, MockClock) {
    let clock = MockClock::new(Day(10_000));
    let db = Database::new(DatabaseOptions {
        space: SbspaceOptions {
            pool_pages: 512,
            lock_timeout: Duration::from_millis(300),
            ..Default::default()
        },
        clock: Arc::new(clock.clone()),
        deadlock_retries,
        retry_backoff: Duration::from_millis(1),
        scan_workers: 1,
        ..Default::default()
    });
    install_grtree_blade(&db, GrTreeAmOptions::default()).unwrap();
    let conn = db.connect();
    conn.exec("CREATE TABLE t (id integer, Time_Extent GRT_TimeExtent_t)")
        .unwrap();
    conn.exec("CREATE INDEX tix ON t(Time_Extent grt_opclass) USING grtree_am")
        .unwrap();
    for i in 0..20 {
        conn.exec(&format!(
            "INSERT INTO t VALUES ({i}, '05/18/1997, UC, 05/18/1997, NOW')"
        ))
        .unwrap();
    }
    (db, clock)
}

#[test]
fn concurrent_readers_coexist() {
    let (db, _clock) = quick_db();
    std::thread::scope(|s| {
        for _ in 0..4 {
            let db = db.clone();
            s.spawn(move || {
                let conn = db.connect();
                for _ in 0..10 {
                    let r = conn
                        .exec(
                            "SELECT id FROM t WHERE \
                             Overlaps(Time_Extent, '05/18/1997, UC, 05/18/1997, NOW')",
                        )
                        .unwrap();
                    assert_eq!(r.rows.len(), 20);
                }
            });
        }
    });
}

#[test]
fn open_writer_does_not_block_snapshot_reader() {
    let (db, _clock) = quick_db();
    let writer = db.connect();
    writer.exec("BEGIN WORK").unwrap();
    // The writer's insert takes the X lock on the heap and index LOs
    // and holds it to transaction end (two-phase locking).
    writer
        .exec("INSERT INTO t VALUES (99, '05/18/1997, UC, 05/18/1997, NOW')")
        .unwrap();

    // A read-only statement takes no LO-level lock: it mounts the last
    // published snapshot, so it neither waits on the writer nor sees
    // its uncommitted insert.
    let reader = db.connect();
    let r = reader
        .exec("SELECT id FROM t WHERE Overlaps(Time_Extent, '05/18/1997, UC, 05/18/1997, NOW')")
        .unwrap();
    assert_eq!(r.rows.len(), 20, "uncommitted insert must stay invisible");

    // After commit a fresh statement snapshot sees the new row.
    writer.exec("COMMIT WORK").unwrap();
    let r = reader
        .exec("SELECT id FROM t WHERE Overlaps(Time_Extent, '05/18/1997, UC, 05/18/1997, NOW')")
        .unwrap();
    assert_eq!(r.rows.len(), 21);
    assert_eq!(db.space().snapshots_open(), 0, "statement snapshot leaked");
}

#[test]
fn open_writer_still_blocks_another_writer() {
    let (db, _clock) = quick_db();
    let w1 = db.connect();
    w1.exec("BEGIN WORK").unwrap();
    w1.exec("INSERT INTO t VALUES (99, '05/18/1997, UC, 05/18/1997, NOW')")
        .unwrap();

    // Snapshots are a read-path affair only: writers keep strict 2PL
    // on the LOs, so a second writer times out on the first.
    let w2 = db.connect();
    let err = w2
        .exec("INSERT INTO t VALUES (100, '05/18/1997, UC, 05/18/1997, NOW')")
        .unwrap_err();
    match err {
        IdsError::Storage(SbError::LockTimeout(_)) | IdsError::AccessMethod(_) => {}
        other => panic!("expected a lock timeout, got {other:?}"),
    }

    w1.exec("COMMIT WORK").unwrap();
    w2.exec("INSERT INTO t VALUES (100, '05/18/1997, UC, 05/18/1997, NOW')")
        .unwrap();
    let r = w2.exec("SELECT id FROM t").unwrap();
    assert_eq!(r.rows.len(), 22);
}

#[test]
fn repeatable_read_pins_one_snapshot_and_blocks_no_writers() {
    let (db, _clock) = quick_db();
    let reader = db.connect();
    reader.exec("SET ISOLATION TO REPEATABLE READ").unwrap();
    reader.exec("BEGIN WORK").unwrap();
    let r = reader
        .exec("SELECT id FROM t WHERE Overlaps(Time_Extent, '05/18/1997, UC, 05/18/1997, NOW')")
        .unwrap();
    assert_eq!(r.rows.len(), 20);

    // The read held no shared lock past the statement — or at all: a
    // writer in another session commits immediately instead of timing
    // out on the reader's transaction.
    let writer = db.connect();
    writer
        .exec("INSERT INTO t VALUES (99, '05/18/1997, UC, 05/18/1997, NOW')")
        .unwrap();

    // Repeatable read means exactly that: every statement in the block
    // answers from the snapshot pinned by the first read, so the
    // concurrent commit stays invisible until this transaction ends.
    let r = reader
        .exec("SELECT id FROM t WHERE Overlaps(Time_Extent, '05/18/1997, UC, 05/18/1997, NOW')")
        .unwrap();
    assert_eq!(r.rows.len(), 20, "pinned snapshot saw a later commit");

    reader.exec("COMMIT WORK").unwrap();
    let r = reader
        .exec("SELECT id FROM t WHERE Overlaps(Time_Extent, '05/18/1997, UC, 05/18/1997, NOW')")
        .unwrap();
    assert_eq!(r.rows.len(), 21, "fresh statement must see the commit");
    assert_eq!(db.space().snapshots_open(), 0, "pinned snapshot leaked");
}

#[test]
fn explicit_transaction_reads_its_own_uncommitted_writes() {
    let (db, _clock) = quick_db();
    let conn = db.connect();
    conn.exec("BEGIN WORK").unwrap();
    conn.exec("INSERT INTO t VALUES (99, '05/18/1997, UC, 05/18/1997, NOW')")
        .unwrap();
    // The first write switches the rest of the block to the locked
    // path: later reads run under the transaction's own locks and see
    // its uncommitted rows, not a stale snapshot.
    let r = conn
        .exec("SELECT id FROM t WHERE Overlaps(Time_Extent, '05/18/1997, UC, 05/18/1997, NOW')")
        .unwrap();
    assert_eq!(r.rows.len(), 21, "own write invisible inside the block");
    conn.exec("ROLLBACK WORK").unwrap();
    let r = conn.exec("SELECT id FROM t").unwrap();
    assert_eq!(r.rows.len(), 20);
}

#[test]
fn read_committed_releases_shared_locks_at_statement_end() {
    let (db, _clock) = quick_db();
    let reader = db.connect();
    reader.exec("BEGIN WORK").unwrap();
    reader
        .exec("SELECT id FROM t WHERE Overlaps(Time_Extent, '05/18/1997, UC, 05/18/1997, NOW')")
        .unwrap();
    // Under the default committed-read isolation, the S locks were
    // released when the LOs were closed at statement end — a writer in
    // another session proceeds even though the reader's transaction is
    // still open.
    let writer = db.connect();
    writer
        .exec("INSERT INTO t VALUES (99, '05/18/1997, UC, 05/18/1997, NOW')")
        .unwrap();
    reader.exec("COMMIT WORK").unwrap();
}

#[test]
fn deadlock_is_detected_not_hung() {
    // Raw sbspace sessions arranged into a classic two-object cycle.
    let sb = Sbspace::mem(SbspaceOptions {
        pool_pages: 128,
        lock_timeout: Duration::from_secs(5),
        ..Default::default()
    });
    let setup = sb.begin(IsolationLevel::ReadCommitted);
    let a = sb.create_lo(&setup).unwrap();
    let b = sb.create_lo(&setup).unwrap();
    setup.commit().unwrap();

    let t1 = sb.begin(IsolationLevel::ReadCommitted);
    let t2 = sb.begin(IsolationLevel::ReadCommitted);
    let _h1 = sb.open_lo(&t1, a, LockMode::Exclusive).unwrap();
    let _h2 = sb.open_lo(&t2, b, LockMode::Exclusive).unwrap();
    let sb2 = sb.clone();
    let waiter = std::thread::spawn(move || sb2.open_lo(&t1, b, LockMode::Exclusive).map(|_| t1));
    std::thread::sleep(Duration::from_millis(100));
    let err = sb.open_lo(&t2, a, LockMode::Exclusive).err().unwrap();
    assert!(matches!(err, SbError::Deadlock(_)), "{err}");
    // The victim aborts; the waiter is granted and finishes.
    t2.abort().unwrap();
    let t1 = waiter
        .join()
        .unwrap()
        .expect("waiter granted after victim aborts");
    t1.commit().unwrap();
}

#[test]
fn simultaneous_upgraders_deadlock_and_victim_keeps_shared_lock() {
    // Two transactions hold shared locks on the same LO and race to
    // upgrade: that is an unresolvable cycle of length two, and it must
    // be reported as a deadlock *immediately* — not ridden out to the
    // lock timeout — with the victim's pre-existing shared lock intact
    // until the victim itself decides to abort.
    let sb = Sbspace::mem(SbspaceOptions {
        pool_pages: 128,
        lock_timeout: Duration::from_secs(30),
        ..Default::default()
    });
    let setup = sb.begin(IsolationLevel::ReadCommitted);
    let lo = sb.create_lo(&setup).unwrap();
    setup.commit().unwrap();

    let barrier = std::sync::Barrier::new(2);
    let outcomes: Vec<&str> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let sb = sb.clone();
                let barrier = &barrier;
                s.spawn(move || {
                    let txn = sb.begin(IsolationLevel::RepeatableRead);
                    let _shared = sb.open_lo(&txn, lo, LockMode::Shared).unwrap();
                    barrier.wait();
                    match sb.open_lo(&txn, lo, LockMode::Exclusive) {
                        Ok(_handle) => {
                            assert_eq!(sb.lock_held(&txn, lo), Some(LockMode::Exclusive));
                            txn.commit().unwrap();
                            "granted"
                        }
                        Err(SbError::Deadlock(_)) => {
                            // The failed upgrade did not drop the
                            // shared lock the victim already held.
                            assert_eq!(
                                sb.lock_held(&txn, lo),
                                Some(LockMode::Shared),
                                "victim's shared lock silently dropped"
                            );
                            // Victim abort releases it and unblocks the
                            // surviving upgrader.
                            txn.abort().unwrap();
                            "deadlock"
                        }
                        Err(other) => panic!("expected deadlock, got {other}"),
                    }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert!(
        outcomes.contains(&"deadlock") && outcomes.contains(&"granted"),
        "expected one victim and one survivor, got {outcomes:?}"
    );
    assert!(sb.locks_quiescent(), "locks leaked after quiesce");
}

#[test]
fn statement_error_aborts_open_transaction_and_poisons_connection() {
    let (db, _clock) = quick_db();
    let conn = db.connect();
    conn.exec("BEGIN WORK").unwrap();
    conn.exec("INSERT INTO t VALUES (50, '05/18/1997, UC, 05/18/1997, NOW')")
        .unwrap();
    // A failing statement aborts the whole transaction...
    assert!(conn.exec("SELECT id FROM missing").is_err());
    // ...releasing its exclusive locks: another session's writer
    // proceeds instead of timing out on the dead transaction's locks.
    let other = db.connect();
    other
        .exec("INSERT INTO t VALUES (51, '05/18/1997, UC, 05/18/1997, NOW')")
        .unwrap();
    // Until the client acknowledges, every statement is refused — it
    // would otherwise silently run outside the transaction the client
    // believes is open.
    let err = conn.exec("SELECT id FROM t").unwrap_err();
    assert!(
        matches!(&err, IdsError::Semantic(m) if m.contains("aborted")),
        "{err:?}"
    );
    assert!(conn.exec("BEGIN WORK").is_err());
    conn.exec("ROLLBACK WORK").unwrap();
    // Usable again; the pre-error insert was rolled back with the rest.
    let r = conn.exec("SELECT id FROM t").unwrap();
    assert_eq!(r.rows.len(), 21, "20 seeded rows + the other session's");
    assert!(db.space().locks_quiescent());
}

#[test]
fn commit_of_poisoned_transaction_reports_the_rollback() {
    let (db, _clock) = quick_db();
    let conn = db.connect();
    conn.exec("BEGIN WORK").unwrap();
    conn.exec("INSERT INTO t VALUES (50, '05/18/1997, UC, 05/18/1997, NOW')")
        .unwrap();
    assert!(conn.exec("SELECT id FROM missing").is_err());
    // COMMIT closes the aborted block but must not pretend it
    // committed.
    let r = conn.exec("COMMIT WORK").unwrap();
    assert!(r.message.contains("rolled back"), "{}", r.message);
    let r = conn.exec("SELECT id FROM t").unwrap();
    assert_eq!(r.rows.len(), 20, "aborted transaction left no rows");
}

#[test]
fn deadlock_victim_statement_succeeds_on_automatic_retry() {
    // Two repeatable-read sessions race UPDATEs over the same table:
    // each takes S on the heap during its scan and upgrades to X for
    // the rewrite, so a simultaneous pair deadlocks. The victim's
    // statement must succeed transparently via the engine's automatic
    // retry — neither client ever sees the deadlock.
    let (db, _clock) = quick_db_with_retries(5);
    let before = db.metrics_snapshot();
    let mut observed_deadlock = false;
    for round in 0..500 {
        let barrier = std::sync::Barrier::new(2);
        std::thread::scope(|s| {
            for i in 0..2 {
                let db = db.clone();
                let barrier = &barrier;
                s.spawn(move || {
                    let conn = db.connect();
                    conn.exec("SET ISOLATION TO REPEATABLE READ").unwrap();
                    barrier.wait();
                    conn.exec(&format!("UPDATE t SET id = id WHERE id = {i}"))
                        .unwrap_or_else(|e| panic!("round {round} writer {i}: {e}"));
                });
            }
        });
        if db.metrics_snapshot().since(&before).get("lock.deadlocks") > 0 {
            observed_deadlock = true;
            break;
        }
    }
    assert!(observed_deadlock, "no deadlock provoked in 500 rounds");
    let d = db.metrics_snapshot().since(&before);
    assert!(d.get("stmt.retries") >= 1, "victim was not retried: {d}");
    assert!(db.space().locks_quiescent(), "locks leaked after quiesce");
}
