//! Bulk loading, vacuuming, and property-based GR-tree tests.

use grt_grtree::bulk::{bulk_load_pairs, collect_leaves, not_older_than, vacuum_rebuild};
use grt_grtree::{GrTree, GrTreeOptions};
use grt_sbspace::{IsolationLevel, LoHandle, LockMode, Sbspace, SbspaceOptions};
use grt_temporal::{Day, Predicate, TimeExtent, TtEnd, VtEnd};
use proptest::prelude::*;

fn fresh_lo() -> LoHandle {
    let sb = Sbspace::mem(SbspaceOptions {
        pool_pages: 8192,
        ..Default::default()
    });
    let txn = sb.begin(IsolationLevel::ReadCommitted);
    let lo = sb.create_lo(&txn).unwrap();
    let h = sb.open_lo(&txn, lo, LockMode::Exclusive).unwrap();
    std::mem::forget(txn);
    std::mem::forget(sb);
    h
}

fn extent(ttb: i32, tte: Option<i32>, vtb: i32, vte: Option<i32>) -> TimeExtent {
    TimeExtent::from_parts(
        Day(ttb),
        tte.map_or(TtEnd::Uc, |x| TtEnd::Ground(Day(x))),
        Day(vtb),
        vte.map_or(VtEnd::Now, |x| VtEnd::Ground(Day(x))),
    )
    .unwrap()
}

fn history(n: i32) -> Vec<(u64, TimeExtent)> {
    (0..n)
        .map(|i| {
            let base = (i * 17) % 700;
            let e = match i % 6 {
                0 => extent(base, None, base - (i % 9), Some(base + 40)),
                1 => extent(base, Some(base + 25), base - 7, Some(base + 30)),
                2 => extent(base, None, base, None),
                3 => extent(base, Some(base + 15), base, None),
                4 => extent(base, None, base - (1 + i % 5), None),
                _ => extent(base, Some(base + 12), base - (1 + i % 5), None),
            };
            (i as u64, e)
        })
        .collect()
}

fn opts(max_entries: usize) -> GrTreeOptions {
    GrTreeOptions {
        max_entries,
        ..Default::default()
    }
}

#[test]
fn bulk_load_answers_match_incremental_build() {
    let ct = Day(800);
    let data = history(500);
    let bulk = bulk_load_pairs(fresh_lo(), &data, ct, opts(16)).unwrap();
    assert_eq!(bulk.len(), 500);
    bulk.check(ct).unwrap();

    let mut incr = GrTree::create(fresh_lo(), opts(16)).unwrap();
    for (id, e) in &data {
        incr.insert(*e, *id, ct).unwrap();
    }
    let queries = [
        extent(100, Some(200), 50, Some(260)),
        extent(0, None, 0, None),
        extent(650, Some(660), 655, Some(900)),
    ];
    for q in &queries {
        for pred in Predicate::ALL {
            let mut a: Vec<u64> = bulk
                .search(pred, q, ct)
                .unwrap()
                .into_iter()
                .map(|(_, id)| id)
                .collect();
            let mut b: Vec<u64> = incr
                .search(pred, q, ct)
                .unwrap()
                .into_iter()
                .map(|(_, id)| id)
                .collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "{pred}");
        }
    }
}

#[test]
fn bulk_load_is_denser_than_incremental() {
    let ct = Day(800);
    let data = history(600);
    let bulk = bulk_load_pairs(fresh_lo(), &data, ct, opts(16)).unwrap();
    let mut incr = GrTree::create(fresh_lo(), opts(16)).unwrap();
    for (id, e) in &data {
        incr.insert(*e, *id, ct).unwrap();
    }
    let bulk_q = bulk.quality(ct).unwrap();
    let incr_q = incr.quality(ct).unwrap();
    let fill = |q: &grt_grtree::GrQuality| q.levels[0].entries as f64 / q.levels[0].nodes as f64;
    assert!(
        fill(&bulk_q) >= fill(&incr_q),
        "bulk leaf fill {:.2} vs incremental {:.2}",
        fill(&bulk_q),
        fill(&incr_q)
    );
}

#[test]
fn bulk_load_empty_and_single() {
    let ct = Day(10);
    let empty = bulk_load_pairs(fresh_lo(), &[], ct, opts(8)).unwrap();
    assert!(empty.is_empty());
    empty.check(ct).unwrap();

    let one = bulk_load_pairs(fresh_lo(), &[(9, extent(5, None, 5, None))], ct, opts(8)).unwrap();
    assert_eq!(one.len(), 1);
    one.check(ct).unwrap();
    let hits = one
        .search(Predicate::Overlaps, &extent(0, None, 0, None), Day(50))
        .unwrap();
    assert_eq!(hits.len(), 1);
}

#[test]
fn vacuum_drops_old_closed_entries() {
    let ct = Day(800);
    let data = history(300);
    let tree = bulk_load_pairs(fresh_lo(), &data, ct, opts(16)).unwrap();
    let cutoff = Day(400);
    let (vacuumed, removed) = vacuum_rebuild(tree, fresh_lo(), ct, not_older_than(cutoff)).unwrap();
    let expected_kept = data
        .iter()
        .filter(|(_, e)| match e.tt_end {
            TtEnd::Uc => true,
            TtEnd::Ground(end) => end >= cutoff,
        })
        .count() as u64;
    assert_eq!(vacuumed.len(), expected_kept);
    assert_eq!(removed, 300 - expected_kept);
    vacuumed.check(ct).unwrap();
    // Every kept entry is still findable.
    let kept = collect_leaves(&vacuumed, |_| true).unwrap();
    assert_eq!(kept.len() as u64, expected_kept);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random histories of inserts and deletes: GR-tree answers always
    /// equal the linear scan, and invariants hold throughout.
    #[test]
    fn random_history_matches_linear_scan(
        seedlings in proptest::collection::vec((0i32..300, 0u8..6, proptest::bool::ANY), 1..120),
        ct_off in 0i32..200,
    ) {
        let ct = Day(400);
        let mut tree = GrTree::create(fresh_lo(), opts(6)).unwrap();
        let mut live: Vec<(u64, TimeExtent)> = Vec::new();
        let mut next_id = 0u64;
        for (base, kind, delete) in seedlings {
            if delete && !live.is_empty() {
                let (id, e) = live.swap_remove((base as usize) % live.len());
                prop_assert!(tree.delete(&e, id, ct).unwrap().found);
                continue;
            }
            let e = match kind {
                0 => extent(base, None, base - 2, Some(base + 40)),
                1 => extent(base, Some(base + 25), base - 7, Some(base + 30)),
                2 => extent(base, None, base, None),
                3 => extent(base, Some(base + 15), base, None),
                4 => extent(base, None, (base - 3).max(0).min(base), None),
                _ => extent(base, Some(base + 12), (base - 4).max(0).min(base), None),
            };
            tree.insert(e, next_id, ct).unwrap();
            live.push((next_id, e));
            next_id += 1;
        }
        tree.check(ct).unwrap();
        let probe = ct.plus(ct_off);
        let queries = [
            extent(50, Some(150), 20, Some(160)),
            extent(0, None, 0, None),
        ];
        for q in &queries {
            for pred in [Predicate::Overlaps, Predicate::ContainedIn] {
                let mut expected: Vec<u64> = live
                    .iter()
                    .filter(|(_, e)| pred.eval(e, q, probe))
                    .map(|(id, _)| *id)
                    .collect();
                let mut got: Vec<u64> = tree
                    .search(pred, q, probe)
                    .unwrap()
                    .into_iter()
                    .map(|(_, id)| id)
                    .collect();
                expected.sort_unstable();
                got.sort_unstable();
                prop_assert_eq!(got, expected);
            }
        }
    }

    /// Bulk-loaded trees answer identically to linear scans.
    #[test]
    fn bulk_load_correct_on_random_data(
        n in 1usize..300,
        seed in 0i32..1000,
        ct_off in 0i32..500,
    ) {
        let ct = Day(900);
        let data: Vec<(u64, TimeExtent)> = (0..n as i32)
            .map(|i| {
                let base = ((i * 31 + seed) % 800).max(0);
                let e = match (i + seed) % 4 {
                    0 => extent(base, None, base, None),
                    1 => extent(base, Some(base + 10), base - 1, Some(base + 5)),
                    2 => extent(base, None, base - 2, Some(base + 100)),
                    _ => extent(base, Some(base + 30), base, None),
                };
                (i as u64, e)
            })
            .collect();
        let tree = bulk_load_pairs(fresh_lo(), &data, ct, opts(8)).unwrap();
        tree.check(ct).unwrap();
        let probe = ct.plus(ct_off);
        let q = extent(200, Some(400), 100, Some(500));
        let mut expected: Vec<u64> = data
            .iter()
            .filter(|(_, e)| Predicate::Overlaps.eval(e, &q, probe))
            .map(|(id, _)| *id)
            .collect();
        let mut got: Vec<u64> = tree
            .search(Predicate::Overlaps, &q, probe)
            .unwrap()
            .into_iter()
            .map(|(_, id)| id)
            .collect();
        expected.sort_unstable();
        got.sort_unstable();
        prop_assert_eq!(got, expected);
    }
}
