//! Snapshot reads over a GR-tree: a frozen space snapshot must keep
//! answering with the exact rows that were committed when it was taken,
//! even while a writer condenses the tree underneath it, and the
//! parallel scan must agree with the serial cursor on that frozen view.

use std::collections::BTreeSet;

use grt_grtree::{parallel_scan, GrTree, GrTreeOptions, GrTreeReader};
use grt_metrics::TreeMetrics;
use grt_sbspace::{IsolationLevel, LockMode, Sbspace, SbspaceOptions};
use grt_temporal::{Day, Predicate, TimeExtent, TtEnd, VtEnd};

fn extent(ttb: i32, tte: Option<i32>, vtb: i32, vte: Option<i32>) -> TimeExtent {
    TimeExtent::from_parts(
        Day(ttb),
        tte.map_or(TtEnd::Uc, |x| TtEnd::Ground(Day(x))),
        Day(vtb),
        vte.map_or(VtEnd::Now, |x| VtEnd::Ground(Day(x))),
    )
    .unwrap()
}

fn history(n: i32) -> Vec<(u64, TimeExtent)> {
    (0..n)
        .map(|i| {
            let base = (i * 17) % 700;
            let e = match i % 6 {
                0 => extent(base, None, base - (i % 9), Some(base + 40)),
                1 => extent(base, Some(base + 25), base - 7, Some(base + 30)),
                2 => extent(base, None, base, None),
                3 => extent(base, Some(base + 15), base, None),
                4 => extent(base, None, base - (1 + i % 5), None),
                _ => extent(base, Some(base + 12), base - (1 + i % 5), None),
            };
            (i as u64, e)
        })
        .collect()
}

/// A query extent whose region at `ct` covers every inserted extent.
fn everything() -> TimeExtent {
    extent(0, None, -60, None)
}

/// Builds a tree over `data` in a fresh committed large object and
/// returns the space plus the object's id.
fn committed_tree(sb: &Sbspace, data: &[(u64, TimeExtent)], ct: Day) -> grt_sbspace::LoId {
    let txn = sb.begin(IsolationLevel::ReadCommitted);
    let lo = sb.create_lo(&txn).unwrap();
    let handle = sb.open_lo(&txn, lo, LockMode::Exclusive).unwrap();
    let mut tree = GrTree::create(
        handle,
        GrTreeOptions {
            max_entries: 8,
            ..Default::default()
        },
    )
    .unwrap();
    for (rowid, e) in data {
        tree.insert(*e, *rowid, ct).unwrap();
    }
    drop(tree.into_lo().unwrap());
    txn.commit().unwrap();
    lo
}

fn drain_reader(reader: &GrTreeReader, ct: Day) -> BTreeSet<u64> {
    let mut cursor = reader.cursor(Predicate::Overlaps, everything(), ct);
    let mut got = BTreeSet::new();
    while let Some((_, rowid)) = reader.cursor_next(&mut cursor).unwrap() {
        got.insert(rowid);
    }
    got
}

#[test]
fn snapshot_sees_exact_pre_condense_rows() {
    let sb = Sbspace::mem(SbspaceOptions {
        pool_pages: 8192,
        ..Default::default()
    });
    let ct = Day(800);
    let data = history(300);
    let lo = committed_tree(&sb, &data, ct);

    let snap = sb.snapshot_for(&[lo]).unwrap();
    let before: BTreeSet<u64> = data.iter().map(|(rowid, _)| *rowid).collect();

    // A writer now deletes rows until the tree condenses, and commits.
    // Copy-on-write shadow paging means none of the snapshot's pages
    // move or change.
    let txn = sb.begin(IsolationLevel::ReadCommitted);
    let handle = sb.open_lo(&txn, lo, LockMode::Exclusive).unwrap();
    let mut tree = GrTree::open(handle).unwrap();
    let mut condensed = false;
    let mut deleted = BTreeSet::new();
    for (rowid, e) in data.iter().take(180) {
        let out = tree.delete(e, *rowid, ct).unwrap();
        assert!(out.found, "row {rowid} should be deletable");
        condensed |= out.condensed;
        deleted.insert(*rowid);
    }
    assert!(condensed, "deletions never condensed the tree");
    drop(tree.into_lo().unwrap());
    txn.commit().unwrap();

    // The snapshot still answers with every pre-condense row...
    let reader = GrTreeReader::open(snap.reader(lo).unwrap(), TreeMetrics::default()).unwrap();
    assert_eq!(reader.len(), data.len() as u64);
    assert_eq!(drain_reader(&reader, ct), before);

    // ...while the live committed state answers without the deleted ones.
    let after: BTreeSet<u64> = before.difference(&deleted).copied().collect();
    let live = sb.snapshot_for(&[lo]).unwrap();
    let live_reader = GrTreeReader::open(live.reader(lo).unwrap(), TreeMetrics::default()).unwrap();
    assert_eq!(drain_reader(&live_reader, ct), after);

    drop((reader, live_reader, snap, live));
    assert_eq!(sb.snapshots_open(), 0);
}

#[test]
fn snapshot_parallel_scan_matches_serial_across_degrees() {
    let sb = Sbspace::mem(SbspaceOptions {
        pool_pages: 8192,
        ..Default::default()
    });
    let ct = Day(800);
    let data = history(400);
    let lo = committed_tree(&sb, &data, ct);

    let snap = sb.snapshot_for(&[lo]).unwrap();
    let reader = GrTreeReader::open(snap.reader(lo).unwrap(), TreeMetrics::default()).unwrap();

    for pred in [Predicate::Overlaps, Predicate::Contains] {
        let query = everything();
        let mut cursor = reader.cursor(pred, query, ct);
        let mut want: Vec<u64> = Vec::new();
        while let Some((_, rowid)) = reader.cursor_next(&mut cursor).unwrap() {
            want.push(rowid);
        }
        want.sort_unstable();
        for workers in [1, 2, 4, 8] {
            let mut got: Vec<u64> = parallel_scan(&reader, pred, query, ct, workers)
                .unwrap()
                .rows
                .iter()
                .map(|(_, rowid)| *rowid)
                .collect();
            got.sort_unstable();
            assert_eq!(got, want, "{pred:?} at degree {workers} diverged");
        }
    }
}
