//! GR-tree algorithms: insertion with the time parameter, splits,
//! deletion with condensation, and NOW/UC-aware search.

use crate::cursor::GrCursor;
use crate::entry::{GrNode, InternalEntry, LeafEntry, MAX_FANOUT};
use crate::meta::{decode_free, encode_free, GrMeta, NO_PAGE};
use crate::stats::GrQuality;
use crate::{GrError, Result};
use grt_metrics::TreeMetrics;
use grt_sbspace::LoHandle;
use grt_temporal::{bound_entries, Day, Predicate, Region, RegionSpec, TimeExtent};
use std::collections::HashSet;

/// Construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct GrTreeOptions {
    /// Maximum entries per node (M); capped by the page size.
    pub max_entries: usize,
    /// Minimum fill of non-root nodes as a percentage of M.
    pub min_fill_pct: u32,
    /// Share of entries evicted by forced reinsertion (0 disables).
    pub reinsert_pct: u32,
    /// Days into the future at which insertion penalties are evaluated
    /// (the GR-tree's time parameter).
    pub time_param: u32,
    /// Ablation: replace stair-shaped bounds with growing rectangles
    /// everywhere (what a NOW-aware index *without* the stair encoding
    /// would do). Off in the real GR-tree.
    pub rectangle_only: bool,
}

impl Default for GrTreeOptions {
    fn default() -> Self {
        GrTreeOptions {
            max_entries: MAX_FANOUT,
            min_fill_pct: 40,
            reinsert_pct: 30,
            time_param: 30,
            rectangle_only: false,
        }
    }
}

/// Outcome of a deletion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GrDeleteOutcome {
    /// Whether the entry existed.
    pub found: bool,
    /// Whether the tree was condensed — open cursors must restart
    /// (the paper's Section 5.5 rule).
    pub condensed: bool,
}

/// Either kind of entry, with its reinsertion level.
#[derive(Debug, Clone, Copy)]
pub(crate) enum AnyEntry {
    Leaf(LeafEntry),
    Node(InternalEntry),
}

impl AnyEntry {
    pub(crate) fn spec(&self) -> RegionSpec {
        match self {
            AnyEntry::Leaf(e) => e.spec(),
            AnyEntry::Node(e) => e.spec,
        }
    }
}

/// A disk-resident GR-tree owning its large-object handle.
pub struct GrTree {
    lo: LoHandle,
    meta: GrMeta,
    /// Operation counters; detached by default, swapped for
    /// registry-backed cells via [`GrTree::set_metrics`].
    pub(crate) metrics: TreeMetrics,
}

enum ChildFate {
    Alive,
    Dissolved(Vec<AnyEntry>, u16),
}

impl GrTree {
    /// Initialises a fresh tree inside an (empty) large object.
    pub fn create(mut lo: LoHandle, opts: GrTreeOptions) -> Result<GrTree> {
        if lo.page_count() != 0 {
            return Err(GrError::Usage("large object not empty".into()));
        }
        let max_entries = opts.max_entries.clamp(4, MAX_FANOUT) as u32;
        let min_fill = (max_entries * opts.min_fill_pct.clamp(10, 50) / 100).max(2);
        let meta = GrMeta {
            root: 1,
            height: 1,
            count: 0,
            max_entries,
            min_fill,
            free_head: NO_PAGE,
            reinsert_pct: opts.reinsert_pct.min(45),
            time_param: opts.time_param,
            rectangle_only: opts.rectangle_only,
        };
        lo.append_page(&meta.encode())?;
        lo.append_page(&GrNode::Leaf(Vec::new()).encode())?;
        Ok(GrTree {
            lo,
            meta,
            metrics: TreeMetrics::default(),
        })
    }

    /// Opens an existing tree.
    pub fn open(lo: LoHandle) -> Result<GrTree> {
        let meta = GrMeta::decode(&*lo.read_page_pinned(0)?)?;
        Ok(GrTree {
            lo,
            meta,
            metrics: TreeMetrics::default(),
        })
    }

    /// Replaces the operation counters, typically with
    /// [`TreeMetrics::registered`] cells so this tree's splits,
    /// condenses and search costs show up in an engine-wide registry.
    pub fn set_metrics(&mut self, metrics: TreeMetrics) {
        self.metrics = metrics;
    }

    /// The operation counters this tree bumps.
    pub fn metrics(&self) -> &TreeMetrics {
        &self.metrics
    }

    /// Releases the large-object handle, flushing the header when the
    /// handle is writable (read-only opens never changed it).
    pub fn into_lo(mut self) -> Result<LoHandle> {
        if self.lo.is_writable() {
            self.write_meta()?;
        }
        Ok(self.lo)
    }

    /// Number of indexed entries.
    pub fn len(&self) -> u64 {
        self.meta.count
    }

    /// True when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.meta.count == 0
    }

    /// Tree height (1 = the root is a leaf).
    pub fn height(&self) -> u32 {
        self.meta.height
    }

    /// Maximum node fan-out of this tree instance.
    pub fn max_entries(&self) -> usize {
        self.meta.max_entries as usize
    }

    /// Minimum fill of non-root nodes of this tree instance.
    pub fn min_fill(&self) -> usize {
        self.meta.min_fill as usize
    }

    /// Total pages owned, header included.
    pub fn pages(&self) -> u32 {
        self.lo.page_count()
    }

    /// The root page (for structure dumps).
    pub fn root_page(&self) -> u32 {
        self.meta.root
    }

    fn write_meta(&mut self) -> Result<()> {
        self.lo.write_page(0, &self.meta.encode())?;
        Ok(())
    }

    /// Reads the node at `page` (public for dumps and stats).
    pub fn read_node(&self, page: u32) -> Result<GrNode> {
        GrNode::decode(&*self.lo.read_page_pinned(page)?)
    }

    fn write_node(&mut self, page: u32, node: &GrNode) -> Result<()> {
        self.lo.write_page(page, &node.encode())?;
        Ok(())
    }

    fn alloc_node(&mut self, node: &GrNode) -> Result<u32> {
        if self.meta.free_head != NO_PAGE {
            let page = self.meta.free_head;
            self.meta.free_head = decode_free(&*self.lo.read_page_pinned(page)?)?;
            self.write_node(page, node)?;
            return Ok(page);
        }
        Ok(self.lo.append_page(&node.encode())?)
    }

    fn free_node(&mut self, page: u32) -> Result<()> {
        let img = encode_free(self.meta.free_head);
        self.lo.write_page(page, &img)?;
        self.meta.free_head = page;
        Ok(())
    }

    /// The reference time for insertion penalties: `ct + time_param`.
    fn tref(&self, ct: Day) -> Day {
        ct.plus(self.meta.time_param as i32)
    }

    /// A node's bounding region, degraded to a growing rectangle when
    /// the `rectangle_only` ablation is on (stairs keep their `NOW`
    /// timestamps but the `Rectangle` flag inflates them to squares).
    fn node_bound(&self, node: &GrNode, ct: Day) -> RegionSpec {
        let mut b = node.bound(ct);
        if self.meta.rectangle_only && matches!(b.vt_end, grt_temporal::VtEnd::Now) {
            b.rect = true;
        }
        b
    }

    /// Reconstructs the construction options (for rebuilds).
    pub fn options(&self) -> GrTreeOptions {
        GrTreeOptions {
            max_entries: self.meta.max_entries as usize,
            min_fill_pct: (self.meta.min_fill * 100 / self.meta.max_entries).max(10),
            reinsert_pct: self.meta.reinsert_pct,
            time_param: self.meta.time_param,
            rectangle_only: self.meta.rectangle_only,
        }
    }

    /// Snapshots this tree into a `Send + Sync` read-only handle for
    /// parallel scans; see [`crate::parallel`]. The snapshot is valid
    /// while this tree (and the lock its large-object handle holds)
    /// stays open.
    pub fn reader(&self) -> crate::parallel::GrTreeReader {
        crate::parallel::GrTreeReader::new(self.lo.reader(), self.meta, self.metrics.clone())
    }

    /// The root node's bounding region resolved at `ct`, or `None` for
    /// an empty tree. The planner's selectivity estimate compares a
    /// query region against this bound.
    pub fn root_bound(&self, ct: Day) -> Result<Option<Region>> {
        if self.meta.count == 0 {
            return Ok(None);
        }
        let node = self.read_node(self.meta.root)?;
        Ok(Some(self.node_bound(&node, ct).resolve(ct)))
    }

    /// Appends a packed node during bulk load (no balancing).
    pub(crate) fn bulk_append(&mut self, node: &GrNode) -> Result<u32> {
        Ok(self.lo.append_page(&node.encode())?)
    }

    /// Installs the bulk-loaded root and counters.
    pub(crate) fn bulk_finish(&mut self, root: u32, height: u32, count: u64) -> Result<()> {
        self.meta.root = root;
        self.meta.height = height.max(1);
        self.meta.count = count;
        self.write_meta()
    }

    /// Inserts a tuple's time extent at current time `ct`.
    pub fn insert(&mut self, extent: TimeExtent, rowid: u64, ct: Day) -> Result<()> {
        extent.spec().validate(ct)?;
        let mut reinserted = HashSet::new();
        let mut pending: Vec<(AnyEntry, u16)> =
            vec![(AnyEntry::Leaf(LeafEntry { extent, rowid }), 0)];
        while let Some((entry, level)) = pending.pop() {
            self.insert_toplevel(entry, level, ct, &mut reinserted, &mut pending)?;
        }
        self.meta.count += 1;
        self.write_meta()
    }

    fn insert_toplevel(
        &mut self,
        entry: AnyEntry,
        level: u16,
        ct: Day,
        reinserted: &mut HashSet<u16>,
        pending: &mut Vec<(AnyEntry, u16)>,
    ) -> Result<()> {
        let root = self.meta.root;
        if let Some(sibling) = self.insert_rec(root, entry, level, ct, reinserted, pending)? {
            let old_root_node = self.read_node(root)?;
            let left = InternalEntry {
                spec: self.node_bound(&old_root_node, ct),
                child: root,
            };
            let new_root = GrNode::Internal {
                level: old_root_node.level() + 1,
                entries: vec![left, sibling],
            };
            let new_root_page = self.alloc_node(&new_root)?;
            self.meta.root = new_root_page;
            self.meta.height += 1;
        }
        Ok(())
    }

    fn insert_rec(
        &mut self,
        page: u32,
        entry: AnyEntry,
        target_level: u16,
        ct: Day,
        reinserted: &mut HashSet<u16>,
        pending: &mut Vec<(AnyEntry, u16)>,
    ) -> Result<Option<InternalEntry>> {
        let mut node = self.read_node(page)?;
        if node.level() == target_level {
            match (&mut node, entry) {
                (GrNode::Leaf(v), AnyEntry::Leaf(e)) => v.push(e),
                (GrNode::Internal { entries, .. }, AnyEntry::Node(e)) => entries.push(e),
                _ => return Err(GrError::Corrupt("entry kind vs level mismatch".into())),
            }
        } else {
            let GrNode::Internal { entries, .. } = &mut node else {
                return Err(GrError::Corrupt("leaf above target level".into()));
            };
            let idx = Self::choose_subtree_impl(entries, &entry.spec(), ct, self.tref(ct));
            let child = entries[idx].child;
            let split = self.insert_rec(child, entry, target_level, ct, reinserted, pending)?;
            // Refresh the chosen child's bounding region.
            let child_bound = self.node_bound(&self.read_node(child)?, ct);
            let GrNode::Internal { entries, .. } = &mut node else {
                unreachable!()
            };
            entries[idx].spec = child_bound;
            if let Some(sibling) = split {
                entries.push(sibling);
            }
        }
        if node.len() > self.meta.max_entries as usize {
            let is_root = page == self.meta.root;
            if !is_root && self.meta.reinsert_pct > 0 && reinserted.insert(node.level()) {
                let evicted = self.forced_reinsert(&mut node, ct);
                self.write_node(page, &node)?;
                let level = node.level();
                for e in evicted {
                    pending.push((e, level));
                }
                return Ok(None);
            }
            let (a, b) = self.split(node, ct);
            self.write_node(page, &a)?;
            let b_bound = self.node_bound(&b, ct);
            let b_page = self.alloc_node(&b)?;
            return Ok(Some(InternalEntry {
                spec: b_bound,
                child: b_page,
            }));
        }
        self.write_node(page, &node)?;
        Ok(None)
    }

    /// Forced reinsertion: evict the entries whose resolved regions lie
    /// farthest from the node's resolved centre.
    fn forced_reinsert(&self, node: &mut GrNode, ct: Day) -> Vec<AnyEntry> {
        let tref = self.tref(ct);
        let k = ((node.len() * self.meta.reinsert_pct as usize) / 100).max(1);
        self.metrics.reinserts.add(k as u64);
        let node_mbr = node.bound(ct).resolve(tref).mbr();
        let center_key = |spec: &RegionSpec| {
            let m = spec.resolve(tref).mbr();
            let cx = (m.tt1.0 as i128 + m.tt2.0 as i128)
                - (node_mbr.tt1.0 as i128 + node_mbr.tt2.0 as i128);
            let cy = (m.vt1.0 as i128 + m.vt2.0 as i128)
                - (node_mbr.vt1.0 as i128 + node_mbr.vt2.0 as i128);
            std::cmp::Reverse(cx * cx + cy * cy)
        };
        match node {
            GrNode::Leaf(v) => {
                v.sort_by_key(|e| center_key(&e.spec()));
                v.drain(..k).map(AnyEntry::Leaf).collect()
            }
            GrNode::Internal { entries, .. } => {
                entries.sort_by_key(|e| center_key(&e.spec));
                entries.drain(..k).map(AnyEntry::Node).collect()
            }
        }
    }

    /// GR-tree ChooseSubtree: overlap enlargement above the leaves,
    /// area enlargement higher up — both evaluated at `ct + time_param`
    /// so growing entries are charged for their future extent.
    fn choose_subtree_impl(
        entries: &[InternalEntry],
        new: &RegionSpec,
        ct: Day,
        tref: Day,
    ) -> usize {
        let level_one = false; // decided by caller structure; see below
        let _ = level_one;
        let enlarged: Vec<(RegionSpec, i128, i128)> = entries
            .iter()
            .map(|e| {
                let union = bound_entries(&[e.spec, *new], ct);
                let before = e.spec.resolve(tref).area();
                let after = union.resolve(tref).area();
                (union, after - before, before)
            })
            .collect();
        // Use the overlap criterion whenever the fan-out is modest (the
        // R*-tree applies it at the leaf-parent level; the GR-tree paper
        // follows suit). The caller passes leaf parents and upper nodes
        // through the same code path: overlap cost dominates either way
        // for growing regions, and the area tie-breaks match R*.
        let mut best = 0usize;
        let mut best_key = (i128::MAX, i128::MAX, i128::MAX);
        for (i, e) in entries.iter().enumerate() {
            let (union, area_delta, area) = &enlarged[i];
            let mut overlap_delta: i128 = 0;
            for (j, other) in entries.iter().enumerate() {
                if i != j {
                    let o = other.spec.resolve(tref);
                    overlap_delta += union.resolve(tref).intersection_area(&o)
                        - e.spec.resolve(tref).intersection_area(&o);
                }
            }
            let key = (overlap_delta, *area_delta, *area);
            if key < best_key {
                best_key = key;
                best = i;
            }
        }
        best
    }

    /// GR-tree split: R\*-style axis and distribution selection over
    /// regions resolved at `ct + time_param`.
    fn split(&self, node: GrNode, ct: Day) -> (GrNode, GrNode) {
        self.metrics.splits.inc();
        let tref = self.tref(ct);
        let m = self.meta.min_fill as usize;
        let level = node.level();
        let entries: Vec<AnyEntry> = match node {
            GrNode::Leaf(v) => v.into_iter().map(AnyEntry::Leaf).collect(),
            GrNode::Internal { entries, .. } => entries.into_iter().map(AnyEntry::Node).collect(),
        };
        let total = entries.len();
        // Sort keys over resolved MBRs: lower/upper per axis.
        let mbr = |e: &AnyEntry| e.spec().resolve(tref).mbr();
        #[allow(clippy::type_complexity)]
        let keys: [fn(&grt_temporal::Rect) -> (i32, i32); 4] = [
            |r| (r.tt1.0, r.tt2.0),
            |r| (r.tt2.0, r.tt1.0),
            |r| (r.vt1.0, r.vt2.0),
            |r| (r.vt2.0, r.vt1.0),
        ];
        let mut sorted: Vec<Vec<AnyEntry>> = Vec::with_capacity(4);
        let mut axis_margin = [0i128; 2];
        for (k, key) in keys.iter().enumerate() {
            let mut es = entries.clone();
            es.sort_by_key(|e| key(&mbr(e)));
            for split_at in m..=(total - m) {
                for group in [&es[..split_at], &es[split_at..]] {
                    let specs: Vec<RegionSpec> = group.iter().map(AnyEntry::spec).collect();
                    let b = bound_entries(&specs, ct).resolve(tref).mbr();
                    axis_margin[k / 2] += (b.tt2.0 as i128 - b.tt1.0 as i128 + 1)
                        + (b.vt2.0 as i128 - b.vt1.0 as i128 + 1);
                }
            }
            sorted.push(es);
        }
        let axis = if axis_margin[0] <= axis_margin[1] {
            0
        } else {
            1
        };
        let mut best: Option<(i128, i128, usize, usize)> = None;
        for key in [axis * 2, axis * 2 + 1] {
            let es = &sorted[key];
            for split_at in m..=(total - m) {
                let s1: Vec<RegionSpec> = es[..split_at].iter().map(AnyEntry::spec).collect();
                let s2: Vec<RegionSpec> = es[split_at..].iter().map(AnyEntry::spec).collect();
                let b1 = bound_entries(&s1, ct).resolve(tref);
                let b2 = bound_entries(&s2, ct).resolve(tref);
                let cand = (
                    b1.intersection_area(&b2),
                    b1.area() + b2.area(),
                    key,
                    split_at,
                );
                if best.is_none_or(|b| (cand.0, cand.1) < (b.0, b.1)) {
                    best = Some(cand);
                }
            }
        }
        let (_, _, key, split_at) = best.expect("at least one distribution");
        let es = &sorted[key];
        let rebuild = |slice: &[AnyEntry]| -> GrNode {
            if level == 0 {
                GrNode::Leaf(
                    slice
                        .iter()
                        .map(|e| match e {
                            AnyEntry::Leaf(l) => *l,
                            AnyEntry::Node(_) => unreachable!("leaf level"),
                        })
                        .collect(),
                )
            } else {
                GrNode::Internal {
                    level,
                    entries: slice
                        .iter()
                        .map(|e| match e {
                            AnyEntry::Node(n) => *n,
                            AnyEntry::Leaf(_) => unreachable!("internal level"),
                        })
                        .collect(),
                }
            }
        };
        (rebuild(&es[..split_at]), rebuild(&es[split_at..]))
    }

    /// Deletes the entry `(extent, rowid)` at current time `ct`.
    pub fn delete(&mut self, extent: &TimeExtent, rowid: u64, ct: Day) -> Result<GrDeleteOutcome> {
        let root = self.meta.root;
        let mut orphans: Vec<(Vec<AnyEntry>, u16)> = Vec::new();
        let removed = self.delete_rec(root, extent, rowid, ct, &mut orphans)?;
        if removed.is_none() {
            return Ok(GrDeleteOutcome {
                found: false,
                condensed: false,
            });
        }
        let condensed = !orphans.is_empty();
        if condensed {
            self.metrics.condenses.inc();
        }
        for (entries, level) in orphans {
            for entry in entries {
                let mut reinserted = HashSet::new();
                let mut pending = vec![(entry, level)];
                while let Some((e, l)) = pending.pop() {
                    self.insert_toplevel(e, l, ct, &mut reinserted, &mut pending)?;
                }
            }
        }
        loop {
            let root_node = self.read_node(self.meta.root)?;
            let GrNode::Internal { entries, .. } = &root_node else {
                break;
            };
            if entries.len() != 1 {
                break;
            }
            let old = self.meta.root;
            self.meta.root = entries[0].child;
            self.meta.height -= 1;
            self.free_node(old)?;
        }
        self.meta.count -= 1;
        self.write_meta()?;
        Ok(GrDeleteOutcome {
            found: true,
            condensed,
        })
    }

    fn delete_rec(
        &mut self,
        page: u32,
        extent: &TimeExtent,
        rowid: u64,
        ct: Day,
        orphans: &mut Vec<(Vec<AnyEntry>, u16)>,
    ) -> Result<Option<ChildFate>> {
        let mut node = self.read_node(page)?;
        let is_root = page == self.meta.root;
        let min_fill = self.meta.min_fill as usize;
        match &mut node {
            GrNode::Leaf(entries) => {
                let Some(idx) = entries
                    .iter()
                    .position(|e| e.rowid == rowid && e.extent == *extent)
                else {
                    return Ok(None);
                };
                entries.remove(idx);
                if !is_root && entries.len() < min_fill {
                    let orphaned = std::mem::take(entries)
                        .into_iter()
                        .map(AnyEntry::Leaf)
                        .collect();
                    return Ok(Some(ChildFate::Dissolved(orphaned, 0)));
                }
                self.write_node(page, &node)?;
                Ok(Some(ChildFate::Alive))
            }
            GrNode::Internal { level, entries } => {
                let level = *level;
                let target = extent.region(ct);
                for idx in 0..entries.len() {
                    if !entries[idx].spec.resolve(ct).contains(&target) {
                        continue;
                    }
                    let child = entries[idx].child;
                    match self.delete_rec(child, extent, rowid, ct, orphans)? {
                        None => continue,
                        Some(ChildFate::Alive) => {
                            let bound = self.node_bound(&self.read_node(child)?, ct);
                            entries[idx].spec = bound;
                        }
                        Some(ChildFate::Dissolved(orphaned, l)) => {
                            orphans.push((orphaned, l));
                            self.free_node(child)?;
                            entries.remove(idx);
                        }
                    }
                    if !is_root && entries.len() < min_fill {
                        let orphaned = std::mem::take(entries)
                            .into_iter()
                            .map(AnyEntry::Node)
                            .collect();
                        return Ok(Some(ChildFate::Dissolved(orphaned, level)));
                    }
                    self.write_node(page, &node)?;
                    return Ok(Some(ChildFate::Alive));
                }
                Ok(None)
            }
        }
    }

    /// Collects all `(extent, rowid)` pairs satisfying `pred` against
    /// `query` at current time `ct`.
    pub fn search(
        &self,
        pred: Predicate,
        query: &TimeExtent,
        ct: Day,
    ) -> Result<Vec<(TimeExtent, u64)>> {
        let mut cursor = self.cursor(pred, *query, ct);
        let mut out = Vec::new();
        while let Some(hit) = self.cursor_next(&mut cursor)? {
            out.push(hit);
        }
        Ok(out)
    }

    /// Opens a scan cursor. The current time is fixed at cursor creation
    /// — the paper's per-statement current time (Section 5.4).
    pub fn cursor(&self, pred: Predicate, query: TimeExtent, ct: Day) -> GrCursor {
        self.metrics.searches.inc();
        GrCursor::new(pred, query, ct, self.meta.root)
    }

    /// Advances a cursor to the next qualifying `(extent, rowid)`.
    pub fn cursor_next(&self, cursor: &mut GrCursor) -> Result<Option<(TimeExtent, u64)>> {
        cursor.next(self)
    }

    /// Resets a cursor to the root (after tree condensation).
    pub fn cursor_restart(&self, cursor: &mut GrCursor) {
        cursor.restart(self.meta.root);
    }

    /// Computes quality statistics at current time `ct`.
    pub fn quality(&self, ct: Day) -> Result<GrQuality> {
        GrQuality::compute(self, self.meta.root, self.meta.height, ct)
    }

    /// Verifies structural invariants at current time `ct`: every
    /// internal entry's region covers its child's bound, levels decrease
    /// by one, non-root nodes respect minimum fill, and the leaf count
    /// matches the header.
    pub fn check(&self, ct: Day) -> Result<()> {
        let mut leaves = 0u64;
        self.check_rec(self.meta.root, None, true, ct, &mut leaves)?;
        if leaves != self.meta.count {
            return Err(GrError::Corrupt(format!(
                "count mismatch: header {} vs leaves {leaves}",
                self.meta.count
            )));
        }
        Ok(())
    }

    fn check_rec(
        &self,
        page: u32,
        expect_level: Option<u16>,
        is_root: bool,
        ct: Day,
        leaves: &mut u64,
    ) -> Result<RegionSpec> {
        let node = self.read_node(page)?;
        if let Some(l) = expect_level {
            if node.level() != l {
                return Err(GrError::Corrupt(format!(
                    "page {page}: level {} expected {l}",
                    node.level()
                )));
            }
        }
        if !is_root && node.len() < self.meta.min_fill as usize {
            return Err(GrError::Corrupt(format!(
                "page {page}: underfull ({} < {})",
                node.len(),
                self.meta.min_fill
            )));
        }
        if is_root && node.is_empty() {
            return Ok(RegionSpec::leaf(
                Day(0),
                grt_temporal::TtEnd::Ground(Day(0)),
                Day(0),
                grt_temporal::VtEnd::Ground(Day(0)),
            ));
        }
        match &node {
            GrNode::Leaf(_) => {
                *leaves += node.len() as u64;
            }
            GrNode::Internal { level, entries } => {
                for e in entries {
                    let child_bound =
                        self.check_rec(e.child, Some(level - 1), false, ct, leaves)?;
                    // The stored region must cover the child's current
                    // bound now and in the future (probe a horizon).
                    for probe in [0, 1, 365] {
                        let t = ct.plus(probe);
                        if !e.spec.resolve(t).contains(&child_bound.resolve(t)) {
                            return Err(GrError::Corrupt(format!(
                                "page {page}: entry {} does not cover child {} at ct+{probe}",
                                e.spec, child_bound
                            )));
                        }
                    }
                }
            }
        }
        Ok(node.bound(ct))
    }
}

impl crate::cursor::NodeSource for GrTree {
    fn read_node(&self, page: u32) -> Result<GrNode> {
        GrTree::read_node(self, page)
    }

    fn metrics(&self) -> &TreeMetrics {
        &self.metrics
    }

    fn prefetch(&self, pages: &[u32]) {
        self.lo.prefetch(pages);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grt_sbspace::{IsolationLevel, LockMode, Sbspace, SbspaceOptions};
    use grt_temporal::{TtEnd, VtEnd};

    pub(crate) fn fresh_lo() -> LoHandle {
        let sb = Sbspace::mem(SbspaceOptions {
            pool_pages: 8192,
            ..Default::default()
        });
        let txn = sb.begin(IsolationLevel::ReadCommitted);
        let lo = sb.create_lo(&txn).unwrap();
        let h = sb.open_lo(&txn, lo, LockMode::Exclusive).unwrap();
        std::mem::forget(txn);
        std::mem::forget(sb);
        h
    }

    fn tree(max_entries: usize) -> GrTree {
        GrTree::create(
            fresh_lo(),
            GrTreeOptions {
                max_entries,
                ..Default::default()
            },
        )
        .unwrap()
    }

    fn extent(ttb: i32, tte: Option<i32>, vtb: i32, vte: Option<i32>) -> TimeExtent {
        TimeExtent::from_parts(
            Day(ttb),
            tte.map_or(TtEnd::Uc, |x| TtEnd::Ground(Day(x))),
            Day(vtb),
            vte.map_or(VtEnd::Now, |x| VtEnd::Ground(Day(x))),
        )
        .unwrap()
    }

    /// A deterministic mixed history of the six region cases.
    pub(crate) fn history(n: i32) -> Vec<(u64, TimeExtent)> {
        (0..n)
            .map(|i| {
                let base = (i * 13) % 500;
                let e = match i % 6 {
                    0 => extent(base, None, base - (i % 9), Some(base + 40)), // case 1
                    1 => extent(base, Some(base + 25), base - 7, Some(base + 30)), // case 2
                    2 => extent(base, None, base, None),                      // case 3
                    3 => extent(base, Some(base + 15), base, None),           // case 4
                    4 => extent(base, None, base - (1 + i % 5), None),        // case 5
                    _ => extent(base, Some(base + 12), base - (1 + i % 5), None), // case 6
                };
                (i as u64, e)
            })
            .collect()
    }

    #[test]
    fn insert_and_search_match_linear_scan() {
        let mut t = tree(8);
        let ct = Day(600);
        let data = history(300);
        for (id, e) in &data {
            t.insert(*e, *id, ct).unwrap();
        }
        assert_eq!(t.len(), 300);
        assert!(t.height() > 1);
        t.check(ct).unwrap();

        let queries = [
            extent(100, Some(150), 50, Some(160)),
            extent(0, None, 0, None),
            extent(450, Some(460), 455, Some(600)),
            extent(250, Some(250), 250, Some(250)),
        ];
        for probe_ct in [ct, ct.plus(100), ct.plus(5000)] {
            for q in &queries {
                for pred in Predicate::ALL {
                    let mut expected: Vec<u64> = data
                        .iter()
                        .filter(|(_, e)| pred.eval(e, q, probe_ct))
                        .map(|(id, _)| *id)
                        .collect();
                    let mut got: Vec<u64> = t
                        .search(pred, q, probe_ct)
                        .unwrap()
                        .into_iter()
                        .map(|(_, id)| id)
                        .collect();
                    expected.sort_unstable();
                    got.sort_unstable();
                    assert_eq!(got, expected, "{pred} at ct={probe_ct:?}");
                }
            }
        }
    }

    #[test]
    fn growing_entries_are_found_later_without_reindexing() {
        // The GR-tree's raison d'être: a growing stair inserted once is
        // found by queries far in the future with no refresh.
        let mut t = tree(8);
        let ct = Day(100);
        let stair = extent(100, None, 100, None);
        t.insert(stair, 1, ct).unwrap();
        // Fill with static noise.
        for i in 0..100 {
            t.insert(extent(i, Some(i + 5), i, Some(i + 5)), 100 + i as u64, ct)
                .unwrap();
        }
        // A query window years later, on the diagonal.
        let q = extent(3000, Some(3010), 2990, Some(3005));
        let hits = t.search(Predicate::Overlaps, &q, Day(4000)).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].1, 1);
        // Before the stair reaches the window: no hit.
        assert!(t
            .search(Predicate::Overlaps, &q, Day(2000))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn delete_and_condense_preserve_answers() {
        let mut t = tree(8);
        let ct = Day(600);
        let data = history(240);
        for (id, e) in &data {
            t.insert(*e, *id, ct).unwrap();
        }
        let mut condensed_any = false;
        for (id, e) in data.iter().filter(|(id, _)| id % 3 == 0) {
            let out = t.delete(e, *id, ct).unwrap();
            assert!(out.found, "entry {id} missing");
            condensed_any |= out.condensed;
        }
        assert!(condensed_any);
        t.check(ct).unwrap();
        let q = extent(0, None, 0, None);
        let got: HashSet<u64> = t
            .search(Predicate::Overlaps, &q, ct)
            .unwrap()
            .into_iter()
            .map(|(_, id)| id)
            .collect();
        for (id, e) in &data {
            let expect = id % 3 != 0 && Predicate::Overlaps.eval(e, &q, ct);
            assert_eq!(got.contains(id), expect, "entry {id}");
        }
    }

    #[test]
    fn logical_delete_is_update_of_extent() {
        // A bitemporal deletion rewrites TTend from UC to ct-1: at the
        // index level, delete(old) + insert(new).
        let mut t = tree(8);
        let ct = Day(200);
        let open = extent(100, None, 100, None);
        t.insert(open, 7, ct).unwrap();
        let later = Day(300);
        let closed = open.logical_delete(later).unwrap();
        assert!(t.delete(&open, 7, later).unwrap().found);
        t.insert(closed, 7, later).unwrap();
        // The region is frozen: a far-future query around the diagonal
        // no longer matches.
        let q = extent(5000, Some(5010), 4990, Some(5005));
        assert!(t
            .search(Predicate::Overlaps, &q, Day(6000))
            .unwrap()
            .is_empty());
        // But the historical part still does.
        let hist = extent(250, Some(260), 200, Some(240));
        let hits = t.search(Predicate::Overlaps, &hist, Day(6000)).unwrap();
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn delete_everything() {
        let mut t = tree(6);
        let ct = Day(600);
        let data = history(120);
        for (id, e) in &data {
            t.insert(*e, *id, ct).unwrap();
        }
        for (id, e) in &data {
            assert!(t.delete(e, *id, ct).unwrap().found, "{id}");
        }
        assert_eq!(t.len(), 0);
        assert_eq!(t.height(), 1);
        t.check(ct).unwrap();
    }

    #[test]
    fn cursor_restart_after_condense() {
        let mut t = tree(8);
        let ct = Day(600);
        let data = history(150);
        for (id, e) in &data {
            t.insert(*e, *id, ct).unwrap();
        }
        let q = extent(0, None, 0, None);
        let mut cursor = t.cursor(Predicate::Overlaps, q, ct);
        // Pull a few results, then delete until the tree condenses.
        for _ in 0..3 {
            t.cursor_next(&mut cursor).unwrap();
        }
        let mut condensed = false;
        for (id, e) in &data {
            if t.delete(e, *id, ct).unwrap().condensed {
                condensed = true;
                break;
            }
        }
        assert!(condensed);
        // The paper's rule: restart the scan only when the tree was
        // actually condensed.
        t.cursor_restart(&mut cursor);
        while t.cursor_next(&mut cursor).unwrap().is_some() {}
        t.check(ct).unwrap();
    }

    #[test]
    fn cursor_restart_does_not_replay_emitted_rows() {
        let mut t = tree(8);
        let ct = Day(600);
        let data = history(150);
        for (id, e) in &data {
            t.insert(*e, *id, ct).unwrap();
        }
        let q = extent(0, None, 0, None);
        let mut cursor = t.cursor(Predicate::Overlaps, q, ct);
        let mut got = Vec::new();
        for _ in 0..3 {
            let (_, id) = t.cursor_next(&mut cursor).unwrap().expect("tree has rows");
            got.push(id);
        }
        // Condense the tree mid-scan, deleting only rows the cursor has
        // *not* yet returned: the emitted three survive, and the
        // restarted walk meets them again at the leaves.
        let mut condensed = false;
        for (id, e) in &data {
            if got.contains(id) {
                continue;
            }
            if t.delete(e, *id, ct).unwrap().condensed {
                condensed = true;
                break;
            }
        }
        assert!(condensed);
        t.cursor_restart(&mut cursor);
        while let Some((_, id)) = t.cursor_next(&mut cursor).unwrap() {
            got.push(id);
        }
        let unique: std::collections::HashSet<u64> = got.iter().copied().collect();
        assert_eq!(
            unique.len(),
            got.len(),
            "restart re-returned rows already emitted before the condense"
        );
        // No surviving row was lost either: the post-restart walk still
        // covers everything a fresh search finds.
        for (_, id) in t.search(Predicate::Overlaps, &q, ct).unwrap() {
            assert!(unique.contains(&id), "row {id} lost across restart");
        }
        t.check(ct).unwrap();
    }

    #[test]
    fn rejects_invalid_extent() {
        let mut t = tree(8);
        // VTbegin in the future with NOW violates the constraint at
        // insertion time.
        let bad = TimeExtent::from_parts(Day(10), TtEnd::Uc, Day(5), VtEnd::Now).unwrap();
        assert!(t.insert(bad, 1, Day(100)).is_ok());
        let also_bad =
            TimeExtent::from_parts(Day(10), TtEnd::Uc, Day(0), VtEnd::Ground(Day(90))).unwrap();
        assert!(t.insert(also_bad, 2, Day(100)).is_ok());
    }

    #[test]
    fn quality_and_flags_materialise() {
        let mut t = tree(8);
        let ct = Day(600);
        for (id, e) in history(200) {
            t.insert(e, id, ct).unwrap();
        }
        let q = t.quality(ct).unwrap();
        assert_eq!(q.levels.len() as u32, t.height());
        assert_eq!(q.levels[0].entries, 200);
        // With a mixed workload some internal entries should use the
        // GR-tree's special encodings.
        assert!(
            q.stair_bounds + q.hidden_bounds + q.growing_rect_bounds > 0,
            "no GR-specific bounds materialised: {q:?}"
        );
    }

    use std::collections::HashSet;
}
