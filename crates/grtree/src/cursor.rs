//! GR-tree scan cursors.
//!
//! A cursor is the paper's `Cursor` object: it stores the query
//! predicate (from the qualification descriptor) and the tree-traversal
//! state between `am_getnext` calls. The current time is captured at
//! cursor creation and stays constant for the whole scan — the paper's
//! per-statement current-time rule (Section 5.4).

use crate::entry::{GrNode, InternalEntry, LeafEntry};
use crate::Result;
use grt_metrics::TreeMetrics;
use grt_temporal::{Day, Predicate, Region, TimeExtent, VtEnd};
use std::collections::HashSet;

/// Where a cursor reads its nodes from: a [`GrTree`](crate::GrTree)
/// (locked handle, sees the owning transaction's writes) or a
/// [`GrTreeReader`](crate::GrTreeReader) (lock-free frozen view). The
/// same cursor walks both — node pages are immutable once published, so
/// the traversal needs no per-node latch coupling on either source.
pub trait NodeSource {
    /// Decodes the node at `page` (no counter side effects — the cursor
    /// bumps `nodes_visited` itself).
    fn read_node(&self, page: u32) -> Result<GrNode>;
    /// The operation counters to charge the traversal to.
    fn metrics(&self) -> &TreeMetrics;
    /// Announces pages the traversal will likely read next, so a source
    /// backed by a prefetching buffer pool can overlap the reads with
    /// the cursor's compute. Advisory; the default does nothing.
    fn prefetch(&self, _pages: &[u32]) {}
}

enum FrameEntries {
    Leaf(Vec<LeafEntry>),
    Internal(Vec<InternalEntry>),
}

struct Frame {
    entries: FrameEntries,
    next: usize,
}

/// A depth-first scan over qualifying leaf entries.
pub struct GrCursor {
    pred: Predicate,
    query: TimeExtent,
    query_region: Region,
    ct: Day,
    root: u32,
    stack: Vec<Frame>,
    primed: bool,
    /// Entries already returned by this cursor, keyed by rowid plus
    /// encoded extent (an update gives the same rowid a new extent and
    /// that counts as a new entry). Survives [`GrCursor::restart`]: a
    /// Section 5.5 restart re-walks the condensed tree from the root,
    /// and without this memory it would re-return every row emitted
    /// before the condense.
    emitted: HashSet<(u64, [u8; 16])>,
}

impl GrCursor {
    pub(crate) fn new(pred: Predicate, query: TimeExtent, ct: Day, root: u32) -> GrCursor {
        GrCursor {
            pred,
            query,
            query_region: query.region(ct),
            ct,
            root,
            stack: Vec::new(),
            primed: false,
            emitted: HashSet::new(),
        }
    }

    /// The predicate this cursor scans with.
    pub fn predicate(&self) -> Predicate {
        self.pred
    }

    /// The query extent this cursor scans with.
    pub fn query(&self) -> TimeExtent {
        self.query
    }

    /// The current time captured at creation.
    pub fn current_time(&self) -> Day {
        self.ct
    }

    /// Resets the scan to the beginning (used after tree condensation —
    /// the paper's Section 5.5 restart rule). The captured current time
    /// is kept: the statement's time does not change mid-scan. The
    /// emitted-row memory is also kept, so rows returned before the
    /// restart are not returned again by the re-walk.
    pub(crate) fn restart(&mut self, root: u32) {
        self.root = root;
        self.stack.clear();
        self.primed = false;
    }

    fn push<S: NodeSource>(&mut self, src: &S, page: u32) -> Result<()> {
        src.metrics().nodes_visited.inc();
        let entries = match src.read_node(page)? {
            GrNode::Leaf(v) => FrameEntries::Leaf(v),
            GrNode::Internal { entries, .. } => FrameEntries::Internal(entries),
        };
        if let FrameEntries::Internal(entries) = &entries {
            // Announce every child this node will descend into (the
            // same consistency test `next()` applies, minus its metric
            // bumps) so their reads overlap the per-entry compute.
            let kids: Vec<u32> = entries
                .iter()
                .filter(|e| {
                    self.pred
                        .consistent(&e.spec.resolve(self.ct), &self.query_region)
                })
                .map(|e| e.child)
                .collect();
            if kids.len() > 1 {
                src.prefetch(&kids);
            }
        }
        self.stack.push(Frame { entries, next: 0 });
        Ok(())
    }

    pub(crate) fn next<S: NodeSource>(&mut self, src: &S) -> Result<Option<(TimeExtent, u64)>> {
        if !self.primed {
            self.primed = true;
            self.push(src, self.root)?;
        }
        loop {
            let Some(frame) = self.stack.last_mut() else {
                return Ok(None);
            };
            match &frame.entries {
                FrameEntries::Leaf(entries) => {
                    if frame.next >= entries.len() {
                        self.stack.pop();
                        continue;
                    }
                    let e = entries[frame.next];
                    frame.next += 1;
                    if matches!(e.spec().vt_end, VtEnd::Now) {
                        src.metrics().now_resolutions.inc();
                    }
                    if self
                        .pred
                        .eval_regions(&e.extent.region(self.ct), &self.query_region)
                        && self.emitted.insert((e.rowid, e.extent.encode_array()))
                    {
                        return Ok(Some((e.extent, e.rowid)));
                    }
                }
                FrameEntries::Internal(entries) => {
                    if frame.next >= entries.len() {
                        self.stack.pop();
                        continue;
                    }
                    let e = entries[frame.next];
                    frame.next += 1;
                    if e.spec.hidden {
                        src.metrics().hidden_resolutions.inc();
                    }
                    if matches!(e.spec.vt_end, VtEnd::Now) {
                        src.metrics().now_resolutions.inc();
                    }
                    // Descend only where the bounding region could
                    // contain a qualifying child — the NOW/UC resolution
                    // algorithm applied to the internal entry.
                    if self
                        .pred
                        .consistent(&e.spec.resolve(self.ct), &self.query_region)
                    {
                        self.push(src, e.child)?;
                    }
                }
            }
        }
    }
}
