//! GR-tree quality statistics: dead space, overlap, and the census of
//! GR-specific bound encodings (stairs, hidden rectangles, growing
//! rectangles) per tree level.

use crate::entry::GrNode;
use crate::tree::GrTree;
use crate::Result;
use grt_temporal::{Day, Region, VtEnd};
use std::collections::VecDeque;

/// Aggregates for one tree level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GrLevelQuality {
    /// Nodes at this level.
    pub nodes: u64,
    /// Entries across those nodes.
    pub entries: u64,
    /// Sum of resolved bounding-region areas.
    pub bound_area: i128,
    /// Sum over nodes of `bound area - sum(entry areas)` clamped at zero
    /// — the dead-space proxy.
    pub dead_space: i128,
    /// Sum over nodes of pairwise entry intersection areas.
    pub overlap: i128,
}

/// Whole-tree quality at a point in time.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GrQuality {
    /// Per-level aggregates, leaves first.
    pub levels: Vec<GrLevelQuality>,
    /// Internal entries whose bound is a stair shape.
    pub stair_bounds: u64,
    /// Internal entries carrying the `Hidden` flag.
    pub hidden_bounds: u64,
    /// Internal entries carrying the `Rectangle` flag (growing rects).
    pub growing_rect_bounds: u64,
}

impl GrQuality {
    pub(crate) fn compute(tree: &GrTree, root: u32, height: u32, ct: Day) -> Result<GrQuality> {
        let mut q = GrQuality {
            levels: vec![GrLevelQuality::default(); height as usize],
            ..Default::default()
        };
        let mut queue = VecDeque::new();
        queue.push_back(root);
        while let Some(page) = queue.pop_front() {
            let node = tree.read_node(page)?;
            let lq = &mut q.levels[node.level() as usize];
            lq.nodes += 1;
            lq.entries += node.len() as u64;
            let specs = node.specs();
            if !specs.is_empty() {
                let bound = node.bound(ct).resolve(ct);
                lq.bound_area += bound.area();
                let regions: Vec<Region> = specs.iter().map(|s| s.resolve(ct)).collect();
                let covered: i128 = regions.iter().map(Region::area).sum();
                lq.dead_space += (bound.area() - covered).max(0);
                for (i, a) in regions.iter().enumerate() {
                    for b in &regions[i + 1..] {
                        lq.overlap += a.intersection_area(b);
                    }
                }
            }
            if let GrNode::Internal { entries, .. } = &node {
                for e in entries {
                    if e.spec.hidden {
                        q.hidden_bounds += 1;
                    }
                    if e.spec.rect {
                        q.growing_rect_bounds += 1;
                    }
                    if matches!(e.spec.vt_end, VtEnd::Now) && !e.spec.rect {
                        q.stair_bounds += 1;
                    }
                    queue.push_back(e.child);
                }
            }
        }
        Ok(q)
    }

    /// Total overlap across all levels.
    pub fn total_overlap(&self) -> i128 {
        self.levels.iter().map(|l| l.overlap).sum()
    }

    /// Total dead space across all levels.
    pub fn total_dead_space(&self) -> i128 {
        self.levels.iter().map(|l| l.dead_space).sum()
    }
}
