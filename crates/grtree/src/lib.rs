//! The **GR-tree**: an R\*-tree-based index for now-relative bitemporal
//! data (Bliujūtė, Jensen, Šaltenis, Slivinskas — the index this
//! paper's DataBlade implements).
//!
//! Unlike an ordinary spatial index, GR-tree entries store the `UC` and
//! `NOW` *variables* at **all** tree levels, so the index represents
//! growing rectangles and growing stair shapes exactly:
//!
//! * a **leaf entry** holds the tuple's four timestamps (possibly with
//!   `UC`/`NOW`) plus the rowid of the indexed tuple;
//! * a **non-leaf entry** holds four timestamps plus the `Rectangle`
//!   flag (a `(tt1, UC, vt1, NOW)` bound can denote a growing rectangle
//!   rather than a stair) and the `Hidden` flag (a growing stair hidden
//!   inside a fixed bounding rectangle that it will one day outgrow),
//!   plus the child page number.
//!
//! The insertion, split, and deletion algorithms follow the R\*-tree,
//! with all penalty metrics (area, overlap, margin) computed on regions
//! resolved at `ct + time_param`: the *time parameter* of the GR-tree
//! insertion algorithms accounts for the future development of growing
//! entries, so that two entries that barely overlap today but grow into
//! each other tomorrow are penalised today.
//!
//! Like the DataBlade prototype, the tree lives in a single sbspace
//! large object, one node per 4 KiB page, header on logical page 0.
//!
//! ```
//! use grt_grtree::{GrTree, GrTreeOptions};
//! use grt_sbspace::{IsolationLevel, LockMode, Sbspace, SbspaceOptions};
//! use grt_temporal::{Day, Predicate, TimeExtent, VtEnd};
//!
//! let sb = Sbspace::mem(SbspaceOptions::default());
//! let txn = sb.begin(IsolationLevel::ReadCommitted);
//! let lo = sb.create_lo(&txn).unwrap();
//! let handle = sb.open_lo(&txn, lo, LockMode::Exclusive).unwrap();
//! let mut tree = GrTree::create(handle, GrTreeOptions::default()).unwrap();
//!
//! // Insert a now-relative fact on day 100 and find it years later —
//! // the growing region needs no refresh.
//! let ct = Day(100);
//! let fact = TimeExtent::insert(ct, Day(100), VtEnd::Now).unwrap();
//! tree.insert(fact, 7, ct).unwrap();
//! let probe = TimeExtent::insert(Day(5_000), Day(4_999), VtEnd::Now).unwrap();
//! let hits = tree.search(Predicate::Overlaps, &probe, Day(5_000)).unwrap();
//! assert_eq!(hits.len(), 1);
//! drop(tree.into_lo().unwrap());
//! txn.commit().unwrap();
//! ```

pub mod bulk;
pub mod concurrent;
pub mod cursor;
pub mod entry;
pub mod meta;
pub mod parallel;
pub mod stats;
pub mod tree;

pub use concurrent::ConcurrentGrTree;
pub use cursor::{GrCursor, NodeSource};
pub use entry::{GrNode, InternalEntry, LeafEntry};
pub use parallel::{parallel_scan, GrTreeReader, ParallelScan, ParallelScanStats};
pub use stats::GrQuality;
pub use tree::{GrDeleteOutcome, GrTree, GrTreeOptions};

/// Errors from the GR-tree layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GrError {
    /// Underlying storage failure.
    Storage(grt_sbspace::SbError),
    /// Bad timestamps in an entry.
    Temporal(grt_temporal::TemporalError),
    /// The large object does not contain a valid GR-tree.
    Corrupt(String),
    /// API misuse.
    Usage(String),
}

impl From<grt_sbspace::SbError> for GrError {
    fn from(e: grt_sbspace::SbError) -> Self {
        GrError::Storage(e)
    }
}

impl From<grt_temporal::TemporalError> for GrError {
    fn from(e: grt_temporal::TemporalError) -> Self {
        GrError::Temporal(e)
    }
}

impl std::fmt::Display for GrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GrError::Storage(e) => write!(f, "storage: {e}"),
            GrError::Temporal(e) => write!(f, "temporal: {e}"),
            GrError::Corrupt(m) => write!(f, "corrupt gr-tree: {m}"),
            GrError::Usage(m) => write!(f, "usage: {m}"),
        }
    }
}

impl std::error::Error for GrError {}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, GrError>;
