//! A node-latched, high-concurrency GR-tree — what the paper says a
//! DataBlade **cannot** build over sbspaces, but an in-kernel access
//! method can.
//!
//! Section 5.3: "A developer of an access method has no control over
//! the locking of large objects ... This implies that concurrency
//! control and recovery protocols of Kornacker et al. cannot be
//! implemented using large objects", whereas "Informix's own predefined
//! R-tree access method stores its indices in dbspaces, the Informix
//! page manager provides the appropriate concurrency control". This
//! module plays the part of that privileged in-kernel path: nodes carry
//! their own reader-writer latches (the page-manager's latch table) and
//! operations use the classic Bayer–Schkolnick lock-coupling protocol
//! the paper cites (\[BS77\]):
//!
//! * searches crab down with shared latches, releasing the parent once
//!   the child is latched;
//! * insertions crab down with exclusive latches, releasing all held
//!   ancestors whenever the child is *safe* (cannot split);
//! * deletions take the same exclusive crab; instead of the GR-tree's
//!   condense-and-reinsert, underfull nodes are tolerated — one of the
//!   two §5.5 alternatives ("allowing nodes with only few entries") —
//!   because reinsertion would require restarting with tree-wide locks.
//!
//! The structure intentionally shares the sequential GR-tree's
//! geometry: entries are [`RegionSpec`]-bounded, parents are maintained
//! with [`bound_entries`], and answers are checked against the same
//! predicates. Durability is out of scope here (in the paper's story,
//! the kernel's log manager provides it).

use grt_temporal::{bound_entries, Day, Predicate, RegionSpec, TimeExtent};
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Latch-traffic counters (the concurrency bench's metric).
#[derive(Debug, Default)]
pub struct LatchStats {
    /// Shared latch acquisitions.
    pub shared: AtomicU64,
    /// Exclusive latch acquisitions.
    pub exclusive: AtomicU64,
}

enum Content {
    Leaf(Vec<(TimeExtent, u64)>),
    Internal(Vec<(RegionSpec, Arc<Node>)>),
}

struct Node {
    latch: RwLock<Content>,
}

impl Node {
    fn new_leaf() -> Arc<Node> {
        Arc::new(Node {
            latch: RwLock::new(Content::Leaf(Vec::new())),
        })
    }
}

/// A concurrent GR-tree sharable across threads.
pub struct ConcurrentGrTree {
    /// The anchor: points at the root (swapped under its own latch when
    /// the root splits).
    root: RwLock<Arc<Node>>,
    max_entries: usize,
    stats: Arc<LatchStats>,
    count: AtomicU64,
}

impl ConcurrentGrTree {
    /// An empty tree with the given fan-out.
    pub fn new(max_entries: usize) -> ConcurrentGrTree {
        ConcurrentGrTree {
            root: RwLock::new(Node::new_leaf()),
            max_entries: max_entries.clamp(4, 256),
            stats: Arc::new(LatchStats::default()),
            count: AtomicU64::new(0),
        }
    }

    /// The latch counters.
    pub fn stats(&self) -> Arc<LatchStats> {
        Arc::clone(&self.stats)
    }

    /// Number of entries.
    pub fn len(&self) -> u64 {
        self.count.load(Ordering::SeqCst)
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn bump_s(&self) {
        self.stats.shared.fetch_add(1, Ordering::Relaxed);
    }

    fn bump_x(&self) {
        self.stats.exclusive.fetch_add(1, Ordering::Relaxed);
    }

    /// Searches with shared-latch crabbing.
    pub fn search(&self, pred: Predicate, query: &TimeExtent, ct: Day) -> Vec<(TimeExtent, u64)> {
        let query_region = query.region(ct);
        let mut out = Vec::new();
        // Crab: hold the parent guard only until the child is latched.
        self.bump_s();
        let root_guard = self.root.read();
        let root = Arc::clone(&root_guard);
        drop(root_guard);
        self.search_rec(&root, pred, &query_region, ct, &mut out);
        out
    }

    fn search_rec(
        &self,
        node: &Arc<Node>,
        pred: Predicate,
        query_region: &grt_temporal::Region,
        ct: Day,
        out: &mut Vec<(TimeExtent, u64)>,
    ) {
        self.bump_s();
        let guard = node.latch.read();
        match &*guard {
            Content::Leaf(entries) => {
                for (extent, rowid) in entries.iter() {
                    if pred.eval_regions(&extent.region(ct), query_region) {
                        out.push((*extent, *rowid));
                    }
                }
            }
            Content::Internal(children) => {
                // Collect qualifying children, then release this node
                // before descending (lock coupling).
                let targets: Vec<Arc<Node>> = children
                    .iter()
                    .filter(|(spec, _)| pred.consistent(&spec.resolve(ct), query_region))
                    .map(|(_, child)| Arc::clone(child))
                    .collect();
                drop(guard);
                for child in targets {
                    self.search_rec(&child, pred, query_region, ct, out);
                }
            }
        }
    }

    /// Inserts with exclusive-latch crabbing: ancestors stay latched
    /// only while the child might split.
    pub fn insert(&self, extent: TimeExtent, rowid: u64, ct: Day) {
        loop {
            if self.try_insert(extent, rowid, ct) {
                self.count.fetch_add(1, Ordering::SeqCst);
                return;
            }
            // The root split under us while we held no latch; retry.
        }
    }

    fn try_insert(&self, extent: TimeExtent, rowid: u64, ct: Day) -> bool {
        self.bump_x();
        let mut anchor = Some(self.root.write());
        let root = Arc::clone(anchor.as_ref().expect("just taken"));
        // The anchor stays locked only while the root itself is unsafe.
        let spec = extent.spec();
        self.bump_x();
        let root_guard = root.latch.write();
        let root_safe = match &*root_guard {
            Content::Leaf(v) => v.len() < self.max_entries,
            Content::Internal(v) => v.len() < self.max_entries,
        };
        if root_safe {
            anchor = None;
        }
        let split = Self::insert_under(self, root_guard, &root, extent, rowid, &spec, ct);
        if let Some((left, right)) = split {
            // Root split: build a new root. The anchor is still held
            // (the root was unsafe), so the swap is race-free.
            let mut anchor = anchor.expect("split implies the root was unsafe");
            let new_root = Arc::new(Node {
                latch: RwLock::new(Content::Internal(vec![left, right])),
            });
            *anchor = new_root;
        }
        true
    }

    /// Inserts below a node whose write guard is already held. Returns
    /// the two replacement entries if the node split.
    #[allow(clippy::type_complexity)]
    fn insert_under(
        &self,
        mut guard: parking_lot::RwLockWriteGuard<'_, Content>,
        node: &Arc<Node>,
        extent: TimeExtent,
        rowid: u64,
        spec: &RegionSpec,
        ct: Day,
    ) -> Option<((RegionSpec, Arc<Node>), (RegionSpec, Arc<Node>))> {
        match &mut *guard {
            Content::Leaf(entries) => {
                entries.push((extent, rowid));
                if entries.len() <= self.max_entries {
                    return None;
                }
                // Split: sort by resolved tt-centre, halve.
                entries.sort_by_key(|(e, _)| {
                    let m = e.region(ct).mbr();
                    (m.tt1.0 as i64 + m.tt2.0 as i64, m.vt1.0 as i64)
                });
                let right_half = entries.split_off(entries.len() / 2);
                let left_bound = bound_entries(
                    &entries.iter().map(|(e, _)| e.spec()).collect::<Vec<_>>(),
                    ct,
                );
                let right_bound = bound_entries(
                    &right_half.iter().map(|(e, _)| e.spec()).collect::<Vec<_>>(),
                    ct,
                );
                let right = Arc::new(Node {
                    latch: RwLock::new(Content::Leaf(right_half)),
                });
                drop(guard);
                Some(((left_bound, Arc::clone(node)), (right_bound, right)))
            }
            Content::Internal(children) => {
                // ChooseSubtree by area enlargement at ct.
                let idx = (0..children.len())
                    .min_by_key(|&i| {
                        let union = bound_entries(&[children[i].0, *spec], ct);
                        union.resolve(ct).area() - children[i].0.resolve(ct).area()
                    })
                    .expect("internal nodes are nonempty");
                let child = Arc::clone(&children[idx].1);
                self.bump_x();
                let child_guard = child.latch.write();
                let child_safe = match &*child_guard {
                    Content::Leaf(v) => v.len() < self.max_entries,
                    Content::Internal(v) => v.len() < self.max_entries,
                };
                if child_safe {
                    // Update our copy of the child's bound and release
                    // this node before descending.
                    children[idx].0 = bound_entries(&[children[idx].0, *spec], ct);
                    drop(guard);
                    let split = self.insert_under(child_guard, &child, extent, rowid, spec, ct);
                    debug_assert!(split.is_none(), "safe child cannot split");
                    None
                } else {
                    // Keep this node latched: the child may split into us.
                    let split = self.insert_under(child_guard, &child, extent, rowid, spec, ct);
                    match split {
                        None => {
                            children[idx].0 = bound_entries(&[children[idx].0, *spec], ct);
                            None
                        }
                        Some((l, r)) => {
                            children[idx] = l;
                            children.push(r);
                            if children.len() <= self.max_entries {
                                return None;
                            }
                            children.sort_by_key(|(s, _)| {
                                let m = s.resolve(ct).mbr();
                                (m.tt1.0 as i64 + m.tt2.0 as i64, m.vt1.0 as i64)
                            });
                            let right_half = children.split_off(children.len() / 2);
                            let left_bound = bound_entries(
                                &children.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
                                ct,
                            );
                            let right_bound = bound_entries(
                                &right_half.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
                                ct,
                            );
                            let right = Arc::new(Node {
                                latch: RwLock::new(Content::Internal(right_half)),
                            });
                            drop(guard);
                            Some(((left_bound, Arc::clone(node)), (right_bound, right)))
                        }
                    }
                }
            }
        }
    }

    /// Deletes `(extent, rowid)`. Underfull nodes are tolerated (no
    /// condensation — the §5.5 alternative suited to concurrency).
    pub fn delete(&self, extent: &TimeExtent, rowid: u64, ct: Day) -> bool {
        self.bump_s();
        let root_guard = self.root.read();
        let root = Arc::clone(&root_guard);
        drop(root_guard);
        let removed = self.delete_rec(&root, extent, rowid, ct);
        if removed {
            self.count.fetch_sub(1, Ordering::SeqCst);
        }
        removed
    }

    fn delete_rec(&self, node: &Arc<Node>, extent: &TimeExtent, rowid: u64, ct: Day) -> bool {
        self.bump_x();
        let mut guard = node.latch.write();
        match &mut *guard {
            Content::Leaf(entries) => {
                let before = entries.len();
                entries.retain(|(e, r)| !(*r == rowid && e == extent));
                entries.len() < before
            }
            Content::Internal(children) => {
                let target = extent.region(ct);
                let candidates: Vec<Arc<Node>> = children
                    .iter()
                    .filter(|(spec, _)| spec.resolve(ct).contains(&target))
                    .map(|(_, c)| Arc::clone(c))
                    .collect();
                drop(guard);
                for child in candidates {
                    if self.delete_rec(&child, extent, rowid, ct) {
                        return true;
                    }
                }
                false
            }
        }
    }

    /// Structural check: every parent bound covers its children at `ct`
    /// (single-threaded use only).
    pub fn check(&self, ct: Day) -> Result<(), String> {
        fn rec(node: &Arc<Node>, ct: Day, count: &mut u64) -> Result<Option<RegionSpec>, String> {
            let guard = node.latch.read();
            match &*guard {
                Content::Leaf(entries) => {
                    *count += entries.len() as u64;
                    if entries.is_empty() {
                        return Ok(None);
                    }
                    Ok(Some(bound_entries(
                        &entries.iter().map(|(e, _)| e.spec()).collect::<Vec<_>>(),
                        ct,
                    )))
                }
                Content::Internal(children) => {
                    for (spec, child) in children {
                        if let Some(b) = rec(&Arc::clone(child), ct, count)? {
                            for probe in [0, 1, 365] {
                                let t = ct.plus(probe);
                                if !spec.resolve(t).contains(&b.resolve(t)) {
                                    return Err(format!(
                                        "parent {spec} does not cover child {b} at +{probe}"
                                    ));
                                }
                            }
                        }
                    }
                    Ok(Some(bound_entries(
                        &children.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
                        ct,
                    )))
                }
            }
        }
        let root = Arc::clone(&self.root.read());
        let mut count = 0;
        rec(&root, ct, &mut count)?;
        if count != self.len() {
            return Err(format!("count mismatch: {} vs {}", count, self.len()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grt_temporal::{TtEnd, VtEnd};

    fn extent(ttb: i32, tte: Option<i32>, vtb: i32, vte: Option<i32>) -> TimeExtent {
        TimeExtent::from_parts(
            Day(ttb),
            tte.map_or(TtEnd::Uc, |x| TtEnd::Ground(Day(x))),
            Day(vtb),
            vte.map_or(VtEnd::Now, |x| VtEnd::Ground(Day(x))),
        )
        .unwrap()
    }

    fn history(n: i32) -> Vec<(u64, TimeExtent)> {
        (0..n)
            .map(|i| {
                let base = (i * 13) % 500;
                let e = match i % 4 {
                    0 => extent(base, None, base, None),
                    1 => extent(base, Some(base + 20), base - 3, Some(base + 25)),
                    2 => extent(base, None, base - 5, Some(base + 60)),
                    _ => extent(base, Some(base + 15), base, None),
                };
                (i as u64, e)
            })
            .collect()
    }

    #[test]
    fn single_threaded_matches_linear_scan() {
        let tree = ConcurrentGrTree::new(8);
        let ct = Day(600);
        let data = history(400);
        for (id, e) in &data {
            tree.insert(*e, *id, ct);
        }
        assert_eq!(tree.len(), 400);
        tree.check(ct).unwrap();
        for q in [
            extent(100, Some(160), 50, Some(170)),
            extent(0, None, 0, None),
        ] {
            for pred in Predicate::ALL {
                let mut got: Vec<u64> = tree
                    .search(pred, &q, ct)
                    .into_iter()
                    .map(|(_, id)| id)
                    .collect();
                let mut expected: Vec<u64> = data
                    .iter()
                    .filter(|(_, e)| pred.eval(e, &q, ct))
                    .map(|(id, _)| *id)
                    .collect();
                got.sort_unstable();
                expected.sort_unstable();
                assert_eq!(got, expected, "{pred}");
            }
        }
    }

    #[test]
    fn deletes_tolerate_underfull_nodes() {
        let tree = ConcurrentGrTree::new(6);
        let ct = Day(600);
        let data = history(200);
        for (id, e) in &data {
            tree.insert(*e, *id, ct);
        }
        for (id, e) in data.iter().take(150) {
            assert!(tree.delete(e, *id, ct), "{id}");
            assert!(!tree.delete(e, *id, ct));
        }
        assert_eq!(tree.len(), 50);
        tree.check(ct).unwrap();
        let q = extent(0, None, 0, None);
        let got = tree.search(Predicate::Overlaps, &q, ct);
        assert!(got.iter().all(|(_, id)| *id >= 150));
    }

    #[test]
    fn concurrent_inserts_and_searches_are_linearizable_enough() {
        // All writers' entries must be present afterwards; readers must
        // never crash or see torn nodes.
        let tree = Arc::new(ConcurrentGrTree::new(8));
        let ct = Day(600);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let tree = Arc::clone(&tree);
                s.spawn(move || {
                    for i in 0..250u64 {
                        let id = t * 1_000 + i;
                        let base = ((id * 13) % 500) as i32;
                        let e = extent(base, None, base, None);
                        tree.insert(e, id, ct);
                    }
                });
            }
            for _ in 0..3 {
                let tree = Arc::clone(&tree);
                s.spawn(move || {
                    let q = extent(0, None, 0, None);
                    for _ in 0..60 {
                        let _ = tree.search(Predicate::Overlaps, &q, ct);
                    }
                });
            }
        });
        assert_eq!(tree.len(), 1_000);
        tree.check(ct).unwrap();
        let q = extent(0, None, 0, None);
        let got = tree.search(Predicate::Overlaps, &q, ct);
        assert_eq!(got.len(), 1_000, "every insert is findable");
        assert!(tree.stats().exclusive.load(Ordering::Relaxed) > 1_000);
    }
}
