//! Parallel range-scan execution over the pinned read path.
//!
//! The serial [`GrCursor`] walks qualifying subtrees
//! depth-first through one thread. This module splits the same
//! traversal across N workers: the scan seeds a *frontier* of internal
//! entries whose bounds are consistent with the predicate, pushes their
//! subtree roots onto a shared deque, and lets each worker claim
//! subtrees until the deque drains. Workers read nodes through a
//! [`GrTreeReader`] — a `Send + Sync` snapshot built on
//! [`LoReader`] pinned reads — so the traversal
//! never touches the lock manager and never mutates the tree.
//!
//! Subtrees claimed from the deque are disjoint, so two workers cannot
//! emit the same leaf entry; the merge still deduplicates on
//! `(rowid, extent)` to keep exactly the serial cursor's contract.

use crate::cursor::{GrCursor, NodeSource};
use crate::entry::GrNode;
use crate::meta::GrMeta;
use crate::Result;
use grt_metrics::TreeMetrics;
use grt_sbspace::LoReader;
use grt_temporal::{Day, Predicate, Region, TimeExtent, VtEnd};
use std::collections::HashSet;
use std::sync::Mutex;
use std::time::Instant;

/// A `Send + Sync` read-only handle on a disk-resident GR-tree:
/// a page-table snapshot plus the header copied at creation. Obtained
/// via [`GrTree::reader`](crate::GrTree::reader) (valid while the
/// originating tree and its large-object lock stay open) or via
/// [`GrTreeReader::open`] over a space-snapshot [`LoReader`] (valid
/// while that snapshot stays open — the engine's lock-free read path).
pub struct GrTreeReader {
    reader: LoReader,
    meta: GrMeta,
    metrics: TreeMetrics,
}

impl GrTreeReader {
    pub(crate) fn new(reader: LoReader, meta: GrMeta, metrics: TreeMetrics) -> GrTreeReader {
        GrTreeReader {
            reader,
            meta,
            metrics,
        }
    }

    /// Opens a reader directly over a large-object view, decoding the
    /// tree header from page 0. No tree (or LO-level lock) is involved:
    /// this is how a snapshot read mounts an index.
    pub fn open(reader: LoReader, metrics: TreeMetrics) -> Result<GrTreeReader> {
        let meta = GrMeta::decode(&*reader.read_page_pinned(0)?)?;
        Ok(GrTreeReader {
            reader,
            meta,
            metrics,
        })
    }

    /// Tree height (1 = the root is a leaf).
    pub fn height(&self) -> u32 {
        self.meta.height
    }

    /// Number of indexed entries.
    pub fn len(&self) -> u64 {
        self.meta.count
    }

    /// True when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.meta.count == 0
    }

    /// Pages in the underlying large object (header included).
    pub fn pages(&self) -> u32 {
        self.reader.page_count()
    }

    /// Opens a scan cursor — the same cursor, predicate semantics, and
    /// per-statement current time as [`GrTree::cursor`](crate::GrTree::cursor).
    pub fn cursor(&self, pred: Predicate, query: TimeExtent, ct: Day) -> GrCursor {
        self.metrics.searches.inc();
        GrCursor::new(pred, query, ct, self.meta.root)
    }

    /// Advances a cursor to the next qualifying `(extent, rowid)`.
    /// Unlike the locked path, no condense-restart handling exists or
    /// is needed: the view is frozen, so a concurrent condense can
    /// never move nodes out from under the scan.
    pub fn cursor_next(&self, cursor: &mut GrCursor) -> Result<Option<(TimeExtent, u64)>> {
        cursor.next(self)
    }

    /// The root node's bounding region resolved at `ct`, or `None` for
    /// an empty tree — the planner's selectivity input, mirroring
    /// [`GrTree::root_bound`](crate::GrTree::root_bound).
    pub fn root_bound(&self, ct: Day) -> Result<Option<Region>> {
        if self.meta.count == 0 {
            return Ok(None);
        }
        let node = NodeSource::read_node(self, self.meta.root)?;
        let mut b = node.bound(ct);
        if self.meta.rectangle_only && matches!(b.vt_end, VtEnd::Now) {
            b.rect = true;
        }
        Ok(Some(b.resolve(ct)))
    }

    /// Decodes the node at `page` through a pinned read.
    fn read_node(&self, page: u32) -> Result<GrNode> {
        self.metrics.nodes_visited.inc();
        GrNode::decode(&*self.reader.read_page_pinned(page)?)
    }
}

impl NodeSource for GrTreeReader {
    fn read_node(&self, page: u32) -> Result<GrNode> {
        GrNode::decode(&*self.reader.read_page_pinned(page)?)
    }

    fn metrics(&self) -> &TreeMetrics {
        &self.metrics
    }

    fn prefetch(&self, pages: &[u32]) {
        self.reader.prefetch(pages);
    }
}

/// Figures reported by one [`parallel_scan`] execution.
#[derive(Debug, Clone)]
pub struct ParallelScanStats {
    /// Degree actually used (may be lower than requested when the
    /// frontier is small).
    pub workers: usize,
    /// Subtrees seeded into the shared deque.
    pub frontier: usize,
    /// Per-worker busy time, nanoseconds.
    pub worker_ns: Vec<u64>,
}

/// A merged, deduplicated parallel scan result.
pub struct ParallelScan {
    /// Qualifying `(extent, rowid)` pairs, in a deterministic
    /// (rowid, extent) order.
    pub rows: Vec<(TimeExtent, u64)>,
    /// Execution statistics for metrics and tracing.
    pub stats: ParallelScanStats,
}

/// One worker's depth-first walk over a claimed subtree. Mirrors the
/// leaf/descent tests of the serial cursor exactly.
fn scan_subtree(
    reader: &GrTreeReader,
    pred: Predicate,
    query_region: &Region,
    ct: Day,
    root: u32,
    out: &mut Vec<(TimeExtent, u64)>,
) -> Result<()> {
    let mut stack = vec![root];
    while let Some(page) = stack.pop() {
        match reader.read_node(page)? {
            GrNode::Leaf(entries) => {
                for e in entries {
                    if matches!(e.spec().vt_end, VtEnd::Now) {
                        reader.metrics.now_resolutions.inc();
                    }
                    if pred.eval_regions(&e.extent.region(ct), query_region) {
                        out.push((e.extent, e.rowid));
                    }
                }
            }
            GrNode::Internal { entries, .. } => {
                let mark = stack.len();
                for e in entries {
                    if e.spec.hidden {
                        reader.metrics.hidden_resolutions.inc();
                    }
                    if matches!(e.spec.vt_end, VtEnd::Now) {
                        reader.metrics.now_resolutions.inc();
                    }
                    if pred.consistent(&e.spec.resolve(ct), query_region) {
                        stack.push(e.child);
                    }
                }
                if stack.len() > mark + 1 {
                    reader.prefetch(&stack[mark..]);
                }
            }
        }
    }
    Ok(())
}

/// Runs one predicate over the tree with up to `workers` threads and
/// returns the merged result set. Equivalent to draining a fresh serial
/// cursor: same leaf test, same descent test, same dedup key. The
/// caller owns restart semantics — on a concurrent condense it simply
/// re-runs the scan against the new root and filters against its own
/// emitted-set, exactly as it would restart a cursor.
pub fn parallel_scan(
    reader: &GrTreeReader,
    pred: Predicate,
    query: TimeExtent,
    ct: Day,
    workers: usize,
) -> Result<ParallelScan> {
    let query_region = query.region(ct);
    reader.metrics.searches.inc();

    // Seed the frontier with the root's qualifying children, expanding
    // one level at a time while the tree is deep enough and the
    // frontier too small to keep every worker busy.
    let mut rows: Vec<(TimeExtent, u64)> = Vec::new();
    let mut frontier: Vec<u32> = Vec::new();
    match reader.read_node(reader.meta.root)? {
        GrNode::Leaf(_) => {
            // Height-1 tree: nothing to fan out over.
            scan_subtree(reader, pred, &query_region, ct, reader.meta.root, &mut rows)?;
            dedup_sort(&mut rows);
            return Ok(ParallelScan {
                rows,
                stats: ParallelScanStats {
                    workers: 1,
                    frontier: 1,
                    worker_ns: Vec::new(),
                },
            });
        }
        GrNode::Internal { entries, .. } => {
            for e in entries {
                if e.spec.hidden {
                    reader.metrics.hidden_resolutions.inc();
                }
                if matches!(e.spec.vt_end, VtEnd::Now) {
                    reader.metrics.now_resolutions.inc();
                }
                if pred.consistent(&e.spec.resolve(ct), &query_region) {
                    frontier.push(e.child);
                }
            }
            reader.prefetch(&frontier);
        }
    }
    // Frontier nodes start one level below the root; stop expanding
    // before the leaf level (depth `height - 1`).
    let mut depth = 1;
    while frontier.len() < workers.saturating_mul(2) && depth + 1 < reader.meta.height {
        let mut next = Vec::new();
        for page in frontier.drain(..) {
            match reader.read_node(page)? {
                GrNode::Leaf(_) => unreachable!("frontier expansion stopped above leaf level"),
                GrNode::Internal { entries, .. } => {
                    for e in entries {
                        if e.spec.hidden {
                            reader.metrics.hidden_resolutions.inc();
                        }
                        if matches!(e.spec.vt_end, VtEnd::Now) {
                            reader.metrics.now_resolutions.inc();
                        }
                        if pred.consistent(&e.spec.resolve(ct), &query_region) {
                            next.push(e.child);
                        }
                    }
                }
            }
        }
        frontier = next;
        reader.prefetch(&frontier);
        depth += 1;
    }

    let frontier_len = frontier.len();
    let degree = workers.max(1).min(frontier_len.max(1));
    if degree <= 1 || frontier_len <= 1 {
        for page in frontier {
            scan_subtree(reader, pred, &query_region, ct, page, &mut rows)?;
        }
        dedup_sort(&mut rows);
        return Ok(ParallelScan {
            rows,
            stats: ParallelScanStats {
                workers: 1,
                frontier: frontier_len,
                worker_ns: Vec::new(),
            },
        });
    }

    // Shared deque of subtree roots; workers pop until it drains.
    let deque = Mutex::new(frontier);
    // One worker's collected rows plus its busy time in nanoseconds.
    type WorkerBatch = (Vec<(TimeExtent, u64)>, u64);
    let results: Vec<Result<WorkerBatch>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..degree)
            .map(|_| {
                let deque = &deque;
                s.spawn(move || {
                    let start = Instant::now();
                    let mut local = Vec::new();
                    loop {
                        let page = { deque.lock().expect("scan deque poisoned").pop() };
                        let Some(page) = page else { break };
                        scan_subtree(reader, pred, &query_region, ct, page, &mut local)?;
                    }
                    Ok((local, start.elapsed().as_nanos() as u64))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("scan worker panicked"))
            .collect()
    });

    let mut worker_ns = Vec::with_capacity(degree);
    for r in results {
        let (local, ns) = r?;
        rows.extend(local);
        worker_ns.push(ns);
    }
    dedup_sort(&mut rows);
    Ok(ParallelScan {
        rows,
        stats: ParallelScanStats {
            workers: degree,
            frontier: frontier_len,
            worker_ns,
        },
    })
}

/// Deterministic merge order plus the cursor's dedup key.
fn dedup_sort(rows: &mut Vec<(TimeExtent, u64)>) {
    rows.sort_by_key(|(e, rowid)| (*rowid, e.encode_array()));
    let mut seen: HashSet<(u64, [u8; 16])> = HashSet::with_capacity(rows.len());
    rows.retain(|(e, rowid)| seen.insert((*rowid, e.encode_array())));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{GrTree, GrTreeOptions};
    use grt_sbspace::{IsolationLevel, LoHandle, LockMode, Sbspace, SbspaceOptions};
    use grt_temporal::{TtEnd, VtEnd};

    fn fresh_lo() -> LoHandle {
        let sb = Sbspace::mem(SbspaceOptions {
            pool_pages: 8192,
            ..Default::default()
        });
        let txn = sb.begin(IsolationLevel::ReadCommitted);
        let lo = sb.create_lo(&txn).unwrap();
        let h = sb.open_lo(&txn, lo, LockMode::Exclusive).unwrap();
        std::mem::forget(txn);
        std::mem::forget(sb);
        h
    }

    fn extent(ttb: i32, tte: Option<i32>, vtb: i32, vte: Option<i32>) -> TimeExtent {
        TimeExtent::from_parts(
            Day(ttb),
            tte.map_or(TtEnd::Uc, |x| TtEnd::Ground(Day(x))),
            Day(vtb),
            vte.map_or(VtEnd::Now, |x| VtEnd::Ground(Day(x))),
        )
        .unwrap()
    }

    fn build(n: i32) -> GrTree {
        let mut tree = GrTree::create(
            fresh_lo(),
            GrTreeOptions {
                max_entries: 8,
                ..Default::default()
            },
        )
        .unwrap();
        for i in 0..n {
            let base = (i * 13) % 500;
            let e = match i % 6 {
                0 => extent(base, None, base - (i % 9), Some(base + 40)),
                1 => extent(base, Some(base + 25), base - 7, Some(base + 30)),
                2 => extent(base, None, base, None),
                3 => extent(base, Some(base + 15), base, None),
                4 => extent(base, None, base - (1 + i % 5), None),
                _ => extent(base, Some(base + 12), base - (1 + i % 5), None),
            };
            tree.insert(e, i as u64, Day(600)).unwrap();
        }
        tree
    }

    fn serial(tree: &GrTree, pred: Predicate, query: TimeExtent, ct: Day) -> Vec<(u64, [u8; 16])> {
        let mut c = tree.cursor(pred, query, ct);
        let mut out = Vec::new();
        while let Some((e, rowid)) = tree.cursor_next(&mut c).unwrap() {
            out.push((rowid, e.encode_array()));
        }
        out.sort_unstable();
        out
    }

    #[test]
    fn parallel_matches_serial_across_degrees() {
        let tree = build(400);
        let query = extent(100, Some(400), 100, Some(400));
        for pred in [Predicate::Overlaps, Predicate::Contains] {
            let want = serial(&tree, pred, query, Day(700));
            let reader = tree.reader();
            for workers in [1, 2, 4, 8] {
                let got = parallel_scan(&reader, pred, query, Day(700), workers)
                    .unwrap()
                    .rows
                    .iter()
                    .map(|(e, rowid)| (*rowid, e.encode_array()))
                    .collect::<Vec<_>>();
                assert_eq!(got, want, "{pred} at degree {workers} diverged");
            }
        }
    }

    #[test]
    fn height_one_tree_scans_inline() {
        let tree = build(3);
        let query = extent(0, None, 0, None);
        let reader = tree.reader();
        let out = parallel_scan(&reader, Predicate::Overlaps, query, Day(700), 8).unwrap();
        assert_eq!(out.stats.workers, 1);
        assert_eq!(
            out.rows.len(),
            serial(&tree, Predicate::Overlaps, query, Day(700)).len()
        );
    }
}
