//! GR-tree node layout.
//!
//! "The layout of a GR-tree node does not differ significantly from the
//! layout of an R\*-tree node" (Section 3): both entry kinds occupy 24
//! bytes — four timestamps (16 bytes, with `i32::MAX` as the `UC`/`NOW`
//! sentinel) plus an 8-byte payload. A leaf payload is the rowid; a
//! non-leaf payload packs the child page number with the `Rectangle`
//! and `Hidden` flags.

use crate::{GrError, Result};
use grt_sbspace::page::{page_from_slice, PageBuf, PAGE_SIZE};
use grt_temporal::{Day, RegionSpec, TimeExtent, TtEnd, VtEnd};

const MAGIC: &[u8; 4] = b"GRTN";
const HEADER_LEN: usize = 8;
/// Bytes per entry (both kinds).
pub const ENTRY_LEN: usize = 24;
/// Fan-out ceiling of a 4 KiB page.
pub const MAX_FANOUT: usize = (PAGE_SIZE - HEADER_LEN) / ENTRY_LEN;

const FLAG_RECT: u64 = 1 << 32;
const FLAG_HIDDEN: u64 = 1 << 33;
const SENTINEL: i32 = i32::MAX;

/// A leaf entry: the tuple's exact time extent and its rowid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeafEntry {
    /// The indexed tuple's 4TS time extent.
    pub extent: TimeExtent,
    /// Pointer to the data tuple.
    pub rowid: u64,
}

/// A non-leaf entry: a minimum bounding region and a child pointer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InternalEntry {
    /// The unresolved bounding region (timestamps + flags).
    pub spec: RegionSpec,
    /// Child node's logical page number.
    pub child: u32,
}

impl LeafEntry {
    /// The entry's unresolved region descriptor.
    pub fn spec(&self) -> RegionSpec {
        self.extent.spec()
    }
}

/// A GR-tree node image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GrNode {
    /// A leaf node.
    Leaf(Vec<LeafEntry>),
    /// An internal node at the given level (>= 1).
    Internal {
        /// The node's level (leaves are level 0).
        level: u16,
        /// Child entries.
        entries: Vec<InternalEntry>,
    },
}

impl GrNode {
    /// The node's level (0 for leaves).
    pub fn level(&self) -> u16 {
        match self {
            GrNode::Leaf(_) => 0,
            GrNode::Internal { level, .. } => *level,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        match self {
            GrNode::Leaf(v) => v.len(),
            GrNode::Internal { entries, .. } => entries.len(),
        }
    }

    /// True when the node has no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True for leaf nodes.
    pub fn is_leaf(&self) -> bool {
        matches!(self, GrNode::Leaf(_))
    }

    /// The region specs of all entries (for bounding computations).
    pub fn specs(&self) -> Vec<RegionSpec> {
        match self {
            GrNode::Leaf(v) => v.iter().map(LeafEntry::spec).collect(),
            GrNode::Internal { entries, .. } => entries.iter().map(|e| e.spec).collect(),
        }
    }

    /// The minimum bounding region of the node at current time `ct`.
    pub fn bound(&self, ct: Day) -> RegionSpec {
        grt_temporal::bound_entries(&self.specs(), ct)
    }

    /// Serialises into a page image.
    pub fn encode(&self) -> PageBuf {
        assert!(self.len() <= MAX_FANOUT, "gr-node overflow");
        let mut buf = vec![0u8; PAGE_SIZE];
        buf[0..4].copy_from_slice(MAGIC);
        buf[4..6].copy_from_slice(&self.level().to_le_bytes());
        buf[6..8].copy_from_slice(&(self.len() as u16).to_le_bytes());
        match self {
            GrNode::Leaf(entries) => {
                for (i, e) in entries.iter().enumerate() {
                    let off = HEADER_LEN + i * ENTRY_LEN;
                    e.extent.encode(&mut buf[off..off + 16]);
                    buf[off + 16..off + 24].copy_from_slice(&e.rowid.to_le_bytes());
                }
            }
            GrNode::Internal { entries, .. } => {
                for (i, e) in entries.iter().enumerate() {
                    let off = HEADER_LEN + i * ENTRY_LEN;
                    encode_spec_timestamps(&e.spec, &mut buf[off..off + 16]);
                    let mut payload = e.child as u64;
                    if e.spec.rect {
                        payload |= FLAG_RECT;
                    }
                    if e.spec.hidden {
                        payload |= FLAG_HIDDEN;
                    }
                    buf[off + 16..off + 24].copy_from_slice(&payload.to_le_bytes());
                }
            }
        }
        page_from_slice(&buf)
    }

    /// Parses a page image.
    pub fn decode(buf: &[u8; PAGE_SIZE]) -> Result<GrNode> {
        if &buf[0..4] != MAGIC {
            return Err(GrError::Corrupt("bad gr-node magic".into()));
        }
        let level = u16::from_le_bytes(buf[4..6].try_into().unwrap());
        let count = u16::from_le_bytes(buf[6..8].try_into().unwrap()) as usize;
        if count > MAX_FANOUT {
            return Err(GrError::Corrupt(format!("entry count {count}")));
        }
        if level == 0 {
            let mut entries = Vec::with_capacity(count);
            for i in 0..count {
                let off = HEADER_LEN + i * ENTRY_LEN;
                let extent = TimeExtent::decode(&buf[off..off + 16])?;
                let rowid = u64::from_le_bytes(buf[off + 16..off + 24].try_into().unwrap());
                entries.push(LeafEntry { extent, rowid });
            }
            Ok(GrNode::Leaf(entries))
        } else {
            let mut entries = Vec::with_capacity(count);
            for i in 0..count {
                let off = HEADER_LEN + i * ENTRY_LEN;
                let payload = u64::from_le_bytes(buf[off + 16..off + 24].try_into().unwrap());
                let spec = decode_spec_timestamps(
                    &buf[off..off + 16],
                    payload & FLAG_RECT != 0,
                    payload & FLAG_HIDDEN != 0,
                )?;
                entries.push(InternalEntry {
                    spec,
                    child: payload as u32,
                });
            }
            Ok(GrNode::Internal { level, entries })
        }
    }
}

fn encode_spec_timestamps(spec: &RegionSpec, out: &mut [u8]) {
    let tte = match spec.tt_end {
        TtEnd::Ground(d) => d.0,
        TtEnd::Uc => SENTINEL,
    };
    let vte = match spec.vt_end {
        VtEnd::Ground(d) => d.0,
        VtEnd::Now => SENTINEL,
    };
    out[0..4].copy_from_slice(&spec.tt_begin.0.to_le_bytes());
    out[4..8].copy_from_slice(&tte.to_le_bytes());
    out[8..12].copy_from_slice(&spec.vt_begin.0.to_le_bytes());
    out[12..16].copy_from_slice(&vte.to_le_bytes());
}

fn decode_spec_timestamps(buf: &[u8], rect: bool, hidden: bool) -> Result<RegionSpec> {
    let w = |i: usize| i32::from_le_bytes(buf[i..i + 4].try_into().unwrap());
    let tte = w(4);
    let vte = w(12);
    Ok(RegionSpec {
        tt_begin: Day(w(0)),
        tt_end: if tte == SENTINEL {
            TtEnd::Uc
        } else {
            TtEnd::Ground(Day(tte))
        },
        vt_begin: Day(w(8)),
        vt_end: if vte == SENTINEL {
            VtEnd::Now
        } else {
            VtEnd::Ground(Day(vte))
        },
        rect,
        hidden,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn extent(ttb: i32, tte: Option<i32>, vtb: i32, vte: Option<i32>) -> TimeExtent {
        TimeExtent::from_parts(
            Day(ttb),
            tte.map_or(TtEnd::Uc, |x| TtEnd::Ground(Day(x))),
            Day(vtb),
            vte.map_or(VtEnd::Now, |x| VtEnd::Ground(Day(x))),
        )
        .unwrap()
    }

    #[test]
    fn leaf_roundtrip() {
        let entries = vec![
            LeafEntry {
                extent: extent(10, None, 10, None),
                rowid: 42,
            },
            LeafEntry {
                extent: extent(5, Some(30), 0, Some(20)),
                rowid: u64::MAX >> 2,
            },
        ];
        let node = GrNode::Leaf(entries);
        assert_eq!(GrNode::decode(&node.encode()).unwrap(), node);
    }

    #[test]
    fn internal_roundtrip_with_flags() {
        let mk = |rect, hidden| InternalEntry {
            spec: RegionSpec {
                tt_begin: Day(1),
                tt_end: TtEnd::Uc,
                vt_begin: Day(0),
                vt_end: if hidden {
                    VtEnd::Ground(Day(99))
                } else {
                    VtEnd::Now
                },
                rect,
                hidden,
            },
            child: 7,
        };
        for (rect, hidden) in [(false, false), (true, false), (false, true)] {
            let node = GrNode::Internal {
                level: 2,
                entries: vec![mk(rect, hidden)],
            };
            let decoded = GrNode::decode(&node.encode()).unwrap();
            assert_eq!(decoded, node, "rect={rect} hidden={hidden}");
        }
    }

    #[test]
    fn garbage_rejected() {
        assert!(GrNode::decode(&grt_sbspace::page::zeroed_page()).is_err());
    }

    #[test]
    fn bound_of_leaf_matches_manual() {
        let node = GrNode::Leaf(vec![
            LeafEntry {
                extent: extent(10, None, 10, None),
                rowid: 1,
            },
            LeafEntry {
                extent: extent(20, None, 15, None),
                rowid: 2,
            },
        ]);
        let b = node.bound(Day(100));
        assert!(b.grows_tt());
        assert!(b.grows_vt(Day(100)));
        assert_eq!(b.tt_begin, Day(10));
        assert_eq!(b.vt_begin, Day(10));
    }

    #[test]
    fn fanout_fits_page() {
        let entries: Vec<LeafEntry> = (0..MAX_FANOUT)
            .map(|i| LeafEntry {
                extent: extent(i as i32, Some(i as i32 + 1), 0, Some(1)),
                rowid: i as u64,
            })
            .collect();
        let node = GrNode::Leaf(entries);
        assert_eq!(GrNode::decode(&node.encode()).unwrap(), node);
    }
}
