//! Bulk loading and vacuuming.
//!
//! Section 5.5 of the paper: "Sometimes vacuuming will have to be
//! performed to delete all data that is more than, for example, five
//! years old. ... A straightforward solution is to drop the index and
//! then create it from scratch using a bulk loading algorithm." This
//! module provides both pieces: an STR-style bottom-up bulk load over
//! region centres, and a rebuild-based vacuum.

use crate::entry::{GrNode, InternalEntry, LeafEntry};
use crate::tree::{GrTree, GrTreeOptions};
use crate::Result;
use grt_sbspace::LoHandle;
use grt_temporal::{bound_entries, Day, RegionSpec, TimeExtent, TtEnd};

/// Bulk-loads a GR-tree from `entries` into an empty large object using
/// sort-tile-recursive packing over resolved region centres at `ct`.
pub fn bulk_load(
    lo: LoHandle,
    mut entries: Vec<LeafEntry>,
    ct: Day,
    opts: GrTreeOptions,
) -> Result<GrTree> {
    let mut tree = GrTree::create(lo, opts)?;
    if entries.is_empty() {
        return Ok(tree);
    }
    // Target fill: ~90% of fan-out, the classical packing compromise.
    let cap = (tree.max_entries() * 9 / 10).max(2);
    let min = tree.min_fill();
    let center = |e: &LeafEntry| {
        let m = e.extent.region(ct).mbr();
        (
            m.tt1.0 as i64 + m.tt2.0 as i64,
            m.vt1.0 as i64 + m.vt2.0 as i64,
        )
    };
    // STR: sort by tt-centre, slice into vertical slabs, sort each slab
    // by vt-centre, pack runs of `cap`.
    entries.sort_by_key(|e| center(e).0);
    let n = entries.len();
    let leaves_needed = n.div_ceil(cap);
    let slabs = (leaves_needed as f64).sqrt().ceil() as usize;
    let per_slab = n.div_ceil(slabs.max(1));
    let mut leaf_nodes: Vec<GrNode> = Vec::new();
    for slab_range in balanced_runs(n, per_slab.max(1), min) {
        let mut slab: Vec<LeafEntry> = entries[slab_range].to_vec();
        slab.sort_by_key(|e| center(e).1);
        for run in balanced_runs(slab.len(), cap, min) {
            leaf_nodes.push(GrNode::Leaf(slab[run].to_vec()));
        }
    }
    // Write leaves and build parent levels bottom-up.
    let mut level_entries: Vec<InternalEntry> = Vec::new();
    for node in &leaf_nodes {
        let bound = node.bound(ct);
        let page = tree.bulk_append(node)?;
        level_entries.push(InternalEntry {
            spec: bound,
            child: page,
        });
    }
    let mut level = 1u16;
    while level_entries.len() > 1 {
        let mut next: Vec<InternalEntry> = Vec::new();
        for run in balanced_runs(level_entries.len(), cap, min) {
            let node = GrNode::Internal {
                level,
                entries: level_entries[run].to_vec(),
            };
            let bound = node.bound(ct);
            let page = tree.bulk_append(&node)?;
            next.push(InternalEntry {
                spec: bound,
                child: page,
            });
        }
        level_entries = next;
        level += 1;
    }
    tree.bulk_finish(level_entries[0].child, level as u32, n as u64)?;
    Ok(tree)
}

/// Splits `n` items into runs of at most `cap`, each of at least `min`
/// items (when `n >= min`): a short final run borrows from its
/// predecessor so no packed node violates the minimum-fill invariant.
fn balanced_runs(n: usize, cap: usize, min: usize) -> Vec<std::ops::Range<usize>> {
    let mut runs = Vec::new();
    let mut start = 0usize;
    while start < n {
        let remaining = n - start;
        let take = if remaining > cap && remaining - cap < min && remaining >= 2 * min {
            // Leave enough behind for a legal final run.
            remaining - min
        } else {
            remaining.min(cap)
        };
        runs.push(start..start + take.min(cap).max(1));
        start += take.min(cap).max(1);
    }
    runs
}

/// Rebuild-based vacuum: keeps only the entries `keep` accepts,
/// bulk-loading them into a fresh large object. Returns the new tree and
/// the number of removed entries.
pub fn vacuum_rebuild(
    tree: GrTree,
    fresh_lo: LoHandle,
    ct: Day,
    mut keep: impl FnMut(&LeafEntry) -> bool,
) -> Result<(GrTree, u64)> {
    let survivors = collect_leaves(&tree, |e| keep(e))?;
    let removed = tree.len() - survivors.len() as u64;
    let opts = tree.options();
    drop(tree.into_lo()?);
    let new_tree = bulk_load(fresh_lo, survivors, ct, opts)?;
    Ok((new_tree, removed))
}

/// The standard vacuum predicate of the paper's example: keep entries
/// whose transaction time is still open or ended within the horizon.
pub fn not_older_than(cutoff: Day) -> impl FnMut(&LeafEntry) -> bool {
    move |e: &LeafEntry| match e.extent.tt_end {
        TtEnd::Uc => true,
        TtEnd::Ground(end) => end >= cutoff,
    }
}

/// Scans every leaf entry, returning those the filter accepts.
pub fn collect_leaves(
    tree: &GrTree,
    mut filter: impl FnMut(&LeafEntry) -> bool,
) -> Result<Vec<LeafEntry>> {
    let mut out = Vec::new();
    let mut stack = vec![tree.root_page()];
    while let Some(page) = stack.pop() {
        match tree.read_node(page)? {
            GrNode::Leaf(entries) => out.extend(entries.into_iter().filter(|e| filter(e))),
            GrNode::Internal { entries, .. } => stack.extend(entries.iter().map(|e| e.child)),
        }
    }
    Ok(out)
}

/// The bound of a whole entry set — exposed for tests that validate the
/// bulk-loaded root.
pub fn bound_of(entries: &[LeafEntry], ct: Day) -> RegionSpec {
    let specs: Vec<RegionSpec> = entries.iter().map(LeafEntry::spec).collect();
    bound_entries(&specs, ct)
}

/// Convenience: bulk-load from bare `(extent, rowid)` pairs.
pub fn bulk_load_pairs(
    lo: LoHandle,
    pairs: &[(u64, TimeExtent)],
    ct: Day,
    opts: GrTreeOptions,
) -> Result<GrTree> {
    let entries = pairs
        .iter()
        .map(|(rowid, extent)| LeafEntry {
            extent: *extent,
            rowid: *rowid,
        })
        .collect();
    bulk_load(lo, entries, ct, opts)
}
