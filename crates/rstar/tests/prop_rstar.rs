//! Property-based R\*-tree tests: random insert/delete churn against a
//! linear-scan oracle, with invariants checked throughout.

use grt_rstar::{RStarOptions, RStarTree, Rect2, SpatialPredicate};
use grt_sbspace::{IsolationLevel, LoHandle, LockMode, Sbspace, SbspaceOptions};
use proptest::prelude::*;

fn fresh_lo() -> LoHandle {
    let sb = Sbspace::mem(SbspaceOptions {
        pool_pages: 8192,
        ..Default::default()
    });
    let txn = sb.begin(IsolationLevel::ReadCommitted);
    let lo = sb.create_lo(&txn).unwrap();
    let h = sb.open_lo(&txn, lo, LockMode::Exclusive).unwrap();
    std::mem::forget(txn);
    std::mem::forget(sb);
    h
}

fn arb_rect() -> impl Strategy<Value = Rect2> {
    (-100i32..400, 0i32..60, -100i32..400, 0i32..60)
        .prop_map(|(x, w, y, h)| Rect2::new(x, x + w, y, y + h))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn churn_matches_linear_scan(
        ops in proptest::collection::vec((arb_rect(), proptest::bool::ANY), 1..150),
        query in arb_rect(),
        reinsert_pct in prop_oneof![Just(0u32), Just(30u32)],
    ) {
        let mut tree = RStarTree::create(
            fresh_lo(),
            RStarOptions {
                max_entries: 6,
                reinsert_pct,
                ..Default::default()
            },
        )
        .unwrap();
        let mut live: Vec<(u64, Rect2)> = Vec::new();
        let mut next = 0u64;
        for (rect, delete) in ops {
            if delete && !live.is_empty() {
                let (id, r) = live.swap_remove((rect.x1.unsigned_abs() as usize) % live.len());
                prop_assert!(tree.delete(r, id).unwrap().found);
            } else {
                tree.insert(rect, next).unwrap();
                live.push((next, rect));
                next += 1;
            }
        }
        tree.check().unwrap();
        for pred in [
            SpatialPredicate::Overlap,
            SpatialPredicate::Within,
            SpatialPredicate::Contains,
            SpatialPredicate::Equal,
        ] {
            let mut got = tree.search(pred, &query).unwrap();
            let mut expected: Vec<u64> = live
                .iter()
                .filter(|(_, r)| r.eval(pred, &query))
                .map(|(id, _)| *id)
                .collect();
            got.sort_unstable();
            expected.sort_unstable();
            prop_assert_eq!(got, expected, "{:?}", pred);
        }
    }

    /// The tree never loses entries across arbitrarily many deletions
    /// of the same rectangle value with distinct rowids.
    #[test]
    fn duplicate_rectangles_are_tracked_by_rowid(n in 1usize..60, kill in 0usize..60) {
        let mut tree = RStarTree::create(
            fresh_lo(),
            RStarOptions {
                max_entries: 5,
                ..Default::default()
            },
        )
        .unwrap();
        let r = Rect2::new(10, 20, 10, 20);
        for id in 0..n as u64 {
            tree.insert(r, id).unwrap();
        }
        let kill = kill % n;
        prop_assert!(tree.delete(r, kill as u64).unwrap().found);
        prop_assert!(!tree.delete(r, kill as u64).unwrap().found);
        let hits = tree.search(SpatialPredicate::Equal, &r).unwrap();
        prop_assert_eq!(hits.len(), n - 1);
        prop_assert!(!hits.contains(&(kill as u64)));
        tree.check().unwrap();
    }
}
