//! The R\*-tree baseline.
//!
//! The GR-tree "is based on the R\*-tree" (Beckmann et al., SIGMOD
//! 1990), and the paper's performance claims are relative to R\*-tree
//! adaptations for bitemporal data. This crate provides:
//!
//! * a complete disk-resident R\*-tree over 2-D integer rectangles,
//!   stored — like the GR-tree DataBlade — inside a single sbspace
//!   large object, one node per page (ChooseSubtree with overlap
//!   enlargement at the leaf level, margin-driven split-axis selection,
//!   forced reinsertion, deletion with tree condensation);
//! * the two classical adaptations used as comparison points for
//!   indexing now-relative data with an ordinary spatial index
//!   ([`bitemporal`]): substituting `UC`/`NOW` with the **maximum
//!   timestamp** and substituting them with the **current time** at
//!   insertion, both of which require an exact refinement step and
//!   whose bounding rectangles are either enormous (max-timestamp) or
//!   stale (current-time) — exactly the dead-space/overlap pathologies
//!   that motivate the GR-tree.

pub mod bitemporal;
pub mod bulk;
pub mod cursor;
pub mod geom;
pub mod meta;
pub mod node;
pub mod parallel;
pub mod stats;
pub mod tree;

pub use bulk::{bulk_load, bulk_load_pairs};
pub use cursor::{NodeSource, RStarCursor};
pub use geom::{Rect2, SpatialPredicate};
pub use parallel::{parallel_scan, ParallelScan, ParallelScanStats, RStarTreeReader};
pub use stats::TreeQuality;
pub use tree::{RStarOptions, RStarTree};

/// Errors from the R\*-tree layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RStarError {
    /// Underlying storage failure.
    Storage(grt_sbspace::SbError),
    /// The large object does not contain a valid R*-tree.
    Corrupt(String),
    /// API misuse.
    Usage(String),
}

impl From<grt_sbspace::SbError> for RStarError {
    fn from(e: grt_sbspace::SbError) -> Self {
        RStarError::Storage(e)
    }
}

impl std::fmt::Display for RStarError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RStarError::Storage(e) => write!(f, "storage: {e}"),
            RStarError::Corrupt(m) => write!(f, "corrupt r*-tree: {m}"),
            RStarError::Usage(m) => write!(f, "usage: {m}"),
        }
    }
}

impl std::error::Error for RStarError {}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, RStarError>;
