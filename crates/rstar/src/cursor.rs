//! Depth-first scan cursors.
//!
//! A cursor captures the tree-traversal state between `am_getnext`
//! calls (the paper's `Cursor` object created by `Tree::search()`): a
//! stack of visited nodes with the next entry index per node. The node
//! images are cached in the stack frame, so each node is read once per
//! visit.

use crate::geom::{Rect2, SpatialPredicate};
use crate::node::{Entry, Node};
use crate::Result;
use grt_metrics::TreeMetrics;
use std::collections::HashSet;

/// Where a cursor reads its nodes from: an [`RStarTree`](crate::RStarTree)
/// (locked handle, sees the owning transaction's writes) or an
/// [`RStarTreeReader`](crate::RStarTreeReader) (lock-free frozen view).
/// Node pages are immutable once published, so the traversal needs no
/// per-node latch coupling on either source.
pub trait NodeSource {
    /// Decodes the node at `page` (no counter side effects — the cursor
    /// bumps `nodes_visited` itself).
    fn read_node(&self, page: u32) -> Result<Node>;
    /// The operation counters to charge the traversal to.
    fn metrics(&self) -> &TreeMetrics;
    /// Announces pages the traversal will likely read next, so a source
    /// backed by a prefetching buffer pool can overlap the reads with
    /// the cursor's compute. Advisory; the default does nothing.
    fn prefetch(&self, _pages: &[u32]) {}
}

struct Frame {
    entries: Vec<Entry>,
    level: u16,
    next: usize,
}

/// A depth-first scan over qualifying entries.
pub struct RStarCursor {
    pred: SpatialPredicate,
    query: Rect2,
    root: u32,
    stack: Vec<Frame>,
    primed: bool,
    /// Entries already returned, kept across [`RStarCursor::restart`]
    /// so a post-condense re-walk does not re-return earlier rows.
    emitted: HashSet<(u64, [i32; 4])>,
}

impl RStarCursor {
    pub(crate) fn new(pred: SpatialPredicate, query: Rect2, root: u32) -> RStarCursor {
        RStarCursor {
            pred,
            query,
            root,
            stack: Vec::new(),
            primed: false,
            emitted: HashSet::new(),
        }
    }

    /// The query rectangle this cursor scans with.
    pub fn query(&self) -> Rect2 {
        self.query
    }

    /// Resets to the beginning (used after tree condensation).
    pub(crate) fn restart(&mut self, root: u32) {
        self.root = root;
        self.stack.clear();
        self.primed = false;
    }

    fn push<S: NodeSource>(&mut self, src: &S, page: u32) -> Result<()> {
        src.metrics().nodes_visited.inc();
        let node = src.read_node(page)?;
        if node.level > 0 {
            // Announce every child this node will descend into (the
            // same consistency test `next()` applies) so their reads
            // overlap the per-entry compute.
            let kids: Vec<u32> = node
                .entries
                .iter()
                .filter(|e| e.rect.consistent(self.pred, &self.query))
                .map(|e| e.payload as u32)
                .collect();
            if kids.len() > 1 {
                src.prefetch(&kids);
            }
        }
        self.stack.push(Frame {
            entries: node.entries,
            level: node.level,
            next: 0,
        });
        Ok(())
    }

    pub(crate) fn next<S: NodeSource>(&mut self, src: &S) -> Result<Option<(Rect2, u64)>> {
        if !self.primed {
            self.primed = true;
            self.push(src, self.root)?;
        }
        loop {
            let Some(frame) = self.stack.last_mut() else {
                return Ok(None);
            };
            if frame.next >= frame.entries.len() {
                self.stack.pop();
                continue;
            }
            let entry = frame.entries[frame.next];
            frame.next += 1;
            if frame.level == 0 {
                let r = entry.rect;
                if r.eval(self.pred, &self.query)
                    && self
                        .emitted
                        .insert((entry.payload, [r.x1, r.x2, r.y1, r.y2]))
                {
                    return Ok(Some((entry.rect, entry.payload)));
                }
            } else if entry.rect.consistent(self.pred, &self.query) {
                self.push(src, entry.payload as u32)?;
            }
        }
    }
}
