//! Closed 2-D integer rectangles and the spatial predicates of the
//! R-tree operator class.

/// A closed axis-aligned rectangle over integer coordinates. An
/// inverted interval denotes the empty rectangle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rect2 {
    pub x1: i32,
    pub x2: i32,
    pub y1: i32,
    pub y2: i32,
}

/// The strategy predicates of the R-tree operator class (the paper's
/// Section 5.2 lists `Overlap`, `Equal`, `Contains`, `Within`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpatialPredicate {
    /// Shares at least one point with the query rectangle.
    Overlap,
    /// Contains the query rectangle.
    Contains,
    /// Lies within the query rectangle.
    Within,
    /// Equals the query rectangle.
    Equal,
}

impl Rect2 {
    /// Builds a rectangle (no normalisation: inverted = empty).
    pub fn new(x1: i32, x2: i32, y1: i32, y2: i32) -> Rect2 {
        Rect2 { x1, x2, y1, y2 }
    }

    /// The canonical empty rectangle.
    pub fn empty() -> Rect2 {
        Rect2 {
            x1: 1,
            x2: 0,
            y1: 1,
            y2: 0,
        }
    }

    /// True when no point lies inside.
    pub fn is_empty(&self) -> bool {
        self.x1 > self.x2 || self.y1 > self.y2
    }

    /// Number of integer cells covered.
    pub fn area(&self) -> i128 {
        if self.is_empty() {
            return 0;
        }
        (self.x2 as i128 - self.x1 as i128 + 1) * (self.y2 as i128 - self.y1 as i128 + 1)
    }

    /// Half-perimeter (the R\*-tree "margin").
    pub fn margin(&self) -> i64 {
        if self.is_empty() {
            return 0;
        }
        (self.x2 as i64 - self.x1 as i64 + 1) + (self.y2 as i64 - self.y1 as i64 + 1)
    }

    /// Smallest rectangle covering both.
    #[must_use]
    pub fn union(&self, other: &Rect2) -> Rect2 {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        Rect2 {
            x1: self.x1.min(other.x1),
            x2: self.x2.max(other.x2),
            y1: self.y1.min(other.y1),
            y2: self.y2.max(other.y2),
        }
    }

    /// The common part (possibly empty).
    #[must_use]
    pub fn intersection(&self, other: &Rect2) -> Rect2 {
        Rect2 {
            x1: self.x1.max(other.x1),
            x2: self.x2.min(other.x2),
            y1: self.y1.max(other.y1),
            y2: self.y2.min(other.y2),
        }
    }

    /// Overlap area with another rectangle.
    pub fn overlap_area(&self, other: &Rect2) -> i128 {
        self.intersection(other).area()
    }

    /// True when the rectangles share a point.
    pub fn overlaps(&self, other: &Rect2) -> bool {
        !self.is_empty()
            && !other.is_empty()
            && self.x1 <= other.x2
            && other.x1 <= self.x2
            && self.y1 <= other.y2
            && other.y1 <= self.y2
    }

    /// True when `other` lies fully inside `self`.
    pub fn contains(&self, other: &Rect2) -> bool {
        if other.is_empty() {
            return true;
        }
        !self.is_empty()
            && self.x1 <= other.x1
            && other.x2 <= self.x2
            && self.y1 <= other.y1
            && other.y2 <= self.y2
    }

    /// Squared distance between centres (doubled coordinates to stay in
    /// integers) — used by forced reinsertion's "farthest from centre".
    pub fn center_dist2(&self, other: &Rect2) -> i128 {
        let cx = (self.x1 as i128 + self.x2 as i128) - (other.x1 as i128 + other.x2 as i128);
        let cy = (self.y1 as i128 + self.y2 as i128) - (other.y1 as i128 + other.y2 as i128);
        cx * cx + cy * cy
    }

    /// Evaluates a spatial predicate with `self` as the stored value and
    /// `query` as the search argument.
    pub fn eval(&self, pred: SpatialPredicate, query: &Rect2) -> bool {
        match pred {
            SpatialPredicate::Overlap => self.overlaps(query),
            SpatialPredicate::Contains => self.contains(query),
            SpatialPredicate::Within => query.contains(self),
            SpatialPredicate::Equal => self == query || (self.is_empty() && query.is_empty()),
        }
    }

    /// Can a descendant of a node bounded by `self` satisfy `pred`
    /// against `query`? (The descend test of the search.)
    pub fn consistent(&self, pred: SpatialPredicate, query: &Rect2) -> bool {
        match pred {
            SpatialPredicate::Overlap | SpatialPredicate::Within | SpatialPredicate::Equal => {
                self.overlaps(query)
            }
            SpatialPredicate::Contains => self.contains(query),
        }
    }

    /// Fixed 16-byte encoding.
    pub fn encode(&self, out: &mut [u8]) {
        out[0..4].copy_from_slice(&self.x1.to_le_bytes());
        out[4..8].copy_from_slice(&self.x2.to_le_bytes());
        out[8..12].copy_from_slice(&self.y1.to_le_bytes());
        out[12..16].copy_from_slice(&self.y2.to_le_bytes());
    }

    /// Decodes the 16-byte encoding.
    pub fn decode(buf: &[u8]) -> Rect2 {
        let w = |i: usize| i32::from_le_bytes(buf[i..i + 4].try_into().unwrap());
        Rect2 {
            x1: w(0),
            x2: w(4),
            y1: w(8),
            y2: w(12),
        }
    }
}

impl std::fmt::Display for Rect2 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}..{}]x[{}..{}]", self.x1, self.x2, self.y1, self.y2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_margin_union_intersection() {
        let a = Rect2::new(0, 9, 0, 4);
        let b = Rect2::new(5, 14, 2, 12);
        assert_eq!(a.area(), 50);
        assert_eq!(a.margin(), 15);
        assert_eq!(a.union(&b), Rect2::new(0, 14, 0, 12));
        assert_eq!(a.intersection(&b), Rect2::new(5, 9, 2, 4));
        assert_eq!(a.overlap_area(&b), 15);
        assert!(a.overlaps(&b));
    }

    #[test]
    fn empty_behaviour() {
        let e = Rect2::empty();
        let a = Rect2::new(0, 5, 0, 5);
        assert!(e.is_empty());
        assert_eq!(e.area(), 0);
        assert_eq!(e.union(&a), a);
        assert!(!e.overlaps(&a));
        assert!(a.contains(&e));
        assert!(!e.contains(&a));
    }

    #[test]
    fn predicates() {
        let big = Rect2::new(0, 10, 0, 10);
        let small = Rect2::new(2, 4, 2, 4);
        assert!(big.eval(SpatialPredicate::Contains, &small));
        assert!(small.eval(SpatialPredicate::Within, &big));
        assert!(big.eval(SpatialPredicate::Overlap, &small));
        assert!(!small.eval(SpatialPredicate::Contains, &big));
        assert!(big.eval(SpatialPredicate::Equal, &big));
    }

    #[test]
    fn consistency_is_sound() {
        // If a child satisfies the predicate, its parent bound must pass
        // the consistency test.
        let children = [
            Rect2::new(0, 3, 0, 3),
            Rect2::new(5, 8, 5, 8),
            Rect2::new(2, 6, 1, 7),
        ];
        let bound = children.iter().fold(Rect2::empty(), |acc, r| acc.union(r));
        let queries = [Rect2::new(1, 2, 1, 2), Rect2::new(0, 10, 0, 10)];
        for q in &queries {
            for pred in [
                SpatialPredicate::Overlap,
                SpatialPredicate::Contains,
                SpatialPredicate::Within,
                SpatialPredicate::Equal,
            ] {
                for c in &children {
                    if c.eval(pred, q) {
                        assert!(bound.consistent(pred, q), "{pred:?} {c} {q}");
                    }
                }
            }
        }
    }

    #[test]
    fn codec_roundtrip() {
        let r = Rect2::new(-5, 100, 7, 7);
        let mut buf = [0u8; 16];
        r.encode(&mut buf);
        assert_eq!(Rect2::decode(&buf), r);
    }
}
