//! Indexing now-relative bitemporal data with a plain R\*-tree — the
//! comparison points of the GR-tree evaluation.
//!
//! An ordinary spatial index cannot store growing regions, so `UC` and
//! `NOW` must be substituted by ground values at insertion time. Two
//! classical substitutions are provided:
//!
//! * [`NowStrategy::MaxTimestamp`] — replace the variables with the
//!   maximum timestamp. Sound forever, but every now-relative tuple
//!   becomes a huge rectangle reaching to the end of time: bounding
//!   rectangles overlap massively and queries drown in false positives
//!   that exact refinement must filter out.
//! * [`NowStrategy::Horizon`] — replace the variables with the end of
//!   the current *time quantum* (`slack` days). Rectangles stay small,
//!   but every quantum roll-over forces all open tuples to be deleted
//!   and reinserted (the refresh cost the GR-tree avoids), and a missed
//!   refresh silently loses answers.
//!
//! Candidates from the rectangle index are *supersets* of the true
//! answer; [`refine`] applies the exact bitemporal predicate. The ratio
//! of candidates to true matches is the headline inefficiency the
//! benchmarks report.

use crate::geom::{Rect2, SpatialPredicate};
use crate::tree::RStarTree;
use crate::Result;
use grt_temporal::{Day, Predicate, TimeExtent, TtEnd, VtEnd};

/// How `UC`/`NOW` are grounded for storage in a rectangle index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NowStrategy {
    /// Substitute the maximum timestamp.
    MaxTimestamp,
    /// Substitute the end of the `slack`-day quantum containing the
    /// insertion time; requires a refresh at each quantum roll-over.
    Horizon {
        /// Quantum length in days (must be positive).
        slack: i32,
    },
}

impl NowStrategy {
    /// End of the quantum containing `ct` (Horizon only).
    pub fn quantum_end(self, ct: Day) -> Day {
        match self {
            NowStrategy::MaxTimestamp => Day::MAX,
            NowStrategy::Horizon { slack } => {
                let s = slack.max(1);
                Day((ct.0.div_euclid(s) + 1) * s)
            }
        }
    }

    /// The rectangle stored for `extent` when inserted at `ct`.
    ///
    /// Deterministic in `(extent, quantum(ct))`, so a deletion within
    /// the same quantum recomputes the identical rectangle.
    pub fn to_rect(self, extent: &TimeExtent, ct: Day) -> Rect2 {
        let cap = self.quantum_end(ct);
        let x2 = match extent.tt_end {
            TtEnd::Ground(d) => d,
            TtEnd::Uc => cap,
        };
        let y2 = match extent.vt_end {
            VtEnd::Ground(d) => d,
            // NOW can never exceed the (resolved) transaction-time end.
            VtEnd::Now => x2,
        };
        Rect2::new(extent.tt_begin.0, x2.0, extent.vt_begin.0, y2.0)
    }

    /// The query rectangle for a query extent evaluated at `ct`: the MBR
    /// of the exactly-resolved query region.
    pub fn query_rect(self, query: &TimeExtent, ct: Day) -> Rect2 {
        let mbr = query.region(ct).mbr();
        Rect2::new(mbr.tt1.0, mbr.tt2.0, mbr.vt1.0, mbr.vt2.0)
    }
}

/// A candidate set from the rectangle index plus the exact answer after
/// refinement.
#[derive(Debug, Clone, Default)]
pub struct RefinedSearch {
    /// Rowids whose stored rectangle passed the index test.
    pub candidates: Vec<u64>,
    /// Rowids whose exact bitemporal region satisfies the predicate.
    pub matches: Vec<u64>,
}

/// Runs an index search followed by exact refinement. `lookup` maps a
/// candidate rowid to its stored time extent (the base-table fetch whose
/// count is precisely the I/O the paper's refinement step pays).
pub fn refine(
    tree: &RStarTree,
    strategy: NowStrategy,
    pred: Predicate,
    query: &TimeExtent,
    ct: Day,
    mut lookup: impl FnMut(u64) -> TimeExtent,
) -> Result<RefinedSearch> {
    let qrect = strategy.query_rect(query, ct);
    // The rectangle test must never prune a true match, so the widest
    // sound spatial predicate (overlap) is used for every bitemporal
    // predicate except Contains, where the stored rectangle must at
    // least cover the query MBR.
    let spatial = match pred {
        Predicate::Contains => SpatialPredicate::Contains,
        _ => SpatialPredicate::Overlap,
    };
    let candidates = tree.search(spatial, &qrect)?;
    let mut out = RefinedSearch {
        matches: Vec::new(),
        candidates,
    };
    for &rowid in &out.candidates {
        let stored = lookup(rowid);
        if pred.eval(&stored, query, ct) {
            out.matches.push(rowid);
        }
    }
    Ok(out)
}

/// Entries due for refresh under the Horizon strategy: all open
/// (now-relative) extents once `new_ct` crosses into a new quantum.
/// Returns the `(old_rect, new_rect)` pair per entry.
pub fn horizon_refresh_plan(
    strategy: NowStrategy,
    open_entries: &[(u64, TimeExtent)],
    old_ct: Day,
    new_ct: Day,
) -> Vec<(u64, Rect2, Rect2)> {
    if strategy.quantum_end(old_ct) == strategy.quantum_end(new_ct) {
        return Vec::new();
    }
    open_entries
        .iter()
        .filter(|(_, e)| e.is_now_relative())
        .map(|(id, e)| {
            (
                *id,
                strategy.to_rect(e, old_ct),
                strategy.to_rect(e, new_ct),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{RStarOptions, RStarTree};
    use grt_sbspace::{IsolationLevel, LockMode, Sbspace, SbspaceOptions};

    fn fresh_tree() -> RStarTree {
        let sb = Sbspace::mem(SbspaceOptions {
            pool_pages: 4096,
            ..Default::default()
        });
        let txn = sb.begin(IsolationLevel::ReadCommitted);
        let lo = sb.create_lo(&txn).unwrap();
        let h = sb.open_lo(&txn, lo, LockMode::Exclusive).unwrap();
        std::mem::forget(txn);
        std::mem::forget(sb);
        RStarTree::create(
            h,
            RStarOptions {
                max_entries: 8,
                ..Default::default()
            },
        )
        .unwrap()
    }

    fn extent(ttb: i32, tte: Option<i32>, vtb: i32, vte: Option<i32>) -> TimeExtent {
        TimeExtent::from_parts(
            Day(ttb),
            tte.map_or(TtEnd::Uc, |x| TtEnd::Ground(Day(x))),
            Day(vtb),
            vte.map_or(VtEnd::Now, |x| VtEnd::Ground(Day(x))),
        )
        .unwrap()
    }

    fn history(n: i32) -> Vec<(u64, TimeExtent)> {
        (0..n)
            .map(|i| {
                let e = match i % 4 {
                    0 => extent(i, None, i, None),                    // growing stair
                    1 => extent(i, Some(i + 20), i, None),            // stopped stair
                    2 => extent(i, None, i.max(0) - 5, Some(i + 30)), // growing rect
                    _ => extent(i, Some(i + 10), i - 3, Some(i + 8)), // static rect
                };
                (i as u64, e)
            })
            .collect()
    }

    fn check_strategy(strategy: NowStrategy) {
        let data = history(200);
        let mut tree = fresh_tree();
        let insert_ct = Day(250); // after all tt_begins
        for (id, e) in &data {
            tree.insert(strategy.to_rect(e, insert_ct), *id).unwrap();
        }
        let ct = strategy.quantum_end(insert_ct).pred().min(Day(400));
        let ct = if matches!(strategy, NowStrategy::MaxTimestamp) {
            Day(400)
        } else {
            ct
        };
        let queries = [
            extent(100, Some(150), 50, Some(160)),
            extent(0, None, 0, None),
            extent(240, Some(245), 10, Some(20)),
        ];
        for q in &queries {
            for pred in Predicate::ALL {
                let got = refine(&tree, strategy, pred, q, ct, |id| data[id as usize].1).unwrap();
                let mut expected: Vec<u64> = data
                    .iter()
                    .filter(|(_, e)| pred.eval(e, q, ct))
                    .map(|(id, _)| *id)
                    .collect();
                let mut matches = got.matches.clone();
                expected.sort_unstable();
                matches.sort_unstable();
                assert_eq!(matches, expected, "{strategy:?} {pred} ct={ct:?}");
                assert!(got.candidates.len() >= got.matches.len());
            }
        }
    }

    #[test]
    fn max_timestamp_is_exact_after_refinement() {
        check_strategy(NowStrategy::MaxTimestamp);
    }

    #[test]
    fn horizon_is_exact_within_quantum() {
        check_strategy(NowStrategy::Horizon { slack: 1000 });
    }

    #[test]
    fn horizon_needs_refresh_across_quanta() {
        let strategy = NowStrategy::Horizon { slack: 50 };
        let open = vec![(0u64, extent(10, None, 10, None))];
        // Same quantum: nothing to do.
        assert!(horizon_refresh_plan(strategy, &open, Day(60), Day(70)).is_empty());
        // Quantum roll-over: the open entry must be reinserted.
        let plan = horizon_refresh_plan(strategy, &open, Day(60), Day(120));
        assert_eq!(plan.len(), 1);
        let (_, old_rect, new_rect) = plan[0];
        assert!(new_rect.x2 > old_rect.x2);
        // Static entries never need refreshing.
        let closed = vec![(1u64, extent(10, Some(30), 5, Some(20)))];
        assert!(horizon_refresh_plan(strategy, &closed, Day(60), Day(500)).is_empty());
    }

    #[test]
    fn max_timestamp_produces_more_candidates_than_matches() {
        // The headline pathology: now-relative entries stored to the end
        // of time match almost any query window in transaction time.
        let data = history(200);
        let mut tree = fresh_tree();
        for (id, e) in &data {
            tree.insert(NowStrategy::MaxTimestamp.to_rect(e, Day(250)), *id)
                .unwrap();
        }
        // A query window above the v = t diagonal: the true stairs never
        // reach it, but their max-timestamp rectangles claim they do.
        let q = extent(500, Some(510), 520, Some(560));
        let got = refine(
            &tree,
            NowStrategy::MaxTimestamp,
            Predicate::Overlaps,
            &q,
            Day(600),
            |id| data[id as usize].1,
        )
        .unwrap();
        assert!(
            got.candidates.len() > got.matches.len(),
            "expected false positives: {} candidates, {} matches",
            got.candidates.len(),
            got.matches.len()
        );
    }
}
