//! Bulk loading: the packed (sort-tile-recursive) build the baseline
//! access method uses for `CREATE INDEX` over an already-populated
//! table, mirroring the GR-tree's `bulk` module so the two builds stay
//! comparable.

use crate::node::{Entry, Node};
use crate::tree::{RStarOptions, RStarTree};
use crate::Result;
use grt_sbspace::LoHandle;

/// Bulk-loads an R\*-tree from `(rect, rowid)` entries into an empty
/// large object using sort-tile-recursive packing over rectangle
/// centres.
pub fn bulk_load(lo: LoHandle, mut entries: Vec<Entry>, opts: RStarOptions) -> Result<RStarTree> {
    let mut tree = RStarTree::create(lo, opts)?;
    if entries.is_empty() {
        return Ok(tree);
    }
    // Target fill: ~90% of fan-out, the classical packing compromise.
    let cap = (tree.max_entries() * 9 / 10).max(2);
    let min = tree.min_fill();
    let center = |e: &Entry| {
        (
            e.rect.x1 as i64 + e.rect.x2 as i64,
            e.rect.y1 as i64 + e.rect.y2 as i64,
        )
    };
    // STR: sort by x-centre, slice into vertical slabs, sort each slab
    // by y-centre, pack runs of `cap`.
    entries.sort_by_key(|e| center(e).0);
    let n = entries.len();
    let leaves_needed = n.div_ceil(cap);
    let slabs = (leaves_needed as f64).sqrt().ceil() as usize;
    let per_slab = n.div_ceil(slabs.max(1));
    let mut leaf_nodes: Vec<Node> = Vec::new();
    for slab_range in balanced_runs(n, per_slab.max(1), min) {
        let mut slab: Vec<Entry> = entries[slab_range].to_vec();
        slab.sort_by_key(|e| center(e).1);
        for run in balanced_runs(slab.len(), cap, min) {
            let mut node = Node::new(0);
            node.entries.extend_from_slice(&slab[run]);
            leaf_nodes.push(node);
        }
    }
    // Write leaves and build parent levels bottom-up.
    let mut level_entries: Vec<Entry> = Vec::new();
    for node in &leaf_nodes {
        let mbr = node.mbr();
        let page = tree.bulk_append(node)?;
        level_entries.push(Entry {
            rect: mbr,
            payload: page as u64,
        });
    }
    let mut level = 1u16;
    while level_entries.len() > 1 {
        let mut next: Vec<Entry> = Vec::new();
        for run in balanced_runs(level_entries.len(), cap, min) {
            let mut node = Node::new(level);
            node.entries.extend_from_slice(&level_entries[run]);
            let mbr = node.mbr();
            let page = tree.bulk_append(&node)?;
            next.push(Entry {
                rect: mbr,
                payload: page as u64,
            });
        }
        level_entries = next;
        level += 1;
    }
    tree.bulk_finish(level_entries[0].payload as u32, level as u32, n as u64)?;
    Ok(tree)
}

/// Splits `n` items into runs of at most `cap`, each of at least `min`
/// items (when `n >= min`): a short final run borrows from its
/// predecessor so no packed node violates the minimum-fill invariant.
fn balanced_runs(n: usize, cap: usize, min: usize) -> Vec<std::ops::Range<usize>> {
    let mut runs = Vec::new();
    let mut start = 0usize;
    while start < n {
        let remaining = n - start;
        let take = if remaining > cap && remaining - cap < min && remaining >= 2 * min {
            // Leave enough behind for a legal final run.
            remaining - min
        } else {
            remaining.min(cap)
        };
        runs.push(start..start + take.min(cap).max(1));
        start += take.min(cap).max(1);
    }
    runs
}

/// Convenience: bulk-load from bare `(rect, rowid)` pairs.
pub fn bulk_load_pairs(
    lo: LoHandle,
    pairs: &[(crate::geom::Rect2, u64)],
    opts: RStarOptions,
) -> Result<RStarTree> {
    let entries = pairs
        .iter()
        .map(|(rect, rowid)| Entry {
            rect: *rect,
            payload: *rowid,
        })
        .collect();
    bulk_load(lo, entries, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::{Rect2, SpatialPredicate};
    use grt_sbspace::{IsolationLevel, LoHandle, LockMode, Sbspace, SbspaceOptions};

    fn fresh_lo() -> LoHandle {
        let sb = Sbspace::mem(SbspaceOptions {
            pool_pages: 4096,
            ..Default::default()
        });
        let txn = sb.begin(IsolationLevel::ReadCommitted);
        let lo = sb.create_lo(&txn).unwrap();
        let h = sb.open_lo(&txn, lo, LockMode::Exclusive).unwrap();
        std::mem::forget(txn);
        std::mem::forget(sb);
        h
    }

    fn rect_for(i: i32) -> Rect2 {
        let x = (i * 37) % 1000;
        let y = (i * 59) % 1000;
        Rect2::new(x, x + 5 + i % 7, y, y + 3 + i % 11)
    }

    #[test]
    fn bulk_load_answers_match_incremental_build() {
        let n = 500;
        let pairs: Vec<(Rect2, u64)> = (0..n).map(|i| (rect_for(i), i as u64)).collect();
        let opts = RStarOptions {
            max_entries: 16,
            ..Default::default()
        };
        let bulk = bulk_load_pairs(fresh_lo(), &pairs, opts).unwrap();
        assert_eq!(bulk.len(), n as u64);
        bulk.check().unwrap();

        let mut incr = RStarTree::create(fresh_lo(), opts).unwrap();
        for (rect, id) in &pairs {
            incr.insert(*rect, *id).unwrap();
        }
        let queries = [
            Rect2::new(0, 100, 0, 100),
            Rect2::new(500, 600, 200, 900),
            Rect2::new(0, 1000, 0, 1000),
        ];
        for q in &queries {
            for pred in [
                SpatialPredicate::Overlap,
                SpatialPredicate::Within,
                SpatialPredicate::Contains,
                SpatialPredicate::Equal,
            ] {
                let mut a = bulk.search(pred, q).unwrap();
                let mut b = incr.search(pred, q).unwrap();
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b, "{pred:?} {q}");
            }
        }
        // Packing beats incremental growth on space.
        assert!(bulk.pages() <= incr.pages());
    }

    #[test]
    fn empty_and_tiny_loads() {
        let t = bulk_load_pairs(fresh_lo(), &[], RStarOptions::default()).unwrap();
        assert_eq!(t.len(), 0);
        let t = bulk_load_pairs(
            fresh_lo(),
            &[(Rect2::new(1, 2, 1, 2), 7)],
            RStarOptions::default(),
        )
        .unwrap();
        assert_eq!(t.len(), 1);
        t.check().unwrap();
        assert_eq!(
            t.search(SpatialPredicate::Overlap, &Rect2::new(0, 3, 0, 3))
                .unwrap(),
            vec![7]
        );
    }
}
