//! Tree-quality statistics: the "goodness" measures of the paper's
//! Section 3 — dead space and overlap per tree level.

use crate::geom::Rect2;
use crate::tree::RStarTree;
use crate::Result;
use std::collections::VecDeque;

/// Aggregates for one tree level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LevelQuality {
    /// Nodes at this level.
    pub nodes: u64,
    /// Entries across those nodes.
    pub entries: u64,
    /// Sum of node MBR areas.
    pub mbr_area: i128,
    /// Sum over nodes of `mbr area - sum(entry areas)` clamped at zero —
    /// the dead-space proxy (space in the bound covered by no entry,
    /// ignoring entry overlap).
    pub dead_space: i128,
    /// Sum over nodes of pairwise entry overlap areas.
    pub overlap: i128,
}

/// Quality per level, index 0 = leaves.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TreeQuality {
    /// Per-level aggregates, leaves first.
    pub levels: Vec<LevelQuality>,
}

impl TreeQuality {
    pub(crate) fn compute(tree: &RStarTree, root: u32, height: u32) -> Result<TreeQuality> {
        let mut levels = vec![LevelQuality::default(); height as usize];
        let mut queue = VecDeque::new();
        queue.push_back(root);
        while let Some(page) = queue.pop_front() {
            let node = tree.read_node(page)?;
            let lq = &mut levels[node.level as usize];
            lq.nodes += 1;
            lq.entries += node.entries.len() as u64;
            let mbr = node.mbr();
            lq.mbr_area += mbr.area();
            let covered: i128 = node.entries.iter().map(|e| e.rect.area()).sum();
            lq.dead_space += (mbr.area() - covered).max(0);
            for (i, a) in node.entries.iter().enumerate() {
                for b in &node.entries[i + 1..] {
                    lq.overlap += a.rect.overlap_area(&b.rect);
                }
            }
            if node.level > 0 {
                for e in &node.entries {
                    queue.push_back(e.payload as u32);
                }
            }
        }
        Ok(TreeQuality { levels })
    }

    /// Total overlap across all levels.
    pub fn total_overlap(&self) -> i128 {
        self.levels.iter().map(|l| l.overlap).sum()
    }

    /// Total dead space across all levels.
    pub fn total_dead_space(&self) -> i128 {
        self.levels.iter().map(|l| l.dead_space).sum()
    }

    /// Average leaf fill factor (entries per leaf).
    pub fn leaf_fill(&self) -> f64 {
        let leaves = &self.levels[0];
        if leaves.nodes == 0 {
            return 0.0;
        }
        leaves.entries as f64 / leaves.nodes as f64
    }
}

/// Exact pairwise-overlap metric for an arbitrary set of rectangles
/// (used by the figure-3 reproduction).
pub fn pairwise_overlap(rects: &[Rect2]) -> i128 {
    let mut total = 0i128;
    for (i, a) in rects.iter().enumerate() {
        for b in &rects[i + 1..] {
            total += a.overlap_area(b);
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairwise_overlap_counts() {
        let rects = [
            Rect2::new(0, 9, 0, 9),
            Rect2::new(5, 14, 0, 9),
            Rect2::new(100, 110, 0, 9),
        ];
        // Only the first pair overlaps: 5 columns x 10 rows.
        assert_eq!(pairwise_overlap(&rects), 50);
    }
}
