//! R\*-tree node pages: one node per sbspace page.

use crate::geom::Rect2;
use crate::{RStarError, Result};
use grt_sbspace::page::{page_from_slice, PageBuf, PAGE_SIZE};

const MAGIC: &[u8; 4] = b"RSTN";
const HEADER_LEN: usize = 8;
/// Bytes per entry: a rectangle plus a 64-bit payload (rowid in leaves,
/// child page number in internal nodes).
pub const ENTRY_LEN: usize = 24;
/// The hard fan-out ceiling a 4 KiB page supports.
pub const MAX_FANOUT: usize = (PAGE_SIZE - HEADER_LEN) / ENTRY_LEN;

/// One node entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Entry {
    /// Bounding rectangle of the child (internal) or object (leaf).
    pub rect: Rect2,
    /// Row id (leaf) or child page number (internal).
    pub payload: u64,
}

/// An in-memory node image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    /// 0 for leaves, increasing toward the root.
    pub level: u16,
    /// The node's entries.
    pub entries: Vec<Entry>,
}

impl Node {
    /// An empty node at `level`.
    pub fn new(level: u16) -> Node {
        Node {
            level,
            entries: Vec::new(),
        }
    }

    /// True for leaf nodes.
    pub fn is_leaf(&self) -> bool {
        self.level == 0
    }

    /// The minimum bounding rectangle of all entries.
    pub fn mbr(&self) -> Rect2 {
        self.entries
            .iter()
            .fold(Rect2::empty(), |acc, e| acc.union(&e.rect))
    }

    /// Serialises into a page image.
    pub fn encode(&self) -> PageBuf {
        assert!(self.entries.len() <= MAX_FANOUT, "node overflow");
        let mut buf = vec![0u8; PAGE_SIZE];
        buf[0..4].copy_from_slice(MAGIC);
        buf[4..6].copy_from_slice(&self.level.to_le_bytes());
        buf[6..8].copy_from_slice(&(self.entries.len() as u16).to_le_bytes());
        for (i, e) in self.entries.iter().enumerate() {
            let off = HEADER_LEN + i * ENTRY_LEN;
            e.rect.encode(&mut buf[off..off + 16]);
            buf[off + 16..off + 24].copy_from_slice(&e.payload.to_le_bytes());
        }
        page_from_slice(&buf)
    }

    /// Parses a page image.
    pub fn decode(buf: &[u8; PAGE_SIZE]) -> Result<Node> {
        if &buf[0..4] != MAGIC {
            return Err(RStarError::Corrupt("bad node magic".into()));
        }
        let level = u16::from_le_bytes(buf[4..6].try_into().unwrap());
        let count = u16::from_le_bytes(buf[6..8].try_into().unwrap()) as usize;
        if count > MAX_FANOUT {
            return Err(RStarError::Corrupt(format!("entry count {count}")));
        }
        let mut entries = Vec::with_capacity(count);
        for i in 0..count {
            let off = HEADER_LEN + i * ENTRY_LEN;
            entries.push(Entry {
                rect: Rect2::decode(&buf[off..off + 16]),
                payload: u64::from_le_bytes(buf[off + 16..off + 24].try_into().unwrap()),
            });
        }
        Ok(Node { level, entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_roundtrip() {
        let mut n = Node::new(3);
        for i in 0..50 {
            n.entries.push(Entry {
                rect: Rect2::new(i, i + 10, -i, i),
                payload: (i as u64) << 33 | 7,
            });
        }
        let decoded = Node::decode(&n.encode()).unwrap();
        assert_eq!(decoded, n);
        assert!(!decoded.is_leaf());
    }

    #[test]
    fn empty_node_roundtrip() {
        let n = Node::new(0);
        let decoded = Node::decode(&n.encode()).unwrap();
        assert!(decoded.is_leaf());
        assert!(decoded.entries.is_empty());
        assert!(decoded.mbr().is_empty());
    }

    #[test]
    fn garbage_rejected() {
        let z = grt_sbspace::page::zeroed_page();
        assert!(Node::decode(&z).is_err());
    }

    #[test]
    fn mbr_covers_entries() {
        let mut n = Node::new(0);
        n.entries.push(Entry {
            rect: Rect2::new(0, 1, 0, 1),
            payload: 1,
        });
        n.entries.push(Entry {
            rect: Rect2::new(5, 9, -3, 2),
            payload: 2,
        });
        assert_eq!(n.mbr(), Rect2::new(0, 9, -3, 2));
    }
}
