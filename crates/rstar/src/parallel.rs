//! Parallel range-scan execution over the pinned read path — the
//! R\*-tree mirror of `grt-grtree`'s `parallel` module.
//!
//! The scan seeds a frontier of internal entries consistent with the
//! predicate, pushes their subtree roots onto a shared deque, and lets
//! N workers claim subtrees through a `Send + Sync`
//! [`RStarTreeReader`] snapshot. Claimed subtrees are disjoint; the
//! merge still deduplicates on `(payload, rect)` to keep exactly the
//! serial cursor's contract.

use crate::cursor::{NodeSource, RStarCursor};
use crate::geom::{Rect2, SpatialPredicate};
use crate::meta::Meta;
use crate::node::Node;
use crate::Result;
use grt_metrics::TreeMetrics;
use grt_sbspace::LoReader;
use std::collections::HashSet;
use std::sync::Mutex;
use std::time::Instant;

/// A `Send + Sync` read-only handle on a disk-resident R\*-tree.
/// Obtained via [`RStarTree::reader`](crate::RStarTree::reader) (valid
/// while the originating tree and its large-object lock stay open) or
/// via [`RStarTreeReader::open`] over a space-snapshot [`LoReader`]
/// (valid while that snapshot stays open — the engine's lock-free read
/// path).
pub struct RStarTreeReader {
    reader: LoReader,
    meta: Meta,
    metrics: TreeMetrics,
}

impl RStarTreeReader {
    pub(crate) fn new(reader: LoReader, meta: Meta, metrics: TreeMetrics) -> RStarTreeReader {
        RStarTreeReader {
            reader,
            meta,
            metrics,
        }
    }

    /// Opens a reader directly over a large-object view, decoding the
    /// tree header from page 0. No tree (or LO-level lock) is involved:
    /// this is how a snapshot read mounts an index.
    pub fn open(reader: LoReader, metrics: TreeMetrics) -> Result<RStarTreeReader> {
        let meta = Meta::decode(&*reader.read_page_pinned(0)?)?;
        Ok(RStarTreeReader {
            reader,
            meta,
            metrics,
        })
    }

    /// Tree height (1 = the root is a leaf).
    pub fn height(&self) -> u32 {
        self.meta.height
    }

    /// Number of indexed entries.
    pub fn len(&self) -> u64 {
        self.meta.count
    }

    /// True when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.meta.count == 0
    }

    /// Pages in the underlying large object (header included).
    pub fn pages(&self) -> u32 {
        self.reader.page_count()
    }

    /// Opens a scan cursor — same contract as
    /// [`RStarTree::cursor`](crate::RStarTree::cursor).
    pub fn cursor(&self, pred: SpatialPredicate, query: Rect2) -> RStarCursor {
        self.metrics.searches.inc();
        RStarCursor::new(pred, query, self.meta.root)
    }

    /// Advances a cursor to the next qualifying `(rect, rowid)`.
    /// No condense-restart handling exists or is needed on this path:
    /// the view is frozen, so a concurrent condense can never move
    /// nodes out from under the scan.
    pub fn cursor_next(&self, cursor: &mut RStarCursor) -> Result<Option<(Rect2, u64)>> {
        cursor.next(self)
    }

    /// The root node's minimum bounding rectangle, or `None` for an
    /// empty tree — the planner's selectivity input, mirroring
    /// [`RStarTree::root_mbr`](crate::RStarTree::root_mbr).
    pub fn root_mbr(&self) -> Result<Option<Rect2>> {
        if self.meta.count == 0 {
            return Ok(None);
        }
        Ok(Some(NodeSource::read_node(self, self.meta.root)?.mbr()))
    }

    /// Decodes the node at `page` through a pinned read.
    fn read_node(&self, page: u32) -> Result<Node> {
        self.metrics.nodes_visited.inc();
        Node::decode(&*self.reader.read_page_pinned(page)?)
    }
}

impl NodeSource for RStarTreeReader {
    fn read_node(&self, page: u32) -> Result<Node> {
        Node::decode(&*self.reader.read_page_pinned(page)?)
    }

    fn metrics(&self) -> &TreeMetrics {
        &self.metrics
    }

    fn prefetch(&self, pages: &[u32]) {
        self.reader.prefetch(pages);
    }
}

/// Figures reported by one [`parallel_scan`] execution.
#[derive(Debug, Clone)]
pub struct ParallelScanStats {
    /// Degree actually used (may be lower than requested when the
    /// frontier is small).
    pub workers: usize,
    /// Subtrees seeded into the shared deque.
    pub frontier: usize,
    /// Per-worker busy time, nanoseconds.
    pub worker_ns: Vec<u64>,
}

/// A merged, deduplicated parallel scan result.
pub struct ParallelScan {
    /// Qualifying `(rect, payload)` pairs, in a deterministic
    /// (payload, rect) order.
    pub rows: Vec<(Rect2, u64)>,
    /// Execution statistics for metrics and tracing.
    pub stats: ParallelScanStats,
}

/// One worker's depth-first walk over a claimed subtree. Mirrors the
/// leaf/descent tests of the serial cursor exactly.
fn scan_subtree(
    reader: &RStarTreeReader,
    pred: SpatialPredicate,
    query: &Rect2,
    root: u32,
    out: &mut Vec<(Rect2, u64)>,
) -> Result<()> {
    let mut stack = vec![root];
    while let Some(page) = stack.pop() {
        let node = reader.read_node(page)?;
        if node.is_leaf() {
            for e in node.entries {
                if e.rect.eval(pred, query) {
                    out.push((e.rect, e.payload));
                }
            }
        } else {
            let mark = stack.len();
            for e in node.entries {
                if e.rect.consistent(pred, query) {
                    stack.push(e.payload as u32);
                }
            }
            if stack.len() > mark + 1 {
                reader.prefetch(&stack[mark..]);
            }
        }
    }
    Ok(())
}

/// Runs one predicate over the tree with up to `workers` threads and
/// returns the merged result set — equivalent to draining a fresh
/// serial cursor. The caller owns restart semantics, re-running the
/// scan against the new root after a condense and filtering against its
/// own emitted-set.
pub fn parallel_scan(
    reader: &RStarTreeReader,
    pred: SpatialPredicate,
    query: Rect2,
    workers: usize,
) -> Result<ParallelScan> {
    reader.metrics.searches.inc();

    let mut rows: Vec<(Rect2, u64)> = Vec::new();
    let mut frontier: Vec<u32> = Vec::new();
    let root = reader.read_node(reader.meta.root)?;
    if root.is_leaf() {
        // Height-1 tree: nothing to fan out over.
        scan_subtree(reader, pred, &query, reader.meta.root, &mut rows)?;
        dedup_sort(&mut rows);
        return Ok(ParallelScan {
            rows,
            stats: ParallelScanStats {
                workers: 1,
                frontier: 1,
                worker_ns: Vec::new(),
            },
        });
    }
    for e in root.entries {
        if e.rect.consistent(pred, &query) {
            frontier.push(e.payload as u32);
        }
    }
    reader.prefetch(&frontier);
    // Frontier nodes start one level below the root; stop expanding
    // before the leaf level (depth `height - 1`).
    let mut depth = 1;
    while frontier.len() < workers.saturating_mul(2) && depth + 1 < reader.meta.height {
        let mut next = Vec::new();
        for page in frontier.drain(..) {
            for e in reader.read_node(page)?.entries {
                if e.rect.consistent(pred, &query) {
                    next.push(e.payload as u32);
                }
            }
        }
        frontier = next;
        reader.prefetch(&frontier);
        depth += 1;
    }

    let frontier_len = frontier.len();
    let degree = workers.max(1).min(frontier_len.max(1));
    if degree <= 1 || frontier_len <= 1 {
        for page in frontier {
            scan_subtree(reader, pred, &query, page, &mut rows)?;
        }
        dedup_sort(&mut rows);
        return Ok(ParallelScan {
            rows,
            stats: ParallelScanStats {
                workers: 1,
                frontier: frontier_len,
                worker_ns: Vec::new(),
            },
        });
    }

    // Shared deque of subtree roots; workers pop until it drains.
    let deque = Mutex::new(frontier);
    // One worker's collected rows plus its busy time in nanoseconds.
    type WorkerBatch = (Vec<(Rect2, u64)>, u64);
    let results: Vec<Result<WorkerBatch>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..degree)
            .map(|_| {
                let deque = &deque;
                s.spawn(move || {
                    let start = Instant::now();
                    let mut local = Vec::new();
                    loop {
                        let page = { deque.lock().expect("scan deque poisoned").pop() };
                        let Some(page) = page else { break };
                        scan_subtree(reader, pred, &query, page, &mut local)?;
                    }
                    Ok((local, start.elapsed().as_nanos() as u64))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("scan worker panicked"))
            .collect()
    });

    let mut worker_ns = Vec::with_capacity(degree);
    for r in results {
        let (local, ns) = r?;
        rows.extend(local);
        worker_ns.push(ns);
    }
    dedup_sort(&mut rows);
    Ok(ParallelScan {
        rows,
        stats: ParallelScanStats {
            workers: degree,
            frontier: frontier_len,
            worker_ns,
        },
    })
}

/// Deterministic merge order plus the cursor's dedup key.
fn dedup_sort(rows: &mut Vec<(Rect2, u64)>) {
    rows.sort_by_key(|(r, payload)| (*payload, r.x1, r.x2, r.y1, r.y2));
    let mut seen: HashSet<(u64, [i32; 4])> = HashSet::with_capacity(rows.len());
    rows.retain(|(r, payload)| seen.insert((*payload, [r.x1, r.x2, r.y1, r.y2])));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{RStarOptions, RStarTree};
    use grt_sbspace::{IsolationLevel, LoHandle, LockMode, Sbspace, SbspaceOptions};

    fn fresh_lo() -> LoHandle {
        let sb = Sbspace::mem(SbspaceOptions {
            pool_pages: 4096,
            ..Default::default()
        });
        let txn = sb.begin(IsolationLevel::ReadCommitted);
        let lo = sb.create_lo(&txn).unwrap();
        let h = sb.open_lo(&txn, lo, LockMode::Exclusive).unwrap();
        std::mem::forget(txn);
        std::mem::forget(sb);
        h
    }

    fn rect_for(i: i32) -> Rect2 {
        let x = (i * 37) % 1000;
        let y = (i * 59) % 1000;
        Rect2::new(x, x + 5 + i % 7, y, y + 3 + i % 11)
    }

    fn build(n: i32) -> RStarTree {
        let mut t = RStarTree::create(
            fresh_lo(),
            RStarOptions {
                max_entries: 8,
                ..Default::default()
            },
        )
        .unwrap();
        for i in 0..n {
            t.insert(rect_for(i), i as u64).unwrap();
        }
        t
    }

    #[test]
    fn parallel_matches_serial_across_degrees() {
        let tree = build(400);
        let query = Rect2::new(100, 600, 100, 600);
        for pred in [SpatialPredicate::Overlap, SpatialPredicate::Within] {
            let mut want = tree.search(pred, &query).unwrap();
            want.sort_unstable();
            let reader = tree.reader();
            for workers in [1, 2, 4, 8] {
                let mut got: Vec<u64> = parallel_scan(&reader, pred, query, workers)
                    .unwrap()
                    .rows
                    .iter()
                    .map(|(_, id)| *id)
                    .collect();
                got.sort_unstable();
                assert_eq!(got, want, "{pred:?} at degree {workers} diverged");
            }
        }
    }
}
