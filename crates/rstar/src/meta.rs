//! The index header page (logical page 0 of the large object).

use crate::{RStarError, Result};
use grt_sbspace::page::{get_u32, get_u64, page_from_slice, put_u32, put_u64, PageBuf, PAGE_SIZE};

const MAGIC: &[u8; 4] = b"RSTH";
/// "No page" sentinel in the free chain.
pub const NO_PAGE: u32 = u32::MAX;

/// Decoded header of an R\*-tree large object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Meta {
    /// Logical page of the root node.
    pub root: u32,
    /// Tree height: 1 when the root is a leaf.
    pub height: u32,
    /// Number of indexed entries.
    pub count: u64,
    /// Maximum entries per node (M).
    pub max_entries: u32,
    /// Minimum entries per non-root node (m).
    pub min_fill: u32,
    /// Within-object free-page chain of condensed nodes.
    pub free_head: u32,
    /// Percent of entries removed by forced reinsertion (0 disables).
    pub reinsert_pct: u32,
}

impl Meta {
    /// Serialises into a page image.
    pub fn encode(&self) -> PageBuf {
        let mut buf = vec![0u8; PAGE_SIZE];
        buf[0..4].copy_from_slice(MAGIC);
        put_u32(&mut buf, 4, self.root);
        put_u32(&mut buf, 8, self.height);
        put_u64(&mut buf, 12, self.count);
        put_u32(&mut buf, 20, self.max_entries);
        put_u32(&mut buf, 24, self.min_fill);
        put_u32(&mut buf, 28, self.free_head);
        put_u32(&mut buf, 32, self.reinsert_pct);
        page_from_slice(&buf)
    }

    /// Parses a page image.
    pub fn decode(buf: &[u8; PAGE_SIZE]) -> Result<Meta> {
        if &buf[0..4] != MAGIC {
            return Err(RStarError::Corrupt("bad index header magic".into()));
        }
        Ok(Meta {
            root: get_u32(buf.as_slice(), 4),
            height: get_u32(buf.as_slice(), 8),
            count: get_u64(buf.as_slice(), 12),
            max_entries: get_u32(buf.as_slice(), 20),
            min_fill: get_u32(buf.as_slice(), 24),
            free_head: get_u32(buf.as_slice(), 28),
            reinsert_pct: get_u32(buf.as_slice(), 32),
        })
    }
}

/// A freed node page awaiting reuse.
pub fn encode_free(next: u32) -> PageBuf {
    let mut buf = vec![0u8; PAGE_SIZE];
    buf[0..4].copy_from_slice(b"RSTF");
    put_u32(&mut buf, 4, next);
    page_from_slice(&buf)
}

/// Decodes the next pointer of a freed node page.
pub fn decode_free(buf: &[u8; PAGE_SIZE]) -> Result<u32> {
    if &buf[0..4] != b"RSTF" {
        return Err(RStarError::Corrupt("bad free node magic".into()));
    }
    Ok(get_u32(buf.as_slice(), 4))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meta_roundtrip() {
        let m = Meta {
            root: 3,
            height: 2,
            count: 12345,
            max_entries: 50,
            min_fill: 20,
            free_head: NO_PAGE,
            reinsert_pct: 30,
        };
        assert_eq!(Meta::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn free_roundtrip() {
        assert_eq!(decode_free(&encode_free(9)).unwrap(), 9);
        assert!(decode_free(&grt_sbspace::page::zeroed_page()).is_err());
    }
}
