//! The disk-resident R\*-tree.
//!
//! Structure and algorithms follow Beckmann et al. (SIGMOD 1990): subtree
//! choice by overlap enlargement above the leaf level, margin-driven
//! split-axis selection, forced reinsertion on first overflow per level,
//! and deletion with tree condensation (underfull nodes dissolved and
//! their entries reinserted at their original level).
//!
//! The tree lives in one sbspace large object, one node per page, with
//! the header on logical page 0 — the same storage layout the GR-tree
//! DataBlade uses, so I/O comparisons between the two are apples to
//! apples.

use crate::cursor::RStarCursor;
use crate::geom::{Rect2, SpatialPredicate};
use crate::meta::{decode_free, encode_free, Meta, NO_PAGE};
use crate::node::{Entry, Node, MAX_FANOUT};
use crate::stats::TreeQuality;
use crate::{RStarError, Result};
use grt_metrics::TreeMetrics;
use grt_sbspace::LoHandle;
use std::collections::HashSet;

/// Construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct RStarOptions {
    /// Maximum entries per node (M); capped by the page size.
    pub max_entries: usize,
    /// Minimum fill of non-root nodes, as a percentage of M (the
    /// R\*-tree paper recommends 40%).
    pub min_fill_pct: u32,
    /// Share of entries evicted by forced reinsertion (30% in the
    /// R\*-tree paper; 0 disables reinsertion).
    pub reinsert_pct: u32,
}

impl Default for RStarOptions {
    fn default() -> Self {
        RStarOptions {
            max_entries: MAX_FANOUT,
            min_fill_pct: 40,
            reinsert_pct: 30,
        }
    }
}

/// Outcome of a deletion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeleteOutcome {
    /// Whether the entry existed.
    pub found: bool,
    /// Whether the tree was condensed (nodes dissolved and entries
    /// reinserted) — open cursors must restart (the paper's Section 5.5).
    pub condensed: bool,
}

/// A disk-resident R\*-tree owning its large-object handle.
pub struct RStarTree {
    lo: LoHandle,
    meta: Meta,
    /// Operation counters; detached by default, swapped for
    /// registry-backed cells via [`RStarTree::set_metrics`].
    pub(crate) metrics: TreeMetrics,
}

enum ChildFate {
    /// The child survives with (possibly) a new bounding rectangle.
    Alive,
    /// The child went underfull: its page was dissolved and its entries
    /// must be reinserted.
    Dissolved(Vec<Entry>, u16),
}

impl RStarTree {
    /// Initialises a fresh tree inside an (empty) large object.
    pub fn create(mut lo: LoHandle, opts: RStarOptions) -> Result<RStarTree> {
        if lo.page_count() != 0 {
            return Err(RStarError::Usage("large object not empty".into()));
        }
        let max_entries = opts.max_entries.clamp(4, MAX_FANOUT) as u32;
        let min_fill = (max_entries * opts.min_fill_pct.clamp(10, 50) / 100).max(2);
        let meta = Meta {
            root: 1,
            height: 1,
            count: 0,
            max_entries,
            min_fill,
            free_head: NO_PAGE,
            reinsert_pct: opts.reinsert_pct.min(45),
        };
        lo.append_page(&meta.encode())?;
        lo.append_page(&Node::new(0).encode())?;
        Ok(RStarTree {
            lo,
            meta,
            metrics: TreeMetrics::default(),
        })
    }

    /// Opens an existing tree.
    pub fn open(lo: LoHandle) -> Result<RStarTree> {
        let meta = Meta::decode(&*lo.read_page_pinned(0)?)?;
        Ok(RStarTree {
            lo,
            meta,
            metrics: TreeMetrics::default(),
        })
    }

    /// Replaces the operation counters, typically with
    /// [`TreeMetrics::registered`] cells feeding an engine-wide registry.
    pub fn set_metrics(&mut self, metrics: TreeMetrics) {
        self.metrics = metrics;
    }

    /// The operation counters this tree bumps.
    pub fn metrics(&self) -> &TreeMetrics {
        &self.metrics
    }

    /// Releases the large-object handle, flushing the header when the
    /// handle is writable (read-only opens never changed it).
    pub fn into_lo(mut self) -> Result<LoHandle> {
        if self.lo.is_writable() {
            self.write_meta()?;
        }
        Ok(self.lo)
    }

    /// Number of indexed entries.
    pub fn len(&self) -> u64 {
        self.meta.count
    }

    /// True when no entries are indexed.
    pub fn is_empty(&self) -> bool {
        self.meta.count == 0
    }

    /// Tree height (1 = the root is a leaf).
    pub fn height(&self) -> u32 {
        self.meta.height
    }

    /// Maximum node fan-out of this tree instance.
    pub fn max_entries(&self) -> usize {
        self.meta.max_entries as usize
    }

    /// Minimum fill of non-root nodes of this tree instance.
    pub fn min_fill(&self) -> usize {
        self.meta.min_fill as usize
    }

    /// The root page (for structure dumps).
    pub fn root_page(&self) -> u32 {
        self.meta.root
    }

    fn write_meta(&mut self) -> Result<()> {
        self.lo.write_page(0, &self.meta.encode())?;
        Ok(())
    }

    /// Reads the node at `page` (public for dumps and stats).
    pub fn read_node(&self, page: u32) -> Result<Node> {
        Node::decode(&*self.lo.read_page_pinned(page)?)
    }

    fn write_node(&mut self, page: u32, node: &Node) -> Result<()> {
        self.lo.write_page(page, &node.encode())?;
        Ok(())
    }

    /// Snapshots this tree into a `Send + Sync` read-only handle for
    /// parallel scans; see [`crate::parallel`]. The snapshot is valid
    /// while this tree (and the lock its large-object handle holds)
    /// stays open.
    pub fn reader(&self) -> crate::parallel::RStarTreeReader {
        crate::parallel::RStarTreeReader::new(self.lo.reader(), self.meta, self.metrics.clone())
    }

    /// The root node's minimum bounding rectangle, or `None` for an
    /// empty tree. The planner's selectivity estimate compares a query
    /// rectangle against this bound.
    pub fn root_mbr(&self) -> Result<Option<Rect2>> {
        if self.meta.count == 0 {
            return Ok(None);
        }
        Ok(Some(self.read_node(self.meta.root)?.mbr()))
    }

    /// Appends a packed node during bulk load (no balancing).
    pub(crate) fn bulk_append(&mut self, node: &Node) -> Result<u32> {
        Ok(self.lo.append_page(&node.encode())?)
    }

    /// Installs the bulk-loaded root and counters.
    pub(crate) fn bulk_finish(&mut self, root: u32, height: u32, count: u64) -> Result<()> {
        self.meta.root = root;
        self.meta.height = height.max(1);
        self.meta.count = count;
        self.write_meta()
    }

    fn alloc_node(&mut self, node: &Node) -> Result<u32> {
        if self.meta.free_head != NO_PAGE {
            let page = self.meta.free_head;
            self.meta.free_head = decode_free(&*self.lo.read_page_pinned(page)?)?;
            self.write_node(page, node)?;
            return Ok(page);
        }
        Ok(self.lo.append_page(&node.encode())?)
    }

    fn free_node(&mut self, page: u32) -> Result<()> {
        let img = encode_free(self.meta.free_head);
        self.lo.write_page(page, &img)?;
        self.meta.free_head = page;
        Ok(())
    }

    /// Inserts `rect` with payload `rowid`.
    pub fn insert(&mut self, rect: Rect2, rowid: u64) -> Result<()> {
        let mut reinserted = HashSet::new();
        let mut pending: Vec<(Entry, u16)> = vec![(
            Entry {
                rect,
                payload: rowid,
            },
            0,
        )];
        while let Some((entry, level)) = pending.pop() {
            self.insert_toplevel(entry, level, &mut reinserted, &mut pending)?;
        }
        self.meta.count += 1;
        self.write_meta()
    }

    fn insert_toplevel(
        &mut self,
        entry: Entry,
        level: u16,
        reinserted: &mut HashSet<u16>,
        pending: &mut Vec<(Entry, u16)>,
    ) -> Result<()> {
        let root = self.meta.root;
        if let Some(sibling) = self.insert_rec(root, entry, level, reinserted, pending)? {
            // The root split: grow the tree by one level.
            let old_root_node = self.read_node(root)?;
            let left = Entry {
                rect: old_root_node.mbr(),
                payload: root as u64,
            };
            let mut new_root = Node::new(old_root_node.level + 1);
            new_root.entries.push(left);
            new_root.entries.push(sibling);
            let new_root_page = self.alloc_node(&new_root)?;
            self.meta.root = new_root_page;
            self.meta.height += 1;
        }
        Ok(())
    }

    /// Recursive insertion; returns the sibling entry if this node split.
    fn insert_rec(
        &mut self,
        page: u32,
        entry: Entry,
        target_level: u16,
        reinserted: &mut HashSet<u16>,
        pending: &mut Vec<(Entry, u16)>,
    ) -> Result<Option<Entry>> {
        let mut node = self.read_node(page)?;
        if node.level == target_level {
            node.entries.push(entry);
        } else {
            let idx = self.choose_subtree(&node, &entry.rect);
            let child = node.entries[idx].payload as u32;
            let split = self.insert_rec(child, entry, target_level, reinserted, pending)?;
            node.entries[idx].rect = self.read_node(child)?.mbr();
            if let Some(sibling) = split {
                node.entries.push(sibling);
            }
        }
        if node.entries.len() > self.meta.max_entries as usize {
            let is_root = page == self.meta.root;
            if !is_root && self.meta.reinsert_pct > 0 && reinserted.insert(node.level) {
                // Forced reinsertion: evict the entries farthest from the
                // node centre and re-add them at this level.
                let k = ((node.entries.len() * self.meta.reinsert_pct as usize) / 100).max(1);
                self.metrics.reinserts.add(k as u64);
                let mbr = node.mbr();
                node.entries
                    .sort_by_key(|e| std::cmp::Reverse(e.rect.center_dist2(&mbr)));
                let evicted: Vec<Entry> = node.entries.drain(..k).collect();
                self.write_node(page, &node)?;
                for e in evicted {
                    pending.push((e, node.level));
                }
                return Ok(None);
            }
            let (a, b) = self.split(node);
            self.write_node(page, &a)?;
            let b_mbr = b.mbr();
            let b_page = self.alloc_node(&b)?;
            return Ok(Some(Entry {
                rect: b_mbr,
                payload: b_page as u64,
            }));
        }
        self.write_node(page, &node)?;
        Ok(None)
    }

    /// R\*-tree ChooseSubtree: overlap enlargement when the children are
    /// leaves, area enlargement otherwise.
    fn choose_subtree(&self, node: &Node, rect: &Rect2) -> usize {
        let area_key = |e: &Entry| {
            let enlarged = e.rect.union(rect);
            (enlarged.area() - e.rect.area(), e.rect.area())
        };
        if node.level == 1 {
            // Children are leaves: minimise overlap enlargement, ties by
            // area enlargement, then area.
            let mut best = 0usize;
            let mut best_key = (i128::MAX, i128::MAX, i128::MAX);
            for (i, e) in node.entries.iter().enumerate() {
                let enlarged = e.rect.union(rect);
                let mut overlap_delta: i128 = 0;
                for (j, other) in node.entries.iter().enumerate() {
                    if i != j {
                        overlap_delta +=
                            enlarged.overlap_area(&other.rect) - e.rect.overlap_area(&other.rect);
                    }
                }
                let (area_delta, area) = area_key(e);
                let key = (overlap_delta, area_delta, area);
                if key < best_key {
                    best_key = key;
                    best = i;
                }
            }
            best
        } else {
            (0..node.entries.len())
                .min_by_key(|&i| area_key(&node.entries[i]))
                .unwrap_or(0)
        }
    }

    /// R\*-tree split: margin-driven axis selection, overlap-driven
    /// distribution selection.
    fn split(&self, node: Node) -> (Node, Node) {
        self.metrics.splits.inc();
        let m = self.meta.min_fill as usize;
        let total = node.entries.len();
        let level = node.level;
        #[allow(clippy::type_complexity)]
        let sort_keys: [fn(&Entry) -> (i32, i32); 4] = [
            |e| (e.rect.x1, e.rect.x2),
            |e| (e.rect.x2, e.rect.x1),
            |e| (e.rect.y1, e.rect.y2),
            |e| (e.rect.y2, e.rect.y1),
        ];
        // Margin sum per axis (keys 0,1 = x; keys 2,3 = y).
        let mut axis_margin = [0i64; 2];
        let mut sorted: Vec<Vec<Entry>> = Vec::with_capacity(4);
        for (k, key) in sort_keys.iter().enumerate() {
            let mut entries = node.entries.clone();
            entries.sort_by_key(key);
            for split_at in m..=(total - m) {
                let g1 = entries[..split_at]
                    .iter()
                    .fold(Rect2::empty(), |acc, e| acc.union(&e.rect));
                let g2 = entries[split_at..]
                    .iter()
                    .fold(Rect2::empty(), |acc, e| acc.union(&e.rect));
                axis_margin[k / 2] += g1.margin() + g2.margin();
            }
            sorted.push(entries);
        }
        let axis = if axis_margin[0] <= axis_margin[1] {
            0
        } else {
            1
        };
        // Among the chosen axis's two sort orders, pick the distribution
        // with minimum overlap (ties: minimum total area).
        let mut best: Option<(i128, i128, usize, usize)> = None; // (overlap, area, key, split_at)
        for key in [axis * 2, axis * 2 + 1] {
            let entries = &sorted[key];
            for split_at in m..=(total - m) {
                let g1 = entries[..split_at]
                    .iter()
                    .fold(Rect2::empty(), |acc, e| acc.union(&e.rect));
                let g2 = entries[split_at..]
                    .iter()
                    .fold(Rect2::empty(), |acc, e| acc.union(&e.rect));
                let cand = (g1.overlap_area(&g2), g1.area() + g2.area(), key, split_at);
                if best.is_none_or(|b| (cand.0, cand.1) < (b.0, b.1)) {
                    best = Some(cand);
                }
            }
        }
        let (_, _, key, split_at) = best.expect("at least one distribution");
        let entries = &sorted[key];
        let mut a = Node::new(level);
        let mut b = Node::new(level);
        a.entries.extend_from_slice(&entries[..split_at]);
        b.entries.extend_from_slice(&entries[split_at..]);
        (a, b)
    }

    /// Deletes the entry `(rect, rowid)`. Underfull nodes are dissolved
    /// and their entries reinserted (CondenseTree).
    pub fn delete(&mut self, rect: Rect2, rowid: u64) -> Result<DeleteOutcome> {
        let root = self.meta.root;
        let mut orphans: Vec<(Vec<Entry>, u16)> = Vec::new();
        let removed = self.delete_rec(root, &rect, rowid, &mut orphans)?;
        if removed.is_none() {
            return Ok(DeleteOutcome {
                found: false,
                condensed: false,
            });
        }
        let condensed = !orphans.is_empty();
        if condensed {
            self.metrics.condenses.inc();
        }
        // Reinsert the dissolved nodes' entries at their own level.
        for (entries, level) in orphans {
            for entry in entries {
                let mut reinserted = HashSet::new();
                let mut pending = vec![(entry, level)];
                while let Some((e, l)) = pending.pop() {
                    self.insert_toplevel(e, l, &mut reinserted, &mut pending)?;
                }
            }
        }
        // Shrink the root while it is internal with a single child.
        loop {
            let root_node = self.read_node(self.meta.root)?;
            if root_node.is_leaf() || root_node.entries.len() != 1 {
                break;
            }
            let old = self.meta.root;
            self.meta.root = root_node.entries[0].payload as u32;
            self.meta.height -= 1;
            self.free_node(old)?;
        }
        self.meta.count -= 1;
        self.write_meta()?;
        Ok(DeleteOutcome {
            found: true,
            condensed,
        })
    }

    /// Recursive delete; `Ok(Some(fate))` when the entry was found under
    /// `page`.
    fn delete_rec(
        &mut self,
        page: u32,
        rect: &Rect2,
        rowid: u64,
        orphans: &mut Vec<(Vec<Entry>, u16)>,
    ) -> Result<Option<ChildFate>> {
        let mut node = self.read_node(page)?;
        let is_root = page == self.meta.root;
        if node.is_leaf() {
            let Some(idx) = node
                .entries
                .iter()
                .position(|e| e.payload == rowid && e.rect == *rect)
            else {
                return Ok(None);
            };
            node.entries.remove(idx);
            if !is_root && node.entries.len() < self.meta.min_fill as usize {
                let fate = ChildFate::Dissolved(std::mem::take(&mut node.entries), 0);
                return Ok(Some(fate));
            }
            self.write_node(page, &node)?;
            return Ok(Some(ChildFate::Alive));
        }
        for idx in 0..node.entries.len() {
            if !node.entries[idx].rect.contains(rect) {
                continue;
            }
            let child = node.entries[idx].payload as u32;
            match self.delete_rec(child, rect, rowid, orphans)? {
                None => continue,
                Some(ChildFate::Alive) => {
                    node.entries[idx].rect = self.read_node(child)?.mbr();
                }
                Some(ChildFate::Dissolved(entries, level)) => {
                    orphans.push((entries, level));
                    self.free_node(child)?;
                    node.entries.remove(idx);
                }
            }
            if !is_root && node.entries.len() < self.meta.min_fill as usize {
                let level = node.level;
                let fate = ChildFate::Dissolved(std::mem::take(&mut node.entries), level);
                return Ok(Some(fate));
            }
            self.write_node(page, &node)?;
            return Ok(Some(ChildFate::Alive));
        }
        Ok(None)
    }

    /// Collects all rowids whose stored rectangle satisfies `pred`
    /// against `query`.
    pub fn search(&self, pred: SpatialPredicate, query: &Rect2) -> Result<Vec<u64>> {
        let mut cursor = self.cursor(pred, *query);
        let mut out = Vec::new();
        while let Some((_, rowid)) = self.cursor_next(&mut cursor)? {
            out.push(rowid);
        }
        Ok(out)
    }

    /// Opens a scan cursor.
    pub fn cursor(&self, pred: SpatialPredicate, query: Rect2) -> RStarCursor {
        self.metrics.searches.inc();
        RStarCursor::new(pred, query, self.meta.root)
    }

    /// Advances a cursor to the next qualifying `(rect, rowid)`.
    pub fn cursor_next(&self, cursor: &mut RStarCursor) -> Result<Option<(Rect2, u64)>> {
        cursor.next(self)
    }

    /// Resets a cursor to the root (after tree condensation —
    /// the paper's Section 5.5 restart rule).
    pub fn cursor_restart(&self, cursor: &mut RStarCursor) {
        cursor.restart(self.meta.root);
    }

    /// Computes quality statistics (nodes, fill, area, overlap) per
    /// level.
    pub fn quality(&self) -> Result<TreeQuality> {
        TreeQuality::compute(self, self.meta.root, self.meta.height)
    }

    /// Total pages owned by the tree, header included.
    pub fn pages(&self) -> u32 {
        self.lo.page_count()
    }

    /// Verifies structural invariants: entry rectangles equal child
    /// MBRs, levels decrease by one, non-root nodes respect minimum
    /// fill, and the leaf count matches the header.
    pub fn check(&self) -> Result<()> {
        let mut leaves = 0u64;
        self.check_rec(self.meta.root, None, true, &mut leaves)?;
        if leaves != self.meta.count {
            return Err(RStarError::Corrupt(format!(
                "count mismatch: header {} vs leaves {leaves}",
                self.meta.count
            )));
        }
        Ok(())
    }

    fn check_rec(
        &self,
        page: u32,
        expect_level: Option<u16>,
        is_root: bool,
        leaves: &mut u64,
    ) -> Result<Rect2> {
        let node = self.read_node(page)?;
        if let Some(l) = expect_level {
            if node.level != l {
                return Err(RStarError::Corrupt(format!(
                    "page {page}: level {} expected {l}",
                    node.level
                )));
            }
        }
        if !is_root && node.entries.len() < self.meta.min_fill as usize {
            return Err(RStarError::Corrupt(format!(
                "page {page}: underfull ({} < {})",
                node.entries.len(),
                self.meta.min_fill
            )));
        }
        if node.is_leaf() {
            *leaves += node.entries.len() as u64;
            return Ok(node.mbr());
        }
        for e in &node.entries {
            let child_mbr =
                self.check_rec(e.payload as u32, Some(node.level - 1), false, leaves)?;
            if child_mbr != e.rect {
                return Err(RStarError::Corrupt(format!(
                    "page {page}: stale child rect {} vs {child_mbr}",
                    e.rect
                )));
            }
        }
        Ok(node.mbr())
    }
}

impl crate::cursor::NodeSource for RStarTree {
    fn read_node(&self, page: u32) -> Result<Node> {
        RStarTree::read_node(self, page)
    }

    fn metrics(&self) -> &TreeMetrics {
        &self.metrics
    }

    fn prefetch(&self, pages: &[u32]) {
        self.lo.prefetch(pages);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grt_sbspace::{IsolationLevel, LockMode, Sbspace, SbspaceOptions};

    fn tree(max_entries: usize) -> RStarTree {
        let sb = Sbspace::mem(SbspaceOptions {
            pool_pages: 4096,
            ..Default::default()
        });
        let txn = sb.begin(IsolationLevel::ReadCommitted);
        let lo = sb.create_lo(&txn).unwrap();
        let h = sb.open_lo(&txn, lo, LockMode::Exclusive).unwrap();
        // Keep space and txn alive for the whole test.
        std::mem::forget(txn);
        std::mem::forget(sb);
        RStarTree::create(
            h,
            RStarOptions {
                max_entries,
                ..Default::default()
            },
        )
        .unwrap()
    }

    fn rect_for(i: i32) -> Rect2 {
        // A deterministic scatter of smallish rectangles.
        let x = (i * 37) % 1000;
        let y = (i * 59) % 1000;
        Rect2::new(x, x + 5 + i % 7, y, y + 3 + i % 11)
    }

    #[test]
    fn insert_and_exact_search() {
        let mut t = tree(8);
        for i in 0..300 {
            t.insert(rect_for(i), i as u64).unwrap();
        }
        assert_eq!(t.len(), 300);
        assert!(t.height() > 1);
        t.check().unwrap();
        // Every inserted rectangle is found by an overlap query on
        // itself.
        for i in 0..300 {
            let hits = t.search(SpatialPredicate::Overlap, &rect_for(i)).unwrap();
            assert!(hits.contains(&(i as u64)), "lost entry {i}");
        }
    }

    #[test]
    fn search_matches_linear_scan() {
        let mut t = tree(8);
        let n = 400;
        for i in 0..n {
            t.insert(rect_for(i), i as u64).unwrap();
        }
        let queries = [
            Rect2::new(0, 100, 0, 100),
            Rect2::new(500, 600, 200, 900),
            Rect2::new(-10, -1, -10, -1),
            Rect2::new(0, 1000, 0, 1000),
        ];
        for q in &queries {
            for pred in [
                SpatialPredicate::Overlap,
                SpatialPredicate::Within,
                SpatialPredicate::Contains,
                SpatialPredicate::Equal,
            ] {
                let mut expected: Vec<u64> = (0..n)
                    .filter(|&i| rect_for(i).eval(pred, q))
                    .map(|i| i as u64)
                    .collect();
                let mut got = t.search(pred, q).unwrap();
                expected.sort_unstable();
                got.sort_unstable();
                assert_eq!(got, expected, "{pred:?} {q}");
            }
        }
    }

    #[test]
    fn delete_removes_and_condenses() {
        let mut t = tree(8);
        let n = 250;
        for i in 0..n {
            t.insert(rect_for(i), i as u64).unwrap();
        }
        let mut condensed_any = false;
        for i in (0..n).step_by(2) {
            let out = t.delete(rect_for(i), i as u64).unwrap();
            assert!(out.found, "entry {i} missing");
            condensed_any |= out.condensed;
            // Deleting again reports not-found.
            assert!(!t.delete(rect_for(i), i as u64).unwrap().found);
        }
        assert!(condensed_any, "expected at least one condensation");
        assert_eq!(t.len(), (n / 2) as u64);
        t.check().unwrap();
        for i in 0..n {
            let hits = t.search(SpatialPredicate::Overlap, &rect_for(i)).unwrap();
            assert_eq!(hits.contains(&(i as u64)), i % 2 == 1, "entry {i}");
        }
    }

    #[test]
    fn delete_everything_shrinks_to_empty_root() {
        let mut t = tree(6);
        for i in 0..100 {
            t.insert(rect_for(i), i as u64).unwrap();
        }
        for i in 0..100 {
            assert!(t.delete(rect_for(i), i as u64).unwrap().found);
        }
        assert_eq!(t.len(), 0);
        assert_eq!(t.height(), 1);
        t.check().unwrap();
        assert!(t
            .search(
                SpatialPredicate::Overlap,
                &Rect2::new(-10_000, 10_000, -10_000, 10_000)
            )
            .unwrap()
            .is_empty());
    }

    #[test]
    fn duplicate_rects_with_distinct_rowids() {
        let mut t = tree(8);
        let r = Rect2::new(5, 10, 5, 10);
        for id in 0..20u64 {
            t.insert(r, id).unwrap();
        }
        let mut hits = t.search(SpatialPredicate::Equal, &r).unwrap();
        hits.sort_unstable();
        assert_eq!(hits, (0..20).collect::<Vec<_>>());
        assert!(t.delete(r, 13).unwrap().found);
        let hits = t.search(SpatialPredicate::Equal, &r).unwrap();
        assert_eq!(hits.len(), 19);
        assert!(!hits.contains(&13));
    }

    #[test]
    fn cursor_streams_all_results() {
        let mut t = tree(8);
        for i in 0..120 {
            t.insert(rect_for(i), i as u64).unwrap();
        }
        let q = Rect2::new(0, 1000, 0, 1000);
        let mut cursor = t.cursor(SpatialPredicate::Overlap, q);
        let mut got = Vec::new();
        while let Some((_, id)) = t.cursor_next(&mut cursor).unwrap() {
            got.push(id);
        }
        got.sort_unstable();
        assert_eq!(got, (0..120).collect::<Vec<_>>());
        // A restart re-walks the tree but never re-returns rows the
        // cursor already emitted (the Section 5.5 restart rule), so a
        // fully drained cursor stays drained.
        t.cursor_restart(&mut cursor);
        let mut again = 0;
        while t.cursor_next(&mut cursor).unwrap().is_some() {
            again += 1;
        }
        assert_eq!(again, 0);
    }

    #[test]
    fn cursor_restart_does_not_replay_emitted_rows() {
        let mut t = tree(8);
        for i in 0..120 {
            t.insert(rect_for(i), i as u64).unwrap();
        }
        let q = Rect2::new(0, 1000, 0, 1000);
        let mut cursor = t.cursor(SpatialPredicate::Overlap, q);
        let mut got = Vec::new();
        for _ in 0..3 {
            let (_, id) = t.cursor_next(&mut cursor).unwrap().expect("tree has rows");
            got.push(id);
        }
        // Condense mid-scan, deleting only rows not yet returned.
        let mut condensed = false;
        for i in 0..120u64 {
            if got.contains(&i) {
                continue;
            }
            if t.delete(rect_for(i as i32), i).unwrap().condensed {
                condensed = true;
                break;
            }
        }
        assert!(condensed);
        t.cursor_restart(&mut cursor);
        while let Some((_, id)) = t.cursor_next(&mut cursor).unwrap() {
            got.push(id);
        }
        let unique: std::collections::HashSet<u64> = got.iter().copied().collect();
        assert_eq!(
            unique.len(),
            got.len(),
            "restart re-returned rows already emitted before the condense"
        );
        for id in t.search(SpatialPredicate::Overlap, &q).unwrap() {
            assert!(unique.contains(&id), "row {id} lost across restart");
        }
    }

    #[test]
    fn reinsert_disabled_still_correct() {
        let sb = Sbspace::mem(SbspaceOptions {
            pool_pages: 4096,
            ..Default::default()
        });
        let txn = sb.begin(IsolationLevel::ReadCommitted);
        let lo = sb.create_lo(&txn).unwrap();
        let h = sb.open_lo(&txn, lo, LockMode::Exclusive).unwrap();
        let mut t = RStarTree::create(
            h,
            RStarOptions {
                max_entries: 8,
                reinsert_pct: 0,
                ..Default::default()
            },
        )
        .unwrap();
        for i in 0..200 {
            t.insert(rect_for(i), i as u64).unwrap();
        }
        t.check().unwrap();
        for i in 0..200 {
            assert!(t
                .search(SpatialPredicate::Overlap, &rect_for(i))
                .unwrap()
                .contains(&(i as u64)));
        }
        drop(t);
        txn.commit().unwrap();
    }

    #[test]
    fn quality_reports_levels() {
        let mut t = tree(8);
        for i in 0..300 {
            t.insert(rect_for(i), i as u64).unwrap();
        }
        let q = t.quality().unwrap();
        assert_eq!(q.levels.len() as u32, t.height());
        assert!(q.levels[0].nodes > 1, "multiple leaves expected");
        assert!(q.levels[0].entries >= 300);
    }
}
