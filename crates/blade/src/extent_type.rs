//! The `GRT_TimeExtent_t` opaque type.
//!
//! Section 5.1 concludes that "a time extent of a record ... cannot be
//! represented using four or two columns, so we represent it as one
//! column, and the values in this column are of our newly created
//! opaque data type, GRT_TimeExtent_t." The type support functions
//! below are the ones Section 6.3 lists: text input/output (with `UC`
//! and `NOW` handling and the Section 2 constraint checks), binary
//! send/receive over the fixed 16-byte layout, and text-file
//! import/export (shared with text input/output).

use grt_ids::opaque::OpaqueType;
use grt_ids::{IdsError, Value};
use grt_temporal::TimeExtent;
use std::sync::Arc;

/// The SQL-visible name of the opaque type.
pub const TYPE_NAME: &str = "GRT_TimeExtent_t";

/// Builds the registered opaque type.
pub fn grt_time_extent_type() -> OpaqueType {
    OpaqueType::new(
        TYPE_NAME,
        Arc::new(|text: &str| {
            let extent = TimeExtent::parse(text).map_err(|e| IdsError::Type(e.to_string()))?;
            Ok(extent.encode_array().to_vec())
        }),
        Arc::new(|bytes: &[u8]| {
            let extent = TimeExtent::decode(bytes).map_err(|e| IdsError::Type(e.to_string()))?;
            Ok(extent.to_string())
        }),
    )
}

/// Decodes a `GRT_TimeExtent_t` value into a [`TimeExtent`].
pub fn extent_from_value(v: &Value) -> Result<TimeExtent, IdsError> {
    match v {
        Value::Opaque { type_name, bytes } if type_name.eq_ignore_ascii_case(TYPE_NAME) => {
            TimeExtent::decode(bytes).map_err(|e| IdsError::Type(e.to_string()))
        }
        other => Err(IdsError::Type(format!("expected {TYPE_NAME}, got {other}"))),
    }
}

/// Encodes a [`TimeExtent`] as a `GRT_TimeExtent_t` value.
pub fn extent_to_value(e: &TimeExtent) -> Value {
    Value::Opaque {
        type_name: TYPE_NAME.to_string(),
        bytes: e.encode_array().to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_support_functions_roundtrip() {
        let ty = grt_time_extent_type();
        let v = ty.value_from_text("12/10/95, UC, 12/10/95, NOW").unwrap();
        let text = ty.value_to_text(&v).unwrap();
        assert!(text.contains("UC") && text.contains("NOW"));
        let v2 = ty.value_from_text(&text).unwrap();
        assert_eq!(v, v2);
    }

    #[test]
    fn constraints_enforced_at_input() {
        let ty = grt_time_extent_type();
        // VTbegin after TTbegin with NOW: rejected (Section 2).
        assert!(ty.value_from_text("3/97, UC, 6/97, NOW").is_err());
        // Backwards intervals: rejected.
        assert!(ty.value_from_text("7/97, 3/97, 1/97, 2/97").is_err());
        assert!(ty.value_from_text("not an extent").is_err());
    }

    #[test]
    fn value_conversions() {
        let ty = grt_time_extent_type();
        let v = ty.value_from_text("3/97, 7/97, 6/97, 8/97").unwrap();
        let e = extent_from_value(&v).unwrap();
        assert_eq!(extent_to_value(&e), v);
        assert!(extent_from_value(&Value::Int(1)).is_err());
    }

    #[test]
    fn receive_validates_foreign_bytes() {
        let ty = grt_time_extent_type();
        // A legal wire image passes.
        let v = ty.value_from_text("3/97, UC, 3/97, NOW").unwrap();
        let Value::Opaque { bytes, .. } = &v else {
            panic!()
        };
        assert!((ty.receive)(bytes).is_ok());
        // A wire image violating TTbegin <= TTend is rejected.
        let mut bad = [0u8; 16];
        bad[0..4].copy_from_slice(&5i32.to_le_bytes());
        bad[4..8].copy_from_slice(&1i32.to_le_bytes());
        assert!((ty.receive)(&bad).is_err());
        assert!((ty.receive)(&[0u8; 3]).is_err());
    }
}
