//! The **GR-tree DataBlade** — the paper's primary artifact.
//!
//! This crate is the module a developer would ship as `grtree.bld`:
//!
//! * the opaque type `GRT_TimeExtent_t` with its type support functions
//!   (text input/output with `UC`/`NOW` handling and the Section 2
//!   constraint checks) — [`extent_type`];
//! * the strategy-function UDRs `Overlaps`, `Equal`, `Contains`,
//!   `ContainedIn` over two time extents — [`register`];
//! * the `grt_*` access-method purpose functions of the
//!   paper's Table 5, bridging the engine's Virtual-Index Interface to
//!   the GR-tree core, including qualification decomposition
//!   ([`qual`]), cursor management with the Section 5.5
//!   restart-on-condense rule, and the Section 5.4 per-statement /
//!   per-transaction current-time caching ([`curtime`]) — [`grtree_am`];
//! * a baseline access method over the same opaque type backed by a
//!   plain R\*-tree with `UC`/`NOW` substitution and refinement —
//!   [`rstar_am`] — playing the role of "Informix's own predefined
//!   R-tree access method";
//! * the registration script (the artifact BladeSmith would generate)
//!   and a one-call installer — [`register`].

//! ```
//! use grt_blade::{install_grtree_blade, GrTreeAmOptions};
//! use grt_ids::{Database, DatabaseOptions};
//!
//! let db = Database::new(DatabaseOptions::default());
//! install_grtree_blade(&db, GrTreeAmOptions::default()).unwrap();
//! let conn = db.connect();
//! conn.exec("CREATE TABLE e (Name text, Time_Extent GRT_TimeExtent_t)").unwrap();
//! conn.exec("CREATE INDEX ix ON e(Time_Extent grt_opclass) USING grtree_am").unwrap();
//! conn.exec("INSERT INTO e VALUES ('Ada', '3/97, UC, 3/97, NOW')").unwrap();
//! let r = conn
//!     .exec("SELECT Name FROM e WHERE Overlaps(Time_Extent, '3/97, UC, 3/97, NOW')")
//!     .unwrap();
//! assert_eq!(r.rendered[0][0], "Ada");
//! ```

pub mod curtime;
pub mod extent_type;
pub mod grtree_am;
pub mod qual;
pub mod register;
pub mod rstar_am;

pub use curtime::CurrentTimePolicy;
pub use extent_type::{extent_from_value, extent_to_value, grt_time_extent_type, TYPE_NAME};
pub use grtree_am::{DeletePolicy, GrTreeAm, GrTreeAmOptions};
pub use register::{
    install_grtree_blade, install_rstar_blade, registration_script, uninstall_grtree_blade,
    unregistration_script,
};
pub use rstar_am::RStarBitemporalAm;
