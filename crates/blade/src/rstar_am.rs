//! A baseline access method over `GRT_TimeExtent_t` backed by a plain
//! R\*-tree — the stand-in for "Informix's own predefined R-tree access
//! method" and the comparison point of the GR-tree evaluation.
//!
//! `UC`/`NOW` are grounded with a [`NowStrategy`] at insertion; index
//! probes test bounding rectangles only, so every candidate must be
//! **refined**: the base row is fetched and the exact bitemporal
//! predicate evaluated. The extra base-table fetches per false positive
//! are precisely the overhead the GR-tree eliminates.

use crate::curtime::{resolve_current_time, CurrentTimePolicy};
use crate::extent_type::{extent_from_value, extent_to_value, TYPE_NAME};
use crate::grtree_am::scan_degree;
use crate::qual::{decompose, eval_full, Probe};
use grt_ids::heap;
use grt_ids::{
    AccessMethod, AmContext, DataType, IdsError, IndexDescriptor, QualDescriptor, RowId,
    ScanDescriptor, Value,
};
use grt_metrics::TreeMetrics;
use grt_rstar::bitemporal::NowStrategy;
use grt_rstar::{RStarCursor, RStarOptions, RStarTree, RStarTreeReader, SpatialPredicate};
use grt_sbspace::{LoId, LockMode, PageSource};
use grt_temporal::{Day, Predicate};
use std::collections::HashSet;

/// The baseline access method.
pub struct RStarBitemporalAm {
    /// How `UC`/`NOW` are grounded.
    pub strategy: NowStrategy,
    /// R\*-tree construction parameters.
    pub tree_opts: RStarOptions,
    /// Current-time policy (shared with the GR-tree blade).
    pub curtime: CurrentTimePolicy,
}

impl RStarBitemporalAm {
    /// A max-timestamp baseline with the given fan-out.
    pub fn max_timestamp(tree_opts: RStarOptions) -> RStarBitemporalAm {
        RStarBitemporalAm {
            strategy: NowStrategy::MaxTimestamp,
            tree_opts,
            curtime: CurrentTimePolicy::PerStatement,
        }
    }
}

/// Index scans on trees at least this many pages go parallel when the
/// effective degree exceeds one (same gate as the GR-tree blade).
const PARALLEL_PAGE_THRESHOLD: u32 = 32;

struct ScanState {
    probes: Vec<Probe>,
    current: usize,
    cursor: Option<RStarCursor>,
    /// Merged parallel candidates for the current probe, handed out
    /// from the back (refinement still happens per candidate below).
    buffer: Option<Vec<(grt_rstar::Rect2, u64)>>,
    /// Requested parallel degree (resolved at `am_beginscan`).
    workers: usize,
    qual: QualDescriptor,
    seen: HashSet<u64>,
    /// The base table for refinement fetches: an S-locked handle on the
    /// locked path, a frozen page-table view on the snapshot path.
    heap: Box<dyn PageSource + Send>,
    column_pos: usize,
    /// Candidates examined (refinement fetches) — the inefficiency
    /// metric the benchmarks report.
    candidates: u64,
    matches: u64,
    /// Frozen-view reader when the statement runs on a space snapshot
    /// (no BLOB lock). Lives in the scan — not in "td" — so it is
    /// released with the statement, never pinning retired pages past
    /// `am_endscan`.
    reader: Option<RStarTreeReader>,
}

struct TdState {
    lo: LoId,
    mode: LockMode,
    tree: Option<RStarTree>,
    ct: Day,
    scan: Option<ScanState>,
}

fn rs_err(e: grt_rstar::RStarError) -> IdsError {
    IdsError::AccessMethod(e.to_string())
}

impl RStarBitemporalAm {
    fn with_td<R>(
        &self,
        idx: &IndexDescriptor,
        ctx: &AmContext,
        f: impl FnOnce(&mut TdState) -> Result<R, IdsError>,
    ) -> Result<R, IdsError> {
        let mut guard = idx.user_data.lock();
        if guard.is_none() {
            let lo = {
                let frags = ctx.fragments.lock();
                LoId(*frags.get(&idx.index_name).ok_or_else(|| {
                    IdsError::AccessMethod(format!("index {} has no fragment", idx.index_name))
                })?)
            };
            *guard = Some(Box::new(TdState {
                lo,
                mode: LockMode::Shared,
                tree: None,
                ct: ctx.clock.today(),
                scan: None,
            }));
        }
        let td = guard
            .as_mut()
            .and_then(|b| b.downcast_mut::<TdState>())
            .ok_or_else(|| IdsError::AccessMethod("foreign index state".into()))?;
        f(td)
    }

    fn ensure_tree(&self, td: &mut TdState, ctx: &AmContext, write: bool) -> Result<(), IdsError> {
        let need = if write {
            LockMode::Exclusive
        } else {
            LockMode::Shared
        };
        if td.tree.is_some() && (td.mode == LockMode::Exclusive || need == LockMode::Shared) {
            return Ok(());
        }
        if let Some(tree) = td.tree.take() {
            tree.into_lo().map_err(rs_err)?.close()?;
        }
        let handle = ctx.space.open_lo(ctx.txn, td.lo, need)?;
        let mut tree = RStarTree::open(handle).map_err(rs_err)?;
        tree.set_metrics(TreeMetrics::registered(&ctx.space.metrics(), "rstar"));
        td.tree = Some(tree);
        td.mode = need;
        Ok(())
    }

    /// The rectangle-level probe for a bitemporal probe.
    fn spatial_probe(&self, probe: &Probe, ct: Day) -> (SpatialPredicate, grt_rstar::Rect2) {
        let rect = self.strategy.query_rect(&probe.query, ct);
        // Only Contains (uncommuted) can use a stronger rectangle test;
        // everything else must fall back to overlap to avoid false
        // negatives.
        let pred = match probe.pred {
            Predicate::Contains => SpatialPredicate::Contains,
            _ => SpatialPredicate::Overlap,
        };
        (pred, rect)
    }

    fn table_info(idx: &IndexDescriptor) -> Result<(LoId, usize), IdsError> {
        let lo = idx
            .params
            .get("table_lo")
            .and_then(|s| s.parse::<u32>().ok())
            .ok_or_else(|| IdsError::AccessMethod("missing table_lo parameter".into()))?;
        let pos = idx
            .params
            .get("column_pos")
            .and_then(|s| s.parse::<usize>().ok())
            .unwrap_or(0);
        Ok((LoId(lo), pos))
    }

    /// One refined row off the scan, shared by `rst_getnext` and
    /// `rst_getnext_batch`; the caller already holds the descriptor
    /// lock via [`Self::with_td`].
    fn scan_step(
        &self,
        idx: &IndexDescriptor,
        td: &mut TdState,
        ctx: &AmContext,
    ) -> Result<Option<(RowId, Vec<Value>)>, IdsError> {
        // A snapshot scan never touches the locked tree; everything it
        // needs lives in the scan state's frozen reader.
        let on_snapshot = td.scan.as_ref().is_some_and(|s| s.reader.is_some());
        if !on_snapshot {
            self.ensure_tree(td, ctx, false)?;
        }
        let ct = td.ct;
        let tree = td.tree.as_ref();
        let scan = td
            .scan
            .as_mut()
            .ok_or_else(|| IdsError::AccessMethod("getnext without beginscan".into()))?;
        loop {
            if scan.cursor.is_none() && scan.buffer.is_none() {
                let Some(probe) = scan.probes.get(scan.current) else {
                    return Ok(None);
                };
                let (pred, rect) = self.spatial_probe(probe, ct);
                let pages = match &scan.reader {
                    Some(r) => r.pages(),
                    None => tree.expect("ensured").pages(),
                };
                if scan.workers > 1 && pages >= PARALLEL_PAGE_THRESHOLD {
                    let locked_view;
                    let reader = match &scan.reader {
                        Some(r) => r,
                        None => {
                            locked_view = tree.expect("ensured").reader();
                            &locked_view
                        }
                    };
                    let result = grt_rstar::parallel_scan(reader, pred, rect, scan.workers)
                        .map_err(rs_err)?;
                    let metrics = ctx.space.metrics();
                    metrics.counter("scan.parallel_scans").inc();
                    let worker_ns = metrics.histogram("scan.parallel_worker_ns");
                    for &ns in &result.stats.worker_ns {
                        worker_ns.observe_ns(ns);
                    }
                    ctx.trace.emit_with("RSTAR", 2, || {
                        format!(
                            "parallel scan: degree {}, {} frontier subtrees, {} candidates",
                            result.stats.workers,
                            result.stats.frontier,
                            result.rows.len()
                        )
                    });
                    ctx.trace.emit_with("EXPLAIN", 1, || {
                        format!(
                            "parallel index scan on {}: degree {} (requested {})",
                            idx.index_name, result.stats.workers, scan.workers
                        )
                    });
                    let mut rows = result.rows;
                    rows.reverse();
                    scan.buffer = Some(rows);
                } else {
                    if scan.workers > 1 {
                        ctx.space.metrics().counter("scan.parallel_fallbacks").inc();
                    }
                    scan.cursor = Some(match &scan.reader {
                        Some(r) => r.cursor(pred, rect),
                        None => tree.expect("ensured").cursor(pred, rect),
                    });
                }
            }
            let next = if let Some(buf) = scan.buffer.as_mut() {
                let popped = buf.pop();
                if popped.is_none() {
                    scan.buffer = None;
                }
                popped
            } else {
                let cursor = scan.cursor.as_mut().expect("just set");
                let stepped = match &scan.reader {
                    Some(r) => r.cursor_next(cursor),
                    None => tree.expect("ensured").cursor_next(cursor),
                }
                .map_err(rs_err)?;
                if stepped.is_none() {
                    scan.cursor = None;
                }
                stepped
            };
            match next {
                None => {
                    scan.current += 1;
                }
                Some((_rect, rowid)) => {
                    if !scan.seen.insert(rowid) {
                        continue;
                    }
                    // Refinement: fetch the base row and apply the
                    // exact bitemporal predicate.
                    scan.candidates += 1;
                    let heap_src: &(dyn PageSource + Send) = scan.heap.as_ref();
                    let Some(row) = heap::fetch(&heap_src, RowId(rowid))? else {
                        continue;
                    };
                    let stored = extent_from_value(&row[scan.column_pos])?;
                    if eval_full(&scan.qual, &stored, ct)? {
                        scan.matches += 1;
                        return Ok(Some((RowId(rowid), vec![extent_to_value(&stored)])));
                    }
                }
            }
        }
    }
}

impl AccessMethod for RStarBitemporalAm {
    fn am_create(&self, idx: &IndexDescriptor, ctx: &AmContext) -> Result<(), IdsError> {
        match idx.column_types.first() {
            Some(DataType::Opaque(t)) if t.eq_ignore_ascii_case(TYPE_NAME) => {}
            other => {
                return Err(IdsError::AccessMethod(format!(
                    "rstar_am indexes {TYPE_NAME} columns, got {other:?}"
                )))
            }
        }
        let lo = ctx.space.create_lo(ctx.txn)?;
        ctx.fragments.lock().insert(idx.index_name.clone(), lo.0);
        let handle = ctx.space.open_lo(ctx.txn, lo, LockMode::Exclusive)?;
        let mut tree = RStarTree::create(handle, self.tree_opts).map_err(rs_err)?;
        tree.set_metrics(TreeMetrics::registered(&ctx.space.metrics(), "rstar"));
        *idx.user_data.lock() = Some(Box::new(TdState {
            lo,
            mode: LockMode::Exclusive,
            tree: Some(tree),
            ct: resolve_current_time(self.curtime, ctx),
            scan: None,
        }));
        Ok(())
    }

    fn am_drop(&self, idx: &IndexDescriptor, ctx: &AmContext) -> Result<(), IdsError> {
        if let Some(boxed) = idx.user_data.lock().take() {
            if let Ok(td) = boxed.downcast::<TdState>() {
                if let Some(tree) = td.tree {
                    tree.into_lo().map_err(rs_err)?.close()?;
                }
            }
        }
        if let Some(lo) = ctx.fragments.lock().remove(&idx.index_name) {
            ctx.space.drop_lo(ctx.txn, LoId(lo))?;
        }
        Ok(())
    }

    fn am_open(&self, idx: &IndexDescriptor, ctx: &AmContext) -> Result<(), IdsError> {
        let ct = resolve_current_time(self.curtime, ctx);
        self.with_td(idx, ctx, |td| {
            td.ct = ct;
            // Snapshot statements never open the BLOB here — the scan
            // mounts the frozen view at rst_beginscan, lock-free.
            if td.tree.is_none() && ctx.snapshot.is_none() {
                self.ensure_tree(td, ctx, false)?;
            }
            Ok(())
        })
    }

    fn am_close(&self, idx: &IndexDescriptor, _ctx: &AmContext) -> Result<(), IdsError> {
        if let Some(boxed) = idx.user_data.lock().take() {
            if let Ok(td) = boxed.downcast::<TdState>() {
                if let Some(tree) = td.tree {
                    tree.into_lo().map_err(rs_err)?.close()?;
                }
            }
        }
        Ok(())
    }

    fn am_beginscan(
        &self,
        idx: &IndexDescriptor,
        scan: &mut ScanDescriptor,
        ctx: &AmContext,
    ) -> Result<(), IdsError> {
        let probes = decompose(&scan.qual)?;
        let qual = scan.qual.clone();
        let workers = scan_degree(idx, ctx);
        let (table_lo, column_pos) = Self::table_info(idx)?;
        // The refinement heap: frozen view on the snapshot path (no
        // LO-level S lock), locked handle otherwise.
        let heap: Box<dyn PageSource + Send> = match ctx.snapshot.as_deref() {
            Some(snap) => Box::new(snap.reader(table_lo)?),
            None => Box::new(ctx.space.open_lo(ctx.txn, table_lo, LockMode::Shared)?),
        };
        self.with_td(idx, ctx, |td| {
            let reader = match ctx.snapshot.as_deref() {
                Some(snap) => Some(
                    RStarTreeReader::open(
                        snap.reader(td.lo)?,
                        TreeMetrics::registered(&ctx.space.metrics(), "rstar"),
                    )
                    .map_err(rs_err)?,
                ),
                None => {
                    self.ensure_tree(td, ctx, false)?;
                    None
                }
            };
            td.scan = Some(ScanState {
                probes,
                current: 0,
                cursor: None,
                buffer: None,
                workers,
                qual,
                seen: HashSet::new(),
                heap,
                column_pos,
                candidates: 0,
                matches: 0,
                reader,
            });
            Ok(())
        })
    }

    fn am_rescan(
        &self,
        idx: &IndexDescriptor,
        _scan: &mut ScanDescriptor,
        ctx: &AmContext,
    ) -> Result<(), IdsError> {
        self.with_td(idx, ctx, |td| {
            if let Some(scan) = td.scan.as_mut() {
                scan.cursor = None;
                scan.buffer = None;
                scan.current = 0;
                scan.seen.clear();
            }
            Ok(())
        })
    }

    fn am_getnext(
        &self,
        idx: &IndexDescriptor,
        _scan: &mut ScanDescriptor,
        ctx: &AmContext,
    ) -> Result<Option<(RowId, Vec<Value>)>, IdsError> {
        self.with_td(idx, ctx, |td| self.scan_step(idx, td, ctx))
    }

    fn am_getnext_batch(
        &self,
        idx: &IndexDescriptor,
        _scan: &mut ScanDescriptor,
        max_rows: usize,
        ctx: &AmContext,
    ) -> Result<Vec<(RowId, Vec<Value>)>, IdsError> {
        // One descriptor-lock acquisition per batch of refined rows; a
        // short batch tells the executor the scan is exhausted.
        self.with_td(idx, ctx, |td| {
            let mut out = Vec::with_capacity(max_rows.min(64));
            while out.len() < max_rows {
                match self.scan_step(idx, td, ctx)? {
                    Some(hit) => out.push(hit),
                    None => break,
                }
            }
            Ok(out)
        })
    }

    fn am_endscan(
        &self,
        idx: &IndexDescriptor,
        _scan: &mut ScanDescriptor,
        ctx: &AmContext,
    ) -> Result<(), IdsError> {
        self.with_td(idx, ctx, |td| {
            if let Some(scan) = td.scan.take() {
                ctx.trace.emit_with("RSTAR", 2, || {
                    format!(
                        "scan finished: {} candidates, {} matches",
                        scan.candidates, scan.matches
                    )
                });
            }
            Ok(())
        })
    }

    fn am_insert(
        &self,
        idx: &IndexDescriptor,
        row: &[Value],
        rowid: RowId,
        ctx: &AmContext,
    ) -> Result<(), IdsError> {
        let extent = extent_from_value(
            row.first()
                .ok_or_else(|| IdsError::AccessMethod("no key column".into()))?,
        )?;
        self.with_td(idx, ctx, |td| {
            self.ensure_tree(td, ctx, true)?;
            let rect = self.strategy.to_rect(&extent, td.ct);
            td.tree
                .as_mut()
                .expect("ensured")
                .insert(rect, rowid.0)
                .map_err(rs_err)
        })
    }

    fn am_build(
        &self,
        idx: &IndexDescriptor,
        rows: &[(RowId, Vec<Value>)],
        ctx: &AmContext,
    ) -> Result<bool, IdsError> {
        self.with_td(idx, ctx, |td| {
            self.ensure_tree(td, ctx, true)?;
            let ct = td.ct;
            let mut pairs = Vec::with_capacity(rows.len());
            for (rid, keys) in rows {
                let extent = extent_from_value(
                    keys.first()
                        .ok_or_else(|| IdsError::AccessMethod("no key column".into()))?,
                )?;
                pairs.push((self.strategy.to_rect(&extent, ct), rid.0));
            }
            let tree = td.tree.take().expect("ensured");
            let mut handle = tree.into_lo().map_err(rs_err)?;
            // rst_create already initialised an empty tree in the BLOB;
            // the packed build replaces it wholesale.
            handle.truncate_pages(0)?;
            let mut tree =
                grt_rstar::bulk_load_pairs(handle, &pairs, self.tree_opts).map_err(rs_err)?;
            tree.set_metrics(TreeMetrics::registered(&ctx.space.metrics(), "rstar"));
            td.tree = Some(tree);
            td.mode = LockMode::Exclusive;
            ctx.trace.emit_with("RSTAR", 2, || {
                format!("bulk build: {} entries packed", pairs.len())
            });
            Ok(true)
        })
    }

    fn am_delete(
        &self,
        idx: &IndexDescriptor,
        row: &[Value],
        rowid: RowId,
        ctx: &AmContext,
    ) -> Result<(), IdsError> {
        let extent = extent_from_value(
            row.first()
                .ok_or_else(|| IdsError::AccessMethod("no key column".into()))?,
        )?;
        self.with_td(idx, ctx, |td| {
            self.ensure_tree(td, ctx, true)?;
            let rect = self.strategy.to_rect(&extent, td.ct);
            let out = td
                .tree
                .as_mut()
                .expect("ensured")
                .delete(rect, rowid.0)
                .map_err(rs_err)?;
            if !out.found {
                return Err(IdsError::AccessMethod(format!(
                    "entry for {rowid} not found in {} (horizon drift?)",
                    idx.index_name
                )));
            }
            Ok(())
        })
    }

    fn am_scancost(
        &self,
        idx: &IndexDescriptor,
        qual: &QualDescriptor,
        ctx: &AmContext,
    ) -> Result<f64, IdsError> {
        self.with_td(idx, ctx, |td| {
            let ct = td.ct;
            // Snapshot statements cost the plan from a transient frozen
            // reader — the planner must not take the LO-level S lock the
            // snapshot path exists to avoid.
            let (height, pages, bound) = if let Some(snap) = ctx.snapshot.as_deref() {
                let reader = RStarTreeReader::open(
                    snap.reader(td.lo)?,
                    TreeMetrics::registered(&ctx.space.metrics(), "rstar"),
                )
                .map_err(rs_err)?;
                (
                    reader.height() as f64,
                    reader.pages() as f64,
                    reader.root_mbr().map_err(rs_err)?,
                )
            } else {
                self.ensure_tree(td, ctx, false)?;
                let tree = td.tree.as_ref().expect("ensured");
                (
                    tree.height() as f64,
                    tree.pages() as f64,
                    tree.root_mbr().map_err(rs_err)?,
                )
            };
            // Selectivity from the qualification: the fraction of the
            // root MBR the probes' grounded query rectangles cover.
            let fraction = match bound {
                None => 0.0,
                Some(bound) => {
                    let total = bound.area();
                    let probes = decompose(qual).unwrap_or_default();
                    if probes.is_empty() || total <= 0 {
                        1.0
                    } else {
                        let overlap: i128 = probes
                            .iter()
                            .map(|p| bound.overlap_area(&self.strategy.query_rect(&p.query, ct)))
                            .sum();
                        (overlap as f64 / total as f64).clamp(0.02, 1.0)
                    }
                }
            };
            Ok(height + pages * fraction)
        })
    }

    fn am_supports_snapshot(&self) -> bool {
        true
    }

    fn am_stats(&self, idx: &IndexDescriptor, ctx: &AmContext) -> Result<String, IdsError> {
        self.with_td(idx, ctx, |td| {
            self.ensure_tree(td, ctx, false)?;
            let tree = td.tree.as_ref().expect("ensured");
            let q = tree.quality().map_err(rs_err)?;
            Ok(format!(
                "rstar {}: {} entries, height {}, {} pages, dead space {}, overlap {}",
                idx.index_name,
                tree.len(),
                tree.height(),
                tree.pages(),
                q.total_dead_space(),
                q.total_overlap(),
            ))
        })
    }

    fn am_check(&self, idx: &IndexDescriptor, ctx: &AmContext) -> Result<(), IdsError> {
        self.with_td(idx, ctx, |td| {
            self.ensure_tree(td, ctx, false)?;
            td.tree.as_ref().expect("ensured").check().map_err(rs_err)
        })
    }
}
