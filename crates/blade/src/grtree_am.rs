//! The `grt_*` access-method purpose functions (the paper's Table 5).
//!
//! The DataBlade keeps its private state in the index descriptor, as
//! the paper does: the `Tree` object (here a [`GrTree`] owning the open
//! BLOB handle) and the scan `Cursor` both live in "td", which is what
//! lets `grt_delete` reset an open cursor when a deletion condenses the
//! tree — the Section 5.5 compromise: "we decided to restart scanning
//! of the index only when the tree is actually condensed".
//!
//! Every purpose function emits its step list in trace class `"GRT"`
//! (level 2), which is how the Table 5 reproduction prints the observed
//! steps of a live index.

use crate::curtime::{resolve_current_time, CurrentTimePolicy};
use crate::extent_type::{extent_from_value, extent_to_value, TYPE_NAME};
use crate::qual::{decompose, eval_full, Probe};
use grt_grtree::{GrCursor, GrTree, GrTreeOptions, GrTreeReader};
use grt_ids::{
    AccessMethod, AmContext, DataType, IdsError, IndexDescriptor, QualDescriptor, RowId,
    ScanDescriptor, Value,
};
use grt_metrics::TreeMetrics;
use grt_sbspace::{LoId, LockMode};
use grt_temporal::{Day, TimeExtent};
use std::collections::HashSet;

/// Index scans on trees at least this many pages go parallel when the
/// effective degree exceeds one; smaller probes stay on the serial
/// cursor, whose setup cost they cannot amortise.
const PARALLEL_PAGE_THRESHOLD: u32 = 32;

/// Effective parallel degree for a scan: the session's `SET PARALLEL`
/// override when present, else the engine-wide default carried in the
/// index descriptor's parameters.
pub(crate) fn scan_degree(idx: &IndexDescriptor, ctx: &AmContext) -> usize {
    ctx.session
        .get_named::<usize>("parallel_workers")
        .or_else(|| idx.params.get("scan_workers").and_then(|s| s.parse().ok()))
        .unwrap_or(1)
        .max(1)
}

/// Scan-restart policy after deletions (the Section 5.5 design space).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeletePolicy {
    /// Restart open scans after **every** deletion (the conservative
    /// baseline the paper rejects as time-consuming).
    RestartAlways,
    /// Restart open scans only when the deletion actually condensed the
    /// tree (the paper's compromise).
    #[default]
    RestartOnCondense,
}

/// Blade configuration.
#[derive(Debug, Clone, Copy)]
pub struct GrTreeAmOptions {
    /// GR-tree construction parameters.
    pub tree: GrTreeOptions,
    /// Current-time caching policy (Section 5.4).
    pub curtime: CurrentTimePolicy,
    /// Scan-restart policy (Section 5.5).
    pub delete_policy: DeletePolicy,
}

impl Default for GrTreeAmOptions {
    fn default() -> Self {
        GrTreeAmOptions {
            tree: GrTreeOptions::default(),
            curtime: CurrentTimePolicy::PerStatement,
            delete_policy: DeletePolicy::RestartOnCondense,
        }
    }
}

/// The GR-tree secondary access method.
pub struct GrTreeAm {
    opts: GrTreeAmOptions,
}

impl GrTreeAm {
    /// Creates the access method with the given options.
    pub fn new(opts: GrTreeAmOptions) -> GrTreeAm {
        GrTreeAm { opts }
    }
}

impl Default for GrTreeAm {
    fn default() -> Self {
        GrTreeAm::new(GrTreeAmOptions::default())
    }
}

/// Scan state: the probes derived from the qualification, the live
/// cursor, and the dedup set across OR branches / restarts.
struct ScanState {
    probes: Vec<Probe>,
    current: usize,
    cursor: Option<GrCursor>,
    /// Merged parallel results for the current probe, handed out from
    /// the back. `None` while the probe runs on the serial cursor.
    buffer: Option<Vec<(TimeExtent, u64)>>,
    /// Requested parallel degree (resolved at `am_beginscan`).
    workers: usize,
    qual: QualDescriptor,
    seen: HashSet<(u64, [u8; 16])>,
    /// Frozen-view reader when the statement runs on a space snapshot
    /// (no BLOB lock, no condense restarts). Lives in the scan — not in
    /// "td" — so it is released with the statement, never pinning
    /// retired pages past `am_endscan`.
    reader: Option<GrTreeReader>,
}

/// The DataBlade's private index state ("td").
struct TdState {
    lo: LoId,
    mode: LockMode,
    tree: Option<GrTree>,
    ct: Day,
    scan: Option<ScanState>,
}

fn gr_err(e: grt_grtree::GrError) -> IdsError {
    IdsError::AccessMethod(e.to_string())
}

impl GrTreeAm {
    fn trace_step(&self, ctx: &AmContext, func: &str, step: &str) {
        ctx.trace.emit_with("GRT", 2, || format!("{func}: {step}"));
    }

    /// Runs `f` with the descriptor's `TdState`, creating it on demand
    /// from the fragment catalog.
    fn with_td<R>(
        &self,
        idx: &IndexDescriptor,
        ctx: &AmContext,
        f: impl FnOnce(&mut TdState) -> Result<R, IdsError>,
    ) -> Result<R, IdsError> {
        let mut guard = idx.user_data.lock();
        if guard.is_none() {
            let lo = {
                let frags = ctx.fragments.lock();
                LoId(*frags.get(&idx.index_name).ok_or_else(|| {
                    IdsError::AccessMethod(format!(
                        "index {} has no fragment (was am_create run?)",
                        idx.index_name
                    ))
                })?)
            };
            *guard = Some(Box::new(TdState {
                lo,
                mode: LockMode::Shared,
                tree: None,
                ct: ctx.clock.today(),
                scan: None,
            }));
        }
        let td = guard
            .as_mut()
            .and_then(|b| b.downcast_mut::<TdState>())
            .ok_or_else(|| IdsError::AccessMethod("foreign index state".into()))?;
        f(td)
    }

    /// Ensures the tree is open with at least the needed lock mode.
    fn ensure_tree(&self, td: &mut TdState, ctx: &AmContext, write: bool) -> Result<(), IdsError> {
        let need = if write {
            LockMode::Exclusive
        } else {
            LockMode::Shared
        };
        if td.tree.is_some() && (td.mode == LockMode::Exclusive || need == LockMode::Shared) {
            return Ok(());
        }
        // (Re)open the BLOB in the required mode; the automatic LO-level
        // locking of the sbspace applies (Section 5.3).
        if let Some(tree) = td.tree.take() {
            let handle = tree.into_lo().map_err(gr_err)?;
            handle.close()?;
        }
        let handle = ctx.space.open_lo(ctx.txn, td.lo, need)?;
        let mut tree = GrTree::open(handle).map_err(gr_err)?;
        tree.set_metrics(TreeMetrics::registered(&ctx.space.metrics(), "grtree"));
        td.tree = Some(tree);
        td.mode = need;
        Ok(())
    }

    /// Mounts the statement's frozen view of this index, if the engine
    /// routed the statement onto a space snapshot.
    fn snapshot_reader(
        &self,
        td: &TdState,
        ctx: &AmContext,
    ) -> Result<Option<GrTreeReader>, IdsError> {
        let Some(snap) = ctx.snapshot.as_deref() else {
            return Ok(None);
        };
        let reader = GrTreeReader::open(
            snap.reader(td.lo)?,
            TreeMetrics::registered(&ctx.space.metrics(), "grtree"),
        )
        .map_err(gr_err)?;
        Ok(Some(reader))
    }

    /// The Section 6 cost formula shared by the locked and snapshot
    /// scan-cost paths: tree height plus the page count scaled by the
    /// fraction of the root bound the probes cover.
    fn cost_estimate(
        height: f64,
        pages: f64,
        bound: Option<grt_temporal::Region>,
        qual: &QualDescriptor,
        ct: Day,
    ) -> f64 {
        let fraction = match bound {
            None => 0.0,
            Some(bound) => {
                let total = bound.area();
                let probes = decompose(qual).unwrap_or_default();
                if probes.is_empty() || total <= 0 {
                    1.0
                } else {
                    let overlap: i128 = probes
                        .iter()
                        .map(|p| bound.intersection_area(&p.query.region(ct)))
                        .sum();
                    (overlap as f64 / total as f64).clamp(0.02, 1.0)
                }
            }
        };
        height + pages * fraction
    }

    fn extent_of(row: &[Value]) -> Result<grt_temporal::TimeExtent, IdsError> {
        extent_from_value(
            row.first()
                .ok_or_else(|| IdsError::AccessMethod("indexed row has no key column".into()))?,
        )
    }

    fn restart_scan(td: &mut TdState) {
        if let Some(scan) = td.scan.as_mut() {
            // Drop the live cursor — and any buffered parallel results,
            // which the restarted traversal re-derives from the new
            // root — and rewind to the first probe; the dedup set keeps
            // already-returned entries from reappearing.
            scan.cursor = None;
            scan.buffer = None;
            scan.current = 0;
        }
    }

    /// One qualifying row off the scan, shared by `grt_getnext` and
    /// `grt_getnext_batch`; the caller already holds the descriptor
    /// lock via [`Self::with_td`].
    fn scan_step(
        &self,
        idx: &IndexDescriptor,
        td: &mut TdState,
        ctx: &AmContext,
    ) -> Result<Option<(RowId, Vec<Value>)>, IdsError> {
        // A snapshot scan never touches the locked tree; everything it
        // needs lives in the scan state's frozen reader.
        let on_snapshot = td.scan.as_ref().is_some_and(|s| s.reader.is_some());
        if !on_snapshot {
            self.ensure_tree(td, ctx, false)?;
        }
        let ct = td.ct;
        let tree = td.tree.as_ref();
        let scan = td
            .scan
            .as_mut()
            .ok_or_else(|| IdsError::AccessMethod("getnext without beginscan".into()))?;
        loop {
            if scan.cursor.is_none() && scan.buffer.is_none() {
                let Some(probe) = scan.probes.get(scan.current) else {
                    return Ok(None);
                };
                let (pred, query) = (probe.pred, probe.query);
                let pages = match &scan.reader {
                    Some(r) => r.pages(),
                    None => tree.expect("ensured").pages(),
                };
                if scan.workers > 1 && pages >= PARALLEL_PAGE_THRESHOLD {
                    // The probe clears the page threshold: run it
                    // through the work-stealing traversal over the
                    // pinned read path and buffer the merged rows.
                    let locked_view;
                    let reader = match &scan.reader {
                        Some(r) => r,
                        None => {
                            locked_view = tree.expect("ensured").reader();
                            &locked_view
                        }
                    };
                    let result = grt_grtree::parallel_scan(reader, pred, query, ct, scan.workers)
                        .map_err(gr_err)?;
                    let metrics = ctx.space.metrics();
                    metrics.counter("scan.parallel_scans").inc();
                    let worker_ns = metrics.histogram("scan.parallel_worker_ns");
                    for &ns in &result.stats.worker_ns {
                        worker_ns.observe_ns(ns);
                    }
                    ctx.trace.emit_with("GRT", 2, || {
                        format!(
                            "grt_getnext: parallel scan: degree {}, {} frontier subtrees, {} rows",
                            result.stats.workers,
                            result.stats.frontier,
                            result.rows.len()
                        )
                    });
                    ctx.trace.emit_with("EXPLAIN", 1, || {
                        format!(
                            "parallel index scan on {}: degree {} (requested {})",
                            idx.index_name, result.stats.workers, scan.workers
                        )
                    });
                    let mut rows = result.rows;
                    rows.reverse();
                    scan.buffer = Some(rows);
                } else {
                    if scan.workers > 1 {
                        ctx.space.metrics().counter("scan.parallel_fallbacks").inc();
                    }
                    scan.cursor = Some(match &scan.reader {
                        Some(r) => r.cursor(pred, query, ct),
                        None => tree.expect("ensured").cursor(pred, query, ct),
                    });
                }
            }
            if let Some(buf) = scan.buffer.as_mut() {
                match buf.pop() {
                    None => {
                        scan.buffer = None;
                        scan.current += 1;
                    }
                    Some((extent, rowid)) => {
                        if !scan.seen.insert((rowid, extent.encode_array())) {
                            continue;
                        }
                        if eval_full(&scan.qual, &extent, ct)? {
                            return Ok(Some((RowId(rowid), vec![extent_to_value(&extent)])));
                        }
                    }
                }
                continue;
            }
            let cursor = scan.cursor.as_mut().expect("just set");
            let step = match &scan.reader {
                Some(r) => r.cursor_next(cursor),
                None => tree.expect("ensured").cursor_next(cursor),
            };
            match step.map_err(gr_err)? {
                None => {
                    scan.cursor = None;
                    scan.current += 1;
                }
                Some((extent, rowid)) => {
                    if !scan.seen.insert((rowid, extent.encode_array())) {
                        continue;
                    }
                    if eval_full(&scan.qual, &extent, ct)? {
                        return Ok(Some((RowId(rowid), vec![extent_to_value(&extent)])));
                    }
                }
            }
        }
    }
}

impl AccessMethod for GrTreeAm {
    fn am_create(&self, idx: &IndexDescriptor, ctx: &AmContext) -> Result<(), IdsError> {
        self.trace_step(
            ctx,
            "grt_create",
            "(1) Create object Tree and save its pointer in td",
        );
        // (2) The access method handles only GRT_TimeExtent_t columns.
        match idx.column_types.first() {
            Some(DataType::Opaque(t)) if t.eq_ignore_ascii_case(TYPE_NAME) => {}
            other => {
                self.trace_step(ctx, "grt_create", "(2) column type check failed");
                return Err(IdsError::AccessMethod(format!(
                    "grtree_am indexes {TYPE_NAME} columns, got {other:?}"
                )));
            }
        }
        self.trace_step(ctx, "grt_create", "(2) column types accepted");
        self.trace_step(ctx, "grt_create", "(3) operator class accepted");
        // (4) Duplicate indices on the same column are rejected by the
        // engine's catalog; (5) create the BLOB.
        let lo = ctx.space.create_lo(ctx.txn)?;
        self.trace_step(
            ctx,
            "grt_create",
            "(5) Create a BLOB where the index will be stored",
        );
        // (6) Record the BLOB handle in the table associated with the
        // access method (SYSFRAGMENTS).
        ctx.fragments.lock().insert(idx.index_name.clone(), lo.0);
        self.trace_step(
            ctx,
            "grt_create",
            "(6) Insert index id and BLOB handle into the access-method table",
        );
        // (7) Open the BLOB and initialise the tree.
        let handle = ctx.space.open_lo(ctx.txn, lo, LockMode::Exclusive)?;
        let mut tree = GrTree::create(handle, self.opts.tree).map_err(gr_err)?;
        tree.set_metrics(TreeMetrics::registered(&ctx.space.metrics(), "grtree"));
        self.trace_step(ctx, "grt_create", "(7) Open the BLOB");
        *idx.user_data.lock() = Some(Box::new(TdState {
            lo,
            mode: LockMode::Exclusive,
            tree: Some(tree),
            ct: resolve_current_time(self.opts.curtime, ctx),
            scan: None,
        }));
        Ok(())
    }

    fn am_drop(&self, idx: &IndexDescriptor, ctx: &AmContext) -> Result<(), IdsError> {
        self.trace_step(ctx, "grt_drop", "(1) Get a pointer to Tree object from td");
        // Close any open tree first.
        if let Some(boxed) = idx.user_data.lock().take() {
            if let Ok(td) = boxed.downcast::<TdState>() {
                if let Some(tree) = td.tree {
                    tree.into_lo().map_err(gr_err)?.close()?;
                }
            }
        }
        let lo = ctx.fragments.lock().remove(&idx.index_name);
        if let Some(lo) = lo {
            ctx.space.drop_lo(ctx.txn, LoId(lo))?;
            self.trace_step(ctx, "grt_drop", "(2) Drop the BLOB");
        }
        self.trace_step(ctx, "grt_drop", "(3) Delete Tree object");
        self.trace_step(
            ctx,
            "grt_drop",
            "(4) Delete the record from the access-method table",
        );
        Ok(())
    }

    fn am_open(&self, idx: &IndexDescriptor, ctx: &AmContext) -> Result<(), IdsError> {
        let ct = resolve_current_time(self.opts.curtime, ctx);
        self.with_td(idx, ctx, |td| {
            td.ct = ct;
            if td.tree.is_some() {
                self.trace_step(ctx, "grt_open", "(1) invoked right after grt_create: exit");
                return Ok(());
            }
            if ctx.snapshot.is_some() {
                // The statement runs on a frozen space snapshot: no BLOB
                // is opened and no LO-level lock is taken — the scan
                // mounts the view at grt_beginscan.
                self.trace_step(ctx, "grt_open", "(2) snapshot scan: defer to frozen view");
                return Ok(());
            }
            self.trace_step(
                ctx,
                "grt_open",
                "(2) Create object Tree and save its pointer in td",
            );
            self.trace_step(
                ctx,
                "grt_open",
                "(3) Get the BLOB handle from the access-method table",
            );
            self.ensure_tree(td, ctx, false)?;
            self.trace_step(ctx, "grt_open", "(4) Open the BLOB");
            Ok(())
        })
    }

    fn am_close(&self, idx: &IndexDescriptor, ctx: &AmContext) -> Result<(), IdsError> {
        self.trace_step(ctx, "grt_close", "(1) Get a pointer to Tree object from td");
        let mut guard = idx.user_data.lock();
        if let Some(boxed) = guard.take() {
            if let Ok(td) = boxed.downcast::<TdState>() {
                if let Some(tree) = td.tree {
                    tree.into_lo().map_err(gr_err)?.close()?;
                    self.trace_step(ctx, "grt_close", "(2) Close the BLOB");
                }
            }
        }
        self.trace_step(ctx, "grt_close", "(3) Delete Tree object");
        Ok(())
    }

    fn am_beginscan(
        &self,
        idx: &IndexDescriptor,
        scan: &mut ScanDescriptor,
        ctx: &AmContext,
    ) -> Result<(), IdsError> {
        self.trace_step(
            ctx,
            "grt_beginscan",
            "(1) Get qualification descriptor qd from sd",
        );
        self.trace_step(ctx, "grt_beginscan", "(2) Get index descriptor td from sd");
        let probes = decompose(&scan.qual)?;
        let qual = scan.qual.clone();
        let workers = scan_degree(idx, ctx);
        self.with_td(idx, ctx, |td| {
            let reader = self.snapshot_reader(td, ctx)?;
            if reader.is_some() {
                self.trace_step(
                    ctx,
                    "grt_beginscan",
                    "(2a) snapshot scan: mount frozen view, no BLOB lock",
                );
            } else {
                self.ensure_tree(td, ctx, false)?;
            }
            td.scan = Some(ScanState {
                probes,
                current: 0,
                cursor: None,
                buffer: None,
                workers,
                qual,
                seen: HashSet::new(),
                reader,
            });
            self.trace_step(
                ctx,
                "grt_beginscan",
                "(3) Create Cursor object by calling Tree's search() method",
            );
            self.trace_step(ctx, "grt_beginscan", "(4) Save a pointer to Cursor in td");
            Ok(())
        })
    }

    fn am_rescan(
        &self,
        idx: &IndexDescriptor,
        _scan: &mut ScanDescriptor,
        ctx: &AmContext,
    ) -> Result<(), IdsError> {
        self.trace_step(ctx, "grt_rescan", "(1-2) Get Cursor from td");
        self.with_td(idx, ctx, |td| {
            if let Some(scan) = td.scan.as_mut() {
                scan.cursor = None;
                scan.buffer = None;
                scan.current = 0;
                scan.seen.clear();
            }
            self.trace_step(ctx, "grt_rescan", "(3) Reset Cursor");
            Ok(())
        })
    }

    fn am_getnext(
        &self,
        idx: &IndexDescriptor,
        _scan: &mut ScanDescriptor,
        ctx: &AmContext,
    ) -> Result<Option<(RowId, Vec<Value>)>, IdsError> {
        self.with_td(idx, ctx, |td| self.scan_step(idx, td, ctx))
    }

    fn am_getnext_batch(
        &self,
        idx: &IndexDescriptor,
        _scan: &mut ScanDescriptor,
        max_rows: usize,
        ctx: &AmContext,
    ) -> Result<Vec<(RowId, Vec<Value>)>, IdsError> {
        // One descriptor-lock acquisition for the whole batch; a short
        // batch tells the executor the scan is exhausted.
        self.with_td(idx, ctx, |td| {
            let mut out = Vec::with_capacity(max_rows.min(64));
            while out.len() < max_rows {
                match self.scan_step(idx, td, ctx)? {
                    Some(hit) => out.push(hit),
                    None => break,
                }
            }
            self.trace_step(
                ctx,
                "grt_getnext_batch",
                &format!(
                    "(1-2) Advance Cursor up to {max_rows} rows: {} row(s)",
                    out.len()
                ),
            );
            Ok(out)
        })
    }

    fn am_endscan(
        &self,
        idx: &IndexDescriptor,
        _scan: &mut ScanDescriptor,
        ctx: &AmContext,
    ) -> Result<(), IdsError> {
        self.trace_step(ctx, "grt_endscan", "(1-2) Get Cursor from td");
        self.with_td(idx, ctx, |td| {
            td.scan = None;
            self.trace_step(ctx, "grt_endscan", "(3) Delete Cursor");
            Ok(())
        })
    }

    fn am_insert(
        &self,
        idx: &IndexDescriptor,
        row: &[Value],
        rowid: RowId,
        ctx: &AmContext,
    ) -> Result<(), IdsError> {
        let extent = Self::extent_of(row)?;
        self.with_td(idx, ctx, |td| {
            self.ensure_tree(td, ctx, true)?;
            self.trace_step(
                ctx,
                "grt_insert",
                "(1) Get a pointer to Tree object from td",
            );
            self.trace_step(
                ctx,
                "grt_insert",
                "(2) Form the entry from the newrow and the newrowid",
            );
            let ct = td.ct;
            td.tree
                .as_mut()
                .expect("ensured")
                .insert(extent, rowid.0, ct)
                .map_err(gr_err)?;
            self.trace_step(
                ctx,
                "grt_insert",
                "(3) Insert the entry via Tree's insert()",
            );
            Ok(())
        })
    }

    fn am_build(
        &self,
        idx: &IndexDescriptor,
        rows: &[(RowId, Vec<Value>)],
        ctx: &AmContext,
    ) -> Result<bool, IdsError> {
        let mut entries = Vec::with_capacity(rows.len());
        for (rid, keys) in rows {
            entries.push(grt_grtree::LeafEntry {
                extent: Self::extent_of(keys)?,
                rowid: rid.0,
            });
        }
        self.with_td(idx, ctx, |td| {
            self.ensure_tree(td, ctx, true)?;
            self.trace_step(ctx, "grt_build", "(1) Get a pointer to Tree object from td");
            let ct = td.ct;
            let tree = td.tree.take().expect("ensured");
            let mut handle = tree.into_lo().map_err(gr_err)?;
            // grt_create already initialised an empty tree in the BLOB;
            // the packed build replaces it wholesale.
            handle.truncate_pages(0)?;
            let count = entries.len();
            let mut tree =
                grt_grtree::bulk::bulk_load(handle, entries, ct, self.opts.tree).map_err(gr_err)?;
            tree.set_metrics(TreeMetrics::registered(&ctx.space.metrics(), "grtree"));
            td.tree = Some(tree);
            td.mode = LockMode::Exclusive;
            self.trace_step(
                ctx,
                "grt_build",
                &format!("(2) Bulk-load {count} entries via STR packing"),
            );
            Ok(true)
        })
    }

    fn am_delete(
        &self,
        idx: &IndexDescriptor,
        row: &[Value],
        rowid: RowId,
        ctx: &AmContext,
    ) -> Result<(), IdsError> {
        let extent = Self::extent_of(row)?;
        self.with_td(idx, ctx, |td| {
            self.ensure_tree(td, ctx, true)?;
            self.trace_step(
                ctx,
                "grt_delete",
                "(1) Get a pointer to Tree object from td",
            );
            self.trace_step(ctx, "grt_delete", "(2-3) Locate the entry for oldrowid");
            let ct = td.ct;
            let outcome = td
                .tree
                .as_mut()
                .expect("ensured")
                .delete(&extent, rowid.0, ct)
                .map_err(gr_err)?;
            if !outcome.found {
                return Err(IdsError::AccessMethod(format!(
                    "entry for {rowid} not found in {}",
                    idx.index_name
                )));
            }
            self.trace_step(
                ctx,
                "grt_delete",
                "(4) Delete the entry via Tree's delete()",
            );
            let restart = match self.opts.delete_policy {
                DeletePolicy::RestartAlways => true,
                DeletePolicy::RestartOnCondense => outcome.condensed,
            };
            if restart {
                Self::restart_scan(td);
                self.trace_step(ctx, "grt_delete", "(5) Tree condensed: reset Cursor");
            }
            Ok(())
        })
    }

    fn am_scancost(
        &self,
        idx: &IndexDescriptor,
        qual: &QualDescriptor,
        ctx: &AmContext,
    ) -> Result<f64, IdsError> {
        self.with_td(idx, ctx, |td| {
            let ct = td.ct;
            // Snapshot statements cost the plan from a transient frozen
            // reader — the planner must not take the LO-level S lock the
            // snapshot path exists to avoid.
            if let Some(reader) = self.snapshot_reader(td, ctx)? {
                return Ok(Self::cost_estimate(
                    reader.height() as f64,
                    reader.pages() as f64,
                    reader.root_bound(ct).map_err(gr_err)?,
                    qual,
                    ct,
                ));
            }
            self.ensure_tree(td, ctx, false)?;
            let tree = td.tree.as_ref().expect("ensured");
            // Selectivity from the qualification: the fraction of the
            // root bound (resolved at ct) the probes' query extents
            // cover, floored so the estimate stays monotone in size.
            Ok(Self::cost_estimate(
                tree.height() as f64,
                tree.pages() as f64,
                tree.root_bound(ct).map_err(gr_err)?,
                qual,
                ct,
            ))
        })
    }

    fn am_supports_snapshot(&self) -> bool {
        true
    }

    fn am_stats(&self, idx: &IndexDescriptor, ctx: &AmContext) -> Result<String, IdsError> {
        self.with_td(idx, ctx, |td| {
            self.ensure_tree(td, ctx, false)?;
            let ct = td.ct;
            let tree = td.tree.as_ref().expect("ensured");
            let q = tree.quality(ct).map_err(gr_err)?;
            Ok(format!(
                "grtree {}: {} entries, height {}, {} pages, dead space {}, overlap {}, \
                 {} stair / {} hidden / {} growing-rect bounds",
                idx.index_name,
                tree.len(),
                tree.height(),
                tree.pages(),
                q.total_dead_space(),
                q.total_overlap(),
                q.stair_bounds,
                q.hidden_bounds,
                q.growing_rect_bounds,
            ))
        })
    }

    fn am_check(&self, idx: &IndexDescriptor, ctx: &AmContext) -> Result<(), IdsError> {
        self.with_td(idx, ctx, |td| {
            self.ensure_tree(td, ctx, false)?;
            let ct = td.ct;
            td.tree.as_ref().expect("ensured").check(ct).map_err(gr_err)
        })
    }
}
