//! Current-time handling (Section 5.4).
//!
//! The GR-tree algorithms resolve `UC` and `NOW` against the current
//! time. "The simplest solution is to use a constant current-time value
//! during a single statement ... getting this time value when the index
//! is opened (in the am_open purpose function)." For a constant value
//! over a whole transaction, "the only possible moment to get it is the
//! first time the index is used during the transaction", cached in
//! session named memory and freed by the transaction-end callback —
//! which is exactly what [`resolve_current_time`] does through the
//! engine's session machinery.

use grt_ids::session::MemDuration;
use grt_ids::AmContext;
use grt_temporal::Day;

/// When the current time is sampled and how long the sample is reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CurrentTimePolicy {
    /// Sample at every use (incorrect under the paper's semantics — a
    /// long statement can see time move; kept for the ablation).
    PerCall,
    /// Constant during a statement: sampled at `am_open`, freed when
    /// the statement completes (the prototype's baseline behaviour).
    #[default]
    PerStatement,
    /// Constant during a transaction: sampled the first time the index
    /// is used in the transaction, freed by the transaction-end
    /// callback (the approach the GR-tree DataBlade uses).
    PerTransaction,
}

/// The named-memory key used for the cached value.
pub const CT_MEMORY_KEY: &str = "grt_current_time";

/// Resolves the statement's current time under `policy`.
pub fn resolve_current_time(policy: CurrentTimePolicy, ctx: &AmContext) -> Day {
    let duration = match policy {
        CurrentTimePolicy::PerCall => return ctx.clock.today(),
        CurrentTimePolicy::PerStatement => MemDuration::PerStatement,
        CurrentTimePolicy::PerTransaction => MemDuration::PerTransaction,
    };
    if let Some(cached) = ctx.session.get_named::<Day>(CT_MEMORY_KEY) {
        return cached;
    }
    let now = ctx.clock.today();
    ctx.session.put_named(CT_MEMORY_KEY, duration, now);
    now
}

#[cfg(test)]
mod tests {
    use super::*;
    use grt_temporal::MockClock;

    fn ctx_with_clock() -> (AmContext<'static>, MockClock) {
        let clock = MockClock::new(Day(100));
        let mut ctx = AmContext::for_tests();
        ctx.clock = std::sync::Arc::new(clock.clone());
        (ctx, clock)
    }

    #[test]
    fn per_call_tracks_the_clock() {
        let (ctx, clock) = ctx_with_clock();
        assert_eq!(
            resolve_current_time(CurrentTimePolicy::PerCall, &ctx),
            Day(100)
        );
        clock.advance(5);
        assert_eq!(
            resolve_current_time(CurrentTimePolicy::PerCall, &ctx),
            Day(105)
        );
    }

    #[test]
    fn per_statement_caches_until_statement_end() {
        let (ctx, clock) = ctx_with_clock();
        assert_eq!(
            resolve_current_time(CurrentTimePolicy::PerStatement, &ctx),
            Day(100)
        );
        clock.advance(5);
        // Within the statement: still the cached value.
        assert_eq!(
            resolve_current_time(CurrentTimePolicy::PerStatement, &ctx),
            Day(100)
        );
        // The engine clears per-statement memory between statements.
        ctx.session.clear_duration(MemDuration::PerStatement);
        assert_eq!(
            resolve_current_time(CurrentTimePolicy::PerStatement, &ctx),
            Day(105)
        );
    }

    #[test]
    fn per_transaction_survives_statements() {
        let (ctx, clock) = ctx_with_clock();
        assert_eq!(
            resolve_current_time(CurrentTimePolicy::PerTransaction, &ctx),
            Day(100)
        );
        clock.advance(7);
        ctx.session.clear_duration(MemDuration::PerStatement);
        // Still cached: the duration is per-transaction.
        assert_eq!(
            resolve_current_time(CurrentTimePolicy::PerTransaction, &ctx),
            Day(100)
        );
        // The transaction-end callback clears it.
        ctx.session.clear_duration(MemDuration::PerTransaction);
        assert_eq!(
            resolve_current_time(CurrentTimePolicy::PerTransaction, &ctx),
            Day(107)
        );
    }
}
