//! Current-time handling (Section 5.4).
//!
//! The GR-tree algorithms resolve `UC` and `NOW` against the current
//! time. "The simplest solution is to use a constant current-time value
//! during a single statement ... getting this time value when the index
//! is opened (in the am_open purpose function)." For a constant value
//! over a whole transaction, "the only possible moment to get it is the
//! first time the index is used during the transaction", cached in
//! session named memory and freed by the transaction-end callback —
//! which is exactly what [`resolve_current_time`] does through the
//! engine's session machinery.

use grt_ids::session::MemDuration;
use grt_ids::AmContext;
use grt_temporal::Day;

/// When the current time is sampled and how long the sample is reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CurrentTimePolicy {
    /// Sample at every use (incorrect under the paper's semantics — a
    /// long statement can see time move; kept for the ablation).
    PerCall,
    /// Constant during a statement: sampled at `am_open`, freed when
    /// the statement completes (the prototype's baseline behaviour).
    #[default]
    PerStatement,
    /// Constant during a transaction: sampled the first time the index
    /// is used in the transaction, freed by the transaction-end
    /// callback (the approach the GR-tree DataBlade uses).
    PerTransaction,
}

/// The named-memory key used for the cached value.
pub const CT_MEMORY_KEY: &str = "grt_current_time";

/// Resolves the statement's current time under `policy`.
pub fn resolve_current_time(policy: CurrentTimePolicy, ctx: &AmContext) -> Day {
    let duration = match policy {
        CurrentTimePolicy::PerCall => return ctx.clock.today(),
        CurrentTimePolicy::PerStatement => MemDuration::PerStatement,
        CurrentTimePolicy::PerTransaction => MemDuration::PerTransaction,
    };
    if let Some(cached) = ctx.session.get_named::<Day>(CT_MEMORY_KEY) {
        return cached;
    }
    let now = ctx.clock.today();
    ctx.session.put_named(CT_MEMORY_KEY, duration, now);
    now
}

#[cfg(test)]
mod tests {
    use super::*;
    use grt_temporal::MockClock;

    fn ctx_with_clock() -> (AmContext<'static>, MockClock) {
        let clock = MockClock::new(Day(100));
        let mut ctx = AmContext::for_tests();
        ctx.clock = std::sync::Arc::new(clock.clone());
        (ctx, clock)
    }

    #[test]
    fn per_call_tracks_the_clock() {
        let (ctx, clock) = ctx_with_clock();
        assert_eq!(
            resolve_current_time(CurrentTimePolicy::PerCall, &ctx),
            Day(100)
        );
        clock.advance(5);
        assert_eq!(
            resolve_current_time(CurrentTimePolicy::PerCall, &ctx),
            Day(105)
        );
    }

    #[test]
    fn per_statement_caches_until_statement_end() {
        let (ctx, clock) = ctx_with_clock();
        assert_eq!(
            resolve_current_time(CurrentTimePolicy::PerStatement, &ctx),
            Day(100)
        );
        clock.advance(5);
        // Within the statement: still the cached value.
        assert_eq!(
            resolve_current_time(CurrentTimePolicy::PerStatement, &ctx),
            Day(100)
        );
        // The engine clears per-statement memory between statements.
        ctx.session.clear_duration(MemDuration::PerStatement);
        assert_eq!(
            resolve_current_time(CurrentTimePolicy::PerStatement, &ctx),
            Day(105)
        );
    }

    #[test]
    fn per_transaction_survives_statements() {
        let (ctx, clock) = ctx_with_clock();
        assert_eq!(
            resolve_current_time(CurrentTimePolicy::PerTransaction, &ctx),
            Day(100)
        );
        clock.advance(7);
        ctx.session.clear_duration(MemDuration::PerStatement);
        // Still cached: the duration is per-transaction.
        assert_eq!(
            resolve_current_time(CurrentTimePolicy::PerTransaction, &ctx),
            Day(100)
        );
        // The transaction-end callback clears it.
        ctx.session.clear_duration(MemDuration::PerTransaction);
        assert_eq!(
            resolve_current_time(CurrentTimePolicy::PerTransaction, &ctx),
            Day(107)
        );
    }

    use grt_ids::{Database, DatabaseOptions, IdsError, Value};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, Mutex};

    /// A database with a probe UDR that resolves the current time under
    /// `policy`, logs it, and — on its very first call only — advances
    /// the clock by 5 days and fails as an injected deadlock victim, so
    /// the engine's automatic retry re-runs the statement with the
    /// clock visibly moved.
    fn db_with_failing_probe(
        policy: CurrentTimePolicy,
    ) -> (Database, MockClock, Arc<Mutex<Vec<Day>>>) {
        let clock = MockClock::new(Day(100));
        let db = Database::new(DatabaseOptions {
            clock: std::sync::Arc::new(clock.clone()),
            retry_backoff: std::time::Duration::ZERO,
            ..Default::default()
        });
        let log: Arc<Mutex<Vec<Day>>> = Arc::new(Mutex::new(Vec::new()));
        let failed = Arc::new(AtomicBool::new(false));
        {
            let log = Arc::clone(&log);
            let failed = Arc::clone(&failed);
            let clock = clock.clone();
            db.install_symbol(
                "usr/probe.bld(ct_probe)",
                Arc::new(move |_args: &[Value], ctx: &grt_ids::AmContext| {
                    let ct = resolve_current_time(policy, ctx);
                    log.lock().unwrap().push(ct);
                    if !failed.swap(true, Ordering::SeqCst) {
                        clock.advance(5);
                        return Err(IdsError::Storage(grt_sbspace::SbError::Deadlock(
                            "injected victim".into(),
                        )));
                    }
                    Ok(Value::Bool(true))
                }),
            );
        }
        let conn = db.connect();
        conn.exec(
            "CREATE FUNCTION CtProbe(integer) RETURNING boolean \
             EXTERNAL NAME 'usr/probe.bld(ct_probe)' LANGUAGE c",
        )
        .unwrap();
        conn.exec("CREATE TABLE t (n integer)").unwrap();
        conn.exec("INSERT INTO t VALUES (1)").unwrap();
        (db, clock, log)
    }

    /// Like [`db_with_failing_probe`] but the probe only logs — no
    /// injected failure — so tests can watch when the current time is
    /// sampled across statements.
    fn db_with_probe(policy: CurrentTimePolicy) -> (Database, MockClock, Arc<Mutex<Vec<Day>>>) {
        let clock = MockClock::new(Day(100));
        let db = Database::new(DatabaseOptions {
            clock: std::sync::Arc::new(clock.clone()),
            ..Default::default()
        });
        let log: Arc<Mutex<Vec<Day>>> = Arc::new(Mutex::new(Vec::new()));
        {
            let log = Arc::clone(&log);
            db.install_symbol(
                "usr/probe.bld(ct_probe)",
                Arc::new(move |_args: &[Value], ctx: &grt_ids::AmContext| {
                    log.lock().unwrap().push(resolve_current_time(policy, ctx));
                    Ok(Value::Bool(true))
                }),
            );
        }
        let conn = db.connect();
        conn.exec(
            "CREATE FUNCTION CtProbe(integer) RETURNING boolean \
             EXTERNAL NAME 'usr/probe.bld(ct_probe)' LANGUAGE c",
        )
        .unwrap();
        conn.exec("CREATE TABLE t (n integer)").unwrap();
        conn.exec("INSERT INTO t VALUES (1)").unwrap();
        (db, clock, log)
    }

    #[test]
    fn execute_resolves_per_statement_time_like_ad_hoc() {
        // A prepared statement reuses the *plan*, never the sampled
        // current time: each EXECUTE is its own statement, so the
        // per-statement policy re-samples exactly as ad-hoc SQL does.
        let (db, clock, log) = db_with_probe(CurrentTimePolicy::PerStatement);
        let conn = db.connect();
        conn.exec("PREPARE p FROM 'SELECT n FROM t WHERE CtProbe(n)'")
            .unwrap();
        conn.exec("EXECUTE p").unwrap();
        conn.exec("SELECT n FROM t WHERE CtProbe(n)").unwrap();
        clock.advance(5);
        conn.exec("EXECUTE p").unwrap();
        conn.exec("SELECT n FROM t WHERE CtProbe(n)").unwrap();
        assert_eq!(
            *log.lock().unwrap(),
            vec![Day(100), Day(100), Day(105), Day(105)],
            "EXECUTE and ad-hoc must sample per-statement time identically"
        );
    }

    #[test]
    fn execute_shares_per_transaction_time_with_ad_hoc_statements() {
        // Section 5.4 inside an explicit transaction: the first index
        // use pins the transaction's current time, and it must not
        // matter whether the statements arrive via EXECUTE or ad-hoc.
        let (db, clock, log) = db_with_probe(CurrentTimePolicy::PerTransaction);
        let conn = db.connect();
        conn.exec("PREPARE p FROM 'SELECT n FROM t WHERE CtProbe(n)'")
            .unwrap();
        conn.exec("BEGIN WORK").unwrap();
        conn.exec("EXECUTE p").unwrap();
        clock.advance(5);
        conn.exec("SELECT n FROM t WHERE CtProbe(n)").unwrap();
        conn.exec("EXECUTE p").unwrap();
        conn.exec("COMMIT WORK").unwrap();
        // A fresh transaction samples the moved clock — again via both
        // paths.
        conn.exec("EXECUTE p").unwrap();
        assert_eq!(
            *log.lock().unwrap(),
            vec![Day(100), Day(100), Day(100), Day(105)],
            "per-transaction time must ride across EXECUTE and ad-hoc alike"
        );
    }

    #[test]
    fn retried_statement_re_resolves_per_statement_time() {
        let (db, _clock, log) = db_with_failing_probe(CurrentTimePolicy::PerStatement);
        let conn = db.connect();
        let before = db.metrics_snapshot();
        let r = conn.exec("SELECT n FROM t WHERE CtProbe(n)").unwrap();
        assert_eq!(r.rows.len(), 1, "victim statement succeeded on retry");
        let d = db.metrics_snapshot().since(&before);
        assert_eq!(d.get("stmt.retries"), 1);
        // The first attempt sampled day 100; the abort freed the
        // per-statement cell, so the retry sampled the moved clock.
        assert_eq!(*log.lock().unwrap(), vec![Day(100), Day(105)]);
    }

    #[test]
    fn retried_statement_keeps_per_transaction_time() {
        let (db, _clock, log) = db_with_failing_probe(CurrentTimePolicy::PerTransaction);
        let conn = db.connect();
        let before = db.metrics_snapshot();
        let r = conn.exec("SELECT n FROM t WHERE CtProbe(n)").unwrap();
        assert_eq!(r.rows.len(), 1, "victim statement succeeded on retry");
        assert_eq!(db.metrics_snapshot().since(&before).get("stmt.retries"), 1);
        // Section 5.4: the transaction's current time stands still —
        // the retry is the *same* unit of work to the client, so the
        // preserved per-transaction value rides across the victim
        // abort and the retry sees day 100 again.
        assert_eq!(*log.lock().unwrap(), vec![Day(100), Day(100)]);
        // Once the retried statement commits, the transaction-end
        // callback frees the cell: the next statement samples afresh.
        conn.exec("SELECT n FROM t WHERE CtProbe(n)").unwrap();
        assert_eq!(
            *log.lock().unwrap(),
            vec![Day(100), Day(100), Day(105)],
            "per-transaction time leaked past the transaction"
        );
    }
}
