//! Qualification-descriptor manipulation.
//!
//! Section 6.3: "For the manipulation of the qualification descriptor,
//! we had to code the logic for how to break a complex qualification
//! (containing several strategy functions separated by ANDs or ORs)
//! into simple ones and for how to invoke appropriate strategy
//! functions."
//!
//! The decomposition strategy: each *branch* of a top-level OR (an AND
//! tree or a single predicate) contributes one index probe — its first
//! simple predicate, which is a necessary condition for the branch —
//! and every candidate an index probe produces is checked against the
//! **full** qualification tree with the exact bitemporal predicates
//! before it is returned. Duplicate candidates across OR branches are
//! suppressed.

use crate::extent_type::extent_from_value;
use grt_ids::vii::{QualDescriptor, QualNode, SimpleQual};
use grt_ids::{IdsError, Value};
use grt_temporal::{Day, Predicate, TimeExtent, TtEnd, VtEnd};

/// One index probe: the predicate and query extent to scan with.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Probe {
    /// The strategy predicate.
    pub pred: Predicate,
    /// The query extent.
    pub query: TimeExtent,
    /// Whether the stored value is the *second* argument
    /// (`f(constant, column)`).
    pub commuted: bool,
}

/// An extent that overlaps every representable region — the probe used
/// for an unqualified scan.
pub fn universal_extent() -> TimeExtent {
    TimeExtent::from_parts(
        Day(i32::MIN / 4),
        TtEnd::Ground(Day(i32::MAX / 4)),
        Day(i32::MIN / 4),
        VtEnd::Ground(Day(i32::MAX / 4)),
    )
    .expect("universal extent is legal")
}

fn probe_of(simple: &SimpleQual) -> Result<Probe, IdsError> {
    let pred = Predicate::from_udr_name(&simple.func).ok_or_else(|| {
        IdsError::AccessMethod(format!(
            "{} is not a GR-tree strategy function",
            simple.func
        ))
    })?;
    let constant = simple.constant.as_ref().ok_or_else(|| {
        IdsError::AccessMethod(format!("{}(column) form is not supported", simple.func))
    })?;
    Ok(Probe {
        pred,
        query: extent_from_value(constant)?,
        commuted: simple.commuted,
    })
}

/// The effective probe predicate seen from the stored value's side:
/// `Contains(const, col)` asks whether the constant contains the column
/// — i.e. the column is `ContainedIn` the constant.
fn oriented(pred: Predicate, commuted: bool) -> Predicate {
    if !commuted {
        return pred;
    }
    match pred {
        Predicate::Contains => Predicate::ContainedIn,
        Predicate::ContainedIn => Predicate::Contains,
        p => p,
    }
}

/// Breaks a qualification into index probes: one per OR branch (the
/// branch's first simple predicate). An empty qualification yields the
/// universal probe.
pub fn decompose(qual: &QualDescriptor) -> Result<Vec<Probe>, IdsError> {
    let Some(root) = &qual.root else {
        return Ok(vec![Probe {
            pred: Predicate::Overlaps,
            query: universal_extent(),
            commuted: false,
        }]);
    };
    let branches: Vec<&QualNode> = match root {
        QualNode::Or(children) => children.iter().collect(),
        other => vec![other],
    };
    let mut probes = Vec::with_capacity(branches.len());
    for b in branches {
        let first = b
            .leaves()
            .first()
            .copied()
            .ok_or_else(|| IdsError::AccessMethod("empty qualification branch".into()))?;
        let raw = probe_of(first)?;
        probes.push(Probe {
            pred: oriented(raw.pred, raw.commuted),
            query: raw.query,
            commuted: raw.commuted,
        });
    }
    Ok(probes)
}

/// Evaluates the full qualification tree against a stored extent at
/// current time `ct` — the recheck applied to every index candidate.
pub fn eval_full(qual: &QualDescriptor, stored: &TimeExtent, ct: Day) -> Result<bool, IdsError> {
    let Some(root) = &qual.root else {
        return Ok(true);
    };
    root.eval(&mut |simple: &SimpleQual| {
        let probe = probe_of(simple)?;
        let ok = if probe.commuted {
            probe.pred.eval(&probe.query, stored, ct)
        } else {
            probe.pred.eval(stored, &probe.query, ct)
        };
        Ok(ok)
    })
}

/// Extracts the extent constant of a qualification value (for tests).
pub fn constant_extent(v: &Value) -> Result<TimeExtent, IdsError> {
    extent_from_value(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extent_type::extent_to_value;

    fn extent(ttb: i32, tte: Option<i32>, vtb: i32, vte: Option<i32>) -> TimeExtent {
        TimeExtent::from_parts(
            Day(ttb),
            tte.map_or(TtEnd::Uc, |x| TtEnd::Ground(Day(x))),
            Day(vtb),
            vte.map_or(VtEnd::Now, |x| VtEnd::Ground(Day(x))),
        )
        .unwrap()
    }

    fn simple(func: &str, q: TimeExtent, commuted: bool) -> QualNode {
        QualNode::Simple(SimpleQual {
            func: func.into(),
            column: "time_extent".into(),
            constant: Some(extent_to_value(&q)),
            commuted,
        })
    }

    #[test]
    fn universal_probe_for_empty_qual() {
        let probes = decompose(&QualDescriptor::default()).unwrap();
        assert_eq!(probes.len(), 1);
        let u = universal_extent();
        let any = extent(10, None, 5, None);
        assert!(Predicate::Overlaps.eval(&any, &u, Day(100)));
    }

    #[test]
    fn and_yields_single_probe_or_yields_many() {
        let a = extent(0, Some(50), 0, Some(50));
        let b = extent(100, Some(150), 100, Some(150));
        let and = QualDescriptor {
            root: Some(QualNode::And(vec![
                simple("Overlaps", a, false),
                simple("Contains", b, false),
            ])),
        };
        assert_eq!(decompose(&and).unwrap().len(), 1);
        let or = QualDescriptor {
            root: Some(QualNode::Or(vec![
                simple("Overlaps", a, false),
                simple("Overlaps", b, false),
            ])),
        };
        assert_eq!(decompose(&or).unwrap().len(), 2);
    }

    #[test]
    fn commuted_contains_flips_orientation() {
        let big = extent(0, Some(100), 0, Some(100));
        let small = extent(10, Some(20), 10, Some(20));
        // Contains(const=big, col): "big contains the column" — true for
        // the small stored extent.
        let qual = QualDescriptor {
            root: Some(simple("Contains", big, true)),
        };
        assert!(eval_full(&qual, &small, Day(200)).unwrap());
        assert!(!eval_full(&qual, &extent(0, Some(500), 0, Some(400)), Day(600)).unwrap());
        let probes = decompose(&qual).unwrap();
        assert_eq!(probes[0].pred, Predicate::ContainedIn);
    }

    #[test]
    fn full_eval_respects_boolean_structure() {
        let a = extent(0, Some(50), 0, Some(50));
        let b = extent(100, Some(150), 100, Some(150));
        let stored = extent(40, Some(60), 30, Some(60));
        let ct = Day(500);
        let or = QualDescriptor {
            root: Some(QualNode::Or(vec![
                simple("Overlaps", a, false),
                simple("Overlaps", b, false),
            ])),
        };
        assert!(eval_full(&or, &stored, ct).unwrap());
        let and = QualDescriptor {
            root: Some(QualNode::And(vec![
                simple("Overlaps", a, false),
                simple("Overlaps", b, false),
            ])),
        };
        assert!(!eval_full(&and, &stored, ct).unwrap());
    }

    #[test]
    fn non_strategy_function_rejected() {
        let qual = QualDescriptor {
            root: Some(QualNode::Simple(SimpleQual {
                func: "Near".into(),
                column: "c".into(),
                constant: Some(extent_to_value(&extent(0, None, 0, None))),
                commuted: false,
            })),
        };
        assert!(decompose(&qual).is_err());
    }
}
