//! DataBlade registration: the SQL script BladeSmith would generate
//! (Section 6.1) and a one-call installer that "loads the shared
//! library" and runs the script — the six steps of Section 4.

use crate::curtime::{resolve_current_time, CurrentTimePolicy};
use crate::extent_type::{extent_from_value, extent_to_value, grt_time_extent_type, TYPE_NAME};
use crate::grtree_am::{GrTreeAm, GrTreeAmOptions};
use crate::rstar_am::RStarBitemporalAm;
use grt_ids::{AmContext, Database, IdsError, Value};
use grt_rstar::bitemporal::NowStrategy;
use grt_rstar::RStarOptions;
use grt_temporal::{bound_entries, Predicate};
use std::sync::Arc;

/// The purpose-function names of the GR-tree access method, in the
/// paper's Table 5 order (plus the batched-fetch extension
/// `grt_getnext_batch`).
pub const GRT_PURPOSE_FUNCTIONS: [&str; 16] = [
    "grt_create",
    "grt_drop",
    "grt_open",
    "grt_close",
    "grt_build",
    "grt_beginscan",
    "grt_rescan",
    "grt_getnext",
    "grt_getnext_batch",
    "grt_endscan",
    "grt_insert",
    "grt_delete",
    "grt_update",
    "grt_scancost",
    "grt_stats",
    "grt_check",
];

/// The strategy functions of the GR-tree operator class.
pub const GRT_STRATEGIES: [&str; 4] = ["Overlaps", "Equal", "Contains", "ContainedIn"];

/// The support functions declared in the operator class (the blade
/// hard-codes the internal-region versions, per Section 6.3, but the
/// declared UDRs are usable from SQL).
pub const GRT_SUPPORT: [&str; 3] = ["grt_union", "grt_size", "grt_intersection"];

/// The registration SQL script for the GR-tree DataBlade — the artifact
/// BladeSmith generates and BladeManager runs.
pub fn registration_script() -> String {
    let mut s = String::new();
    s.push_str("-- GR-tree DataBlade registration script (BladeSmith output)\n");
    for f in GRT_PURPOSE_FUNCTIONS {
        s.push_str(&format!(
            "CREATE FUNCTION {f}(pointer) RETURNING int \
             EXTERNAL NAME 'usr/functions/grtree.bld({f})' LANGUAGE c;\n"
        ));
    }
    for f in GRT_STRATEGIES {
        s.push_str(&format!(
            "CREATE FUNCTION {f}({TYPE_NAME}, {TYPE_NAME}) RETURNING boolean \
             EXTERNAL NAME 'usr/functions/grtree.bld({})' LANGUAGE c;\n",
            f.to_ascii_lowercase()
        ));
    }
    s.push_str(&format!(
        "CREATE FUNCTION grt_union({TYPE_NAME}, {TYPE_NAME}) RETURNING {TYPE_NAME} \
         EXTERNAL NAME 'usr/functions/grtree.bld(grt_union)' LANGUAGE c;\n"
    ));
    s.push_str(&format!(
        "CREATE FUNCTION grt_size({TYPE_NAME}) RETURNING integer \
         EXTERNAL NAME 'usr/functions/grtree.bld(grt_size)' LANGUAGE c;\n"
    ));
    s.push_str(&format!(
        "CREATE FUNCTION grt_intersection({TYPE_NAME}, {TYPE_NAME}) RETURNING integer \
         EXTERNAL NAME 'usr/functions/grtree.bld(grt_intersection)' LANGUAGE c;\n"
    ));
    s.push_str(
        "CREATE SECONDARY ACCESS_METHOD grtree_am ( \
         am_create = grt_create, am_drop = grt_drop, am_open = grt_open, \
         am_close = grt_close, am_build = grt_build, am_beginscan = grt_beginscan, \
         am_rescan = grt_rescan, am_getnext = grt_getnext, \
         am_getnext_batch = grt_getnext_batch, am_endscan = grt_endscan, \
         am_insert = grt_insert, am_delete = grt_delete, am_update = grt_update, \
         am_scancost = grt_scancost, am_stats = grt_stats, am_check = grt_check, \
         am_sptype = 'S' );\n",
    );
    s.push_str(
        "CREATE OPCLASS grt_opclass FOR grtree_am \
         STRATEGIES(Overlaps, Equal, Contains, ContainedIn) \
         SUPPORT(grt_union, grt_size, grt_intersection);\n",
    );
    s
}

/// The un-registration script (what BladeManager runs when a DataBlade
/// is removed — "during testing it has to be registered and
/// un-registered multiple times", Section 6.1).
pub fn unregistration_script() -> String {
    let mut s = String::new();
    s.push_str("-- GR-tree DataBlade un-registration script\n");
    s.push_str("DROP OPCLASS grt_opclass;\n");
    s.push_str("DROP SECONDARY ACCESS_METHOD grtree_am;\n");
    for f in GRT_STRATEGIES {
        s.push_str(&format!("DROP FUNCTION {f};\n"));
    }
    for f in GRT_SUPPORT {
        s.push_str(&format!("DROP FUNCTION {f};\n"));
    }
    for f in GRT_PURPOSE_FUNCTIONS {
        s.push_str(&format!("DROP FUNCTION {f};\n"));
    }
    s
}

/// Un-registers the GR-tree DataBlade's routines (indexes using
/// `grtree_am` must be dropped first, as BladeManager requires).
pub fn uninstall_grtree_blade(db: &Database) -> Result<(), IdsError> {
    let conn = db.connect();
    conn.exec_script(&unregistration_script())?;
    Ok(())
}

fn purpose_stub(name: &str) -> grt_ids::udr::RoutineFn {
    let name = name.to_string();
    Arc::new(move |_args: &[Value], _ctx: &AmContext| {
        Err(IdsError::Routine(format!(
            "{name} is an access-method purpose function and is invoked \
             through the Virtual-Index Interface"
        )))
    })
}

fn strategy_impl(pred: Predicate) -> grt_ids::udr::RoutineFn {
    Arc::new(move |args: &[Value], ctx: &AmContext| {
        let [a, b] = args else {
            return Err(IdsError::Type("strategy functions take two extents".into()));
        };
        let left = extent_from_value(a)?;
        let right = extent_from_value(b)?;
        let ct = resolve_current_time(CurrentTimePolicy::PerStatement, ctx);
        Ok(Value::Bool(pred.eval(&left, &right, ct)))
    })
}

fn install_symbols(db: &Database) {
    for f in GRT_PURPOSE_FUNCTIONS {
        db.install_symbol(&format!("usr/functions/grtree.bld({f})"), purpose_stub(f));
    }
    for (name, pred) in [
        ("overlaps", Predicate::Overlaps),
        ("equal", Predicate::Equal),
        ("contains", Predicate::Contains),
        ("containedin", Predicate::ContainedIn),
    ] {
        db.install_symbol(
            &format!("usr/functions/grtree.bld({name})"),
            strategy_impl(pred),
        );
    }
    db.install_symbol(
        "usr/functions/grtree.bld(grt_union)",
        Arc::new(|args: &[Value], ctx: &AmContext| {
            let [a, b] = args else {
                return Err(IdsError::Type("grt_union(extent, extent)".into()));
            };
            let (left, right) = (extent_from_value(a)?, extent_from_value(b)?);
            let ct = resolve_current_time(CurrentTimePolicy::PerStatement, ctx);
            let bound = bound_entries(&[left.spec(), right.spec()], ct);
            // The union of two *stored* extents is encodable as an
            // extent whenever the bound carries no flags; a flagged
            // bound is approximated by its fixed resolution.
            let extent = grt_temporal::TimeExtent::from_parts(
                bound.tt_begin,
                bound.tt_end,
                bound.vt_begin,
                if bound.rect || bound.hidden {
                    grt_temporal::VtEnd::Ground(bound.resolve(ct).mbr().vt2)
                } else {
                    bound.vt_end
                },
            )
            .map_err(|e| IdsError::Type(e.to_string()))?;
            Ok(extent_to_value(&extent))
        }),
    );
    db.install_symbol(
        "usr/functions/grtree.bld(grt_size)",
        Arc::new(|args: &[Value], ctx: &AmContext| {
            let [a] = args else {
                return Err(IdsError::Type("grt_size(extent)".into()));
            };
            let extent = extent_from_value(a)?;
            let ct = resolve_current_time(CurrentTimePolicy::PerStatement, ctx);
            Ok(Value::Int(extent.region(ct).area() as i64))
        }),
    );
    db.install_symbol(
        "usr/functions/grtree.bld(grt_intersection)",
        Arc::new(|args: &[Value], ctx: &AmContext| {
            let [a, b] = args else {
                return Err(IdsError::Type("grt_intersection(extent, extent)".into()));
            };
            let (left, right) = (extent_from_value(a)?, extent_from_value(b)?);
            let ct = resolve_current_time(CurrentTimePolicy::PerStatement, ctx);
            Ok(Value::Int(
                left.region(ct).intersection_area(&right.region(ct)) as i64,
            ))
        }),
    );
}

/// Installs the GR-tree DataBlade: loads the "shared library", declares
/// the opaque type, and runs the registration script. Returns the
/// script that was executed.
pub fn install_grtree_blade(db: &Database, opts: GrTreeAmOptions) -> Result<String, IdsError> {
    db.install_opaque_type(grt_time_extent_type());
    install_symbols(db);
    db.install_library("grtree.bld", Arc::new(GrTreeAm::new(opts)));
    let script = registration_script();
    let conn = db.connect();
    conn.exec_script(&script)?;
    Ok(script)
}

/// The registration script for the baseline R\*-tree access method over
/// the same opaque type.
pub fn rstar_registration_script() -> String {
    let mut s = String::new();
    s.push_str("-- R*-tree baseline access method registration script\n");
    for f in [
        "rst_create",
        "rst_drop",
        "rst_build",
        "rst_getnext",
        "rst_getnext_batch",
    ] {
        s.push_str(&format!(
            "CREATE FUNCTION {f}(pointer) RETURNING int \
             EXTERNAL NAME 'usr/functions/rstar.bld({f})' LANGUAGE c;\n"
        ));
    }
    s.push_str(
        "CREATE SECONDARY ACCESS_METHOD rstar_am ( \
         am_create = rst_create, am_drop = rst_drop, am_build = rst_build, \
         am_getnext = rst_getnext, am_getnext_batch = rst_getnext_batch, \
         am_sptype = 'S' );\n",
    );
    s.push_str(
        "CREATE OPCLASS rstar_opclass FOR rstar_am \
         STRATEGIES(Overlaps, Equal, Contains, ContainedIn);\n",
    );
    s
}

/// Installs the baseline R\*-tree access method (requires the GR-tree
/// blade's strategy functions; install it first or this installer adds
/// them).
pub fn install_rstar_blade(
    db: &Database,
    strategy: NowStrategy,
    tree_opts: RStarOptions,
) -> Result<String, IdsError> {
    db.install_opaque_type(grt_time_extent_type());
    if !db.function_exists("Overlaps") {
        install_symbols(db);
        let conn = db.connect();
        for f in GRT_STRATEGIES {
            conn.exec(&format!(
                "CREATE FUNCTION {f}({TYPE_NAME}, {TYPE_NAME}) RETURNING boolean \
                 EXTERNAL NAME 'usr/functions/grtree.bld({})' LANGUAGE c",
                f.to_ascii_lowercase()
            ))?;
        }
    }
    for f in [
        "rst_create",
        "rst_drop",
        "rst_build",
        "rst_getnext",
        "rst_getnext_batch",
    ] {
        db.install_symbol(&format!("usr/functions/rstar.bld({f})"), purpose_stub(f));
    }
    db.install_library(
        "rstar.bld",
        Arc::new(RStarBitemporalAm {
            strategy,
            tree_opts,
            curtime: CurrentTimePolicy::PerStatement,
        }),
    );
    let script = rstar_registration_script();
    let conn = db.connect();
    conn.exec_script(&script)?;
    Ok(script)
}
