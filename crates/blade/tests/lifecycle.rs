//! Blade lifecycle tests: register/un-register cycles (the BladeManager
//! workflow of Section 6.1) and direct purpose-function driving,
//! including `am_rescan` and `am_update`.

use grt_blade::{
    extent_to_value, install_grtree_blade, uninstall_grtree_blade, GrTreeAm, GrTreeAmOptions,
    TYPE_NAME,
};
use grt_ids::vii::{QualDescriptor, QualNode, SimpleQual};
use grt_ids::{
    AccessMethod, AmContext, DataType, Database, DatabaseOptions, IndexDescriptor, RowId,
    ScanDescriptor,
};
use grt_temporal::{Day, MockClock, TimeExtent, TtEnd, VtEnd};
use std::sync::Arc;

#[test]
fn register_unregister_register_cycle() {
    // "During testing it has to be registered and un-registered multiple
    // times" — the full cycle must be clean.
    let db = Database::new(DatabaseOptions::default());
    install_grtree_blade(&db, GrTreeAmOptions::default()).unwrap();
    let conn = db.connect();
    conn.exec("CREATE TABLE t (Time_Extent GRT_TimeExtent_t)")
        .unwrap();
    conn.exec("CREATE INDEX tix ON t(Time_Extent grt_opclass) USING grtree_am")
        .unwrap();
    conn.exec("INSERT INTO t VALUES ('3/97, UC, 3/97, NOW')")
        .unwrap();
    // Indexes must be dropped before un-registration.
    conn.exec("DROP INDEX tix").unwrap();
    uninstall_grtree_blade(&db).unwrap();
    assert!(!db.function_exists("Overlaps"));
    // Strategy functions are gone: the query now fails at bind time.
    assert!(conn
        .exec("SELECT * FROM t WHERE Overlaps(Time_Extent, '3/97, UC, 3/97, NOW')")
        .is_err());
    // Re-registration brings everything back. (Install only re-runs the
    // script; the opaque type and the library stay loaded.)
    let conn2 = db.connect();
    conn2
        .exec_script(&grt_blade::registration_script())
        .unwrap();
    let r = conn2
        .exec("SELECT * FROM t WHERE Overlaps(Time_Extent, '3/97, UC, 3/97, NOW')")
        .unwrap();
    assert_eq!(r.rows.len(), 1);
}

fn extent(ttb: i32, tte: Option<i32>, vtb: i32, vte: Option<i32>) -> TimeExtent {
    TimeExtent::from_parts(
        Day(ttb),
        tte.map_or(TtEnd::Uc, |x| TtEnd::Ground(Day(x))),
        Day(vtb),
        vte.map_or(VtEnd::Now, |x| VtEnd::Ground(Day(x))),
    )
    .unwrap()
}

fn driven_blade() -> (GrTreeAm, IndexDescriptor, AmContext<'static>) {
    let am = GrTreeAm::default();
    let idx = IndexDescriptor::new(
        "direct_ix",
        "t",
        vec!["Time_Extent".into()],
        vec![DataType::Opaque(TYPE_NAME.into())],
        "grt_opclass",
    );
    let mut ctx = AmContext::for_tests();
    ctx.clock = Arc::new(MockClock::new(Day(500)));
    (am, idx, ctx)
}

#[test]
fn rescan_replays_the_scan_from_the_start() {
    let (am, idx, ctx) = driven_blade();
    am.am_create(&idx, &ctx).unwrap();
    am.am_open(&idx, &ctx).unwrap();
    for i in 0..30 {
        let e = extent(100 + i, None, 100 + i, None);
        am.am_insert(&idx, &[extent_to_value(&e)], RowId(i as u64), &ctx)
            .unwrap();
    }
    let qual = QualDescriptor {
        root: Some(QualNode::Simple(SimpleQual {
            func: "Overlaps".into(),
            column: "Time_Extent".into(),
            constant: Some(extent_to_value(&extent(0, None, 0, None))),
            commuted: false,
        })),
    };
    let mut scan = ScanDescriptor::new(qual);
    am.am_beginscan(&idx, &mut scan, &ctx).unwrap();
    let mut first_pass = 0;
    while am.am_getnext(&idx, &mut scan, &ctx).unwrap().is_some() {
        first_pass += 1;
    }
    assert_eq!(first_pass, 30);
    // Rescan: everything comes back (the dedup set is cleared too).
    am.am_rescan(&idx, &mut scan, &ctx).unwrap();
    let mut second_pass = 0;
    while am.am_getnext(&idx, &mut scan, &ctx).unwrap().is_some() {
        second_pass += 1;
    }
    assert_eq!(second_pass, 30);
    am.am_endscan(&idx, &mut scan, &ctx).unwrap();
    am.am_close(&idx, &ctx).unwrap();
}

#[test]
fn update_is_delete_plus_insert() {
    let (am, idx, ctx) = driven_blade();
    am.am_create(&idx, &ctx).unwrap();
    am.am_open(&idx, &ctx).unwrap();
    let old = extent(100, None, 100, None);
    am.am_insert(&idx, &[extent_to_value(&old)], RowId(7), &ctx)
        .unwrap();
    let new = old.logical_delete(Day(400)).unwrap();
    am.am_update(
        &idx,
        &[extent_to_value(&old)],
        RowId(7),
        &[extent_to_value(&new)],
        RowId(7),
        &ctx,
    )
    .unwrap();
    // The old (growing) version is gone; a probe far in the future that
    // only a growing stair would reach finds nothing.
    let probe = extent(5_000, Some(5_010), 4_990, Some(5_005));
    let qual = QualDescriptor {
        root: Some(QualNode::Simple(SimpleQual {
            func: "Overlaps".into(),
            column: "Time_Extent".into(),
            constant: Some(extent_to_value(&probe)),
            commuted: false,
        })),
    };
    // A fresh statement far in the future.
    ctx.session
        .clear_duration(grt_ids::session::MemDuration::PerStatement);
    let later_ctx = {
        let mut c = AmContext {
            space: ctx.space.clone(),
            txn: ctx.txn,
            snapshot: None,
            clock: Arc::new(MockClock::new(Day(6_000))),
            session: Arc::clone(&ctx.session),
            fragments: Arc::clone(&ctx.fragments),
            trace: ctx.trace.clone(),
        };
        c.clock = Arc::new(MockClock::new(Day(6_000)));
        c
    };
    am.am_open(&idx, &later_ctx).unwrap();
    let mut scan = ScanDescriptor::new(qual);
    am.am_beginscan(&idx, &mut scan, &later_ctx).unwrap();
    assert!(am
        .am_getnext(&idx, &mut scan, &later_ctx)
        .unwrap()
        .is_none());
    am.am_endscan(&idx, &mut scan, &later_ctx).unwrap();
    am.am_check(&idx, &later_ctx).unwrap();
}

#[test]
fn create_rejects_wrong_column_type() {
    let (am, _, ctx) = driven_blade();
    let idx = IndexDescriptor::new(
        "bad_ix",
        "t",
        vec!["n".into()],
        vec![DataType::Integer],
        "grt_opclass",
    );
    assert!(am.am_create(&idx, &ctx).is_err());
}

#[test]
fn getnext_without_beginscan_errors() {
    let (am, idx, ctx) = driven_blade();
    am.am_create(&idx, &ctx).unwrap();
    am.am_open(&idx, &ctx).unwrap();
    let mut scan = ScanDescriptor::new(QualDescriptor::default());
    assert!(am.am_getnext(&idx, &mut scan, &ctx).is_err());
}
