//! Full-stack DataBlade tests: the paper's EmpDep scenario, the Julie
//! query, index/scan equivalence, DML maintenance, and the Figure 6
//! call sequences — all through SQL.

use grt_blade::{install_grtree_blade, install_rstar_blade, GrTreeAmOptions};
use grt_grtree::GrTreeOptions;
use grt_ids::{Database, DatabaseOptions, Value};
use grt_rstar::bitemporal::NowStrategy;
use grt_rstar::RStarOptions;
use grt_temporal::{Day, MockClock};
use std::sync::Arc;

fn db_with_clock() -> (Database, MockClock) {
    let clock = MockClock::new(Day::from_ymd(1997, 1, 1).unwrap());
    let db = Database::new(DatabaseOptions {
        clock: Arc::new(clock.clone()),
        ..Default::default()
    });
    install_grtree_blade(
        &db,
        GrTreeAmOptions {
            tree: GrTreeOptions {
                max_entries: 8,
                ..Default::default()
            },
            ..Default::default()
        },
    )
    .unwrap();
    (db, clock)
}

fn month(m: u32, y: i32) -> Day {
    Day::from_ymd(y, m, 1).unwrap()
}

/// Plays the paper's Table 1 history against a GR-tree-indexed table.
/// Returns the connection.
fn play_empdep(db: &Database, clock: &MockClock) -> grt_ids::engine::Connection {
    let conn = db.connect();
    conn.exec("CREATE TABLE Employees (Name text, Department text, Time_Extent GRT_TimeExtent_t)")
        .unwrap();
    conn.exec(
        "CREATE INDEX grt_index ON Employees(Time_Extent grt_opclass) USING grtree_am IN spc",
    )
    .unwrap();
    let ins = |name: &str, dept: &str, extent: &str| {
        conn.exec(&format!(
            "INSERT INTO Employees VALUES ('{name}', '{dept}', '{extent}')"
        ))
        .unwrap();
    };
    // 3/97: Tom's future validity is recorded; Julie joins Sales.
    clock.set(month(3, 1997));
    ins("Tom", "Management", "3/97, UC, 6/97, 8/97");
    ins("Julie", "Sales", "3/97, UC, 3/97, NOW");
    // 4/97: John's (already ended) stint is recorded.
    clock.set(month(4, 1997));
    ins("John", "Advertising", "4/97, UC, 3/97, 5/97");
    // 5/97: Jane joins Sales; Michelle's Management job (true since
    // 3/97) is recorded late.
    clock.set(month(5, 1997));
    ins("Jane", "Sales", "5/97, UC, 5/97, NOW");
    ins("Michelle", "Management", "5/97, UC, 3/97, NOW");
    // 8/97: Tom's tuple is logically deleted, and Julie's is updated
    // (modelled, as in the paper, as a deletion plus an insertion).
    clock.set(month(8, 1997));
    conn.exec(
        "UPDATE Employees SET Time_Extent = '3/97, 07/31/1997, 6/97, 8/97' WHERE Name = 'Tom'",
    )
    .unwrap();
    conn.exec(
        "UPDATE Employees SET Time_Extent = '3/97, 07/31/1997, 3/97, NOW' WHERE Name = 'Julie'",
    )
    .unwrap();
    ins("Julie", "Sales", "8/97, UC, 3/97, 7/97");
    // The paper's reference time.
    clock.set(month(9, 1997));
    conn
}

#[test]
fn empdep_relation_matches_table_1() {
    let (db, clock) = db_with_clock();
    let conn = play_empdep(&db, &clock);
    let r = conn
        .exec("SELECT Name, Time_Extent FROM Employees")
        .unwrap();
    assert_eq!(r.rows.len(), 6, "six tuples as in Table 1");
    let mut rendered: Vec<(String, String)> = r
        .rendered
        .iter()
        .map(|row| (row[0].clone(), row[1].clone()))
        .collect();
    rendered.sort();
    // Spot-check the now-relative tuples.
    let julie_open = rendered
        .iter()
        .find(|(n, e)| n == "Julie" && e.contains("UC"))
        .expect("Julie's current tuple");
    assert!(julie_open.1.contains("08/01/1997"), "{julie_open:?}");
    let jane = rendered.iter().find(|(n, _)| n == "Jane").unwrap();
    assert!(jane.1.contains("UC") && jane.1.contains("NOW"), "{jane:?}");
}

#[test]
fn julie_query_returns_empty_with_and_without_index() {
    let (db, clock) = db_with_clock();
    let conn = play_empdep(&db, &clock);
    // "Who worked in Sales during 7/97 according to the knowledge we
    // had during 5/97?" — the bitemporal point (tt = 5/97, vt = 7/97).
    let q = "Overlaps(Time_Extent, '5/97, 5/97, 7/97, 7/97')";
    let with_index = conn
        .exec(&format!(
            "SELECT Name FROM Employees WHERE {q} AND Department = 'Sales'"
        ))
        .unwrap();
    assert!(
        with_index.rows.is_empty(),
        "the stair shape excludes Julie: {with_index:?}"
    );
    // Force a sequential scan by dropping the index: same (correct)
    // answer, because the strategy function is also a plain UDR.
    conn.exec("DROP INDEX grt_index").unwrap();
    let seq = conn
        .exec(&format!(
            "SELECT Name FROM Employees WHERE {q} AND Department = 'Sales'"
        ))
        .unwrap();
    assert!(seq.rows.is_empty());
}

#[test]
fn index_answers_match_sequential_scan_over_time() {
    let (db, clock) = db_with_clock();
    let conn = play_empdep(&db, &clock);
    // A plain (unindexed) copy of the relation is the oracle.
    conn.exec("CREATE TABLE Plain (Name text, Department text, Time_Extent GRT_TimeExtent_t)")
        .unwrap();
    let all = conn
        .exec("SELECT Name, Department, Time_Extent FROM Employees")
        .unwrap();
    for row in &all.rendered {
        conn.exec(&format!(
            "INSERT INTO Plain VALUES ('{}', '{}', '{}')",
            row[0], row[1], row[2]
        ))
        .unwrap();
    }
    let queries = [
        "Overlaps(Time_Extent, '3/97, UC, 3/97, NOW')",
        "Overlaps(Time_Extent, '12/10/95, UC, 12/10/95, NOW')",
        "ContainedIn(Time_Extent, '1/97, 12/99, 1/97, 12/99')",
        "Contains(Time_Extent, '6/97, 6/97, 4/97, 4/97')",
        "Equal(Time_Extent, '5/97, UC, 5/97, NOW')",
        "Overlaps(Time_Extent, '4/97, 5/97, 1/97, 4/97') OR \
         Equal(Time_Extent, '5/97, UC, 5/97, NOW')",
        "Overlaps(Time_Extent, '1/97, UC, 1/97, NOW') AND \
         ContainedIn(Time_Extent, '1/97, 12/99, 1/97, 12/99')",
    ];
    for when in [month(9, 1997), month(1, 1998), month(6, 2001)] {
        clock.set(when);
        for q in &queries {
            let indexed = conn
                .exec(&format!("SELECT Name FROM Employees WHERE {q}"))
                .unwrap();
            let plain = conn
                .exec(&format!("SELECT Name FROM Plain WHERE {q}"))
                .unwrap();
            let mut a: Vec<String> = indexed.rendered.iter().map(|r| r[0].clone()).collect();
            let mut b: Vec<String> = plain.rendered.iter().map(|r| r[0].clone()).collect();
            a.sort();
            b.sort();
            assert_eq!(a, b, "{q} at {when:?}");
        }
    }
}

#[test]
fn copies_agree_indexed_vs_unindexed_vs_rstar() {
    let (db, clock) = db_with_clock();
    install_rstar_blade(
        &db,
        NowStrategy::MaxTimestamp,
        RStarOptions {
            max_entries: 8,
            ..Default::default()
        },
    )
    .unwrap();
    let conn = db.connect();
    for table in ["t_grt", "t_plain", "t_rstar"] {
        conn.exec(&format!(
            "CREATE TABLE {table} (id integer, Time_Extent GRT_TimeExtent_t)"
        ))
        .unwrap();
    }
    conn.exec("CREATE INDEX g_ix ON t_grt(Time_Extent grt_opclass) USING grtree_am")
        .unwrap();
    conn.exec("CREATE INDEX r_ix ON t_rstar(Time_Extent rstar_opclass) USING rstar_am")
        .unwrap();
    // A mixed synthetic history.
    clock.set(Day(10_000));
    for i in 0..120i32 {
        let base = 10_000 + (i * 7) % 300;
        clock.set(Day(10_000 + (i * 7) % 300));
        let extent = match i % 4 {
            0 => format!("{}, UC, {}, NOW", render(base), render(base)),
            1 => format!(
                "{}, UC, {}, {}",
                render(base),
                render(base - 5),
                render(base + 40)
            ),
            2 => format!("{}, UC, {}, NOW", render(base), render(base - 3)),
            _ => format!(
                "{}, {}, {}, {}",
                render(base - 7),
                render(base),
                render(base - 9),
                render(base + 2)
            ),
        };
        for table in ["t_grt", "t_plain", "t_rstar"] {
            conn.exec(&format!("INSERT INTO {table} VALUES ({i}, '{extent}')"))
                .unwrap();
        }
    }
    // Delete a third of the rows everywhere (exercises grt_delete and
    // the R*-tree delete path).
    clock.set(Day(10_400));
    for table in ["t_grt", "t_plain", "t_rstar"] {
        conn.exec(&format!(
            "DELETE FROM {table} WHERE ContainedIn(Time_Extent, '{}, {}, {}, {}')",
            render(9_980),
            render(10_100),
            render(9_980),
            render(10_100)
        ))
        .unwrap();
    }
    let queries = [
        format!(
            "Overlaps(Time_Extent, '{}, UC, {}, NOW')",
            render(10_150),
            render(10_150)
        ),
        format!(
            "Overlaps(Time_Extent, '{}, {}, {}, {}')",
            render(10_050),
            render(10_120),
            render(10_040),
            render(10_200)
        ),
        format!(
            "Contains(Time_Extent, '{}, {}, {}, {}')",
            render(10_100),
            render(10_100),
            render(10_050),
            render(10_050)
        ),
    ];
    for when in [Day(10_400), Day(10_900), Day(20_000)] {
        clock.set(when);
        for q in &queries {
            let mut results: Vec<Vec<i64>> = Vec::new();
            for table in ["t_grt", "t_plain", "t_rstar"] {
                let r = conn
                    .exec(&format!("SELECT id FROM {table} WHERE {q}"))
                    .unwrap();
                let mut ids: Vec<i64> = r
                    .rows
                    .iter()
                    .map(|row| match &row[0] {
                        Value::Int(i) => *i,
                        other => panic!("{other}"),
                    })
                    .collect();
                ids.sort_unstable();
                results.push(ids);
            }
            assert_eq!(results[0], results[1], "grt vs plain: {q} at {when:?}");
            assert_eq!(results[2], results[1], "rstar vs plain: {q} at {when:?}");
        }
    }
    // Both indices pass their consistency checks.
    conn.exec("CHECK INDEX g_ix").unwrap();
    conn.exec("CHECK INDEX r_ix").unwrap();
    let stats = conn.exec("UPDATE STATISTICS FOR INDEX g_ix").unwrap();
    assert!(stats.message.contains("grtree"), "{}", stats.message);
}

fn render(day: i32) -> String {
    let d = Day(day);
    let (y, m, dd) = d.to_ymd();
    format!("{m:02}/{dd:02}/{y:04}")
}

#[test]
fn figure_6_call_sequences() {
    let (db, clock) = db_with_clock();
    let conn = play_empdep(&db, &clock);
    let trace = db.trace();
    trace.on("AM", 1);
    trace.take();
    // Figure 6(a): INSERT.
    conn.exec("INSERT INTO Employees VALUES ('Kai', 'Sales', '9/97, UC, 9/97, NOW')")
        .unwrap();
    let insert_calls: Vec<String> = trace.take().into_iter().map(|e| e.message).collect();
    assert_eq!(
        insert_calls,
        vec![
            "grt_open".to_string(),
            "grt_insert".into(),
            "grt_close".into()
        ],
        "Figure 6(a)"
    );
    // Figure 6(b): SELECT through the index. The executor pulls rows
    // in batches, so the per-row grt_getnext of the paper's figure
    // appears as grt_getnext_batch calls here.
    conn.exec("SELECT Name FROM Employees WHERE Overlaps(Time_Extent, '9/97, UC, 9/97, NOW')")
        .unwrap();
    let select_calls: Vec<String> = trace.take().into_iter().map(|e| e.message).collect();
    assert_eq!(select_calls[0], "grt_scancost", "optimizer first");
    assert_eq!(
        select_calls[1..4],
        [
            "grt_open".to_string(),
            "grt_beginscan".into(),
            "grt_getnext_batch".into()
        ]
    );
    assert!(
        select_calls
            .iter()
            .filter(|c| *c == "grt_getnext_batch")
            .count()
            >= 1
    );
    assert_eq!(
        select_calls[select_calls.len() - 2..],
        ["grt_endscan".to_string(), "grt_close".into()]
    );
}

#[test]
fn delete_through_index_exercises_cursor_restart() {
    let (db, clock) = db_with_clock();
    let conn = db.connect();
    conn.exec("CREATE TABLE t (id integer, pad text, Time_Extent GRT_TimeExtent_t)")
        .unwrap();
    conn.exec("CREATE INDEX tix ON t(Time_Extent grt_opclass) USING grtree_am")
        .unwrap();
    clock.set(Day(11_000));
    let pad = "x".repeat(500);
    for i in 0..150i32 {
        clock.set(Day(11_000 + i));
        conn.exec(&format!(
            "INSERT INTO t VALUES ({i}, '{pad}', '{}, UC, {}, NOW')",
            render(11_000 + i),
            render(11_000 + i)
        ))
        .unwrap();
    }
    clock.set(Day(12_000));
    db.trace().on("AM", 1);
    db.trace().take();
    // Delete most rows through the index in one statement: getnext and
    // grt_delete interleave, and condensation forces cursor restarts.
    conn.exec(&format!(
        "DELETE FROM t WHERE Overlaps(Time_Extent, '{}, {}, {}, {}')",
        render(11_000),
        render(11_120),
        render(10_990),
        render(11_121)
    ))
    .unwrap();
    let calls: Vec<String> = db.trace().take().into_iter().map(|e| e.message).collect();
    assert!(
        calls.iter().any(|c| c == "grt_getnext_batch") && calls.iter().any(|c| c == "grt_delete"),
        "the DELETE must interleave grt_getnext_batch and grt_delete: {calls:?}"
    );
    let left = conn.exec("SELECT id FROM t").unwrap();
    assert_eq!(left.rows.len(), 29, "rows 121..149 remain");
    conn.exec("CHECK INDEX tix").unwrap();
}

#[test]
fn transactions_roll_back_the_blade() {
    let (db, clock) = db_with_clock();
    let conn = play_empdep(&db, &clock);
    conn.exec("BEGIN WORK").unwrap();
    conn.exec("INSERT INTO Employees VALUES ('Temp', 'Sales', '9/97, UC, 9/97, NOW')")
        .unwrap();
    let r = conn
        .exec("SELECT Name FROM Employees WHERE Equal(Time_Extent, '9/97, UC, 9/97, NOW')")
        .unwrap();
    assert_eq!(r.rows.len(), 1);
    conn.exec("ROLLBACK WORK").unwrap();
    let r = conn
        .exec("SELECT Name FROM Employees WHERE Equal(Time_Extent, '9/97, UC, 9/97, NOW')")
        .unwrap();
    assert!(r.rows.is_empty(), "rollback undid heap and GR-tree: {r:?}");
    conn.exec("CHECK INDEX grt_index").unwrap();
}

#[test]
fn registration_script_is_reexecutable_artifact() {
    let script = grt_blade::registration_script();
    assert!(script.contains("CREATE SECONDARY ACCESS_METHOD grtree_am"));
    assert!(script.contains("CREATE OPCLASS grt_opclass FOR grtree_am"));
    assert!(script.contains("grt_getnext"));
    // Installing twice fails cleanly on duplicates (the paper's
    // BladeManager un-registers first).
    let (db, _clock) = db_with_clock();
    let err = install_grtree_blade(&db, GrTreeAmOptions::default());
    assert!(err.is_err(), "duplicate registration must be rejected");
}

#[test]
fn per_transaction_current_time_is_stable_across_statements() {
    use grt_blade::CurrentTimePolicy;
    let clock = MockClock::new(Day(10_000));
    let db = Database::new(DatabaseOptions {
        clock: Arc::new(clock.clone()),
        ..Default::default()
    });
    install_grtree_blade(
        &db,
        GrTreeAmOptions {
            curtime: CurrentTimePolicy::PerTransaction,
            ..Default::default()
        },
    )
    .unwrap();
    let conn = db.connect();
    conn.exec("CREATE TABLE t (id integer, Time_Extent GRT_TimeExtent_t)")
        .unwrap();
    conn.exec("CREATE INDEX tix ON t(Time_Extent grt_opclass) USING grtree_am")
        .unwrap();
    // A tuple whose growing stair reaches the probe region only from
    // day 10_050 onwards.
    conn.exec(&format!(
        "INSERT INTO t VALUES (1, '{}, UC, {}, NOW')",
        render(10_000),
        render(10_000)
    ))
    .unwrap();
    let probe = format!(
        "Overlaps(Time_Extent, '{}, {}, {}, {}')",
        render(10_045),
        render(10_050),
        render(10_040),
        render(10_050)
    );
    conn.exec("BEGIN WORK").unwrap();
    // First use inside the transaction pins the current time at 10_020:
    // the stair has not reached the probe yet.
    clock.set(Day(10_020));
    let r1 = conn
        .exec(&format!("SELECT id FROM t WHERE {probe}"))
        .unwrap();
    assert!(r1.rows.is_empty());
    // The wall clock races ahead, but the transaction's time stands
    // still (Section 5.4's design): the answer must not change.
    clock.set(Day(10_100));
    let r2 = conn
        .exec(&format!("SELECT id FROM t WHERE {probe}"))
        .unwrap();
    assert!(
        r2.rows.is_empty(),
        "per-transaction current time must be stable: {r2:?}"
    );
    conn.exec("COMMIT WORK").unwrap();
    // A new transaction samples afresh: now the region has grown in.
    let r3 = conn
        .exec(&format!("SELECT id FROM t WHERE {probe}"))
        .unwrap();
    assert_eq!(r3.rows.len(), 1);
}

#[test]
fn support_functions_are_usable_from_sql() {
    // The operator class *declares* grt_union/grt_size/grt_intersection
    // (Section 4's example); the blade hard-codes the internal-region
    // versions, but the declared UDRs remain callable from SQL.
    let (db, clock) = db_with_clock();
    let conn = play_empdep(&db, &clock);
    // Area of Jane's growing stair at CT = 9/97 (via a non-strategy
    // function in the WHERE clause: evaluated by sequential scan).
    let r = conn
        .exec("SELECT Name FROM Employees WHERE grt_size(Time_Extent) > 5000")
        .unwrap();
    assert!(!r.rows.is_empty());
    // grt_intersection of a column with a constant.
    let r = conn
        .exec(
            "SELECT Name FROM Employees \
             WHERE grt_intersection(Time_Extent, '5/97, UC, 5/97, NOW') > 0",
        )
        .unwrap();
    let names: Vec<&str> = r.rendered.iter().map(|row| row[0].as_str()).collect();
    assert!(names.contains(&"Jane"), "{names:?}");
    // A non-strategy call cannot use the index: trace shows no getnext.
    db.trace().on("AM", 1);
    db.trace().take();
    conn.exec("SELECT Name FROM Employees WHERE grt_size(Time_Extent) > 0")
        .unwrap();
    let calls: Vec<String> = db.trace().take().into_iter().map(|e| e.message).collect();
    assert!(
        !calls.iter().any(|c| c == "grt_getnext"),
        "support functions must not drive the index: {calls:?}"
    );
}
