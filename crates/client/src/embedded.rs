//! The embedded driver: the [`Driver`] trait over an in-process
//! engine connection.

use crate::{ClientError, Driver, Result};
use grt_ids::{Connection, Database, QueryResult, Value};

/// An in-process driver. Everything forwards to the underlying
/// [`Connection`]; the adapter exists so embedded and served runs
/// share one calling convention (and one error surface).
pub struct EmbeddedDriver {
    conn: Connection,
}

impl EmbeddedDriver {
    /// Opens a session on an in-process database.
    pub fn connect(db: &Database) -> EmbeddedDriver {
        EmbeddedDriver { conn: db.connect() }
    }

    /// The underlying engine connection (for engine-only hooks).
    pub fn connection(&self) -> &Connection {
        &self.conn
    }
}

impl Driver for EmbeddedDriver {
    fn exec(&self, sql: &str) -> Result<QueryResult> {
        self.conn.exec(sql).map_err(ClientError::Engine)
    }

    fn prepare(&self, name: &str, sql: &str) -> Result<()> {
        self.conn
            .prepare(name, sql)
            .map(|_| ())
            .map_err(ClientError::Engine)
    }

    fn execute(&self, name: &str, args: &[Value]) -> Result<QueryResult> {
        self.conn
            .execute_values(name, args)
            .map_err(ClientError::Engine)
    }

    fn deallocate(&self, name: &str) -> Result<()> {
        self.conn
            .deallocate(name)
            .map(|_| ())
            .map_err(ClientError::Engine)
    }

    fn metrics(&self) -> Result<Vec<(String, u64)>> {
        Ok(crate::flatten_metrics(&self.conn.database()))
    }
}
