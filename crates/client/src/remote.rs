//! The remote driver: the [`Driver`] trait over a TCP connection to a
//! `grt-server`, speaking the [`crate::proto`] wire protocol.

use crate::proto::{
    self, read_frame, write_frame, Batch, ErrorCode, FrameError, Request, Response,
    PROTOCOL_VERSION,
};
use crate::{ClientError, Driver, Result};
use grt_ids::{QueryResult, Value};
use parking_lot::Mutex;
use std::io::BufWriter;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Rows requested per [`Request::Fetch`] round trip.
const FETCH_ROWS: u32 = 1024;

struct Wire {
    stream: TcpStream,
    writer: BufWriter<TcpStream>,
}

/// A TCP client session against a `grt-server`. One request/response
/// exchange is in flight at a time (the wire is locked for the round
/// trip), mirroring the statement-at-a-time discipline of an engine
/// connection.
pub struct RemoteDriver {
    wire: Mutex<Wire>,
    session: u64,
}

impl RemoteDriver {
    /// Connects, performs the handshake, and returns a ready driver.
    /// A server at capacity answers the connection with a
    /// backpressure error, surfaced here as
    /// [`ClientError::Backpressure`].
    pub fn connect(addr: impl ToSocketAddrs) -> Result<RemoteDriver> {
        let stream = TcpStream::connect(addr).map_err(|e| ClientError::Io(e.to_string()))?;
        stream
            .set_nodelay(true)
            .map_err(|e| ClientError::Io(e.to_string()))?;
        let writer = BufWriter::new(
            stream
                .try_clone()
                .map_err(|e| ClientError::Io(e.to_string()))?,
        );
        let driver = RemoteDriver {
            wire: Mutex::new(Wire { stream, writer }),
            session: 0,
        };
        let resp = driver.round_trip(&Request::Hello {
            version: PROTOCOL_VERSION,
        })?;
        match resp {
            Response::Welcome { version, session } => {
                if version != PROTOCOL_VERSION {
                    return Err(ClientError::Protocol(format!(
                        "server speaks protocol v{version}, client v{PROTOCOL_VERSION}"
                    )));
                }
                Ok(RemoteDriver { session, ..driver })
            }
            Response::Err { code, message } => Err(wire_error(code, &message)),
            other => Err(unexpected(other)),
        }
    }

    /// The engine session id backing this connection.
    pub fn session_id(&self) -> u64 {
        self.session
    }

    /// Sets the socket read timeout (mainly a test hook — a client
    /// that must not hang forever on a stalled server).
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> Result<()> {
        self.wire
            .lock()
            .stream
            .set_read_timeout(timeout)
            .map_err(|e| ClientError::Io(e.to_string()))
    }

    /// Recent trace events for this session (`SHOW TRACE`).
    pub fn trace(&self, max: u32) -> Result<Vec<proto::WireTraceEvent>> {
        match self.round_trip(&Request::Trace { max })? {
            Response::Trace { events } => Ok(events),
            other => Err(unexpected(other)),
        }
    }

    /// Clean disconnect: sends `Goodbye` and waits for the `Bye`.
    /// Dropping the driver without calling this is also safe — the
    /// server reaps the session when the socket closes — but the
    /// explicit form lets callers sequence "all sessions closed"
    /// assertions after it.
    pub fn goodbye(self) -> Result<()> {
        match self.round_trip(&Request::Goodbye)? {
            Response::Bye => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    fn round_trip(&self, req: &Request) -> Result<Response> {
        let mut wire = self.wire.lock();
        write_frame(&mut wire.writer, &req.encode()).map_err(|e| ClientError::Io(e.to_string()))?;
        let frame = read_frame(&mut wire.stream).map_err(|e| match e {
            FrameError::Eof => ClientError::Io("server closed the connection".into()),
            FrameError::Io(e) => ClientError::Io(e.to_string()),
            other => ClientError::Protocol(other.to_string()),
        })?;
        Response::decode(&frame).map_err(ClientError::Protocol)
    }

    /// Issues a statement-shaped request and assembles the complete
    /// [`QueryResult`], fetching continuation batches as needed.
    fn statement(&self, req: &Request) -> Result<QueryResult> {
        match self.round_trip(req)? {
            Response::Ok { message } => Ok(QueryResult {
                message,
                ..Default::default()
            }),
            Response::ResultHead {
                columns,
                message,
                cursor,
                total_rows,
                batch,
            } => {
                let mut out = QueryResult {
                    columns,
                    rows: batch.rows,
                    rendered: batch.rendered,
                    message,
                };
                let mut done = batch.done;
                while !done {
                    match self.round_trip(&Request::Fetch {
                        cursor,
                        max_rows: FETCH_ROWS,
                    })? {
                        Response::Rows(Batch {
                            rows,
                            rendered,
                            done: d,
                        }) => {
                            out.rows.extend(rows);
                            out.rendered.extend(rendered);
                            done = d;
                        }
                        Response::Err { code, message } => return Err(wire_error(code, &message)),
                        other => return Err(unexpected(other)),
                    }
                }
                debug_assert_eq!(out.rows.len() as u64, total_rows);
                Ok(out)
            }
            Response::Err { code, message } => Err(wire_error(code, &message)),
            other => Err(unexpected(other)),
        }
    }
}

impl Driver for RemoteDriver {
    fn exec(&self, sql: &str) -> Result<QueryResult> {
        self.statement(&Request::Query {
            sql: sql.to_string(),
        })
    }

    fn prepare(&self, name: &str, sql: &str) -> Result<()> {
        match self.round_trip(&Request::Prepare {
            name: name.to_string(),
            sql: sql.to_string(),
        })? {
            Response::Ok { .. } => Ok(()),
            Response::Err { code, message } => Err(wire_error(code, &message)),
            other => Err(unexpected(other)),
        }
    }

    fn execute(&self, name: &str, args: &[Value]) -> Result<QueryResult> {
        self.statement(&Request::Execute {
            name: name.to_string(),
            args: args.to_vec(),
        })
    }

    fn deallocate(&self, name: &str) -> Result<()> {
        match self.round_trip(&Request::Deallocate {
            name: name.to_string(),
        })? {
            Response::Ok { .. } => Ok(()),
            Response::Err { code, message } => Err(wire_error(code, &message)),
            other => Err(unexpected(other)),
        }
    }

    fn metrics(&self) -> Result<Vec<(String, u64)>> {
        match self.round_trip(&Request::Metrics)? {
            Response::Metrics { entries } => Ok(entries),
            Response::Err { code, message } => Err(wire_error(code, &message)),
            other => Err(unexpected(other)),
        }
    }
}

/// Maps a wire error onto the client error surface: engine codes
/// reconstruct their exact [`grt_ids::IdsError`]; transport codes map
/// to their dedicated variants.
fn wire_error(code: ErrorCode, message: &str) -> ClientError {
    match code {
        ErrorCode::Backpressure => ClientError::Backpressure,
        ErrorCode::ShuttingDown => ClientError::ShuttingDown,
        ErrorCode::Protocol => ClientError::Protocol(message.to_string()),
        engine => match proto::decode_error(engine, message) {
            Some(e) => ClientError::Engine(e),
            None => ClientError::Protocol(format!("unmappable error code {engine:?}: {message}")),
        },
    }
}

fn unexpected(resp: Response) -> ClientError {
    ClientError::Protocol(format!("unexpected response {resp:?}"))
}
