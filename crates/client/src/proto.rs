//! The wire protocol: length-prefixed frames carrying a small
//! request/response message set.
//!
//! Every frame is a 4-byte little-endian payload length followed by
//! the payload. A zero-length frame and a frame longer than
//! [`MAX_FRAME`] are protocol violations — the peer answers with a
//! protocol error and closes the connection. Inside a frame, the
//! first byte is the message tag; strings are `u32` length + UTF-8
//! bytes; values ride the engine's own row codec
//! ([`Value::encode`] / [`Value::decode`]), so anything a `SELECT`
//! can return survives the wire unchanged.
//!
//! The message set is deliberately small (the Section 6 surface a
//! DataBlade client actually needs): handshake, ad-hoc query,
//! prepare / execute / deallocate, batched row fetch, a
//! `SHOW METRICS`-style observability pair, and a clean goodbye.

use grt_ids::Value;
use std::io::{self, Read, Write};

/// Protocol version sent in the handshake; the server refuses
/// mismatches so framing bugs surface as a clean error, not garbage.
pub const PROTOCOL_VERSION: u32 = 1;

/// Hard ceiling on a frame payload (16 MiB). A declared length beyond
/// it is rejected *before* any payload is read, so a malicious or
/// corrupt length prefix cannot make the server allocate unboundedly.
pub const MAX_FRAME: usize = 16 << 20;

/// Error classification carried by [`Response::Err`]. Codes 1–14 map
/// the engine's [`grt_ids::IdsError`] (including the storage variants
/// a client needs to distinguish to implement retry-on-contention);
/// 32+ are transport-level conditions the engine never produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// SQL syntax error.
    Parse = 1,
    /// Unknown table/column/function/type/index/access method.
    NotFound = 2,
    /// Name already registered.
    Duplicate = 3,
    /// Type mismatch or bad value.
    Type = 4,
    /// Constraint or semantic violation.
    Semantic = 5,
    /// A user-defined routine failed.
    Routine = 6,
    /// Access-method failure.
    AccessMethod = 7,
    /// Storage-layer I/O failure.
    StorageIo = 8,
    /// Storage-layer object not found.
    StorageNotFound = 9,
    /// The statement's transaction was aborted as a deadlock victim.
    Deadlock = 10,
    /// Lock acquisition timed out.
    LockTimeout = 11,
    /// The store's on-disk state is corrupt.
    Corrupt = 12,
    /// Storage API misuse.
    Usage = 13,
    /// The transaction had already ended.
    TxnEnded = 14,
    /// The peer violated the framing or message grammar.
    Protocol = 32,
    /// The server's session pool is full — try again later.
    Backpressure = 33,
    /// The server is shutting down gracefully.
    ShuttingDown = 34,
}

impl ErrorCode {
    fn from_u8(v: u8) -> Option<ErrorCode> {
        use ErrorCode::*;
        Some(match v {
            1 => Parse,
            2 => NotFound,
            3 => Duplicate,
            4 => Type,
            5 => Semantic,
            6 => Routine,
            7 => AccessMethod,
            8 => StorageIo,
            9 => StorageNotFound,
            10 => Deadlock,
            11 => LockTimeout,
            12 => Corrupt,
            13 => Usage,
            14 => TxnEnded,
            32 => Protocol,
            33 => Backpressure,
            34 => ShuttingDown,
            _ => return None,
        })
    }
}

/// Maps an engine error onto its wire code and message.
pub fn encode_error(e: &grt_ids::IdsError) -> (ErrorCode, String) {
    use grt_ids::IdsError as E;
    match e {
        E::Parse(m) => (ErrorCode::Parse, m.clone()),
        E::NotFound(m) => (ErrorCode::NotFound, m.clone()),
        E::Duplicate(m) => (ErrorCode::Duplicate, m.clone()),
        E::Type(m) => (ErrorCode::Type, m.clone()),
        E::Semantic(m) => (ErrorCode::Semantic, m.clone()),
        E::Routine(m) => (ErrorCode::Routine, m.clone()),
        E::AccessMethod(m) => (ErrorCode::AccessMethod, m.clone()),
        E::Storage(s) => {
            use grt_sbspace::SbError as S;
            match s {
                S::Io(m) => (ErrorCode::StorageIo, m.clone()),
                S::NotFound(m) => (ErrorCode::StorageNotFound, m.clone()),
                S::Deadlock(m) => (ErrorCode::Deadlock, m.clone()),
                S::LockTimeout(m) => (ErrorCode::LockTimeout, m.clone()),
                S::Corrupt(m) => (ErrorCode::Corrupt, m.clone()),
                S::Usage(m) => (ErrorCode::Usage, m.clone()),
                S::TxnEnded => (ErrorCode::TxnEnded, String::new()),
            }
        }
    }
}

/// Reconstructs the engine error a wire code stands for, so remote
/// callers can match on [`grt_ids::IdsError`] exactly as embedded
/// callers do (e.g. to treat deadlock/timeout losses as retryable).
/// Transport codes (`Protocol`, `Backpressure`, `ShuttingDown`) have
/// no engine equivalent and return `None`.
pub fn decode_error(code: ErrorCode, message: &str) -> Option<grt_ids::IdsError> {
    use grt_ids::IdsError as E;
    use grt_sbspace::SbError as S;
    let m = message.to_string();
    Some(match code {
        ErrorCode::Parse => E::Parse(m),
        ErrorCode::NotFound => E::NotFound(m),
        ErrorCode::Duplicate => E::Duplicate(m),
        ErrorCode::Type => E::Type(m),
        ErrorCode::Semantic => E::Semantic(m),
        ErrorCode::Routine => E::Routine(m),
        ErrorCode::AccessMethod => E::AccessMethod(m),
        ErrorCode::StorageIo => E::Storage(S::Io(m)),
        ErrorCode::StorageNotFound => E::Storage(S::NotFound(m)),
        ErrorCode::Deadlock => E::Storage(S::Deadlock(m)),
        ErrorCode::LockTimeout => E::Storage(S::LockTimeout(m)),
        ErrorCode::Corrupt => E::Storage(S::Corrupt(m)),
        ErrorCode::Usage => E::Storage(S::Usage(m)),
        ErrorCode::TxnEnded => E::Storage(S::TxnEnded),
        ErrorCode::Protocol | ErrorCode::Backpressure | ErrorCode::ShuttingDown => return None,
    })
}

/// A client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Handshake — must be the first frame on a connection.
    Hello {
        /// The client's [`PROTOCOL_VERSION`].
        version: u32,
    },
    /// Execute one ad-hoc SQL statement.
    Query {
        /// The statement text.
        sql: String,
    },
    /// Compile a statement under a name (server-side `PREPARE`).
    Prepare {
        /// Handle name, unique per session.
        name: String,
        /// The statement text, with `?` parameter slots.
        sql: String,
    },
    /// Run a prepared statement with bound parameter values.
    Execute {
        /// Handle name from a previous [`Request::Prepare`].
        name: String,
        /// Parameter values, one per `?` slot.
        args: Vec<Value>,
    },
    /// Drop a prepared statement handle.
    Deallocate {
        /// Handle name to drop.
        name: String,
    },
    /// Pull the next batch of rows from an open result cursor.
    Fetch {
        /// Cursor id from a [`Response::ResultHead`].
        cursor: u64,
        /// Upper bound on rows returned in this batch.
        max_rows: u32,
    },
    /// `SHOW METRICS`: the server's unified counter registry.
    Metrics,
    /// `SHOW TRACE`: recent trace events for this session.
    Trace {
        /// Upper bound on events returned (most recent win).
        max: u32,
    },
    /// Clean disconnect; the server replies [`Response::Bye`].
    Goodbye,
}

/// One batch of result rows (raw values plus their rendered text).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Batch {
    /// Raw result rows.
    pub rows: Vec<Vec<Value>>,
    /// The same rows rendered through the type support functions.
    pub rendered: Vec<Vec<String>>,
    /// True when the cursor is exhausted (and closed server-side).
    pub done: bool,
}

/// One trace event as it crosses the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct WireTraceEvent {
    /// Trace class (e.g. `GRT`, `EXPLAIN`).
    pub class: String,
    /// Trace level.
    pub level: u8,
    /// Session the event belongs to.
    pub session: u64,
    /// Statement span id.
    pub span: u64,
    /// The event text.
    pub message: String,
}

/// A server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Handshake accepted.
    Welcome {
        /// The server's [`PROTOCOL_VERSION`].
        version: u32,
        /// The engine session id backing this connection.
        session: u64,
    },
    /// A statement succeeded without a result set.
    Ok {
        /// Engine status message (e.g. `committed`).
        message: String,
    },
    /// Head of a result set: columns plus the first row batch. When
    /// `batch.done` is false, `cursor` is non-zero and the remaining
    /// rows are pulled with [`Request::Fetch`].
    ResultHead {
        /// Column headers.
        columns: Vec<String>,
        /// Engine status message.
        message: String,
        /// Cursor id for follow-up fetches (0 when `batch.done`).
        cursor: u64,
        /// Total rows in the result set.
        total_rows: u64,
        /// The first batch.
        batch: Batch,
    },
    /// A fetched continuation batch.
    Rows(Batch),
    /// Counter registry dump (`SHOW METRICS`).
    Metrics {
        /// `(name, value)` pairs; histograms flatten to
        /// `.count` / `.mean_ns` rows exactly like `sysmetrics`.
        entries: Vec<(String, u64)>,
    },
    /// Recent trace events (`SHOW TRACE`).
    Trace {
        /// The events, oldest first.
        events: Vec<WireTraceEvent>,
    },
    /// The request failed.
    Err {
        /// Error classification.
        code: ErrorCode,
        /// Human-readable message.
        message: String,
    },
    /// Acknowledges [`Request::Goodbye`].
    Bye,
}

// ---------------------------------------------------------------------
// Primitive codec helpers.

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// A bounds-checked reader over a frame payload.
struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let s = self
            .buf
            .get(self.pos..self.pos + n)
            .ok_or_else(|| format!("truncated message (wanted {n} bytes at {})", self.pos))?;
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String, String> {
        let n = self.u32()? as usize;
        if n > MAX_FRAME {
            return Err(format!("string length {n} exceeds frame limit"));
        }
        String::from_utf8(self.take(n)?.to_vec()).map_err(|_| "invalid utf-8".into())
    }

    fn value(&mut self) -> Result<Value, String> {
        let mut pos = self.pos;
        let v = Value::decode(self.buf, &mut pos).map_err(|e| e.to_string())?;
        self.pos = pos;
        Ok(v)
    }

    fn finish(self) -> Result<(), String> {
        if self.pos != self.buf.len() {
            return Err(format!(
                "{} trailing bytes after message",
                self.buf.len() - self.pos
            ));
        }
        Ok(())
    }
}

fn put_batch(out: &mut Vec<u8>, b: &Batch) {
    out.push(b.done as u8);
    out.extend_from_slice(&(b.rows.len() as u32).to_le_bytes());
    for row in &b.rows {
        out.extend_from_slice(&(row.len() as u32).to_le_bytes());
        for v in row {
            v.encode(out);
        }
    }
    out.extend_from_slice(&(b.rendered.len() as u32).to_le_bytes());
    for row in &b.rendered {
        out.extend_from_slice(&(row.len() as u32).to_le_bytes());
        for cell in row {
            put_str(out, cell);
        }
    }
}

fn get_batch(d: &mut Dec) -> Result<Batch, String> {
    let done = d.u8()? != 0;
    let nrows = d.u32()? as usize;
    let mut rows = Vec::with_capacity(nrows.min(4096));
    for _ in 0..nrows {
        let ncols = d.u32()? as usize;
        let mut row = Vec::with_capacity(ncols.min(256));
        for _ in 0..ncols {
            row.push(d.value()?);
        }
        rows.push(row);
    }
    let nrend = d.u32()? as usize;
    let mut rendered = Vec::with_capacity(nrend.min(4096));
    for _ in 0..nrend {
        let ncols = d.u32()? as usize;
        let mut row = Vec::with_capacity(ncols.min(256));
        for _ in 0..ncols {
            row.push(d.str()?);
        }
        rendered.push(row);
    }
    Ok(Batch {
        rows,
        rendered,
        done,
    })
}

// ---------------------------------------------------------------------
// Message codec.

const REQ_HELLO: u8 = 1;
const REQ_QUERY: u8 = 2;
const REQ_PREPARE: u8 = 3;
const REQ_EXECUTE: u8 = 4;
const REQ_DEALLOCATE: u8 = 5;
const REQ_FETCH: u8 = 6;
const REQ_METRICS: u8 = 7;
const REQ_TRACE: u8 = 8;
const REQ_GOODBYE: u8 = 9;

const RESP_WELCOME: u8 = 1;
const RESP_OK: u8 = 2;
const RESP_RESULT_HEAD: u8 = 3;
const RESP_ROWS: u8 = 4;
const RESP_METRICS: u8 = 5;
const RESP_TRACE: u8 = 6;
const RESP_ERR: u8 = 7;
const RESP_BYE: u8 = 8;

impl Request {
    /// Serialises into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        match self {
            Request::Hello { version } => {
                out.push(REQ_HELLO);
                out.extend_from_slice(&version.to_le_bytes());
            }
            Request::Query { sql } => {
                out.push(REQ_QUERY);
                put_str(&mut out, sql);
            }
            Request::Prepare { name, sql } => {
                out.push(REQ_PREPARE);
                put_str(&mut out, name);
                put_str(&mut out, sql);
            }
            Request::Execute { name, args } => {
                out.push(REQ_EXECUTE);
                put_str(&mut out, name);
                out.extend_from_slice(&(args.len() as u32).to_le_bytes());
                for v in args {
                    v.encode(&mut out);
                }
            }
            Request::Deallocate { name } => {
                out.push(REQ_DEALLOCATE);
                put_str(&mut out, name);
            }
            Request::Fetch { cursor, max_rows } => {
                out.push(REQ_FETCH);
                out.extend_from_slice(&cursor.to_le_bytes());
                out.extend_from_slice(&max_rows.to_le_bytes());
            }
            Request::Metrics => out.push(REQ_METRICS),
            Request::Trace { max } => {
                out.push(REQ_TRACE);
                out.extend_from_slice(&max.to_le_bytes());
            }
            Request::Goodbye => out.push(REQ_GOODBYE),
        }
        out
    }

    /// Deserialises a frame payload; a malformed payload is a
    /// protocol violation described by the returned string.
    pub fn decode(buf: &[u8]) -> Result<Request, String> {
        let mut d = Dec::new(buf);
        let req = match d.u8()? {
            REQ_HELLO => Request::Hello { version: d.u32()? },
            REQ_QUERY => Request::Query { sql: d.str()? },
            REQ_PREPARE => Request::Prepare {
                name: d.str()?,
                sql: d.str()?,
            },
            REQ_EXECUTE => {
                let name = d.str()?;
                let n = d.u32()? as usize;
                if n > 4096 {
                    return Err(format!("{n} execute parameters exceed the limit"));
                }
                let mut args = Vec::with_capacity(n);
                for _ in 0..n {
                    args.push(d.value()?);
                }
                Request::Execute { name, args }
            }
            REQ_DEALLOCATE => Request::Deallocate { name: d.str()? },
            REQ_FETCH => Request::Fetch {
                cursor: d.u64()?,
                max_rows: d.u32()?,
            },
            REQ_METRICS => Request::Metrics,
            REQ_TRACE => Request::Trace { max: d.u32()? },
            REQ_GOODBYE => Request::Goodbye,
            other => return Err(format!("unknown request tag {other}")),
        };
        d.finish()?;
        Ok(req)
    }
}

impl Response {
    /// Serialises into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        match self {
            Response::Welcome { version, session } => {
                out.push(RESP_WELCOME);
                out.extend_from_slice(&version.to_le_bytes());
                out.extend_from_slice(&session.to_le_bytes());
            }
            Response::Ok { message } => {
                out.push(RESP_OK);
                put_str(&mut out, message);
            }
            Response::ResultHead {
                columns,
                message,
                cursor,
                total_rows,
                batch,
            } => {
                out.push(RESP_RESULT_HEAD);
                out.extend_from_slice(&(columns.len() as u32).to_le_bytes());
                for c in columns {
                    put_str(&mut out, c);
                }
                put_str(&mut out, message);
                out.extend_from_slice(&cursor.to_le_bytes());
                out.extend_from_slice(&total_rows.to_le_bytes());
                put_batch(&mut out, batch);
            }
            Response::Rows(batch) => {
                out.push(RESP_ROWS);
                put_batch(&mut out, batch);
            }
            Response::Metrics { entries } => {
                out.push(RESP_METRICS);
                out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
                for (name, value) in entries {
                    put_str(&mut out, name);
                    out.extend_from_slice(&value.to_le_bytes());
                }
            }
            Response::Trace { events } => {
                out.push(RESP_TRACE);
                out.extend_from_slice(&(events.len() as u32).to_le_bytes());
                for e in events {
                    put_str(&mut out, &e.class);
                    out.push(e.level);
                    out.extend_from_slice(&e.session.to_le_bytes());
                    out.extend_from_slice(&e.span.to_le_bytes());
                    put_str(&mut out, &e.message);
                }
            }
            Response::Err { code, message } => {
                out.push(RESP_ERR);
                out.push(*code as u8);
                put_str(&mut out, message);
            }
            Response::Bye => out.push(RESP_BYE),
        }
        out
    }

    /// Deserialises a frame payload.
    pub fn decode(buf: &[u8]) -> Result<Response, String> {
        let mut d = Dec::new(buf);
        let resp = match d.u8()? {
            RESP_WELCOME => Response::Welcome {
                version: d.u32()?,
                session: d.u64()?,
            },
            RESP_OK => Response::Ok { message: d.str()? },
            RESP_RESULT_HEAD => {
                let ncols = d.u32()? as usize;
                if ncols > 4096 {
                    return Err(format!("{ncols} columns exceed the limit"));
                }
                let mut columns = Vec::with_capacity(ncols);
                for _ in 0..ncols {
                    columns.push(d.str()?);
                }
                Response::ResultHead {
                    columns,
                    message: d.str()?,
                    cursor: d.u64()?,
                    total_rows: d.u64()?,
                    batch: get_batch(&mut d)?,
                }
            }
            RESP_ROWS => Response::Rows(get_batch(&mut d)?),
            RESP_METRICS => {
                let n = d.u32()? as usize;
                let mut entries = Vec::with_capacity(n.min(65_536));
                for _ in 0..n {
                    let name = d.str()?;
                    entries.push((name, d.u64()?));
                }
                Response::Metrics { entries }
            }
            RESP_TRACE => {
                let n = d.u32()? as usize;
                let mut events = Vec::with_capacity(n.min(65_536));
                for _ in 0..n {
                    events.push(WireTraceEvent {
                        class: d.str()?,
                        level: d.u8()?,
                        session: d.u64()?,
                        span: d.u64()?,
                        message: d.str()?,
                    });
                }
                Response::Trace { events }
            }
            RESP_ERR => {
                let raw = d.u8()?;
                let code =
                    ErrorCode::from_u8(raw).ok_or_else(|| format!("unknown error code {raw}"))?;
                Response::Err {
                    code,
                    message: d.str()?,
                }
            }
            RESP_BYE => Response::Bye,
            other => return Err(format!("unknown response tag {other}")),
        };
        d.finish()?;
        Ok(resp)
    }
}

// ---------------------------------------------------------------------
// Framing.

/// How reading a frame can fail, beyond plain I/O.
#[derive(Debug)]
pub enum FrameError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The peer closed the stream (cleanly, between frames).
    Eof,
    /// A zero-length frame: always a protocol violation.
    Empty,
    /// A declared payload length beyond [`MAX_FRAME`].
    Oversized(usize),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "io error: {e}"),
            FrameError::Eof => write!(f, "connection closed"),
            FrameError::Empty => write!(f, "zero-length frame"),
            FrameError::Oversized(n) => write!(f, "frame of {n} bytes exceeds {MAX_FRAME}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Writes one frame (length prefix + payload) and flushes.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    debug_assert!(!payload.is_empty() && payload.len() <= MAX_FRAME);
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame, blocking until it is complete. The client side
/// uses this directly; the server uses [`FrameReader`], which
/// tolerates read timeouts so it can poll a shutdown flag.
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, FrameError> {
    let mut len = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match r.read(&mut len[got..]) {
            Ok(0) if got == 0 => return Err(FrameError::Eof),
            Ok(0) => {
                return Err(FrameError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                )))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let n = u32::from_le_bytes(len) as usize;
    if n == 0 {
        return Err(FrameError::Empty);
    }
    if n > MAX_FRAME {
        return Err(FrameError::Oversized(n));
    }
    let mut buf = vec![0u8; n];
    r.read_exact(&mut buf).map_err(FrameError::Io)?;
    Ok(buf)
}

/// An incremental frame parser that survives partial reads: bytes
/// accumulate across [`FrameReader::poll`] calls, so a frame split
/// over many TCP segments (or interleaved with read timeouts used to
/// poll a shutdown flag) is reassembled rather than misparsed.
#[derive(Default)]
pub struct FrameReader {
    buf: Vec<u8>,
}

impl FrameReader {
    /// Creates an empty reader.
    pub fn new() -> FrameReader {
        FrameReader::default()
    }

    /// Returns a complete buffered frame if one is available.
    fn pop(&mut self) -> Result<Option<Vec<u8>>, FrameError> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let n = u32::from_le_bytes(self.buf[..4].try_into().unwrap()) as usize;
        // Validate the declared length as soon as it is visible, long
        // before the payload arrives.
        if n == 0 {
            return Err(FrameError::Empty);
        }
        if n > MAX_FRAME {
            return Err(FrameError::Oversized(n));
        }
        if self.buf.len() < 4 + n {
            return Ok(None);
        }
        let frame = self.buf[4..4 + n].to_vec();
        self.buf.drain(..4 + n);
        Ok(Some(frame))
    }

    /// Feeds from `r` once and returns a complete frame when
    /// available. `Ok(None)` means "no full frame yet" — either the
    /// read timed out (the server's shutdown-poll tick) or only part
    /// of a frame has arrived. `Err(Eof)` is a clean close between
    /// frames; a close mid-frame reports as an I/O error.
    pub fn poll(&mut self, r: &mut impl Read) -> Result<Option<Vec<u8>>, FrameError> {
        if let Some(frame) = self.pop()? {
            return Ok(Some(frame));
        }
        let mut chunk = [0u8; 64 * 1024];
        match r.read(&mut chunk) {
            Ok(0) if self.buf.is_empty() => Err(FrameError::Eof),
            Ok(0) => Err(FrameError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-frame",
            ))),
            Ok(n) => {
                self.buf.extend_from_slice(&chunk[..n]);
                self.pop()
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) =>
            {
                Ok(None)
            }
            Err(e) => Err(FrameError::Io(e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grt_ids::Value as V;

    #[test]
    fn request_roundtrip() {
        let reqs = [
            Request::Hello {
                version: PROTOCOL_VERSION,
            },
            Request::Query {
                sql: "SELECT 1".into(),
            },
            Request::Prepare {
                name: "p".into(),
                sql: "INSERT INTO t VALUES (?, ?)".into(),
            },
            Request::Execute {
                name: "p".into(),
                args: vec![V::Int(7), V::Text("x'y".into()), V::Null],
            },
            Request::Deallocate { name: "p".into() },
            Request::Fetch {
                cursor: 42,
                max_rows: 100,
            },
            Request::Metrics,
            Request::Trace { max: 64 },
            Request::Goodbye,
        ];
        for req in reqs {
            let bytes = req.encode();
            assert_eq!(Request::decode(&bytes).unwrap(), req, "{req:?}");
        }
    }

    #[test]
    fn response_roundtrip() {
        let resps = [
            Response::Welcome {
                version: 1,
                session: 9,
            },
            Response::Ok {
                message: "committed".into(),
            },
            Response::ResultHead {
                columns: vec!["id".into(), "s".into()],
                message: String::new(),
                cursor: 3,
                total_rows: 2,
                batch: Batch {
                    rows: vec![vec![V::Int(1), V::Text("one".into())]],
                    rendered: vec![vec!["1".into(), "one".into()]],
                    done: false,
                },
            },
            Response::Rows(Batch {
                rows: vec![],
                rendered: vec![],
                done: true,
            }),
            Response::Metrics {
                entries: vec![("ids.statements".into(), 12)],
            },
            Response::Trace {
                events: vec![WireTraceEvent {
                    class: "GRT".into(),
                    level: 2,
                    session: 1,
                    span: 5,
                    message: "grt_search".into(),
                }],
            },
            Response::Err {
                code: ErrorCode::Deadlock,
                message: "victim".into(),
            },
            Response::Bye,
        ];
        for resp in resps {
            let bytes = resp.encode();
            assert_eq!(Response::decode(&bytes).unwrap(), resp, "{resp:?}");
        }
    }

    #[test]
    fn malformed_payloads_error_not_panic() {
        // Truncations of a valid message at every byte boundary.
        let full = Request::Execute {
            name: "p".into(),
            args: vec![V::Int(7), V::Text("hello".into())],
        }
        .encode();
        for cut in 0..full.len() {
            assert!(Request::decode(&full[..cut]).is_err(), "cut {cut}");
        }
        // Unknown tags and trailing garbage.
        assert!(Request::decode(&[200]).is_err());
        assert!(Request::decode(&[]).is_err());
        let mut trailing = Request::Metrics.encode();
        trailing.push(0);
        assert!(Request::decode(&trailing).is_err());
    }

    #[test]
    fn frame_reader_reassembles_partial_reads() {
        let payload = Request::Query {
            sql: "SELECT 1".into(),
        }
        .encode();
        let mut wire = (payload.len() as u32).to_le_bytes().to_vec();
        wire.extend_from_slice(&payload);
        // Deliver the frame one byte at a time.
        let mut fr = FrameReader::new();
        let mut out = None;
        for b in &wire {
            let mut one = &[*b][..];
            if let Some(frame) = fr.poll(&mut one).unwrap() {
                out = Some(frame);
            }
        }
        assert_eq!(out.as_deref(), Some(&payload[..]));
    }

    #[test]
    fn frame_reader_rejects_bad_lengths_eagerly() {
        let mut fr = FrameReader::new();
        let mut zeros = &[0u8, 0, 0, 0][..];
        assert!(matches!(fr.poll(&mut zeros), Err(FrameError::Empty)));
        let mut fr = FrameReader::new();
        let huge = (MAX_FRAME as u32 + 1).to_le_bytes();
        let mut huge = &huge[..];
        assert!(matches!(fr.poll(&mut huge), Err(FrameError::Oversized(_))));
    }
}
