//! Client drivers for the served engine.
//!
//! The paper's DataBlade runs inside a server that many clients talk
//! to over a wire; this crate is the client half of that layering.
//! One [`Driver`] trait fronts two implementations:
//!
//! * [`EmbeddedDriver`] — the in-process path: a thin adapter over
//!   [`grt_ids::Connection`], for tests, benches, and tools that link
//!   the engine directly;
//! * [`RemoteDriver`] — a TCP client speaking the length-prefixed
//!   protocol of [`proto`] to a `grt-server`, with the same
//!   `connect → prepare → execute → fetch` lifecycle and the same
//!   error surface (engine errors are reconstructed from their wire
//!   codes, so retry-on-contention logic works unchanged in either
//!   mode).
//!
//! Anything written against `&dyn Driver` runs embedded or served
//! without modification — the property the stress harness and the
//! `sessions --wire` benchmark lean on.

pub mod proto;

mod embedded;
mod remote;

pub use embedded::EmbeddedDriver;
pub use remote::RemoteDriver;

use grt_ids::{Database, IdsError, QueryResult, Value};

/// Flattens a database's metric registry to sorted `(name, value)`
/// pairs, histograms contributing `.count` / `.mean_ns` entries —
/// the one shape `SHOW METRICS` has on both sides of the wire (the
/// server serializes exactly this; the embedded driver returns it
/// directly).
pub fn flatten_metrics(db: &Database) -> Vec<(String, u64)> {
    let snap = db.metrics_snapshot();
    let mut entries: Vec<(String, u64)> =
        snap.counters.iter().map(|(k, &v)| (k.clone(), v)).collect();
    entries.extend(snap.gauges.iter().map(|(k, &v)| (k.clone(), v)));
    for (k, h) in &snap.histograms {
        entries.push((format!("{k}.count"), h.count));
        entries.push((format!("{k}.mean_ns"), h.mean_ns()));
    }
    entries.sort();
    entries
}

/// How a driver call can fail. Engine errors keep their exact
/// [`IdsError`] shape in both modes; the remaining variants only
/// occur on the wire.
#[derive(Debug)]
pub enum ClientError {
    /// The engine rejected or failed the statement.
    Engine(IdsError),
    /// The wire protocol was violated (by either side).
    Protocol(String),
    /// The server refused the connection: its session pool is full.
    Backpressure,
    /// The server is shutting down gracefully.
    ShuttingDown,
    /// Transport-level I/O failure.
    Io(String),
}

impl ClientError {
    /// True for contention losses (deadlock victim, lock timeout) —
    /// the errors a client workload may treat as retryable.
    pub fn is_contention(&self) -> bool {
        use grt_sbspace::SbError;
        matches!(
            self,
            ClientError::Engine(IdsError::Storage(
                SbError::Deadlock(_) | SbError::LockTimeout(_)
            ))
        )
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Engine(e) => write!(f, "{e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Backpressure => write!(f, "server busy: session pool full"),
            ClientError::ShuttingDown => write!(f, "server shutting down"),
            ClientError::Io(m) => write!(f, "io error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<IdsError> for ClientError {
    fn from(e: IdsError) -> Self {
        ClientError::Engine(e)
    }
}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, ClientError>;

/// The driver surface shared by the embedded and remote paths: the
/// `connect → prepare → execute → fetch` lifecycle of Section 6, plus
/// ad-hoc statements and the `SHOW METRICS` observability hook.
/// Implementations are internally synchronized (`&self` methods), so
/// one driver per worker thread is the intended usage — exactly like
/// an engine [`grt_ids::Connection`].
pub trait Driver: Send + Sync {
    /// Executes one ad-hoc SQL statement and returns the full result
    /// (remote drivers fetch every batch before returning).
    fn exec(&self, sql: &str) -> Result<QueryResult>;

    /// Compiles `sql` (with `?` slots) under `name`.
    fn prepare(&self, name: &str, sql: &str) -> Result<()>;

    /// Runs a prepared statement with bound values.
    fn execute(&self, name: &str, args: &[Value]) -> Result<QueryResult>;

    /// Drops a prepared statement handle.
    fn deallocate(&self, name: &str) -> Result<()>;

    /// The server's unified counter registry (`ids.*`, `am.*`,
    /// `sbspace.*`, …), histograms flattened to `.count`/`.mean_ns`
    /// entries exactly like the `sysmetrics` catalog.
    fn metrics(&self) -> Result<Vec<(String, u64)>>;
}
