//! End-to-end wire smoke used by the `server-e2e` CI job.
//!
//! Connects to a running `grt-server`, exercises the full client
//! lifecycle — DDL, PREPARE/EXECUTE with bound values, multi-batch
//! fetch, eight concurrent connections, `SHOW METRICS` — and
//! disconnects cleanly. Exits 0 with a summary line on success,
//! nonzero with the failure on stderr otherwise.

use grt_client::{ClientError, Driver, RemoteDriver};
use grt_ids::Value;

const CONCURRENCY: usize = 8;
const ROWS_PER_WORKER: usize = 32;

fn main() {
    let addr = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "127.0.0.1:7878".to_string());
    if let Err(e) = run(&addr) {
        eprintln!("client_smoke: FAILED against {addr}: {e}");
        std::process::exit(1);
    }
}

fn run(addr: &str) -> Result<(), ClientError> {
    // Phase 1: schema + prepared lifecycle on one connection.
    let admin = RemoteDriver::connect(addr)?;
    admin.exec("CREATE TABLE smoke (id integer, Time_Extent GRT_TimeExtent_t)")?;
    admin.exec("CREATE INDEX smoke_ix ON smoke(Time_Extent grt_opclass) USING grtree_am")?;
    admin.prepare("ins", "INSERT INTO smoke VALUES (?, ?)")?;
    admin.prepare("sel", "SELECT id FROM smoke WHERE Overlaps(Time_Extent, ?)")?;

    // Phase 2: eight concurrent connections hammer the same table
    // through their own prepared handles, then verify their own rows.
    let tallies: Vec<usize> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CONCURRENCY)
            .map(|w| {
                s.spawn(move || -> Result<usize, ClientError> {
                    let driver = RemoteDriver::connect(addr)?;
                    driver.prepare("ins", "INSERT INTO smoke VALUES (?, ?)")?;
                    for i in 0..ROWS_PER_WORKER {
                        let id = (w * ROWS_PER_WORKER + i) as i64;
                        driver.execute(
                            "ins",
                            &[
                                Value::Int(id),
                                Value::Text("05/18/1997, UC, 05/18/1997, NOW".into()),
                            ],
                        )?;
                    }
                    let got = driver.exec(&format!(
                        "SELECT id FROM smoke WHERE id >= {} AND id < {}",
                        w * ROWS_PER_WORKER,
                        (w + 1) * ROWS_PER_WORKER
                    ))?;
                    driver.deallocate("ins")?;
                    driver.goodbye()?;
                    Ok(got.rows.len())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("smoke worker panicked"))
            .collect::<Result<Vec<_>, _>>()
    })?;
    for (w, &n) in tallies.iter().enumerate() {
        if n != ROWS_PER_WORKER {
            return Err(ClientError::Protocol(format!(
                "worker {w} saw {n} of its rows, expected {ROWS_PER_WORKER}"
            )));
        }
    }

    // Phase 3: the index scan sees every row exactly once, through a
    // multi-batch fetch (total rows exceed one wire batch is not
    // guaranteed at this size, but the path is identical either way).
    let all = admin.execute(
        "sel",
        &[Value::Text("01/01/1997, UC, 01/01/1997, NOW".into())],
    )?;
    let expect = CONCURRENCY * ROWS_PER_WORKER;
    if all.rows.len() != expect {
        return Err(ClientError::Protocol(format!(
            "index scan returned {} rows, expected {expect}",
            all.rows.len()
        )));
    }

    // Phase 4: SHOW METRICS over the wire — the counters that prove
    // the server actually ran sessions and statements for us.
    let metrics = admin.metrics()?;
    let get = |key: &str| {
        metrics
            .iter()
            .find(|(k, _)| k == key)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    };
    if get("ids.sessions_opened") < (CONCURRENCY + 1) as u64 {
        return Err(ClientError::Protocol(format!(
            "ids.sessions_opened = {} after {} connections",
            get("ids.sessions_opened"),
            CONCURRENCY + 1
        )));
    }
    if get("ids.statements") == 0 {
        return Err(ClientError::Protocol(
            "ids.statements did not move".to_string(),
        ));
    }

    admin.deallocate("ins")?;
    admin.deallocate("sel")?;
    admin.exec("DROP TABLE smoke")?;
    admin.goodbye()?;
    println!(
        "client_smoke: OK ({CONCURRENCY} concurrent connections, {expect} rows round-tripped, \
         {} metric entries)",
        metrics.len()
    );
    Ok(())
}
