//! Property-based crash testing: random operation sequences with a
//! crash after a random prefix. After recovery, the store must hold
//! exactly the committed state — no lost commits, no leaked aborts —
//! and remain fully operational.

use grt_sbspace::wal::MemWal;
use grt_sbspace::{IsolationLevel, LoId, LockMode, MemBackend, Sbspace, SbspaceOptions};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

#[derive(Debug, Clone)]
enum Op {
    /// Begin a transaction writing `value` to object `obj % live`, then
    /// commit (`true`) or abort cleanly (`false`).
    Write { obj: u8, value: u64, commit: bool },
    /// Create a new object (committed).
    Create,
    /// Drop an existing object (committed).
    Drop { obj: u8 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), any::<u64>(), any::<bool>()).prop_map(|(obj, value, commit)| Op::Write {
            obj,
            value,
            commit
        }),
        Just(Op::Create),
        any::<u8>().prop_map(|obj| Op::Drop { obj }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn recovery_restores_exactly_the_committed_state(
        ops in proptest::collection::vec(arb_op(), 1..40),
        crash_after in 0usize..40,
    ) {
        let backend = Arc::new(MemBackend::new());
        let wal = Arc::new(MemWal::new());
        let opts = SbspaceOptions {
            pool_pages: 64,
            ..Default::default()
        };
        let sb = Sbspace::open_with(Arc::clone(&backend), Arc::clone(&wal), opts.clone()).unwrap();

        // The oracle of committed state: object -> value.
        let mut oracle: HashMap<u32, u64> = HashMap::new();
        let mut live: Vec<LoId> = Vec::new();
        // Bootstrap one object so writes always have a target.
        {
            let t = sb.begin(IsolationLevel::ReadCommitted);
            let lo = sb.create_lo(&t).unwrap();
            let mut h = sb.open_lo(&t, lo, LockMode::Exclusive).unwrap();
            h.write_at(0, &0u64.to_le_bytes()).unwrap();
            h.close().unwrap();
            t.commit().unwrap();
            oracle.insert(lo.0, 0);
            live.push(lo);
        }

        for (i, op) in ops.iter().enumerate() {
            if i >= crash_after {
                break;
            }
            match op {
                Op::Write { obj, value, commit } => {
                    let lo = live[*obj as usize % live.len()];
                    let t = sb.begin(IsolationLevel::ReadCommitted);
                    let mut h = sb.open_lo(&t, lo, LockMode::Exclusive).unwrap();
                    h.write_at(0, &value.to_le_bytes()).unwrap();
                    h.close().unwrap();
                    if *commit {
                        t.commit().unwrap();
                        oracle.insert(lo.0, *value);
                    } else {
                        t.abort().unwrap();
                    }
                }
                Op::Create => {
                    let t = sb.begin(IsolationLevel::ReadCommitted);
                    let lo = sb.create_lo(&t).unwrap();
                    let mut h = sb.open_lo(&t, lo, LockMode::Exclusive).unwrap();
                    h.write_at(0, &7u64.to_le_bytes()).unwrap();
                    h.close().unwrap();
                    t.commit().unwrap();
                    oracle.insert(lo.0, 7);
                    live.push(lo);
                }
                Op::Drop { obj } => {
                    if live.len() > 1 {
                        let idx = *obj as usize % live.len();
                        let lo = live.remove(idx);
                        let t = sb.begin(IsolationLevel::ReadCommitted);
                        sb.drop_lo(&t, lo).unwrap();
                        t.commit().unwrap();
                        oracle.remove(&lo.0);
                    }
                }
            }
        }

        // Optionally leave one transaction in flight (uncommitted writes
        // and allocations) at the moment of the crash.
        if crash_after % 2 == 0 {
            let t = sb.begin(IsolationLevel::ReadCommitted);
            let target = live[crash_after % live.len()];
            let mut h = sb.open_lo(&t, target, LockMode::Exclusive).unwrap();
            h.write_at(0, &u64::MAX.to_le_bytes()).unwrap();
            h.close().unwrap();
            let doomed = sb.create_lo(&t).unwrap();
            let mut h = sb.open_lo(&t, doomed, LockMode::Exclusive).unwrap();
            h.write_at(0, &[9u8; 4096 * 2]).unwrap();
            h.close().unwrap();
            std::mem::forget(t);
        }
        // CRASH: drop the space without checkpointing, reopen over the
        // same backend and log.
        drop(sb);
        let sb2 = Sbspace::open_with(Arc::clone(&backend), Arc::clone(&wal), opts).unwrap();
        let t = sb2.begin(IsolationLevel::ReadCommitted);
        for (obj, expected) in &oracle {
            let h = sb2.open_lo(&t, LoId(*obj), LockMode::Shared).unwrap();
            let mut buf = [0u8; 8];
            h.read_at(0, &mut buf).unwrap();
            prop_assert_eq!(
                u64::from_le_bytes(buf),
                *expected,
                "object {} lost its committed value",
                obj
            );
        }
        drop(t);
        // The recovered store is still fully operational.
        let t2 = sb2.begin(IsolationLevel::ReadCommitted);
        let lo = sb2.create_lo(&t2).unwrap();
        sb2.verify_lo(&t2, lo).unwrap();
        t2.commit().unwrap();
    }
}
