//! Crash recovery under truncate/regrow churn: the workload that
//! exercises the retire → reclaim → reallocate cycle hardest. Every
//! truncation retires tail pages through the epoch queue, every regrow
//! reallocates (possibly the same) pages, and checkpoints interleave
//! their pending-retire capture with both.
//!
//! Regression context: a [`LoId`] is the physical page number of the
//! object's inode, so these tests verify recovery against the ids the
//! seed actually got, never an assumed numbering.

use grt_sbspace::wal::MemWal;
use grt_sbspace::{IsolationLevel, LoId, LockMode, MemBackend, Sbspace, SbspaceOptions, PAGE_SIZE};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Deterministic xorshift64* so failures replay exactly.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

const LOS: usize = 4;
const PAGES_PER_LO: u32 = 24;

fn opts(group_commit: bool, pool_pages: usize) -> SbspaceOptions {
    SbspaceOptions {
        pool_pages,
        lock_timeout: Duration::from_secs(10),
        group_commit,
        wal_segment_bytes: 16 * 1024,
        ..Default::default()
    }
}

fn seed(sb: &Sbspace) -> Vec<LoId> {
    let mut los = Vec::new();
    for _ in 0..LOS {
        let txn = sb.begin(IsolationLevel::ReadCommitted);
        let lo = sb.create_lo(&txn).unwrap();
        let mut h = sb.open_lo(&txn, lo, LockMode::Exclusive).unwrap();
        for p in 0..PAGES_PER_LO {
            h.append_page(&[(p % 251) as u8; PAGE_SIZE]).unwrap();
        }
        h.close().unwrap();
        txn.commit().unwrap();
        los.push(lo);
    }
    los
}

/// One churn transaction: overwrite a few pages, or — every eighth
/// round — truncate the tail and regrow it, retiring pages through the
/// epoch queue and reallocating on the spot.
fn churn_round(sb: &Sbspace, los: &[LoId], rng: &mut Rng, round: u64) {
    let lo = los[rng.below(los.len() as u64) as usize];
    let txn = sb.begin(IsolationLevel::ReadCommitted);
    let mut h = sb.open_lo(&txn, lo, LockMode::Exclusive).unwrap();
    if round % 8 == 7 {
        let keep = PAGES_PER_LO - 8;
        h.truncate_pages(keep).unwrap();
        for p in keep..PAGES_PER_LO {
            h.append_page(&[(p ^ round as u32) as u8; PAGE_SIZE])
                .unwrap();
        }
    } else {
        for _ in 0..4 {
            let p = rng.below(PAGES_PER_LO as u64) as u32;
            h.write_page(p, &[(round % 251) as u8; PAGE_SIZE]).unwrap();
        }
    }
    h.close().unwrap();
    txn.commit().unwrap();
}

/// Crash (drop without shutdown) and verify every object recovered
/// whole: full page table, readable pages, intact free list.
fn crash_and_verify(
    backend: Arc<MemBackend>,
    wal: Arc<MemWal>,
    opts: SbspaceOptions,
    los: &[LoId],
) {
    let sb = Sbspace::open_with(backend, wal, opts).unwrap();
    let txn = sb.begin(IsolationLevel::ReadCommitted);
    for &id in los {
        let h = sb.open_lo(&txn, id, LockMode::Shared).unwrap();
        assert_eq!(
            h.page_count(),
            PAGES_PER_LO,
            "{id} page table after recovery"
        );
        h.read_page(0).unwrap();
        h.read_page(PAGES_PER_LO - 1).unwrap();
    }
    drop(txn);
    // Free-list walk: a double free (e.g. a stale checkpoint claim
    // replayed over a reallocated page) shows up as a corrupt chain or
    // a clobbered live page above.
    sb.space_info().unwrap();
}

#[test]
fn truncate_churn_crash_recovers_in_both_modes() {
    for gc in [false, true] {
        for pool in [32usize, 256] {
            let backend = Arc::new(MemBackend::new());
            let wal = Arc::new(MemWal::with_segment_bytes(16 * 1024));
            let sb =
                Sbspace::open_with(Arc::clone(&backend), Arc::clone(&wal), opts(gc, pool)).unwrap();
            let los = seed(&sb);
            let mut rng = Rng(0xdead_beef);
            for round in 0..64 {
                churn_round(&sb, &los, &mut rng, round);
            }
            drop(sb);
            crash_and_verify(backend, wal, opts(gc, pool), &los);
        }
    }
}

#[test]
fn truncate_churn_with_checkpoints_crash_recovers() {
    let backend = Arc::new(MemBackend::new());
    let wal = Arc::new(MemWal::with_segment_bytes(16 * 1024));
    let sb = Sbspace::open_with(Arc::clone(&backend), Arc::clone(&wal), opts(true, 32)).unwrap();
    let los = seed(&sb);
    let mut rng = Rng(0xfeed_face);
    for round in 0..200 {
        churn_round(&sb, &los, &mut rng, round);
        if round % 5 == 4 {
            sb.checkpoint().unwrap();
        }
    }
    assert!(
        sb.metrics().snapshot().get("wal.segments_recycled") > 0,
        "churn this size must have recycled segments"
    );
    drop(sb);
    crash_and_verify(backend, wal, opts(true, 32), &los);
}

/// Checkpoints racing snapshot drops racing truncate/regrow churn: the
/// capture-to-durable window of every checkpoint record must exclude
/// batch reclamation (the retire guard), or a claim for pages already
/// reallocated could land after their `AllocNote` and replay as a
/// double free. Crash at the end and verify.
#[test]
fn concurrent_checkpoints_snapshots_and_churn_then_crash() {
    let backend = Arc::new(MemBackend::new());
    let wal = Arc::new(MemWal::with_segment_bytes(16 * 1024));
    let sb = Sbspace::open_with(Arc::clone(&backend), Arc::clone(&wal), opts(true, 64)).unwrap();
    let los = seed(&sb);
    let stop = Arc::new(AtomicBool::new(false));

    let ckpt = {
        let sb = sb.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                sb.checkpoint().unwrap();
            }
        })
    };
    let snaps = {
        let sb = sb.clone();
        let stop = Arc::clone(&stop);
        let ids = los.clone();
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                // Open over the whole set, read a page, drop — each drop
                // runs batch reclamation against in-flight checkpoints.
                let snap = sb.snapshot_for(&ids).unwrap();
                let _ = snap.reader(ids[0]).and_then(|r| r.read_page(0));
            }
        })
    };
    let mut rng = Rng(0x0bad_cafe);
    for round in 0..400 {
        churn_round(&sb, &los, &mut rng, round);
    }
    stop.store(true, Ordering::Relaxed);
    ckpt.join().unwrap();
    snaps.join().unwrap();
    drop(sb);
    crash_and_verify(backend, wal, opts(true, 64), &los);
}
