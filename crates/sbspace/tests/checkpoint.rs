//! Fuzzy-checkpoint tests: WAL boundedness under churn, segment
//! recycling around the transaction low-water mark, crash-recovery
//! equivalence with and without checkpoints, and sweeping of retired
//! page batches stranded behind snapshots.
//!
//! As in `recovery.rs`, a "crash" abandons an `Sbspace` and reopens a
//! new one over the same backend and log; segment sizes are kept tiny
//! so a handful of commits rolls the log many times.

use grt_sbspace::wal::{MemWal, WalStore};
use grt_sbspace::{
    IsolationLevel, LockMode, MemBackend, Result, SbError, Sbspace, SbspaceOptions, PAGE_SIZE,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const SEG_BYTES: usize = 8 * 1024;

thread_local! {
    /// Prefetch workers for the spaces `opts` builds — swept by
    /// `both_modes` so every checkpoint scenario also runs with an
    /// active prefetcher.
    static PREFETCH_WORKERS: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

fn opts(group_commit: bool) -> SbspaceOptions {
    SbspaceOptions {
        pool_pages: 64,
        lock_timeout: Duration::from_millis(200),
        group_commit,
        prefetch_workers: PREFETCH_WORKERS.with(|c| c.get()),
        ..Default::default()
    }
}

fn shared() -> (Arc<MemBackend>, Arc<MemWal>) {
    (
        Arc::new(MemBackend::new()),
        Arc::new(MemWal::with_segment_bytes(SEG_BYTES)),
    )
}

fn reopen(backend: &Arc<MemBackend>, wal: &Arc<MemWal>, group_commit: bool) -> Sbspace {
    Sbspace::open_with(Arc::clone(backend), Arc::clone(wal), opts(group_commit)).expect("reopen")
}

/// Runs `body` across group commit off/on × prefetch workers 0/2.
fn both_modes(body: impl Fn(bool)) {
    for prefetch_workers in [0usize, 2] {
        PREFETCH_WORKERS.with(|c| c.set(prefetch_workers));
        for group_commit in [false, true] {
            body(group_commit);
        }
    }
    PREFETCH_WORKERS.with(|c| c.set(0));
}

/// One churn transaction: overwrite `pages` pages of `lo` with `fill`.
fn churn(sb: &Sbspace, lo: grt_sbspace::LoId, pages: u32, fill: u8) {
    let txn = sb.begin(IsolationLevel::ReadCommitted);
    let mut h = sb.open_lo(&txn, lo, LockMode::Exclusive).unwrap();
    for p in 0..pages {
        h.write_page(p, &[fill; PAGE_SIZE]).unwrap();
    }
    h.close().unwrap();
    txn.commit().unwrap();
}

/// Seeds an object with `pages` pages and returns its id.
fn seed(sb: &Sbspace, pages: u32) -> grt_sbspace::LoId {
    let txn = sb.begin(IsolationLevel::ReadCommitted);
    let lo = sb.create_lo(&txn).unwrap();
    let mut h = sb.open_lo(&txn, lo, LockMode::Exclusive).unwrap();
    for _ in 0..pages {
        h.append_page(&[0u8; PAGE_SIZE]).unwrap();
    }
    h.close().unwrap();
    txn.commit().unwrap();
    lo
}

#[test]
fn churn_with_checkpoints_bounds_the_wal() {
    both_modes(|gc| {
        let (backend, wal) = shared();
        let sb = reopen(&backend, &wal, gc);
        let lo = seed(&sb, 4);
        for round in 0..40u32 {
            churn(&sb, lo, 4, (round % 251) as u8);
            if round % 5 == 4 {
                sb.checkpoint().unwrap();
            }
        }
        // Forty rounds of four page images each rolled the log dozens
        // of times, but recycling kept the live tail to a handful of
        // segments and a bounded byte count.
        let segs = sb.wal_segment_count().unwrap();
        assert!(
            segs <= 8,
            "live segments unbounded: {segs} (group_commit={gc})"
        );
        let live = sb.wal_live_bytes().unwrap();
        assert!(
            live <= (8 * SEG_BYTES) as u64,
            "live bytes unbounded: {live} (group_commit={gc})"
        );
        let snap = sb.metrics().snapshot();
        assert!(
            snap.get("wal.segments_recycled") > 10,
            "checkpoints recycled almost nothing (group_commit={gc})"
        );
        assert_eq!(snap.get("sbspace.checkpoints"), 8);
        assert_eq!(snap.gauge("wal.live_bytes"), live);

        // The bounded tail still recovers the last committed contents.
        drop(sb);
        let sb2 = reopen(&backend, &wal, gc);
        let t = sb2.begin(IsolationLevel::ReadCommitted);
        let h = sb2.open_lo(&t, lo, LockMode::Shared).unwrap();
        let page = h.read_page(0).unwrap();
        assert_eq!(page[0], 39, "group_commit={gc}");
    });
}

#[test]
fn active_transaction_anchors_the_low_water_mark() {
    both_modes(|gc| {
        let (backend, wal) = shared();
        let sb = reopen(&backend, &wal, gc);
        let lo = seed(&sb, 2);
        let other = seed(&sb, 2);

        // `held` starts now: every segment from here on must survive
        // until it finishes, no matter how much churn follows.
        let held = sb.begin(IsolationLevel::ReadCommitted);
        let mut hh = sb.open_lo(&held, lo, LockMode::Exclusive).unwrap();
        hh.write_page(0, &[0xAA; PAGE_SIZE]).unwrap();
        hh.close().unwrap();

        for round in 0..20u32 {
            churn(&sb, other, 2, round as u8);
        }
        sb.checkpoint().unwrap();
        let anchored = sb.wal_segment_count().unwrap();
        assert!(
            anchored > 1,
            "churned segments should be pinned by the live txn (group_commit={gc})"
        );

        held.commit().unwrap();
        sb.checkpoint().unwrap();
        let released = sb.wal_segment_count().unwrap();
        assert!(
            released < anchored,
            "lwm did not advance after the anchor committed: \
             {anchored} -> {released} (group_commit={gc})"
        );

        // The anchored transaction's write is durable across a crash.
        drop(sb);
        let sb2 = reopen(&backend, &wal, gc);
        let t = sb2.begin(IsolationLevel::ReadCommitted);
        let h = sb2.open_lo(&t, lo, LockMode::Shared).unwrap();
        assert_eq!(h.read_page(0).unwrap()[0], 0xAA, "group_commit={gc}");
    });
}

#[test]
fn crash_right_after_checkpoint_recovers_identically() {
    both_modes(|gc| {
        let (backend, wal) = shared();
        let sb = reopen(&backend, &wal, gc);
        let lo = seed(&sb, 3);
        churn(&sb, lo, 3, 0x11);
        sb.checkpoint().unwrap();
        // More work lands after the checkpoint; recovery must replay
        // exactly this tail on top of the checkpointed pages.
        churn(&sb, lo, 2, 0x22);
        drop(sb); // crash

        let sb2 = reopen(&backend, &wal, gc);
        let t = sb2.begin(IsolationLevel::ReadCommitted);
        let h = sb2.open_lo(&t, lo, LockMode::Shared).unwrap();
        assert_eq!(h.read_page(0).unwrap()[0], 0x22, "group_commit={gc}");
        assert_eq!(h.read_page(2).unwrap()[0], 0x11, "group_commit={gc}");
    });
}

#[test]
fn repeated_checkpoint_crash_cycles_are_idempotent() {
    both_modes(|gc| {
        let (backend, wal) = shared();
        let mut sb = reopen(&backend, &wal, gc);
        let lo = seed(&sb, 2);
        for round in 0..6u32 {
            churn(&sb, lo, 2, round as u8);
            sb.checkpoint().unwrap();
            if round % 2 == 1 {
                sb.checkpoint().unwrap(); // back-to-back checkpoints
            }
            drop(sb); // crash after every round
            sb = reopen(&backend, &wal, gc);
        }
        let t = sb.begin(IsolationLevel::ReadCommitted);
        let h = sb.open_lo(&t, lo, LockMode::Shared).unwrap();
        assert_eq!(h.read_page(0).unwrap()[0], 5, "group_commit={gc}");
        // Idempotent replay never corrupted the free list.
        sb.space_info().unwrap();
    });
}

/// A WAL whose appends can be made to fail on demand — the "before the
/// checkpoint record is durable" crash window.
struct FlakyWal {
    inner: MemWal,
    fail_appends: AtomicBool,
}

impl WalStore for FlakyWal {
    fn append(&self, bytes: &[u8]) -> Result<()> {
        if self.fail_appends.load(Ordering::SeqCst) {
            return Err(SbError::Io("injected append failure".into()));
        }
        self.inner.append(bytes)
    }
    fn sync(&self) -> Result<()> {
        self.inner.sync()
    }
    fn truncate(&self) -> Result<()> {
        self.inner.truncate()
    }
    fn read_segment(&self, seg: u64) -> Result<Vec<u8>> {
        self.inner.read_segment(seg)
    }
    fn segments(&self) -> Result<Vec<u64>> {
        self.inner.segments()
    }
    fn active_segment(&self) -> u64 {
        self.inner.active_segment()
    }
    fn roll(&self) -> Result<u64> {
        self.inner.roll()
    }
    fn recycle_below(&self, seg: u64) -> Result<usize> {
        self.inner.recycle_below(seg)
    }
    fn live_bytes(&self) -> Result<u64> {
        self.inner.live_bytes()
    }
    fn appended_total(&self) -> u64 {
        self.inner.appended_total()
    }
}

#[test]
fn failed_checkpoint_record_leaves_previous_checkpoint_authoritative() {
    // Per-commit forcing only: under group commit an injected append
    // failure deliberately poisons the group committer for every later
    // writer, which is its own (already tested) contract.
    let backend = Arc::new(MemBackend::new());
    let wal = Arc::new(FlakyWal {
        inner: MemWal::with_segment_bytes(SEG_BYTES),
        fail_appends: AtomicBool::new(false),
    });
    let sb = Sbspace::open_with(Arc::clone(&backend), Arc::clone(&wal), opts(false)).unwrap();
    let lo = seed(&sb, 3);
    for round in 0..10u32 {
        churn(&sb, lo, 3, round as u8);
    }
    let segs_before = sb.wal_segment_count().unwrap();

    wal.fail_appends.store(true, Ordering::SeqCst);
    let err = sb.checkpoint();
    assert!(matches!(err, Err(SbError::Io(_))), "got {err:?}");
    let snap = sb.metrics().snapshot();
    assert_eq!(snap.get("sbspace.checkpoint_failures"), 1);
    assert_eq!(
        snap.get("wal.segments_recycled"),
        0,
        "a failed checkpoint must never recycle"
    );
    assert_eq!(sb.wal_segment_count().unwrap(), segs_before);

    // Crash with the failed checkpoint in place: the full log is still
    // there, so recovery reproduces every committed write.
    drop(sb);
    let sb2 = Sbspace::open_with(Arc::clone(&backend), Arc::clone(&wal), opts(false)).unwrap();
    let t = sb2.begin(IsolationLevel::ReadCommitted);
    let h = sb2.open_lo(&t, lo, LockMode::Shared).unwrap();
    assert_eq!(h.read_page(0).unwrap()[0], 9);
    drop(t);

    // Healed, the next checkpoint succeeds and recycling resumes.
    wal.fail_appends.store(false, Ordering::SeqCst);
    sb2.checkpoint().unwrap();
    assert!(sb2.wal_segment_count().unwrap() < segs_before);
}

#[test]
fn snapshot_stranded_retired_batches_recover_as_free_pages() {
    both_modes(|gc| {
        let (backend, wal) = shared();
        let sb = reopen(&backend, &wal, gc);
        let lo = seed(&sb, 4);

        // A snapshot pins the current epoch, then churn retires the
        // object's pages out from under it.
        let snap = sb.snapshot_for(&[lo]).unwrap();
        churn(&sb, lo, 4, 0x33);
        assert!(sb.retired_batches() > 0, "group_commit={gc}");

        // A checkpoint while the snapshot is open must keep the batch
        // (the snapshot still reads those pages) but carries the claim
        // into its record so recycling older segments loses nothing.
        sb.checkpoint().unwrap();
        assert!(sb.retired_batches() > 0, "group_commit={gc}");
        let r = snap.reader(lo).unwrap();
        assert_eq!(r.read_page(0).unwrap()[0], 0, "snapshot unperturbed");

        // Crash with the snapshot still open: nobody ever reclaimed the
        // batch in this lifetime, yet recovery frees the pages.
        let info_before = sb.space_info().unwrap();
        std::mem::forget(snap); // keep it "open" across the crash
        drop(sb);
        let sb2 = reopen(&backend, &wal, gc);
        let info_after = sb2.space_info().unwrap();
        assert!(
            info_after.free_pages >= info_before.free_pages + 4,
            "retired pages not freed by recovery: {info_before:?} -> {info_after:?} \
             (group_commit={gc})"
        );
        // And the committed churn contents survived.
        let t = sb2.begin(IsolationLevel::ReadCommitted);
        let h = sb2.open_lo(&t, lo, LockMode::Shared).unwrap();
        assert_eq!(h.read_page(3).unwrap()[0], 0x33, "group_commit={gc}");
    });
}

#[test]
fn checkpoint_sweeps_batches_once_snapshots_drain() {
    both_modes(|gc| {
        let (backend, wal) = shared();
        let sb = reopen(&backend, &wal, gc);
        let lo = seed(&sb, 4);
        let snap = sb.snapshot_for(&[lo]).unwrap();
        churn(&sb, lo, 4, 0x44);
        assert!(sb.retired_batches() > 0, "group_commit={gc}");
        // Dropping the snapshot normally reclaims inline; simulate the
        // "drop-side free never ran" path by forgetting it and closing
        // its registration through another snapshot of a later epoch.
        drop(snap);
        sb.checkpoint().unwrap();
        assert_eq!(
            sb.retired_batches(),
            0,
            "drained batch not swept (group_commit={gc})"
        );
    });
}

#[test]
fn background_checkpointer_runs_and_shuts_down() {
    both_modes(|gc| {
        let (backend, wal) = shared();
        let sb = Sbspace::open_with(
            Arc::clone(&backend),
            Arc::clone(&wal),
            SbspaceOptions {
                checkpoint_interval: Some(Duration::from_millis(10)),
                ..opts(gc)
            },
        )
        .unwrap();
        let lo = seed(&sb, 3);
        for round in 0..10u32 {
            churn(&sb, lo, 3, round as u8);
            std::thread::sleep(Duration::from_millis(5));
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let snap = sb.metrics().snapshot();
            if snap.get("sbspace.checkpoints") > 0 && snap.get("wal.segments_recycled") > 0 {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "background checkpointer never ran (group_commit={gc})"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        // Drop joins the checkpointer; recovery then sees a recycled log.
        drop(sb);
        let sb2 = reopen(&backend, &wal, gc);
        let t = sb2.begin(IsolationLevel::ReadCommitted);
        let h = sb2.open_lo(&t, lo, LockMode::Shared).unwrap();
        assert_eq!(h.read_page(0).unwrap()[0], 9, "group_commit={gc}");
    });
}
