//! Multi-threaded storage stress: concurrent sessions over shared large
//! objects with random commits and aborts — committed data must never
//! be lost, aborted data must never surface, and the lock manager must
//! resolve every conflict by waiting, timeout, or deadlock victim.

use grt_sbspace::{IsolationLevel, LockMode, SbError, Sbspace, SbspaceOptions};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Duration;

#[test]
fn concurrent_writers_keep_committed_state() {
    let sb = Sbspace::mem(SbspaceOptions {
        pool_pages: 512,
        lock_timeout: Duration::from_secs(10),
        ..Default::default()
    });
    // Eight shared objects, each holding a single u64 counter value and
    // a writer tag.
    let setup = sb.begin(IsolationLevel::ReadCommitted);
    let los: Vec<_> = (0..8)
        .map(|_| {
            let lo = sb.create_lo(&setup).unwrap();
            let mut h = sb.open_lo(&setup, lo, LockMode::Exclusive).unwrap();
            h.write_at(0, &0u64.to_le_bytes()).unwrap();
            h.close().unwrap();
            lo
        })
        .collect();
    setup.commit().unwrap();

    // The oracle: the last committed value per object.
    let oracle: Mutex<HashMap<u32, u64>> = Mutex::new(los.iter().map(|l| (l.0, 0)).collect());

    std::thread::scope(|s| {
        for t in 0..6u64 {
            let sb = sb.clone();
            let los = &los;
            let oracle = &oracle;
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xbeef + t);
                for i in 0..60u64 {
                    let lo = los[rng.gen_range(0..los.len())];
                    let txn = sb.begin(IsolationLevel::ReadCommitted);
                    let value = t * 10_000 + i;
                    let result = (|| -> Result<(), SbError> {
                        let mut h = sb.open_lo(&txn, lo, LockMode::Exclusive)?;
                        h.write_at(0, &value.to_le_bytes())?;
                        h.close()?;
                        Ok(())
                    })();
                    match result {
                        Ok(()) if rng.gen_bool(0.7) => {
                            // Record intent, then commit. The oracle
                            // lock spans the commit so the recorded
                            // value matches the commit order.
                            let mut o = oracle.lock().unwrap();
                            txn.commit().unwrap();
                            o.insert(lo.0, value);
                        }
                        Ok(()) => {
                            txn.abort().unwrap();
                        }
                        Err(SbError::LockTimeout(_)) | Err(SbError::Deadlock(_)) => {
                            let _ = txn.abort();
                        }
                        Err(other) => panic!("unexpected storage error: {other}"),
                    }
                }
            });
        }
    });

    // Every object holds its last committed value.
    let check = sb.begin(IsolationLevel::ReadCommitted);
    let o = oracle.lock().unwrap();
    for lo in &los {
        let h = sb.open_lo(&check, *lo, LockMode::Shared).unwrap();
        let mut buf = [0u8; 8];
        h.read_at(0, &mut buf).unwrap();
        assert_eq!(
            u64::from_le_bytes(buf),
            o[&lo.0],
            "object {lo} diverged from the committed oracle"
        );
    }
}

#[test]
fn readers_never_see_uncommitted_writes() {
    let sb = Sbspace::mem(SbspaceOptions {
        pool_pages: 256,
        lock_timeout: Duration::from_millis(50),
        ..Default::default()
    });
    let setup = sb.begin(IsolationLevel::ReadCommitted);
    let lo = sb.create_lo(&setup).unwrap();
    let mut h = sb.open_lo(&setup, lo, LockMode::Exclusive).unwrap();
    h.write_at(0, b"COMMITTED!").unwrap();
    h.close().unwrap();
    setup.commit().unwrap();

    std::thread::scope(|s| {
        // A writer repeatedly writes garbage and aborts.
        let sbw = sb.clone();
        s.spawn(move || {
            for _ in 0..40 {
                let txn = sbw.begin(IsolationLevel::ReadCommitted);
                if let Ok(mut h) = sbw.open_lo(&txn, lo, LockMode::Exclusive) {
                    h.write_at(0, b"UNCOMMITTED").ok();
                    h.close().ok();
                }
                txn.abort().ok();
            }
        });
        // Readers either block out (timeout) or see only the committed
        // image — never the aborted bytes.
        for _ in 0..3 {
            let sbr = sb.clone();
            s.spawn(move || {
                for _ in 0..40 {
                    let txn = sbr.begin(IsolationLevel::ReadCommitted);
                    match sbr.open_lo(&txn, lo, LockMode::Shared) {
                        Ok(h) => {
                            let mut buf = [0u8; 10];
                            h.read_at(0, &mut buf).unwrap();
                            assert_eq!(&buf, b"COMMITTED!", "dirty read!");
                        }
                        Err(SbError::LockTimeout(_)) | Err(SbError::Deadlock(_)) => {}
                        Err(other) => panic!("{other}"),
                    }
                    txn.commit().ok();
                }
            });
        }
    });
}
