//! Crash-recovery tests: a "crash" abandons an `Sbspace` without
//! committing and reopens a new one over the same backend and log.

use grt_sbspace::wal::MemWal;
use grt_sbspace::{
    FaultInjector, IsolationLevel, LockMode, MemBackend, SbError, Sbspace, SbspaceOptions,
    PAGE_SIZE,
};
use std::sync::Arc;
use std::time::Duration;

fn opts() -> SbspaceOptions {
    SbspaceOptions {
        pool_pages: 64,
        lock_timeout: Duration::from_millis(200),
    }
}

fn shared() -> (Arc<MemBackend>, Arc<MemWal>) {
    (Arc::new(MemBackend::new()), Arc::new(MemWal::new()))
}

fn reopen(backend: &Arc<MemBackend>, wal: &Arc<MemWal>) -> Sbspace {
    Sbspace::open_with(Arc::clone(backend), Arc::clone(wal), opts()).expect("reopen")
}

#[test]
fn committed_data_survives_crash() {
    let (backend, wal) = shared();
    let sb = reopen(&backend, &wal);
    let txn = sb.begin(IsolationLevel::ReadCommitted);
    let lo = sb.create_lo(&txn).unwrap();
    let mut h = sb.open_lo(&txn, lo, LockMode::Exclusive).unwrap();
    h.write_at(0, b"durable bytes").unwrap();
    h.close().unwrap();
    txn.commit().unwrap();
    drop(sb); // crash (no checkpoint)

    let sb2 = reopen(&backend, &wal);
    let t = sb2.begin(IsolationLevel::ReadCommitted);
    let h = sb2.open_lo(&t, lo, LockMode::Shared).unwrap();
    let mut buf = [0u8; 13];
    h.read_at(0, &mut buf).unwrap();
    assert_eq!(&buf, b"durable bytes");
}

#[test]
fn uncommitted_data_vanishes_after_crash() {
    let (backend, wal) = shared();
    let sb = reopen(&backend, &wal);
    // One committed object as a baseline.
    let t0 = sb.begin(IsolationLevel::ReadCommitted);
    let base = sb.create_lo(&t0).unwrap();
    let mut h = sb.open_lo(&t0, base, LockMode::Exclusive).unwrap();
    h.write_at(0, b"base").unwrap();
    h.close().unwrap();
    t0.commit().unwrap();

    // A transaction that crashes mid-flight.
    let t1 = sb.begin(IsolationLevel::ReadCommitted);
    let doomed = sb.create_lo(&t1).unwrap();
    let mut h = sb.open_lo(&t1, doomed, LockMode::Exclusive).unwrap();
    h.write_at(0, &vec![7u8; 5 * PAGE_SIZE]).unwrap();
    h.close().unwrap();
    std::mem::forget(t1); // crash without abort
    drop(sb);

    let sb2 = reopen(&backend, &wal);
    let t = sb2.begin(IsolationLevel::ReadCommitted);
    // The committed object is intact.
    let hb = sb2.open_lo(&t, base, LockMode::Shared).unwrap();
    let mut buf = [0u8; 4];
    hb.read_at(0, &mut buf).unwrap();
    assert_eq!(&buf, b"base");
    // The uncommitted object never came to exist.
    assert!(sb2.open_lo(&t, doomed, LockMode::Shared).is_err());
}

#[test]
fn crashed_allocations_are_reclaimed() {
    let (backend, wal) = shared();
    let sb = reopen(&backend, &wal);
    let t1 = sb.begin(IsolationLevel::ReadCommitted);
    let doomed = sb.create_lo(&t1).unwrap();
    let mut h = sb.open_lo(&t1, doomed, LockMode::Exclusive).unwrap();
    for _ in 0..10 {
        h.append_page(&[1u8; PAGE_SIZE]).unwrap();
    }
    h.close().unwrap();
    std::mem::forget(t1);
    drop(sb);

    // Recovery frees the leaked pages; a new object reuses them instead
    // of extending the space.
    let sb2 = reopen(&backend, &wal);
    let recovered = sb2.space_info().unwrap();
    assert!(
        recovered.free_pages >= 11,
        "leaked pages not back on the free list: {recovered:?}"
    );
    let t2 = sb2.begin(IsolationLevel::ReadCommitted);
    let lo = sb2.create_lo(&t2).unwrap();
    let mut h = sb2.open_lo(&t2, lo, LockMode::Exclusive).unwrap();
    for _ in 0..10 {
        h.append_page(&[2u8; PAGE_SIZE]).unwrap();
    }
    h.close().unwrap();
    t2.commit().unwrap();
    let after = sb2.space_info().unwrap();
    assert_eq!(
        after.total_pages, recovered.total_pages,
        "allocation watermark grew instead of reusing freed pages"
    );
}

#[test]
fn repeated_crashes_are_idempotent() {
    let (backend, wal) = shared();
    for round in 0..5 {
        let sb = reopen(&backend, &wal);
        let t = sb.begin(IsolationLevel::ReadCommitted);
        let lo = sb.create_lo(&t).unwrap();
        let mut h = sb.open_lo(&t, lo, LockMode::Exclusive).unwrap();
        h.write_at(0, format!("round {round}").as_bytes()).unwrap();
        h.close().unwrap();
        if round % 2 == 0 {
            t.commit().unwrap();
        } else {
            std::mem::forget(t);
        }
        drop(sb); // crash every round
    }
    // The space still opens and works.
    let sb = reopen(&backend, &wal);
    let t = sb.begin(IsolationLevel::ReadCommitted);
    let lo = sb.create_lo(&t).unwrap();
    sb.verify_lo(&t, lo).unwrap();
    t.commit().unwrap();
}

#[test]
fn torn_log_tail_is_survivable() {
    let (backend, wal) = shared();
    let sb = reopen(&backend, &wal);
    let t = sb.begin(IsolationLevel::ReadCommitted);
    let lo = sb.create_lo(&t).unwrap();
    let mut h = sb.open_lo(&t, lo, LockMode::Exclusive).unwrap();
    h.write_at(0, b"ok").unwrap();
    h.close().unwrap();
    t.commit().unwrap();
    drop(sb);
    // Corrupt the log by appending garbage (a torn record).
    use grt_sbspace::wal::WalStore;
    wal.append(&[0xde, 0xad, 0xbe]).unwrap();
    let sb2 = reopen(&backend, &wal);
    let t2 = sb2.begin(IsolationLevel::ReadCommitted);
    let h2 = sb2.open_lo(&t2, lo, LockMode::Shared).unwrap();
    let mut buf = [0u8; 2];
    h2.read_at(0, &mut buf).unwrap();
    assert_eq!(&buf, b"ok");
}

#[test]
fn io_fault_surfaces_as_error_not_corruption() {
    let backend = Arc::new(FaultInjector::new(MemBackend::new()));
    let wal = Arc::new(MemWal::new());
    let sb = Sbspace::open_with(Arc::clone(&backend), Arc::clone(&wal), opts()).unwrap();
    let t = sb.begin(IsolationLevel::ReadCommitted);
    let lo = sb.create_lo(&t).unwrap();
    let mut h = sb.open_lo(&t, lo, LockMode::Exclusive).unwrap();
    h.write_at(0, b"before fault").unwrap();
    backend.fail_after(0);
    // Reads now fail loudly...
    let mut sink = [0u8; 4096 * 4];
    let got: Result<usize, SbError> = h.read_at(1 << 20, &mut sink);
    let _ = got; // reads within cache may still succeed; force a miss below
    let err = sb.open_lo(&t, lo, LockMode::Exclusive).err();
    backend.heal();
    // ...and after healing everything still works.
    let mut buf = [0u8; 12];
    h.read_at(0, &mut buf).unwrap();
    assert_eq!(&buf, b"before fault");
    drop(err);
}

#[test]
fn file_backed_space_recovers_across_process_style_reopen() {
    let dir = std::env::temp_dir().join(format!("sbspace-recovery-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let lo;
    {
        let sb = Sbspace::file(&dir, opts()).unwrap();
        let t = sb.begin(IsolationLevel::ReadCommitted);
        lo = sb.create_lo(&t).unwrap();
        let mut h = sb.open_lo(&t, lo, LockMode::Exclusive).unwrap();
        h.write_at(0, b"on disk").unwrap();
        h.close().unwrap();
        t.commit().unwrap();
        // No checkpoint: the log still holds the images.
    }
    {
        let sb = Sbspace::file(&dir, opts()).unwrap();
        let t = sb.begin(IsolationLevel::ReadCommitted);
        let h = sb.open_lo(&t, lo, LockMode::Shared).unwrap();
        let mut buf = [0u8; 7];
        h.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"on disk");
    }
    std::fs::remove_dir_all(&dir).ok();
}
