//! Crash-recovery tests: a "crash" abandons an `Sbspace` without
//! committing and reopens a new one over the same backend and log.
//!
//! Every scenario runs twice — with per-commit WAL forcing and with
//! group commit (shared syncs, no-force data pages) — since the two
//! modes take different paths to the same durability contract.

use grt_sbspace::wal::{MemWal, WalStore};
use grt_sbspace::{
    FaultInjector, IsolationLevel, LockMode, MemBackend, Result, SbError, Sbspace, SbspaceOptions,
    PAGE_SIZE,
};
use std::sync::Arc;
use std::time::Duration;

thread_local! {
    /// Prefetch workers for the spaces `opts` builds — swept by
    /// `both_modes` so every scenario also runs with an active
    /// prefetcher (whose in-flight installs must not confuse replay).
    static PREFETCH_WORKERS: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

fn opts(group_commit: bool) -> SbspaceOptions {
    SbspaceOptions {
        pool_pages: 64,
        lock_timeout: Duration::from_millis(200),
        group_commit,
        prefetch_workers: PREFETCH_WORKERS.with(|c| c.get()),
        ..Default::default()
    }
}

fn shared() -> (Arc<MemBackend>, Arc<MemWal>) {
    (Arc::new(MemBackend::new()), Arc::new(MemWal::new()))
}

fn reopen(backend: &Arc<MemBackend>, wal: &Arc<MemWal>, group_commit: bool) -> Sbspace {
    Sbspace::open_with(Arc::clone(backend), Arc::clone(wal), opts(group_commit)).expect("reopen")
}

/// Runs `body` across the commit-mode × prefetch matrix — group commit
/// off/on, prefetch workers 0/2 — each over a fresh backend and log.
/// The two modes take different paths to the same durability contract,
/// and the prefetcher must be invisible to all of them.
fn both_modes(body: impl Fn(bool)) {
    for prefetch_workers in [0usize, 2] {
        PREFETCH_WORKERS.with(|c| c.set(prefetch_workers));
        for group_commit in [false, true] {
            body(group_commit);
        }
    }
    PREFETCH_WORKERS.with(|c| c.set(0));
}

#[test]
fn committed_data_survives_crash() {
    both_modes(|gc| {
        let (backend, wal) = shared();
        let sb = reopen(&backend, &wal, gc);
        let txn = sb.begin(IsolationLevel::ReadCommitted);
        let lo = sb.create_lo(&txn).unwrap();
        let mut h = sb.open_lo(&txn, lo, LockMode::Exclusive).unwrap();
        h.write_at(0, b"durable bytes").unwrap();
        h.close().unwrap();
        txn.commit().unwrap();
        drop(sb); // crash (no checkpoint)

        let sb2 = reopen(&backend, &wal, gc);
        let t = sb2.begin(IsolationLevel::ReadCommitted);
        let h = sb2.open_lo(&t, lo, LockMode::Shared).unwrap();
        let mut buf = [0u8; 13];
        h.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"durable bytes", "group_commit={gc}");
    });
}

#[test]
fn uncommitted_data_vanishes_after_crash() {
    both_modes(|gc| {
        let (backend, wal) = shared();
        let sb = reopen(&backend, &wal, gc);
        // One committed object as a baseline.
        let t0 = sb.begin(IsolationLevel::ReadCommitted);
        let base = sb.create_lo(&t0).unwrap();
        let mut h = sb.open_lo(&t0, base, LockMode::Exclusive).unwrap();
        h.write_at(0, b"base").unwrap();
        h.close().unwrap();
        t0.commit().unwrap();

        // A transaction that crashes mid-flight.
        let t1 = sb.begin(IsolationLevel::ReadCommitted);
        let doomed = sb.create_lo(&t1).unwrap();
        let mut h = sb.open_lo(&t1, doomed, LockMode::Exclusive).unwrap();
        h.write_at(0, &vec![7u8; 5 * PAGE_SIZE]).unwrap();
        h.close().unwrap();
        std::mem::forget(t1); // crash without abort
        drop(sb);

        let sb2 = reopen(&backend, &wal, gc);
        let t = sb2.begin(IsolationLevel::ReadCommitted);
        // The committed object is intact.
        let hb = sb2.open_lo(&t, base, LockMode::Shared).unwrap();
        let mut buf = [0u8; 4];
        hb.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"base", "group_commit={gc}");
        // The uncommitted object never came to exist.
        assert!(sb2.open_lo(&t, doomed, LockMode::Shared).is_err());
    });
}

#[test]
fn crashed_allocations_are_reclaimed() {
    both_modes(|gc| {
        let (backend, wal) = shared();
        let sb = reopen(&backend, &wal, gc);
        let t1 = sb.begin(IsolationLevel::ReadCommitted);
        let doomed = sb.create_lo(&t1).unwrap();
        let mut h = sb.open_lo(&t1, doomed, LockMode::Exclusive).unwrap();
        for _ in 0..10 {
            h.append_page(&[1u8; PAGE_SIZE]).unwrap();
        }
        h.close().unwrap();
        std::mem::forget(t1);
        drop(sb);

        // Recovery frees the leaked pages; a new object reuses them
        // instead of extending the space.
        let sb2 = reopen(&backend, &wal, gc);
        let recovered = sb2.space_info().unwrap();
        assert!(
            recovered.free_pages >= 11,
            "leaked pages not back on the free list: {recovered:?} (group_commit={gc})"
        );
        let t2 = sb2.begin(IsolationLevel::ReadCommitted);
        let lo = sb2.create_lo(&t2).unwrap();
        let mut h = sb2.open_lo(&t2, lo, LockMode::Exclusive).unwrap();
        for _ in 0..10 {
            h.append_page(&[2u8; PAGE_SIZE]).unwrap();
        }
        h.close().unwrap();
        t2.commit().unwrap();
        let after = sb2.space_info().unwrap();
        assert_eq!(
            after.total_pages, recovered.total_pages,
            "allocation watermark grew instead of reusing freed pages (group_commit={gc})"
        );
    });
}

#[test]
fn repeated_crashes_are_idempotent() {
    both_modes(|gc| {
        let (backend, wal) = shared();
        for round in 0..5 {
            let sb = reopen(&backend, &wal, gc);
            let t = sb.begin(IsolationLevel::ReadCommitted);
            let lo = sb.create_lo(&t).unwrap();
            let mut h = sb.open_lo(&t, lo, LockMode::Exclusive).unwrap();
            h.write_at(0, format!("round {round}").as_bytes()).unwrap();
            h.close().unwrap();
            if round % 2 == 0 {
                t.commit().unwrap();
            } else {
                std::mem::forget(t);
            }
            drop(sb); // crash every round
        }
        // The space still opens and works.
        let sb = reopen(&backend, &wal, gc);
        let t = sb.begin(IsolationLevel::ReadCommitted);
        let lo = sb.create_lo(&t).unwrap();
        sb.verify_lo(&t, lo).unwrap();
        t.commit().unwrap();
    });
}

#[test]
fn torn_log_tail_is_survivable() {
    both_modes(|gc| {
        let (backend, wal) = shared();
        let sb = reopen(&backend, &wal, gc);
        let t = sb.begin(IsolationLevel::ReadCommitted);
        let lo = sb.create_lo(&t).unwrap();
        let mut h = sb.open_lo(&t, lo, LockMode::Exclusive).unwrap();
        h.write_at(0, b"ok").unwrap();
        h.close().unwrap();
        t.commit().unwrap();
        drop(sb);
        // Corrupt the log by appending garbage (a torn record).
        wal.append(&[0xde, 0xad, 0xbe]).unwrap();
        let sb2 = reopen(&backend, &wal, gc);
        let t2 = sb2.begin(IsolationLevel::ReadCommitted);
        let h2 = sb2.open_lo(&t2, lo, LockMode::Shared).unwrap();
        let mut buf = [0u8; 2];
        h2.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"ok", "group_commit={gc}");
    });
}

#[test]
fn io_fault_surfaces_as_error_not_corruption() {
    both_modes(|gc| {
        let backend = Arc::new(FaultInjector::new(MemBackend::new()));
        let wal = Arc::new(MemWal::new());
        let sb = Sbspace::open_with(Arc::clone(&backend), Arc::clone(&wal), opts(gc)).unwrap();
        let t = sb.begin(IsolationLevel::ReadCommitted);
        let lo = sb.create_lo(&t).unwrap();
        let mut h = sb.open_lo(&t, lo, LockMode::Exclusive).unwrap();
        h.write_at(0, b"before fault").unwrap();
        backend.fail_after(0);
        // Reads now fail loudly...
        let mut sink = [0u8; 4096 * 4];
        let got: Result<usize> = h.read_at(1 << 20, &mut sink);
        let _ = got; // reads within cache may still succeed; force a miss below
        let err = sb.open_lo(&t, lo, LockMode::Exclusive).err();
        backend.heal();
        // ...and after healing everything still works.
        let mut buf = [0u8; 12];
        h.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"before fault", "group_commit={gc}");
        drop(err);
    });
}

#[test]
fn file_backed_space_recovers_across_process_style_reopen() {
    for gc in [false, true] {
        let dir =
            std::env::temp_dir().join(format!("sbspace-recovery-{}-gc{gc}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let lo;
        {
            let sb = Sbspace::file(&dir, opts(gc)).unwrap();
            let t = sb.begin(IsolationLevel::ReadCommitted);
            lo = sb.create_lo(&t).unwrap();
            let mut h = sb.open_lo(&t, lo, LockMode::Exclusive).unwrap();
            h.write_at(0, b"on disk").unwrap();
            h.close().unwrap();
            t.commit().unwrap();
            // No checkpoint: the log still holds the images.
        }
        {
            let sb = Sbspace::file(&dir, opts(gc)).unwrap();
            let t = sb.begin(IsolationLevel::ReadCommitted);
            let h = sb.open_lo(&t, lo, LockMode::Shared).unwrap();
            let mut buf = [0u8; 7];
            h.read_at(0, &mut buf).unwrap();
            assert_eq!(&buf, b"on disk", "group_commit={gc}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

// ---------------------------------------------------------------------
// Group-commit crash safety
// ---------------------------------------------------------------------

/// A WAL that, once armed, tears the next append — only the first half
/// of the bytes lands before the append reports failure. Models a
/// partial log write during a group flush.
struct TearingWal {
    inner: MemWal,
    armed: std::sync::atomic::AtomicBool,
}

impl TearingWal {
    fn new() -> TearingWal {
        TearingWal {
            inner: MemWal::new(),
            armed: std::sync::atomic::AtomicBool::new(false),
        }
    }
    fn arm(&self) {
        self.armed.store(true, std::sync::atomic::Ordering::SeqCst);
    }
}

impl WalStore for TearingWal {
    fn append(&self, bytes: &[u8]) -> Result<()> {
        if self.armed.swap(false, std::sync::atomic::Ordering::SeqCst) {
            self.inner.append(&bytes[..bytes.len() / 2]).unwrap();
            return Err(SbError::Io("torn log write".into()));
        }
        self.inner.append(bytes)
    }
    fn sync(&self) -> Result<()> {
        self.inner.sync()
    }
    fn read_segment(&self, seg: u64) -> Result<Vec<u8>> {
        self.inner.read_segment(seg)
    }
    fn segments(&self) -> Result<Vec<u64>> {
        self.inner.segments()
    }
    fn active_segment(&self) -> u64 {
        self.inner.active_segment()
    }
    fn truncate(&self) -> Result<()> {
        self.inner.truncate()
    }
}

/// A burst of committed transactions under group commit fully replays
/// after a crash: no-force means the data pages may never have reached
/// the backend, so every byte must come back from the shared log.
#[test]
fn group_commit_burst_fully_replays_after_crash() {
    let (backend, wal) = shared();
    let sb = reopen(&backend, &wal, true);
    let setup = sb.begin(IsolationLevel::ReadCommitted);
    let los: Vec<_> = (0..8).map(|_| sb.create_lo(&setup).unwrap()).collect();
    for &lo in &los {
        let h = sb.open_lo(&setup, lo, LockMode::Exclusive).unwrap();
        h.close().unwrap();
    }
    setup.commit().unwrap();

    let barrier = Arc::new(std::sync::Barrier::new(los.len()));
    std::thread::scope(|s| {
        for (i, &lo) in los.iter().enumerate() {
            let (sb, barrier) = (&sb, Arc::clone(&barrier));
            s.spawn(move || {
                let t = sb.begin(IsolationLevel::ReadCommitted);
                let mut h = sb.open_lo(&t, lo, LockMode::Exclusive).unwrap();
                h.write_at(0, format!("txn {i} payload").as_bytes())
                    .unwrap();
                h.close().unwrap();
                barrier.wait(); // commit as one burst, sharing groups
                t.commit().unwrap();
            });
        }
    });
    drop(sb); // crash: no checkpoint, data pages possibly never synced

    let sb2 = reopen(&backend, &wal, true);
    let t = sb2.begin(IsolationLevel::ReadCommitted);
    for (i, &lo) in los.iter().enumerate() {
        let h = sb2.open_lo(&t, lo, LockMode::Shared).unwrap();
        let want = format!("txn {i} payload");
        let mut buf = vec![0u8; want.len()];
        h.read_at(0, &mut buf).unwrap();
        assert_eq!(buf, want.into_bytes(), "txn {i} lost from the group");
    }
}

/// A reopened space starts with an empty published-page-table
/// registry; the first snapshot over an object seeds it from the
/// on-disk inode and then reads exactly the recovered bytes.
#[test]
fn snapshot_after_reopen_seeds_from_inode() {
    both_modes(|gc| {
        let (backend, wal) = shared();
        let sb = reopen(&backend, &wal, gc);
        let txn = sb.begin(IsolationLevel::ReadCommitted);
        let lo = sb.create_lo(&txn).unwrap();
        let mut h = sb.open_lo(&txn, lo, LockMode::Exclusive).unwrap();
        h.write_at(0, b"seeded bytes").unwrap();
        h.close().unwrap();
        txn.commit().unwrap();
        drop(sb); // crash (no checkpoint)

        let sb2 = reopen(&backend, &wal, gc);
        let snap = sb2.snapshot_for(&[lo]).unwrap();
        let reader = snap.reader(lo).unwrap();
        assert_eq!(
            &reader.read_page(0).unwrap()[..12],
            b"seeded bytes",
            "group_commit={gc}"
        );
        drop(reader);
        drop(snap);
        assert_eq!(sb2.snapshots_open(), 0);
        // A snapshot over a missing object errors (the engine's cue to
        // fall back to the locked path).
        assert!(sb2.snapshot_for(&[grt_sbspace::LoId(9999)]).is_err());
    });
}

/// If the group leader's log write tears mid-batch, every transaction
/// in the batch reports failure and none of their effects survive the
/// crash — the batch is all-or-nothing.
#[test]
fn torn_group_batch_is_fully_absent_after_crash() {
    let backend = Arc::new(MemBackend::new());
    let wal = Arc::new(TearingWal::new());
    let sb = Sbspace::open_with(Arc::clone(&backend), Arc::clone(&wal), opts(true)).expect("open");

    // A committed baseline object that must survive everything below.
    let t0 = sb.begin(IsolationLevel::ReadCommitted);
    let base = sb.create_lo(&t0).unwrap();
    let mut h = sb.open_lo(&t0, base, LockMode::Exclusive).unwrap();
    h.write_at(0, b"base").unwrap();
    h.close().unwrap();
    t0.commit().unwrap();

    // Objects for the doomed burst, created and pre-sized up front.
    // The burst transactions still allocate at write time (shadow
    // paging copies committed pages out), so the tear is armed only
    // after every write has logged its allocations — it must hit the
    // group batch itself (page images + retire note + commit).
    let setup = sb.begin(IsolationLevel::ReadCommitted);
    let los: Vec<_> = (0..4).map(|_| sb.create_lo(&setup).unwrap()).collect();
    for &lo in &los {
        let mut h = sb.open_lo(&setup, lo, LockMode::Exclusive).unwrap();
        h.append_page(&[0u8; PAGE_SIZE]).unwrap();
        h.close().unwrap();
    }
    setup.commit().unwrap();

    let barrier = Arc::new(std::sync::Barrier::new(los.len() + 1));
    let outcomes: Vec<(usize, bool)> = std::thread::scope(|s| {
        let handles: Vec<_> = los
            .iter()
            .enumerate()
            .map(|(i, &lo)| {
                let (sb, barrier) = (&sb, Arc::clone(&barrier));
                s.spawn(move || {
                    let t = sb.begin(IsolationLevel::ReadCommitted);
                    let mut h = sb.open_lo(&t, lo, LockMode::Exclusive).unwrap();
                    h.write_at(0, format!("doomed {i}").as_bytes()).unwrap();
                    h.close().unwrap();
                    barrier.wait(); // writes logged; main thread arms the tear
                    barrier.wait(); // tear armed; commit as one burst
                    (i, t.commit().is_ok())
                })
            })
            .collect();
        barrier.wait(); // every write's allocations are durably logged
        wal.arm(); // the next group flush tears
        barrier.wait();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    drop(sb); // crash

    // Atomicity: a transaction's payload survives recovery if and only
    // if its commit reported success.
    let sb2 = Sbspace::open_with(Arc::clone(&backend), Arc::clone(&wal), opts(true)).unwrap();
    let t = sb2.begin(IsolationLevel::ReadCommitted);
    let hb = sb2.open_lo(&t, base, LockMode::Shared).unwrap();
    let mut buf = [0u8; 4];
    hb.read_at(0, &mut buf).unwrap();
    assert_eq!(&buf, b"base", "baseline object lost");
    let mut failures = 0;
    for (i, ok) in outcomes {
        let h = sb2.open_lo(&t, los[i], LockMode::Shared).unwrap();
        let want = format!("doomed {i}").into_bytes();
        let mut got = vec![0u8; want.len()];
        let read = h.read_at(0, &mut got).unwrap_or(0);
        let survived = read == want.len() && got == want;
        assert_eq!(
            survived, ok,
            "txn {i}: commit said {ok} but recovery says survived={survived}"
        );
        if !ok {
            failures += 1;
        }
    }
    assert!(failures > 0, "the torn append failed no transaction");
}
