//! On-disk layout of smart large objects: header, inode, indirect, and
//! free pages.
//!
//! A large object is identified by the page number of its *inode* page
//! ([`LoId`]). The inode records the byte size and the page table of the
//! object: up to [`DIRECT_CAP`] direct entries inline, then a chain of
//! indirect pages. The space header (page 0) holds the free-page list
//! head and allocation watermark.

use crate::page::{get_u32, get_u64, put_u32, put_u64, zeroed_page, PageBuf, NO_PAGE, PAGE_SIZE};
use crate::{Result, SbError};

/// A large-object handle value: the page id of the object's inode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LoId(pub u32);

impl std::fmt::Display for LoId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lo{}", self.0)
    }
}

const MAGIC_HEADER: &[u8; 4] = b"SBSP";
const MAGIC_INODE: &[u8; 4] = b"INOD";
const MAGIC_INDIRECT: &[u8; 4] = b"INDR";
const MAGIC_FREE: &[u8; 4] = b"FREE";

/// Direct page-table entries held in the inode page itself.
pub const DIRECT_CAP: usize = (PAGE_SIZE - 20) / 4;
/// Page-table entries per indirect page.
pub const INDIRECT_CAP: usize = (PAGE_SIZE - 8) / 4;

/// Decoded space header (page 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    /// Head of the free-page chain, or `NO_PAGE`.
    pub free_head: u32,
    /// Allocation watermark: pages `1..total_pages` have been handed out
    /// at some point.
    pub total_pages: u32,
    /// Number of live large objects.
    pub lo_count: u32,
}

impl Header {
    /// A fresh header for an empty space.
    pub fn fresh() -> Header {
        Header {
            free_head: NO_PAGE,
            total_pages: 1, // page 0 is the header itself
            lo_count: 0,
        }
    }

    /// Encodes into a page image.
    pub fn encode(&self) -> PageBuf {
        let mut p = zeroed_page();
        p[0..4].copy_from_slice(MAGIC_HEADER);
        put_u32(&mut p[..], 4, 1); // version
        put_u32(&mut p[..], 8, self.free_head);
        put_u32(&mut p[..], 12, self.total_pages);
        put_u32(&mut p[..], 16, self.lo_count);
        p
    }

    /// Decodes a header page, verifying the magic.
    pub fn decode(p: &[u8; PAGE_SIZE]) -> Result<Header> {
        if &p[0..4] != MAGIC_HEADER {
            return Err(SbError::Corrupt("bad sbspace header magic".into()));
        }
        Ok(Header {
            free_head: get_u32(&p[..], 8),
            total_pages: get_u32(&p[..], 12),
            lo_count: get_u32(&p[..], 16),
        })
    }

    /// True when the page is all zeroes (an uninitialised space).
    pub fn is_blank(p: &[u8; PAGE_SIZE]) -> bool {
        p.iter().all(|&b| b == 0)
    }
}

/// Decoded in-memory form of a large object's metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Inode {
    /// Byte size of the object.
    pub size: u64,
    /// Logical-to-physical page map of the object's data pages.
    pub data_pages: Vec<u32>,
    /// Physical pages holding the indirect chain (owned by the object).
    pub indirect_pids: Vec<u32>,
}

impl Inode {
    /// An empty object.
    pub fn empty() -> Inode {
        Inode {
            size: 0,
            data_pages: Vec::new(),
            indirect_pids: Vec::new(),
        }
    }

    /// How many indirect pages a page table of `npages` entries needs.
    pub fn indirect_needed(npages: usize) -> usize {
        npages.saturating_sub(DIRECT_CAP).div_ceil(INDIRECT_CAP)
    }

    /// All physical pages owned by the object, inode page included.
    pub fn all_pages(&self, id: LoId) -> Vec<u32> {
        let mut v = Vec::with_capacity(1 + self.indirect_pids.len() + self.data_pages.len());
        v.push(id.0);
        v.extend_from_slice(&self.indirect_pids);
        v.extend_from_slice(&self.data_pages);
        v
    }

    /// Encodes the inode and its indirect chain into page images.
    /// `self.indirect_pids` must already hold exactly
    /// `indirect_needed(self.data_pages.len())` page ids.
    pub fn encode(&self, id: LoId) -> Vec<(u32, PageBuf)> {
        assert_eq!(
            self.indirect_pids.len(),
            Inode::indirect_needed(self.data_pages.len()),
            "indirect chain must be sized before encoding"
        );
        let mut out = Vec::with_capacity(1 + self.indirect_pids.len());
        let mut inode = zeroed_page();
        inode[0..4].copy_from_slice(MAGIC_INODE);
        put_u64(&mut inode[..], 4, self.size);
        put_u32(&mut inode[..], 12, self.data_pages.len() as u32);
        put_u32(
            &mut inode[..],
            16,
            self.indirect_pids.first().copied().unwrap_or(NO_PAGE),
        );
        for (i, &pid) in self.data_pages.iter().take(DIRECT_CAP).enumerate() {
            put_u32(&mut inode[..], 20 + 4 * i, pid);
        }
        out.push((id.0, inode));
        let mut rest = &self.data_pages[self.data_pages.len().min(DIRECT_CAP)..];
        for (k, &ipid) in self.indirect_pids.iter().enumerate() {
            let mut page = zeroed_page();
            page[0..4].copy_from_slice(MAGIC_INDIRECT);
            put_u32(
                &mut page[..],
                4,
                self.indirect_pids.get(k + 1).copied().unwrap_or(NO_PAGE),
            );
            let take = rest.len().min(INDIRECT_CAP);
            for (i, &pid) in rest[..take].iter().enumerate() {
                put_u32(&mut page[..], 8 + 4 * i, pid);
            }
            rest = &rest[take..];
            out.push((ipid, page));
        }
        out
    }

    /// Decodes an inode and its indirect chain, fetching pages through
    /// `read`. Generic over the page representation so callers can hand
    /// back owned buffers (`PageBuf`) or zero-copy pinned guards.
    pub fn decode<P>(id: LoId, mut read: impl FnMut(u32) -> Result<P>) -> Result<Inode>
    where
        P: std::ops::Deref<Target = [u8; PAGE_SIZE]>,
    {
        let inode = read(id.0)?;
        if &inode[0..4] != MAGIC_INODE {
            return Err(SbError::Corrupt(format!("{id}: bad inode magic")));
        }
        let size = get_u64(&inode[..], 4);
        let npages = get_u32(&inode[..], 12) as usize;
        let mut data_pages = Vec::with_capacity(npages);
        for i in 0..npages.min(DIRECT_CAP) {
            data_pages.push(get_u32(&inode[..], 20 + 4 * i));
        }
        let mut indirect_pids = Vec::new();
        let mut next = get_u32(&inode[..], 16);
        while data_pages.len() < npages {
            if next == NO_PAGE {
                return Err(SbError::Corrupt(format!(
                    "{id}: page table truncated at {} of {npages}",
                    data_pages.len()
                )));
            }
            let page = read(next)?;
            if &page[0..4] != MAGIC_INDIRECT {
                return Err(SbError::Corrupt(format!("{id}: bad indirect magic")));
            }
            indirect_pids.push(next);
            let remaining = npages - data_pages.len();
            for i in 0..remaining.min(INDIRECT_CAP) {
                data_pages.push(get_u32(&page[..], 8 + 4 * i));
            }
            next = get_u32(&page[..], 4);
        }
        Ok(Inode {
            size,
            data_pages,
            indirect_pids,
        })
    }
}

/// Encodes a free-list page pointing at `next`.
pub fn encode_free_page(next: u32) -> PageBuf {
    let mut p = zeroed_page();
    p[0..4].copy_from_slice(MAGIC_FREE);
    put_u32(&mut p[..], 4, next);
    p
}

/// Decodes the `next` pointer of a free-list page.
pub fn decode_free_next(p: &[u8; PAGE_SIZE]) -> Result<u32> {
    if &p[0..4] != MAGIC_FREE {
        return Err(SbError::Corrupt("bad free-page magic".into()));
    }
    Ok(get_u32(&p[..], 4))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn roundtrip(npages: usize) {
        let data_pages: Vec<u32> = (100..100 + npages as u32).collect();
        let n_ind = Inode::indirect_needed(npages);
        let indirect_pids: Vec<u32> = (50_000..50_000 + n_ind as u32).collect();
        let inode = Inode {
            size: npages as u64 * 1000,
            data_pages,
            indirect_pids,
        };
        let id = LoId(7);
        let images: HashMap<u32, PageBuf> = inode.encode(id).into_iter().collect();
        let decoded = Inode::decode(id, |pid| {
            images
                .get(&pid)
                .cloned()
                .ok_or_else(|| SbError::NotFound(format!("page {pid}")))
        })
        .unwrap();
        assert_eq!(decoded, inode, "npages = {npages}");
    }

    #[test]
    fn inode_roundtrip_direct_only() {
        roundtrip(0);
        roundtrip(1);
        roundtrip(DIRECT_CAP);
    }

    #[test]
    fn inode_roundtrip_with_indirects() {
        roundtrip(DIRECT_CAP + 1);
        roundtrip(DIRECT_CAP + INDIRECT_CAP);
        roundtrip(DIRECT_CAP + INDIRECT_CAP + 1);
        roundtrip(DIRECT_CAP + 3 * INDIRECT_CAP + 17);
    }

    #[test]
    fn indirect_needed_boundaries() {
        assert_eq!(Inode::indirect_needed(0), 0);
        assert_eq!(Inode::indirect_needed(DIRECT_CAP), 0);
        assert_eq!(Inode::indirect_needed(DIRECT_CAP + 1), 1);
        assert_eq!(Inode::indirect_needed(DIRECT_CAP + INDIRECT_CAP), 1);
        assert_eq!(Inode::indirect_needed(DIRECT_CAP + INDIRECT_CAP + 1), 2);
    }

    #[test]
    fn header_roundtrip() {
        let h = Header {
            free_head: 42,
            total_pages: 99,
            lo_count: 3,
        };
        assert_eq!(Header::decode(&h.encode()).unwrap(), h);
        let blank = zeroed_page();
        assert!(Header::is_blank(&blank));
        assert!(Header::decode(&blank).is_err());
    }

    #[test]
    fn free_page_roundtrip() {
        let p = encode_free_page(17);
        assert_eq!(decode_free_next(&p).unwrap(), 17);
        assert!(decode_free_next(&zeroed_page()).is_err());
    }

    #[test]
    fn all_pages_lists_everything() {
        let inode = Inode {
            size: 10,
            data_pages: vec![5, 6],
            indirect_pids: vec![],
        };
        assert_eq!(inode.all_pages(LoId(3)), vec![3, 5, 6]);
    }

    #[test]
    fn decode_rejects_garbage() {
        let err = Inode::decode(LoId(1), |_| Ok(zeroed_page())).unwrap_err();
        assert!(matches!(err, SbError::Corrupt(_)));
    }
}
