//! The buffer pool: sharded page caching with clock eviction, pinned
//! zero-copy reads, and no-steal transactional dirtying.
//!
//! The pool is split into `N` lock-striped shards, keyed by
//! `page_id % N`, so readers and writers touching different pages
//! contend only when their pages hash to the same shard. Each shard
//! runs a clock (second-chance) eviction policy: frames carry a
//! reference bit that a sweep clears before a frame becomes a victim,
//! replacing the previous O(n) LRU scan with an amortised O(1) hand
//! advance.
//!
//! Physical reads never happen under a shard lock. A miss registers the
//! page in the shard's in-flight table, drops the lock, reads from the
//! backend, and re-locks to install the frame — so a slow cold read of
//! page A cannot delay a hit on page B in the same shard, and
//! concurrent faulters of the *same* page wait on the first faulter's
//! read instead of duplicating it ([`IoStats::inflight_waits`]). A
//! failed read clears the in-flight entry and surfaces the error to its
//! caller only; waiters retry and fault for themselves, so each caller
//! sees its own error exactly once and the pool is never poisoned.
//!
//! An optional prefetcher (a bounded queue drained by a small
//! worker pool) lets scans announce pages ahead of demand:
//! [`BufferPool::prefetch`] enqueues, workers claim the pages through
//! the same in-flight table and read them in one vectored
//! [`Backend::read_pages`] call. Prefetched frames enter the clock
//! un-referenced and flagged untouched, so they lose eviction to
//! re-referenced demand pages; a demand hit on one counts
//! `prefetch_hits`, eviction before first touch counts
//! `prefetch_wasted`, and a failed prefetch read is silent (the demand
//! read retries).
//!
//! Frames dirtied by a transaction stay in the pool until that
//! transaction commits (force-at-commit) or aborts (frames discarded) —
//! the no-steal policy that makes the redo-only WAL sound. Dirty and
//! pinned frames are never evicted; when a full clock sweep finds no
//! victim the shard temporarily exceeds its capacity (counted in
//! [`IoStats::dirty_overflows`]) rather than stealing. Commit and
//! checkpoint flushes batch each shard's dirty pages, sorted by page
//! id, through [`Backend::write_pages`] so contiguous runs coalesce
//! into single backend calls ([`IoStats::write_runs`],
//! [`IoStats::coalesced_writes`]).
//!
//! Page data lives behind `Arc<[u8; PAGE_SIZE]>`. [`BufferPool::read_pinned`]
//! clones that `Arc` into a [`PageGuard`] — no page copy — and pins the
//! frame against eviction until the guard drops. Writes go through
//! `Arc::make_mut`, so a write to a pinned page leaves the guard's
//! snapshot intact (copy-on-write) instead of mutating under a reader.

use crate::backend::Backend;
use crate::page::{zeroed_page, PageBuf, PageId, PAGE_SIZE};
use crate::stats::IoStats;
use crate::txn::TxnId;
use crate::Result;
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::ops::Deref;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared, immutable-unless-sole-owner page bytes.
type PageArc = Arc<[u8; PAGE_SIZE]>;

/// Pages a prefetch worker claims from the queue per backend call.
const PREFETCH_BATCH: usize = 16;

struct Frame {
    data: PageArc,
    /// `Some(txn)` when the frame holds uncommitted writes of `txn`.
    dirty_owner: Option<TxnId>,
    /// The frame holds committed bytes newer than the backend's copy:
    /// the owning transaction committed no-force (its redo images are
    /// durable in the WAL) and the data write is deferred to the
    /// checkpointer — or to eviction, which may write-then-drop such a
    /// frame without a sync. Mutually exclusive with `dirty_owner`.
    committed_dirty: bool,
    /// Clock reference bit: set on access, cleared by the sweep.
    referenced: bool,
    /// Installed by a prefetch worker and not yet demanded. Cleared by
    /// the first demand access (read counts `prefetch_hits`, write just
    /// clears); still set at eviction counts `prefetch_wasted`.
    prefetched_untouched: bool,
    /// Outstanding [`PageGuard`]s on this frame (shared with them so a
    /// guard can unpin without re-locking the shard).
    pins: Arc<AtomicU64>,
}

impl Frame {
    /// A clean, unreferenced frame holding `data`.
    fn clean(data: PageArc) -> Frame {
        Frame {
            data,
            dirty_owner: None,
            committed_dirty: false,
            // Clear on insertion: the bit means "hit since faulted in",
            // so one-touch pages lose to re-referenced ones.
            referenced: false,
            prefetched_untouched: false,
            pins: Arc::new(AtomicU64::new(0)),
        }
    }
}

/// One in-progress physical read, shared between the faulter and any
/// thread that missed on the same page while the read was in flight.
struct Inflight {
    state: Mutex<InflightSlot>,
    cv: Condvar,
}

enum InflightSlot {
    Pending,
    /// `Some(bytes)` — read succeeded; copying waiters may use the
    /// bytes directly even if the frame was already evicted.
    /// `None` — read failed or was invalidated; waiters re-fault so
    /// each caller surfaces its own error exactly once.
    Done(Option<PageArc>),
}

impl Inflight {
    fn new() -> Inflight {
        Inflight {
            state: Mutex::new(InflightSlot::Pending),
            cv: Condvar::new(),
        }
    }

    /// Publishes the outcome and wakes every waiter.
    fn finish(&self, data: Option<PageArc>) {
        *self.state.lock() = InflightSlot::Done(data);
        self.cv.notify_all();
    }

    /// Blocks until the faulter publishes, then returns its outcome.
    fn wait(&self) -> Option<PageArc> {
        let mut st = self.state.lock();
        while matches!(*st, InflightSlot::Pending) {
            self.cv.wait(&mut st);
        }
        match &*st {
            InflightSlot::Done(d) => d.clone(),
            InflightSlot::Pending => unreachable!("loop exits only on Done"),
        }
    }
}

struct Shard {
    frames: HashMap<u32, Frame>,
    /// Clock ring of resident page ids; `hand` is the sweep position.
    clock: Vec<u32>,
    hand: usize,
    /// Pages whose physical read is in progress with the lock dropped.
    inflight: HashMap<u32, Arc<Inflight>>,
}

impl Shard {
    fn new() -> Shard {
        Shard {
            frames: HashMap::new(),
            clock: Vec::new(),
            hand: 0,
            inflight: HashMap::new(),
        }
    }
}

/// A pinned, zero-copy view of one page.
///
/// Holding a guard keeps its frame in the pool (eviction skips pinned
/// frames) and keeps this snapshot of the bytes alive even if a writer
/// later replaces the frame's contents (copy-on-write). The pool
/// asserts on drop that no guard outlives it.
pub struct PageGuard {
    data: PageArc,
    frame_pins: Arc<AtomicU64>,
    /// The owning shard's pin total — striped so guards on different
    /// shards never contend on one pool-wide counter.
    shard_pins: Arc<AtomicU64>,
}

impl Deref for PageGuard {
    type Target = [u8; PAGE_SIZE];
    fn deref(&self) -> &[u8; PAGE_SIZE] {
        &self.data
    }
}

impl Drop for PageGuard {
    fn drop(&mut self) {
        self.frame_pins.fetch_sub(1, Ordering::Release);
        self.shard_pins.fetch_sub(1, Ordering::Release);
    }
}

/// What [`PoolInner::acquire`] produced for the caller.
enum Acquired {
    Copy(PageArc),
    Pinned(PageGuard),
}

/// Counts maximal contiguous ascending runs in a sorted id list — the
/// number of backend calls a coalescing backend needs for the batch.
fn run_count(pids: &[u32]) -> usize {
    let mut runs = 0;
    let mut i = 0;
    while i < pids.len() {
        runs += 1;
        let mut j = i + 1;
        while j < pids.len() && pids[j] == pids[j - 1].wrapping_add(1) {
            j += 1;
        }
        i = j;
    }
    runs
}

/// The shard array and everything the read/write paths touch. Shared
/// (`Arc`) between the pool handle and the prefetch workers.
struct PoolInner {
    backend: Box<dyn Backend>,
    shards: Vec<Mutex<Shard>>,
    /// Per-shard frame budget.
    shard_capacity: usize,
    stats: Arc<IoStats>,
    /// Per-shard counts of live [`PageGuard`]s (striped to keep guard
    /// pin/unpin off a shared cache line).
    shard_pins: Vec<Arc<AtomicU64>>,
    /// Bumped by [`PoolInner::invalidate`]. An unlocked fault snapshots
    /// this before reading and discards its bytes if the epoch moved —
    /// otherwise a read racing recovery replay could install pages that
    /// predate the out-of-band backend change.
    invalidations: AtomicU64,
}

impl PoolInner {
    fn shard_idx(&self, pid: PageId) -> usize {
        pid.0 as usize % self.shards.len()
    }

    fn outstanding_pins(&self) -> u64 {
        self.shard_pins
            .iter()
            .map(|p| p.load(Ordering::Acquire))
            .sum()
    }

    /// Pins `f` and builds its guard (caller holds shard `idx`'s lock).
    fn pin_frame(&self, idx: usize, f: &Frame) -> PageGuard {
        f.pins.fetch_add(1, Ordering::AcqRel);
        self.shard_pins[idx].fetch_add(1, Ordering::AcqRel);
        PageGuard {
            data: Arc::clone(&f.data),
            frame_pins: Arc::clone(&f.pins),
            shard_pins: Arc::clone(&self.shard_pins[idx]),
        }
    }

    /// The one physical read of the fault path: a single allocation,
    /// read straight into the frame's refcounted buffer.
    fn fault_read(&self, pid: PageId) -> Result<PageArc> {
        IoStats::bump(&self.stats.physical_reads);
        let mut data: PageArc = Arc::new([0u8; PAGE_SIZE]);
        let buf = Arc::get_mut(&mut data).expect("freshly allocated, uniquely owned");
        self.backend.read_page(pid, buf)?;
        Ok(data)
    }

    /// The demand-read protocol: hit under the lock, or wait on another
    /// thread's in-flight fault, or fault with the lock dropped and
    /// re-lock to install. Never performs backend I/O under a shard
    /// lock.
    fn acquire(&self, pid: PageId, pin: bool) -> Result<Acquired> {
        let idx = self.shard_idx(pid);
        loop {
            let mut shard = self.shards[idx].lock();
            if let Some(f) = shard.frames.get_mut(&pid.0) {
                f.referenced = true;
                if f.prefetched_untouched {
                    f.prefetched_untouched = false;
                    IoStats::bump(&self.stats.prefetch_hits);
                }
                return Ok(if pin {
                    Acquired::Pinned(self.pin_frame(idx, f))
                } else {
                    Acquired::Copy(Arc::clone(&f.data))
                });
            }
            if let Some(inflight) = shard.inflight.get(&pid.0).map(Arc::clone) {
                drop(shard);
                IoStats::bump(&self.stats.inflight_waits);
                match inflight.wait() {
                    // A copying read can use the faulter's bytes even if
                    // the frame was already evicted again.
                    Some(data) if !pin => return Ok(Acquired::Copy(data)),
                    // Pinned reads re-loop to pin the resident frame;
                    // a failed fault re-loops to fault for itself.
                    _ => continue,
                }
            }
            // We are the faulter: claim the page, then read unlocked.
            let inflight = Arc::new(Inflight::new());
            shard.inflight.insert(pid.0, Arc::clone(&inflight));
            let epoch = self.invalidations.load(Ordering::Acquire);
            drop(shard);
            let read = self.fault_read(pid);
            let mut shard = self.shards[idx].lock();
            shard.inflight.remove(&pid.0);
            let data = match read {
                Ok(data) => data,
                Err(e) => {
                    drop(shard);
                    inflight.finish(None);
                    return Err(e);
                }
            };
            if let Some(f) = shard.frames.get_mut(&pid.0) {
                // A writer installed this page while we read; its frame
                // is newer than our bytes, so serve (and publish) it.
                f.referenced = true;
                let published = Arc::clone(&f.data);
                let out = if pin {
                    Acquired::Pinned(self.pin_frame(idx, f))
                } else {
                    Acquired::Copy(Arc::clone(&f.data))
                };
                drop(shard);
                inflight.finish(Some(published));
                return Ok(out);
            }
            if self.invalidations.load(Ordering::Acquire) != epoch {
                // The cache was invalidated while we read: our bytes may
                // predate the backend change. Discard and retry.
                drop(shard);
                inflight.finish(None);
                continue;
            }
            shard.frames.insert(pid.0, Frame::clean(Arc::clone(&data)));
            shard.clock.push(pid.0);
            let out = if pin {
                let f = shard.frames.get(&pid.0).expect("just inserted");
                Acquired::Pinned(self.pin_frame(idx, f))
            } else {
                Acquired::Copy(Arc::clone(&data))
            };
            self.evict_to_capacity(&mut shard);
            drop(shard);
            inflight.finish(Some(data));
            return Ok(out);
        }
    }

    /// Prefetch-worker fault: claim every page of `pids` that is neither
    /// resident nor already in flight, read them in one vectored call,
    /// and install the frames flagged untouched. Errors are swallowed —
    /// the claims are cleared so demand reads retry and surface the
    /// error themselves.
    fn prefetch_fault(&self, pids: &[PageId]) {
        let mut sorted: Vec<PageId> = pids.to_vec();
        sorted.sort();
        sorted.dedup();
        let mut claimed: Vec<(PageId, Arc<Inflight>)> = Vec::new();
        for pid in sorted {
            let mut shard = self.shards[self.shard_idx(pid)].lock();
            if shard.frames.contains_key(&pid.0) || shard.inflight.contains_key(&pid.0) {
                continue;
            }
            let inflight = Arc::new(Inflight::new());
            shard.inflight.insert(pid.0, Arc::clone(&inflight));
            claimed.push((pid, inflight));
        }
        if claimed.is_empty() {
            return;
        }
        let epoch = self.invalidations.load(Ordering::Acquire);
        let ids: Vec<PageId> = claimed.iter().map(|(pid, _)| *pid).collect();
        let mut bufs: Vec<PageBuf> = ids.iter().map(|_| zeroed_page()).collect();
        if self.backend.read_pages(&ids, &mut bufs).is_err() {
            for (pid, inflight) in claimed {
                self.shards[self.shard_idx(pid)]
                    .lock()
                    .inflight
                    .remove(&pid.0);
                inflight.finish(None);
            }
            return;
        }
        self.stats.physical_reads.add(ids.len() as u64);
        let id_nums: Vec<u32> = ids.iter().map(|p| p.0).collect();
        self.stats.read_runs.add(run_count(&id_nums) as u64);
        let stale = self.invalidations.load(Ordering::Acquire) != epoch;
        for ((pid, inflight), buf) in claimed.into_iter().zip(bufs) {
            let data: PageArc = Arc::from(buf);
            let mut shard = self.shards[self.shard_idx(pid)].lock();
            shard.inflight.remove(&pid.0);
            if !stale && !shard.frames.contains_key(&pid.0) {
                let mut f = Frame::clean(Arc::clone(&data));
                f.prefetched_untouched = true;
                shard.frames.insert(pid.0, f);
                shard.clock.push(pid.0);
                self.evict_to_capacity(&mut shard);
            }
            drop(shard);
            inflight.finish(if stale { None } else { Some(data) });
        }
    }

    /// Clock sweep: evict unreferenced, unpinned frames until the shard
    /// fits its budget. A frame whose reference bit is set gets a
    /// second chance (the bit is cleared and the hand moves on).
    /// Uncommitted-dirty frames are never evicted (no-steal); a
    /// committed-dirty frame is written to the backend first — no sync
    /// needed, its redo image is already durable in the WAL — so a
    /// churn workload bigger than the pool stays bounded even between
    /// checkpoints. If a bounded sweep finds no victim the shard
    /// overflows its capacity rather than stealing.
    fn evict_to_capacity(&self, shard: &mut Shard) {
        while shard.frames.len() > self.shard_capacity {
            let mut evicted = false;
            let budget = shard.clock.len() * 2;
            let mut scanned = 0;
            while scanned < budget && !shard.clock.is_empty() {
                if shard.hand >= shard.clock.len() {
                    shard.hand = 0;
                }
                let pid = shard.clock[shard.hand];
                let f = shard.frames.get_mut(&pid).expect("clock entry resident");
                if f.dirty_owner.is_some() || f.pins.load(Ordering::Acquire) > 0 {
                    shard.hand += 1;
                } else if f.referenced {
                    f.referenced = false;
                    shard.hand += 1;
                } else {
                    if f.committed_dirty {
                        // Write-on-evict; on failure keep the frame (the
                        // checkpointer will retry) and move on.
                        if self.backend.write_page(PageId(pid), &f.data).is_err() {
                            shard.hand += 1;
                            scanned += 1;
                            continue;
                        }
                        IoStats::bump(&self.stats.physical_writes);
                    }
                    if f.prefetched_untouched {
                        IoStats::bump(&self.stats.prefetch_wasted);
                    }
                    shard.frames.remove(&pid);
                    shard.clock.remove(shard.hand);
                    IoStats::bump(&self.stats.evictions);
                    evicted = true;
                    break;
                }
                scanned += 1;
            }
            if !evicted {
                IoStats::bump(&self.stats.dirty_overflows);
                return;
            }
        }
    }

    /// Writes a pid-sorted batch of frames through the vectored backend
    /// call, counting runs. Stats update only on success so a failed
    /// flush retries idempotently.
    fn write_batch(&self, pages: &[(u32, PageArc)]) -> Result<()> {
        if pages.is_empty() {
            return Ok(());
        }
        let pairs: Vec<(PageId, &[u8; PAGE_SIZE])> =
            pages.iter().map(|(pid, d)| (PageId(*pid), &**d)).collect();
        self.backend.write_pages(&pairs)?;
        let ids: Vec<u32> = pages.iter().map(|(pid, _)| *pid).collect();
        let runs = run_count(&ids);
        self.stats.physical_writes.add(pages.len() as u64);
        self.stats.write_runs.add(runs as u64);
        self.stats.coalesced_writes.add((pages.len() - runs) as u64);
        Ok(())
    }

    fn invalidate(&self) {
        // Bump first: a fault that re-locks after its shard was cleared
        // must see the moved epoch and discard its (possibly stale)
        // bytes.
        self.invalidations.fetch_add(1, Ordering::AcqRel);
        for shard in &self.shards {
            let mut shard = shard.lock();
            shard.frames.clear();
            shard.clock.clear();
            shard.hand = 0;
        }
    }
}

/// The prefetch queue and its worker threads.
struct PrefetchShared {
    q: Mutex<PrefetchQueue>,
    cv: Condvar,
}

struct PrefetchQueue {
    queue: VecDeque<PageId>,
    shutdown: bool,
    /// Workers currently faulting a claimed batch (for quiesce).
    active: usize,
}

struct Prefetcher {
    shared: Arc<PrefetchShared>,
    /// Queue bound: enqueues past this are dropped, not blocked on.
    depth: usize,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Prefetcher {
    fn spawn(inner: &Arc<PoolInner>, workers: usize, depth: usize) -> Prefetcher {
        let shared = Arc::new(PrefetchShared {
            q: Mutex::new(PrefetchQueue {
                queue: VecDeque::new(),
                shutdown: false,
                active: 0,
            }),
            cv: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                let inner = Arc::clone(inner);
                std::thread::spawn(move || Prefetcher::run(&shared, &inner))
            })
            .collect();
        Prefetcher {
            shared,
            depth,
            workers: handles,
        }
    }

    fn run(shared: &PrefetchShared, inner: &PoolInner) {
        loop {
            let batch: Vec<PageId> = {
                let mut q = shared.q.lock();
                loop {
                    if q.shutdown {
                        return;
                    }
                    if !q.queue.is_empty() {
                        break;
                    }
                    shared.cv.wait(&mut q);
                }
                q.active += 1;
                let n = q.queue.len().min(PREFETCH_BATCH);
                q.queue.drain(..n).collect()
            };
            inner.prefetch_fault(&batch);
            let mut q = shared.q.lock();
            q.active -= 1;
            if q.active == 0 && q.queue.is_empty() {
                // Wake quiescers (workers ignore the spurious wake).
                shared.cv.notify_all();
            }
        }
    }

    fn shutdown(mut self) {
        {
            let mut q = self.shared.q.lock();
            q.shutdown = true;
            self.shared.cv.notify_all();
        }
        for h in self.workers.drain(..) {
            h.join().ok();
        }
    }
}

/// The sharded buffer pool. Internally synchronised: all methods take
/// `&self` and lock only the shard(s) they touch.
pub struct BufferPool {
    inner: Arc<PoolInner>,
    prefetcher: Option<Prefetcher>,
}

impl BufferPool {
    /// Creates a pool of `capacity` frames over `backend`, striped into
    /// `shards` partitions (`page_id % shards`), with prefetch off.
    pub fn new(
        backend: Box<dyn Backend>,
        capacity: usize,
        shards: usize,
        stats: Arc<IoStats>,
    ) -> BufferPool {
        BufferPool::with_prefetch(backend, capacity, shards, stats, 0, 0)
    }

    /// [`BufferPool::new`] plus an asynchronous prefetcher:
    /// `prefetch_workers` background threads drain a queue bounded at
    /// `prefetch_depth` pages. `prefetch_workers = 0` disables prefetch
    /// ([`BufferPool::prefetch`] becomes a no-op).
    pub fn with_prefetch(
        backend: Box<dyn Backend>,
        capacity: usize,
        shards: usize,
        stats: Arc<IoStats>,
        prefetch_workers: usize,
        prefetch_depth: usize,
    ) -> BufferPool {
        let shards = shards.max(1);
        let shard_capacity = capacity.max(1).div_ceil(shards);
        let inner = Arc::new(PoolInner {
            backend,
            shards: (0..shards).map(|_| Mutex::new(Shard::new())).collect(),
            shard_capacity,
            stats,
            shard_pins: (0..shards).map(|_| Arc::new(AtomicU64::new(0))).collect(),
            invalidations: AtomicU64::new(0),
        });
        let prefetcher = (prefetch_workers > 0)
            .then(|| Prefetcher::spawn(&inner, prefetch_workers, prefetch_depth.max(1)));
        BufferPool { inner, prefetcher }
    }

    /// Number of shards the pool is striped into.
    pub fn shard_count(&self) -> usize {
        self.inner.shards.len()
    }

    /// Pool-wide count of outstanding page pins (test hook).
    pub fn outstanding_pins(&self) -> u64 {
        self.inner.outstanding_pins()
    }

    /// Reads page `pid` into `out` (logical read; miss = physical read).
    pub fn read(&self, pid: PageId, out: &mut [u8; PAGE_SIZE]) -> Result<()> {
        IoStats::bump(&self.inner.stats.logical_reads);
        match self.inner.acquire(pid, false)? {
            Acquired::Copy(data) => {
                out.copy_from_slice(&data[..]);
                Ok(())
            }
            Acquired::Pinned(_) => unreachable!("acquire(pin=false) never pins"),
        }
    }

    /// Pins page `pid` and returns a zero-copy guard over its bytes.
    /// The frame cannot be evicted while the guard lives; a concurrent
    /// writer gets a private copy (copy-on-write), so the guard always
    /// sees the bytes as of the pin.
    pub fn read_pinned(&self, pid: PageId) -> Result<PageGuard> {
        IoStats::bump(&self.inner.stats.logical_reads);
        IoStats::bump(&self.inner.stats.pinned_reads);
        match self.inner.acquire(pid, true)? {
            Acquired::Pinned(guard) => Ok(guard),
            Acquired::Copy(_) => unreachable!("acquire(pin=true) always pins"),
        }
    }

    /// Announces pages a scan will want soon. Pages are enqueued (up to
    /// the configured depth; excess is dropped, never blocked on) and
    /// read asynchronously by the prefetch workers. No-op when the pool
    /// was built without prefetch workers.
    pub fn prefetch(&self, pids: &[PageId]) {
        let Some(p) = &self.prefetcher else { return };
        let mut q = p.shared.q.lock();
        let mut pushed = false;
        for &pid in pids {
            if q.queue.len() >= p.depth {
                break;
            }
            if q.queue.contains(&pid) {
                continue;
            }
            q.queue.push_back(pid);
            IoStats::bump(&self.inner.stats.prefetch_issued);
            pushed = true;
        }
        if pushed {
            p.shared.cv.notify_all();
        }
    }

    /// Blocks until the prefetch queue is empty and no worker is
    /// mid-batch (test and benchmark hook; no-op without workers).
    pub fn prefetch_quiesce(&self) {
        let Some(p) = &self.prefetcher else { return };
        let mut q = p.shared.q.lock();
        while !(q.queue.is_empty() && q.active == 0) {
            p.shared.cv.wait(&mut q);
        }
    }

    /// Buffers a transactional write of page `pid` by `txn` (no-steal:
    /// nothing reaches the backend until commit).
    pub fn write_txn(&self, txn: TxnId, pid: PageId, data: &[u8; PAGE_SIZE]) {
        IoStats::bump(&self.inner.stats.logical_writes);
        let mut shard = self.inner.shards[self.inner.shard_idx(pid)].lock();
        let inserted = !shard.frames.contains_key(&pid.0);
        let frame = shard
            .frames
            .entry(pid.0)
            .or_insert_with(|| Frame::clean(Arc::new([0u8; PAGE_SIZE])));
        // Copy-on-write: pinned guards keep their snapshot.
        Arc::make_mut(&mut frame.data).copy_from_slice(data);
        frame.dirty_owner = Some(txn);
        // A transaction only writes pages it allocated (shadow paging
        // redirects everything else), and allocation always passes
        // through a write-through of the free-list image — so a frame
        // can never be committed-dirty when it becomes txn-dirty.
        frame.committed_dirty = false;
        frame.referenced = true;
        // A write is a touch too, but not a prefetch *hit*.
        frame.prefetched_untouched = false;
        if inserted {
            shard.clock.push(pid.0);
            self.inner.evict_to_capacity(&mut shard);
        }
    }

    /// Writes a metadata page through to the backend immediately (its
    /// redo image must already be in the log) and refreshes the cache.
    pub fn write_through(&self, pid: PageId, data: &[u8; PAGE_SIZE]) -> Result<()> {
        IoStats::bump(&self.inner.stats.logical_writes);
        IoStats::bump(&self.inner.stats.physical_writes);
        self.inner.backend.write_page(pid, data)?;
        let mut shard = self.inner.shards[self.inner.shard_idx(pid)].lock();
        let inserted = !shard.frames.contains_key(&pid.0);
        let frame = shard
            .frames
            .entry(pid.0)
            .or_insert_with(|| Frame::clean(Arc::new([0u8; PAGE_SIZE])));
        Arc::make_mut(&mut frame.data).copy_from_slice(data);
        frame.dirty_owner = None;
        frame.committed_dirty = false;
        frame.referenced = true;
        frame.prefetched_untouched = false;
        if inserted {
            shard.clock.push(pid.0);
            self.inner.evict_to_capacity(&mut shard);
        }
        Ok(())
    }

    /// Returns all dirty frames owned by `txn` as shared references
    /// (`Arc` clones, no page copies), sorted by page id for the WAL.
    pub fn dirty_of(&self, txn: TxnId) -> Vec<(PageId, Arc<[u8; PAGE_SIZE]>)> {
        let mut out: Vec<(PageId, PageArc)> = Vec::new();
        for shard in &self.inner.shards {
            let shard = shard.lock();
            out.extend(
                shard
                    .frames
                    .iter()
                    .filter(|(_, f)| f.dirty_owner == Some(txn))
                    .map(|(&pid, f)| (PageId(pid), Arc::clone(&f.data))),
            );
        }
        out.sort_by_key(|(pid, _)| pid.0);
        out
    }

    /// Flushes `txn`'s dirty frames to the backend and marks them clean
    /// (the force step of commit — call after their images are logged).
    /// The dirty set is collected across **all** shards and written as
    /// one globally pid-sorted [`Backend::write_pages`] batch: shards
    /// stripe pages `pid % shards`, so per-shard batches could never
    /// contain adjacent pids — only a cross-shard batch lets contiguous
    /// copy-on-write allocations coalesce into multi-page runs. No
    /// shard lock is held during the backend write; the cheap Arc
    /// clones pin the committed images against later copy-on-write.
    ///
    /// The backend is synced only when `sync` is requested **and** the
    /// transaction actually dirtied pages: a read-only commit performs
    /// no backend I/O at all. Group commit passes `sync = false` — the
    /// redo images in the WAL are already durable, so the data sync is
    /// deferred to the next checkpoint (no-force).
    pub fn flush_txn(&self, txn: TxnId, sync: bool) -> Result<()> {
        let mut pages: Vec<(u32, PageArc)> = Vec::new();
        for shard in &self.inner.shards {
            let shard = shard.lock();
            pages.extend(
                shard
                    .frames
                    .iter()
                    .filter(|(_, f)| f.dirty_owner == Some(txn))
                    .map(|(&pid, f)| (pid, Arc::clone(&f.data))),
            );
        }
        pages.sort_by_key(|(pid, _)| *pid);
        self.inner.write_batch(&pages)?;
        for shard in &self.inner.shards {
            let mut shard = shard.lock();
            for f in shard.frames.values_mut() {
                if f.dirty_owner == Some(txn) {
                    f.dirty_owner = None;
                }
            }
            self.inner.evict_to_capacity(&mut shard);
        }
        if sync && !pages.is_empty() {
            IoStats::bump(&self.inner.stats.data_syncs);
            self.inner.backend.sync()?;
        }
        Ok(())
    }

    /// Relabels `txn`'s dirty frames as committed-dirty without writing
    /// them (the no-force commit path: the redo images just became
    /// durable in the WAL, so the data writes are deferred to the
    /// checkpointer — or to write-on-evict under pool pressure).
    pub fn mark_committed(&self, txn: TxnId) {
        for shard in &self.inner.shards {
            let mut shard = shard.lock();
            for f in shard.frames.values_mut() {
                if f.dirty_owner == Some(txn) {
                    f.dirty_owner = None;
                    f.committed_dirty = true;
                }
            }
        }
    }

    /// Writes every committed-dirty frame to the backend and marks it
    /// clean — the fuzzy-checkpoint walk. The dirty set is collected
    /// across all shards (each lock held only long enough to clone the
    /// frame Arcs) and written as one globally pid-sorted vectored
    /// batch: shards stripe pages `pid % shards`, so only a
    /// cross-shard batch lets contiguous pids coalesce into runs. No
    /// lock is held during the backend write, so writers never stall
    /// behind checkpoint I/O at all. A frame a writer redirties behind
    /// the walk swaps in a fresh Arc under copy-on-write; the
    /// `ptr_eq` guard leaves its flag set, and the next checkpoint
    /// catches it. Returns how many frames were written. The caller
    /// syncs the backend afterwards.
    pub fn flush_committed(&self) -> Result<usize> {
        let mut pages: Vec<(u32, PageArc)> = Vec::new();
        for shard in &self.inner.shards {
            let shard = shard.lock();
            pages.extend(
                shard
                    .frames
                    .iter()
                    .filter(|(_, f)| f.committed_dirty)
                    .map(|(&pid, f)| (pid, Arc::clone(&f.data))),
            );
        }
        pages.sort_by_key(|(pid, _)| *pid);
        self.inner.write_batch(&pages)?;
        for (pid, written) in &pages {
            let mut shard = self.inner.shards[self.inner.shard_idx(PageId(*pid))].lock();
            if let Some(f) = shard.frames.get_mut(pid) {
                if Arc::ptr_eq(&f.data, written) {
                    f.committed_dirty = false;
                }
            }
        }
        Ok(pages.len())
    }

    /// Number of committed-dirty frames across all shards (test hook).
    pub fn committed_dirty_count(&self) -> usize {
        self.inner
            .shards
            .iter()
            .map(|s| {
                s.lock()
                    .frames
                    .values()
                    .filter(|f| f.committed_dirty)
                    .count()
            })
            .sum()
    }

    /// Discards `txn`'s dirty frames (abort: the backend still holds the
    /// pre-transaction images).
    pub fn discard_txn(&self, txn: TxnId) {
        for shard in &self.inner.shards {
            let mut shard = shard.lock();
            shard.frames.retain(|_, f| f.dirty_owner != Some(txn));
            let shard = &mut *shard;
            let frames = &shard.frames;
            shard.clock.retain(|pid| frames.contains_key(pid));
            shard.hand = 0;
        }
    }

    /// True if any frame is dirty (used by checkpoint assertions).
    pub fn any_dirty(&self) -> bool {
        self.inner
            .shards
            .iter()
            .any(|s| s.lock().frames.values().any(|f| f.dirty_owner.is_some()))
    }

    /// Drops the entire cache (used after out-of-band backend changes,
    /// e.g. recovery replay). Outstanding guards keep their snapshots
    /// but no longer pin anything resident. In-flight faults that raced
    /// this call discard their bytes and re-read.
    pub fn invalidate(&self) {
        self.inner.invalidate();
    }

    /// Durably syncs the backend.
    pub fn sync_backend(&self) -> Result<()> {
        IoStats::bump(&self.inner.stats.data_syncs);
        self.inner.backend.sync()
    }

    /// Direct backend write used by recovery (bypasses cache and stats).
    pub fn recovery_write(&self, pid: PageId, data: &[u8; PAGE_SIZE]) -> Result<()> {
        self.inner.backend.write_page(pid, data)
    }

    /// Direct backend read used by recovery.
    pub fn recovery_read(&self, pid: PageId, out: &mut [u8; PAGE_SIZE]) -> Result<()> {
        self.inner.backend.read_page(pid, out)
    }

    /// Number of cached frames across all shards (test hook).
    pub fn cached_frames(&self) -> usize {
        self.inner
            .shards
            .iter()
            .map(|s| s.lock().frames.len())
            .sum()
    }
}

impl Drop for BufferPool {
    fn drop(&mut self) {
        // Stop the prefetch workers first: they hold the inner Arc and
        // may still be installing frames.
        if let Some(p) = self.prefetcher.take() {
            p.shutdown();
        }
        // A PageGuard outliving the pool means a pin was leaked past the
        // storage layer's lifetime — catch it loudly in tests rather
        // than silently in production traces.
        if !std::thread::panicking() {
            let pins = self.inner.outstanding_pins();
            assert_eq!(pins, 0, "{pins} PageGuard(s) outlive their BufferPool");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{FaultInjector, MemBackend};
    use crate::page::page_from_slice;
    use std::sync::mpsc;
    use std::time::{Duration, Instant};

    fn pool(cap: usize, shards: usize) -> BufferPool {
        BufferPool::new(
            Box::new(MemBackend::new()),
            cap,
            shards,
            IoStats::new_shared(),
        )
    }

    #[test]
    fn txn_writes_invisible_to_backend_until_flush() {
        let p = pool(8, 2);
        let data = page_from_slice(b"uncommitted");
        p.write_txn(TxnId(1), PageId(3), &data);
        // The cache serves the new data...
        let mut out = zeroed_page();
        p.read(PageId(3), &mut out).unwrap();
        assert_eq!(&out[..11], b"uncommitted");
        // ...but after discarding, the backend's (zero) image returns.
        p.discard_txn(TxnId(1));
        p.read(PageId(3), &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0));
    }

    #[test]
    fn flush_persists_and_cleans() {
        let p = pool(8, 2);
        let data = page_from_slice(b"committed");
        p.write_txn(TxnId(1), PageId(3), &data);
        assert_eq!(p.dirty_of(TxnId(1)).len(), 1);
        p.flush_txn(TxnId(1), true).unwrap();
        assert!(p.dirty_of(TxnId(1)).is_empty());
        assert!(!p.any_dirty());
        p.invalidate();
        let mut out = zeroed_page();
        p.read(PageId(3), &mut out).unwrap();
        assert_eq!(&out[..9], b"committed");
    }

    #[test]
    fn clock_evicts_clean_not_dirty() {
        // One shard so all four pages compete for two frames.
        let p = pool(2, 1);
        let d = page_from_slice(b"d");
        p.write_txn(TxnId(1), PageId(0), &d);
        let mut out = zeroed_page();
        p.read(PageId(1), &mut out).unwrap();
        p.read(PageId(2), &mut out).unwrap();
        p.read(PageId(3), &mut out).unwrap();
        // Capacity 2: the dirty frame survives every eviction.
        assert!(p.dirty_of(TxnId(1)).iter().any(|(pid, _)| pid.0 == 0));
        assert!(p.cached_frames() <= 2);
    }

    #[test]
    fn hit_miss_accounting() {
        let stats = IoStats::new_shared();
        let p = BufferPool::new(Box::new(MemBackend::new()), 8, 2, Arc::clone(&stats));
        let mut out = zeroed_page();
        p.read(PageId(5), &mut out).unwrap(); // miss
        p.read(PageId(5), &mut out).unwrap(); // hit
        let s = stats.snapshot();
        assert_eq!(s.logical_reads, 2);
        assert_eq!(s.physical_reads, 1);
    }

    #[test]
    fn write_through_is_immediate() {
        let stats = IoStats::new_shared();
        let p = BufferPool::new(Box::new(MemBackend::new()), 8, 2, Arc::clone(&stats));
        p.write_through(PageId(9), &page_from_slice(b"meta"))
            .unwrap();
        assert!(!p.any_dirty());
        p.invalidate();
        let mut out = zeroed_page();
        p.read(PageId(9), &mut out).unwrap();
        assert_eq!(&out[..4], b"meta");
        assert_eq!(stats.snapshot().physical_writes, 1);
    }

    #[test]
    fn pinned_read_is_zero_copy_and_snapshot_isolated() {
        let p = pool(8, 2);
        p.write_through(PageId(4), &page_from_slice(b"before"))
            .unwrap();
        let g = p.read_pinned(PageId(4)).unwrap();
        assert_eq!(&g[..6], b"before");
        assert_eq!(p.outstanding_pins(), 1);
        // A writer replaces the frame's bytes; the guard's snapshot
        // survives (copy-on-write).
        p.write_txn(TxnId(1), PageId(4), &page_from_slice(b"after!"));
        assert_eq!(&g[..6], b"before");
        let g2 = p.read_pinned(PageId(4)).unwrap();
        assert_eq!(&g2[..6], b"after!");
        drop(g);
        drop(g2);
        assert_eq!(p.outstanding_pins(), 0);
        p.discard_txn(TxnId(1));
    }

    #[test]
    fn pinned_pages_survive_eviction_pressure() {
        let stats = IoStats::new_shared();
        let p = BufferPool::new(Box::new(MemBackend::new()), 2, 1, Arc::clone(&stats));
        p.write_through(PageId(0), &page_from_slice(b"pinned"))
            .unwrap();
        let guard = p.read_pinned(PageId(0)).unwrap();
        let mut out = zeroed_page();
        for pid in 1..20 {
            p.read(PageId(pid), &mut out).unwrap();
        }
        // The pinned frame is still resident: reading it again is a hit.
        let before = stats.snapshot().physical_reads;
        p.read(PageId(0), &mut out).unwrap();
        assert_eq!(stats.snapshot().physical_reads, before);
        assert_eq!(&out[..6], b"pinned");
        assert!(stats.snapshot().evictions > 0, "pressure did evict others");
        drop(guard);
    }

    #[test]
    fn clock_gives_second_chance() {
        let stats = IoStats::new_shared();
        let p = BufferPool::new(Box::new(MemBackend::new()), 2, 1, Arc::clone(&stats));
        let mut out = zeroed_page();
        p.read(PageId(0), &mut out).unwrap();
        p.read(PageId(1), &mut out).unwrap();
        // Re-reference page 0, then fault page 2: the sweep clears 0's
        // bit, passes it over once, and evicts page 1 instead.
        p.read(PageId(0), &mut out).unwrap();
        p.read(PageId(2), &mut out).unwrap();
        let before = stats.snapshot().physical_reads;
        p.read(PageId(0), &mut out).unwrap(); // still resident: hit
        assert_eq!(stats.snapshot().physical_reads, before);
        p.read(PageId(1), &mut out).unwrap(); // evicted: miss
        assert_eq!(stats.snapshot().physical_reads, before + 1);
    }

    #[test]
    fn all_dirty_overflows_capacity() {
        let stats = IoStats::new_shared();
        let p = BufferPool::new(Box::new(MemBackend::new()), 2, 1, Arc::clone(&stats));
        for pid in 0..5 {
            p.write_txn(TxnId(1), PageId(pid), &page_from_slice(b"dirty"));
        }
        // No-steal: every frame is dirty, so the pool grows past its
        // two-frame budget instead of evicting.
        assert_eq!(p.cached_frames(), 5);
        assert!(stats.snapshot().dirty_overflows > 0);
        assert_eq!(stats.snapshot().evictions, 0);
        p.discard_txn(TxnId(1));
    }

    #[test]
    fn committed_dirty_frames_flush_and_write_on_evict() {
        let stats = IoStats::new_shared();
        let p = BufferPool::new(Box::new(MemBackend::new()), 2, 1, Arc::clone(&stats));
        for pid in 0..5u32 {
            p.write_txn(TxnId(1), PageId(pid), &page_from_slice(&[b'a' + pid as u8]));
        }
        p.mark_committed(TxnId(1));
        assert!(!p.any_dirty());
        assert_eq!(p.committed_dirty_count(), 5);
        // Faulting one more page forces eviction: with more committed
        // frames than capacity, some must be written out on evict
        // instead of overflowing the pool.
        let mut out = zeroed_page();
        p.read(PageId(10), &mut out).unwrap();
        assert!(p.cached_frames() <= 2, "pool stayed bounded");
        assert!(p.committed_dirty_count() < 5, "write-on-evict fired");
        // flush_committed writes whatever is still resident.
        let resident = p.committed_dirty_count();
        assert_eq!(p.flush_committed().unwrap(), resident);
        assert_eq!(p.committed_dirty_count(), 0);
        // Every committed write reached the backend, one way or the other.
        p.invalidate();
        for pid in 0..5u32 {
            p.read(PageId(pid), &mut out).unwrap();
            assert_eq!(out[0], b'a' + pid as u8, "page {pid} durable");
        }
    }

    #[test]
    fn batched_flush_counts_runs_and_coalesced_pages() {
        let stats = IoStats::new_shared();
        let p = BufferPool::new(Box::new(MemBackend::new()), 64, 1, Arc::clone(&stats));
        // Two contiguous runs: [0,1,2] and [10,11].
        for pid in [0u32, 1, 2, 10, 11] {
            p.write_txn(TxnId(1), PageId(pid), &page_from_slice(&[pid as u8]));
        }
        p.flush_txn(TxnId(1), false).unwrap();
        let s = stats.snapshot();
        assert_eq!(s.physical_writes, 5);
        assert_eq!(s.write_runs, 2);
        assert_eq!(s.coalesced_writes, 3);
    }

    #[test]
    fn guard_outliving_pool_trips_assertion() {
        let p = pool(4, 2);
        p.write_through(PageId(1), &page_from_slice(b"x")).unwrap();
        let guard = p.read_pinned(PageId(1)).unwrap();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| drop(p)));
        assert!(
            err.is_err(),
            "dropping the pool under a live pin must panic"
        );
        drop(guard);
    }

    #[test]
    fn concurrent_readers_on_distinct_shards() {
        let p = Arc::new(pool(64, 8));
        for pid in 0..8 {
            p.write_through(PageId(pid), &page_from_slice(&[b'a' + pid as u8]))
                .unwrap();
        }
        let barrier = Arc::new(std::sync::Barrier::new(8));
        let handles: Vec<_> = (0..8u32)
            .map(|pid| {
                let p = Arc::clone(&p);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    for _ in 0..500 {
                        let g = p.read_pinned(PageId(pid)).unwrap();
                        assert_eq!(g[0], b'a' + pid as u8);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(p.outstanding_pins(), 0);
    }

    /// A backend whose read of one designated page blocks until released
    /// (or a generous timeout), signalling when the read starts.
    struct GatedBackend {
        inner: MemBackend,
        gate_pid: u32,
        started: mpsc::Sender<()>,
        release: Mutex<mpsc::Receiver<()>>,
    }

    impl Backend for GatedBackend {
        fn read_page(&self, pid: PageId, out: &mut [u8; PAGE_SIZE]) -> Result<()> {
            if pid.0 == self.gate_pid {
                self.started.send(()).ok();
                let _ = self.release.lock().recv_timeout(Duration::from_secs(10));
            }
            self.inner.read_page(pid, out)
        }
        fn write_page(&self, pid: PageId, data: &[u8; PAGE_SIZE]) -> Result<()> {
            self.inner.write_page(pid, data)
        }
        fn page_count(&self) -> u32 {
            self.inner.page_count()
        }
        fn sync(&self) -> Result<()> {
            self.inner.sync()
        }
    }

    #[test]
    fn cold_read_does_not_block_hot_hit_in_same_shard() {
        let (started_tx, started_rx) = mpsc::channel();
        let (release_tx, release_rx) = mpsc::channel();
        let backend = GatedBackend {
            inner: MemBackend::new(),
            gate_pid: 0,
            started: started_tx,
            release: Mutex::new(release_rx),
        };
        backend
            .write_page(PageId(1), &page_from_slice(b"hot"))
            .unwrap();
        // One shard: pages 0 and 1 share a lock.
        let p = Arc::new(BufferPool::new(
            Box::new(backend),
            8,
            1,
            IoStats::new_shared(),
        ));
        // Warm page 1 so the next access is a pure hit.
        let mut out = zeroed_page();
        p.read(PageId(1), &mut out).unwrap();
        let cold = {
            let p = Arc::clone(&p);
            std::thread::spawn(move || {
                let mut out = zeroed_page();
                p.read(PageId(0), &mut out).unwrap();
            })
        };
        // Wait until the cold fault is inside the backend read...
        started_rx
            .recv_timeout(Duration::from_secs(10))
            .expect("cold read reached the backend");
        // ...then the hot hit must complete while that read is still
        // blocked. If the fault held the shard lock, this would stall
        // until the gate times out.
        let t = Instant::now();
        p.read(PageId(1), &mut out).unwrap();
        assert_eq!(&out[..3], b"hot");
        assert!(
            t.elapsed() < Duration::from_secs(2),
            "hit stalled behind an in-flight cold read"
        );
        release_tx.send(()).ok();
        cold.join().unwrap();
    }

    /// A backend that stamps each page with its id and sleeps briefly,
    /// widening race windows.
    struct SlowStampBackend {
        delay: Duration,
        reads: AtomicU64,
    }

    impl Backend for SlowStampBackend {
        fn read_page(&self, pid: PageId, out: &mut [u8; PAGE_SIZE]) -> Result<()> {
            self.reads.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(self.delay);
            out.fill(0);
            out[..4].copy_from_slice(&pid.0.to_le_bytes());
            Ok(())
        }
        fn write_page(&self, _pid: PageId, _data: &[u8; PAGE_SIZE]) -> Result<()> {
            Ok(())
        }
        fn page_count(&self) -> u32 {
            u32::MAX
        }
        fn sync(&self) -> Result<()> {
            Ok(())
        }
    }

    #[test]
    fn concurrent_faulters_of_one_page_share_one_read() {
        let stats = IoStats::new_shared();
        let p = Arc::new(BufferPool::new(
            Box::new(SlowStampBackend {
                delay: Duration::from_millis(50),
                reads: AtomicU64::new(0),
            }),
            8,
            1,
            Arc::clone(&stats),
        ));
        let barrier = Arc::new(std::sync::Barrier::new(8));
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let p = Arc::clone(&p);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    if i % 2 == 0 {
                        let mut out = zeroed_page();
                        p.read(PageId(7), &mut out).unwrap();
                        assert_eq!(&out[..4], &7u32.to_le_bytes());
                    } else {
                        let g = p.read_pinned(PageId(7)).unwrap();
                        assert_eq!(&g[..4], &7u32.to_le_bytes());
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let s = stats.snapshot();
        assert_eq!(s.physical_reads, 1, "one physical read for 8 faulters");
        assert!(
            s.inflight_waits >= 1,
            "someone waited on the in-flight read"
        );
    }

    #[test]
    fn eviction_races_inflight_faults_without_corruption() {
        // Capacity 2, one shard, slow backend: installs constantly race
        // evictions and waiter re-loops. Contents must stay exact.
        let p = Arc::new(BufferPool::new(
            Box::new(SlowStampBackend {
                delay: Duration::from_millis(1),
                reads: AtomicU64::new(0),
            }),
            2,
            1,
            IoStats::new_shared(),
        ));
        let handles: Vec<_> = (0..4u32)
            .map(|t| {
                let p = Arc::clone(&p);
                std::thread::spawn(move || {
                    for i in 0..50u32 {
                        let pid = (t * 13 + i) % 16;
                        if i % 2 == 0 {
                            let mut out = zeroed_page();
                            p.read(PageId(pid), &mut out).unwrap();
                            assert_eq!(&out[..4], &pid.to_le_bytes());
                        } else {
                            let g = p.read_pinned(PageId(pid)).unwrap();
                            assert_eq!(&g[..4], &pid.to_le_bytes());
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(p.outstanding_pins(), 0);
    }

    #[test]
    fn failed_fault_clears_inflight_and_pool_stays_usable() {
        let inj = Arc::new(FaultInjector::new(MemBackend::new()));
        inj.write_page(PageId(3), &page_from_slice(b"ok")).unwrap();
        let stats = IoStats::new_shared();
        let p = BufferPool::new(Box::new(Arc::clone(&inj)), 8, 2, Arc::clone(&stats));
        inj.fail_after(0);
        let mut out = zeroed_page();
        // Each caller surfaces its own error...
        assert!(p.read(PageId(3), &mut out).is_err());
        assert!(p.read_pinned(PageId(3)).is_err());
        inj.heal();
        // ...and the in-flight entry was cleared: the retry faults fresh.
        p.read(PageId(3), &mut out).unwrap();
        assert_eq!(&out[..2], b"ok");
        assert_eq!(stats.snapshot().physical_reads, 3);
    }

    fn prefetch_pool(cap: usize, workers: usize) -> (BufferPool, Arc<IoStats>) {
        let stats = IoStats::new_shared();
        let p = BufferPool::with_prefetch(
            Box::new(MemBackend::new()),
            cap,
            2,
            Arc::clone(&stats),
            workers,
            64,
        );
        (p, stats)
    }

    #[test]
    fn prefetch_warms_cache_and_counts_hits() {
        let (p, stats) = prefetch_pool(32, 2);
        for pid in 0..8u32 {
            p.write_through(PageId(pid), &page_from_slice(&[b'p', pid as u8]))
                .unwrap();
        }
        p.invalidate();
        let pids: Vec<PageId> = (0..8).map(PageId).collect();
        p.prefetch(&pids);
        p.prefetch_quiesce();
        let faulted = stats.snapshot().physical_reads;
        assert!(faulted >= 8, "prefetch performed the physical reads");
        let mut out = zeroed_page();
        for pid in 0..8u32 {
            p.read(PageId(pid), &mut out).unwrap();
            assert_eq!(&out[..2], &[b'p', pid as u8]);
        }
        let s = stats.snapshot();
        assert_eq!(s.physical_reads, faulted, "demand reads were all hits");
        assert_eq!(s.prefetch_issued, 8);
        assert_eq!(s.prefetch_hits, 8);
    }

    #[test]
    fn prefetch_disabled_is_noop() {
        let (p, stats) = prefetch_pool(32, 0);
        p.prefetch(&[PageId(1), PageId(2)]);
        p.prefetch_quiesce();
        assert_eq!(stats.snapshot().prefetch_issued, 0);
        assert_eq!(stats.snapshot().physical_reads, 0);
    }

    #[test]
    fn prefetch_failure_is_silent_and_demand_read_retries() {
        let inj = Arc::new(FaultInjector::new(MemBackend::new()));
        inj.write_page(PageId(5), &page_from_slice(b"later"))
            .unwrap();
        let stats = IoStats::new_shared();
        let p =
            BufferPool::with_prefetch(Box::new(Arc::clone(&inj)), 8, 2, Arc::clone(&stats), 1, 16);
        inj.fail_after(0);
        p.prefetch(&[PageId(5)]);
        p.prefetch_quiesce();
        // The failure was swallowed: nothing installed, nothing counted
        // as transferred, no error anywhere.
        assert_eq!(stats.snapshot().physical_reads, 0);
        assert_eq!(stats.snapshot().prefetch_hits, 0);
        assert!(inj.injected() >= 1);
        // While the injector still fails, the demand read surfaces the
        // error to its caller — exactly once, then the pool recovers.
        let mut out = zeroed_page();
        assert!(p.read(PageId(5), &mut out).is_err());
        inj.heal();
        p.read(PageId(5), &mut out).unwrap();
        assert_eq!(&out[..5], b"later");
    }

    #[test]
    fn wasted_prefetch_is_counted_on_eviction() {
        let stats = IoStats::new_shared();
        let p =
            BufferPool::with_prefetch(Box::new(MemBackend::new()), 2, 1, Arc::clone(&stats), 1, 64);
        // Six prefetched pages into a two-frame pool: most are evicted
        // before any demand read touches them.
        let pids: Vec<PageId> = (0..6).map(PageId).collect();
        p.prefetch(&pids);
        p.prefetch_quiesce();
        assert!(p.cached_frames() <= 2);
        assert!(
            stats.snapshot().prefetch_wasted > 0,
            "untouched prefetched frames were evicted"
        );
    }

    #[test]
    fn read_pinned_and_prefetched_reads_agree() {
        let (p, _stats) = prefetch_pool(64, 2);
        for pid in 0..12u32 {
            p.write_through(PageId(pid), &page_from_slice(&[0xAB, pid as u8]))
                .unwrap();
        }
        p.invalidate();
        let pids: Vec<PageId> = (0..12).map(PageId).collect();
        p.prefetch(&pids);
        p.prefetch_quiesce();
        for pid in 0..12u32 {
            let mut copied = zeroed_page();
            p.read(PageId(pid), &mut copied).unwrap();
            let pinned = p.read_pinned(PageId(pid)).unwrap();
            assert_eq!(&copied[..], &pinned[..], "page {pid} diverged");
        }
    }
}
