//! The buffer pool: page caching with no-steal transactional dirtying.
//!
//! Frames dirtied by a transaction stay in the pool until that
//! transaction commits (force-at-commit) or aborts (frames discarded) —
//! the simplest policy that makes the redo-only WAL sound. Clean frames
//! are evicted LRU when the pool exceeds its capacity; dirty frames are
//! never evicted (the pool grows past capacity rather than stealing).

use crate::backend::Backend;
use crate::page::{zeroed_page, PageBuf, PageId, PAGE_SIZE};
use crate::stats::IoStats;
use crate::txn::TxnId;
use crate::Result;
use std::collections::HashMap;
use std::sync::Arc;

struct Frame {
    data: PageBuf,
    /// `Some(txn)` when the frame holds uncommitted writes of `txn`.
    dirty_owner: Option<TxnId>,
    last_use: u64,
}

/// The buffer pool. All methods are called under the space's pool lock.
pub struct BufferPool {
    backend: Box<dyn Backend>,
    frames: HashMap<u32, Frame>,
    capacity: usize,
    tick: u64,
    stats: Arc<IoStats>,
}

impl BufferPool {
    /// Creates a pool of `capacity` frames over `backend`.
    pub fn new(backend: Box<dyn Backend>, capacity: usize, stats: Arc<IoStats>) -> BufferPool {
        BufferPool {
            backend,
            frames: HashMap::new(),
            capacity: capacity.max(1),
            tick: 0,
            stats,
        }
    }

    fn touch(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    fn evict_if_needed(&mut self) {
        while self.frames.len() > self.capacity {
            let victim = self
                .frames
                .iter()
                .filter(|(_, f)| f.dirty_owner.is_none())
                .min_by_key(|(_, f)| f.last_use)
                .map(|(&pid, _)| pid);
            match victim {
                Some(pid) => {
                    self.frames.remove(&pid);
                }
                // Everything is dirty-uncommitted: no-steal forbids
                // eviction, so the pool temporarily exceeds capacity.
                None => return,
            }
        }
    }

    /// Reads page `pid` into `out` (logical read; miss = physical read).
    pub fn read(&mut self, pid: PageId, out: &mut [u8; PAGE_SIZE]) -> Result<()> {
        IoStats::bump(&self.stats.logical_reads);
        let tick = self.touch();
        if let Some(f) = self.frames.get_mut(&pid.0) {
            f.last_use = tick;
            out.copy_from_slice(&f.data[..]);
            return Ok(());
        }
        IoStats::bump(&self.stats.physical_reads);
        let mut buf = zeroed_page();
        self.backend.read_page(pid, &mut buf)?;
        out.copy_from_slice(&buf[..]);
        self.frames.insert(
            pid.0,
            Frame {
                data: buf,
                dirty_owner: None,
                last_use: tick,
            },
        );
        self.evict_if_needed();
        Ok(())
    }

    /// Buffers a transactional write of page `pid` by `txn` (no-steal:
    /// nothing reaches the backend until commit).
    pub fn write_txn(&mut self, txn: TxnId, pid: PageId, data: &[u8; PAGE_SIZE]) {
        IoStats::bump(&self.stats.logical_writes);
        let tick = self.touch();
        let frame = self.frames.entry(pid.0).or_insert_with(|| Frame {
            data: zeroed_page(),
            dirty_owner: None,
            last_use: tick,
        });
        frame.data.copy_from_slice(data);
        frame.dirty_owner = Some(txn);
        frame.last_use = tick;
        self.evict_if_needed();
    }

    /// Writes a metadata page through to the backend immediately (its
    /// redo image must already be in the log) and refreshes the cache.
    pub fn write_through(&mut self, pid: PageId, data: &[u8; PAGE_SIZE]) -> Result<()> {
        IoStats::bump(&self.stats.logical_writes);
        IoStats::bump(&self.stats.physical_writes);
        self.backend.write_page(pid, data)?;
        let tick = self.touch();
        self.frames.insert(
            pid.0,
            Frame {
                data: crate::page::page_from_slice(data),
                dirty_owner: None,
                last_use: tick,
            },
        );
        self.evict_if_needed();
        Ok(())
    }

    /// Returns copies of all dirty frames owned by `txn` (for the WAL).
    pub fn dirty_of(&self, txn: TxnId) -> Vec<(PageId, PageBuf)> {
        let mut out: Vec<(PageId, PageBuf)> = self
            .frames
            .iter()
            .filter(|(_, f)| f.dirty_owner == Some(txn))
            .map(|(&pid, f)| (PageId(pid), f.data.clone()))
            .collect();
        out.sort_by_key(|(pid, _)| pid.0);
        out
    }

    /// Flushes `txn`'s dirty frames to the backend and marks them clean
    /// (the force step of commit — call after their images are logged).
    pub fn flush_txn(&mut self, txn: TxnId) -> Result<()> {
        let pids: Vec<u32> = self
            .frames
            .iter()
            .filter(|(_, f)| f.dirty_owner == Some(txn))
            .map(|(&pid, _)| pid)
            .collect();
        for pid in pids {
            let frame = self.frames.get_mut(&pid).expect("frame exists");
            IoStats::bump(&self.stats.physical_writes);
            self.backend.write_page(PageId(pid), &frame.data)?;
            frame.dirty_owner = None;
        }
        self.backend.sync()?;
        self.evict_if_needed();
        Ok(())
    }

    /// Discards `txn`'s dirty frames (abort: the backend still holds the
    /// pre-transaction images).
    pub fn discard_txn(&mut self, txn: TxnId) {
        self.frames.retain(|_, f| f.dirty_owner != Some(txn));
    }

    /// True if any frame is dirty (used by checkpoint assertions).
    pub fn any_dirty(&self) -> bool {
        self.frames.values().any(|f| f.dirty_owner.is_some())
    }

    /// Drops the entire cache (used after out-of-band backend changes,
    /// e.g. recovery replay).
    pub fn invalidate(&mut self) {
        self.frames.clear();
    }

    /// Durably syncs the backend.
    pub fn sync_backend(&self) -> Result<()> {
        self.backend.sync()
    }

    /// Direct backend write used by recovery (bypasses cache and stats).
    pub fn recovery_write(&mut self, pid: PageId, data: &[u8; PAGE_SIZE]) -> Result<()> {
        self.backend.write_page(pid, data)
    }

    /// Direct backend read used by recovery.
    pub fn recovery_read(&mut self, pid: PageId, out: &mut [u8; PAGE_SIZE]) -> Result<()> {
        self.backend.read_page(pid, out)
    }

    /// Number of cached frames (test hook).
    pub fn cached_frames(&self) -> usize {
        self.frames.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;
    use crate::page::page_from_slice;

    fn pool(cap: usize) -> BufferPool {
        BufferPool::new(Box::new(MemBackend::new()), cap, IoStats::new_shared())
    }

    #[test]
    fn txn_writes_invisible_to_backend_until_flush() {
        let mut p = pool(8);
        let data = page_from_slice(b"uncommitted");
        p.write_txn(TxnId(1), PageId(3), &data);
        // The cache serves the new data...
        let mut out = zeroed_page();
        p.read(PageId(3), &mut out).unwrap();
        assert_eq!(&out[..11], b"uncommitted");
        // ...but after discarding, the backend's (zero) image returns.
        p.discard_txn(TxnId(1));
        p.read(PageId(3), &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0));
    }

    #[test]
    fn flush_persists_and_cleans() {
        let mut p = pool(8);
        let data = page_from_slice(b"committed");
        p.write_txn(TxnId(1), PageId(3), &data);
        assert_eq!(p.dirty_of(TxnId(1)).len(), 1);
        p.flush_txn(TxnId(1)).unwrap();
        assert!(p.dirty_of(TxnId(1)).is_empty());
        assert!(!p.any_dirty());
        p.invalidate();
        let mut out = zeroed_page();
        p.read(PageId(3), &mut out).unwrap();
        assert_eq!(&out[..9], b"committed");
    }

    #[test]
    fn lru_evicts_clean_not_dirty() {
        let mut p = pool(2);
        let d = page_from_slice(b"d");
        p.write_txn(TxnId(1), PageId(0), &d);
        let mut out = zeroed_page();
        p.read(PageId(1), &mut out).unwrap();
        p.read(PageId(2), &mut out).unwrap();
        p.read(PageId(3), &mut out).unwrap();
        // Capacity 2: the dirty frame survives every eviction.
        assert!(p.dirty_of(TxnId(1)).iter().any(|(pid, _)| pid.0 == 0));
        assert!(p.cached_frames() <= 2);
    }

    #[test]
    fn hit_miss_accounting() {
        let stats = IoStats::new_shared();
        let mut p = BufferPool::new(Box::new(MemBackend::new()), 8, Arc::clone(&stats));
        let mut out = zeroed_page();
        p.read(PageId(5), &mut out).unwrap(); // miss
        p.read(PageId(5), &mut out).unwrap(); // hit
        let s = stats.snapshot();
        assert_eq!(s.logical_reads, 2);
        assert_eq!(s.physical_reads, 1);
    }

    #[test]
    fn write_through_is_immediate() {
        let stats = IoStats::new_shared();
        let mut p = BufferPool::new(Box::new(MemBackend::new()), 8, Arc::clone(&stats));
        p.write_through(PageId(9), &page_from_slice(b"meta"))
            .unwrap();
        assert!(!p.any_dirty());
        p.invalidate();
        let mut out = zeroed_page();
        p.read(PageId(9), &mut out).unwrap();
        assert_eq!(&out[..4], b"meta");
        assert_eq!(stats.snapshot().physical_writes, 1);
    }
}
