//! The buffer pool: sharded page caching with clock eviction, pinned
//! zero-copy reads, and no-steal transactional dirtying.
//!
//! The pool is split into `N` lock-striped shards, keyed by
//! `page_id % N`, so readers and writers touching different pages
//! contend only when their pages hash to the same shard. Each shard
//! runs a clock (second-chance) eviction policy: frames carry a
//! reference bit that a sweep clears before a frame becomes a victim,
//! replacing the previous O(n) LRU scan with an amortised O(1) hand
//! advance.
//!
//! Frames dirtied by a transaction stay in the pool until that
//! transaction commits (force-at-commit) or aborts (frames discarded) —
//! the no-steal policy that makes the redo-only WAL sound. Dirty and
//! pinned frames are never evicted; when a full clock sweep finds no
//! victim the shard temporarily exceeds its capacity (counted in
//! [`IoStats::dirty_overflows`]) rather than stealing.
//!
//! Page data lives behind `Arc<[u8; PAGE_SIZE]>`. [`BufferPool::read_pinned`]
//! clones that `Arc` into a [`PageGuard`] — no page copy — and pins the
//! frame against eviction until the guard drops. Writes go through
//! `Arc::make_mut`, so a write to a pinned page leaves the guard's
//! snapshot intact (copy-on-write) instead of mutating under a reader.

use crate::backend::Backend;
use crate::page::{zeroed_page, PageId, PAGE_SIZE};
use crate::stats::IoStats;
use crate::txn::TxnId;
use crate::Result;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::ops::Deref;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared, immutable-unless-sole-owner page bytes.
type PageArc = Arc<[u8; PAGE_SIZE]>;

struct Frame {
    data: PageArc,
    /// `Some(txn)` when the frame holds uncommitted writes of `txn`.
    dirty_owner: Option<TxnId>,
    /// The frame holds committed bytes newer than the backend's copy:
    /// the owning transaction committed no-force (its redo images are
    /// durable in the WAL) and the data write is deferred to the
    /// checkpointer — or to eviction, which may write-then-drop such a
    /// frame without a sync. Mutually exclusive with `dirty_owner`.
    committed_dirty: bool,
    /// Clock reference bit: set on access, cleared by the sweep.
    referenced: bool,
    /// Outstanding [`PageGuard`]s on this frame (shared with them so a
    /// guard can unpin without re-locking the shard).
    pins: Arc<AtomicU64>,
}

struct Shard {
    frames: HashMap<u32, Frame>,
    /// Clock ring of resident page ids; `hand` is the sweep position.
    clock: Vec<u32>,
    hand: usize,
}

impl Shard {
    fn new() -> Shard {
        Shard {
            frames: HashMap::new(),
            clock: Vec::new(),
            hand: 0,
        }
    }
}

/// A pinned, zero-copy view of one page.
///
/// Holding a guard keeps its frame in the pool (eviction skips pinned
/// frames) and keeps this snapshot of the bytes alive even if a writer
/// later replaces the frame's contents (copy-on-write). The pool
/// asserts on drop that no guard outlives it.
pub struct PageGuard {
    data: PageArc,
    frame_pins: Arc<AtomicU64>,
    /// The owning shard's pin total — striped so guards on different
    /// shards never contend on one pool-wide counter.
    shard_pins: Arc<AtomicU64>,
}

impl Deref for PageGuard {
    type Target = [u8; PAGE_SIZE];
    fn deref(&self) -> &[u8; PAGE_SIZE] {
        &self.data
    }
}

impl Drop for PageGuard {
    fn drop(&mut self) {
        self.frame_pins.fetch_sub(1, Ordering::Release);
        self.shard_pins.fetch_sub(1, Ordering::Release);
    }
}

/// The sharded buffer pool. Internally synchronised: all methods take
/// `&self` and lock only the shard(s) they touch.
pub struct BufferPool {
    backend: Box<dyn Backend>,
    shards: Vec<Mutex<Shard>>,
    /// Per-shard frame budget.
    shard_capacity: usize,
    stats: Arc<IoStats>,
    /// Per-shard counts of live [`PageGuard`]s (striped to keep guard
    /// pin/unpin off a shared cache line).
    shard_pins: Vec<Arc<AtomicU64>>,
}

impl BufferPool {
    /// Creates a pool of `capacity` frames over `backend`, striped into
    /// `shards` partitions (`page_id % shards`).
    pub fn new(
        backend: Box<dyn Backend>,
        capacity: usize,
        shards: usize,
        stats: Arc<IoStats>,
    ) -> BufferPool {
        let shards = shards.max(1);
        let shard_capacity = capacity.max(1).div_ceil(shards);
        BufferPool {
            backend,
            shards: (0..shards).map(|_| Mutex::new(Shard::new())).collect(),
            shard_capacity,
            stats,
            shard_pins: (0..shards).map(|_| Arc::new(AtomicU64::new(0))).collect(),
        }
    }

    /// Number of shards the pool is striped into.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Pool-wide count of outstanding page pins (test hook).
    pub fn outstanding_pins(&self) -> u64 {
        self.shard_pins
            .iter()
            .map(|p| p.load(Ordering::Acquire))
            .sum()
    }

    fn shard_idx(&self, pid: PageId) -> usize {
        pid.0 as usize % self.shards.len()
    }

    fn shard(&self, pid: PageId) -> &Mutex<Shard> {
        &self.shards[self.shard_idx(pid)]
    }

    /// Clock sweep: evict unreferenced, unpinned frames until the shard
    /// fits its budget. A frame whose reference bit is set gets a
    /// second chance (the bit is cleared and the hand moves on).
    /// Uncommitted-dirty frames are never evicted (no-steal); a
    /// committed-dirty frame is written to the backend first — no sync
    /// needed, its redo image is already durable in the WAL — so a
    /// churn workload bigger than the pool stays bounded even between
    /// checkpoints. If a bounded sweep finds no victim the shard
    /// overflows its capacity rather than stealing.
    fn evict_to_capacity(&self, shard: &mut Shard) {
        while shard.frames.len() > self.shard_capacity {
            let mut evicted = false;
            let budget = shard.clock.len() * 2;
            let mut scanned = 0;
            while scanned < budget && !shard.clock.is_empty() {
                if shard.hand >= shard.clock.len() {
                    shard.hand = 0;
                }
                let pid = shard.clock[shard.hand];
                let f = shard.frames.get_mut(&pid).expect("clock entry resident");
                if f.dirty_owner.is_some() || f.pins.load(Ordering::Acquire) > 0 {
                    shard.hand += 1;
                } else if f.referenced {
                    f.referenced = false;
                    shard.hand += 1;
                } else {
                    if f.committed_dirty {
                        // Write-on-evict; on failure keep the frame (the
                        // checkpointer will retry) and move on.
                        if self.backend.write_page(PageId(pid), &f.data).is_err() {
                            shard.hand += 1;
                            scanned += 1;
                            continue;
                        }
                        IoStats::bump(&self.stats.physical_writes);
                    }
                    shard.frames.remove(&pid);
                    shard.clock.remove(shard.hand);
                    IoStats::bump(&self.stats.evictions);
                    evicted = true;
                    break;
                }
                scanned += 1;
            }
            if !evicted {
                IoStats::bump(&self.stats.dirty_overflows);
                return;
            }
        }
    }

    /// Faults `pid` into `shard` if absent, returning whether the caller
    /// must run eviction (a new frame was inserted).
    fn fault_in(&self, shard: &mut Shard, pid: PageId) -> Result<bool> {
        if shard.frames.contains_key(&pid.0) {
            return Ok(false);
        }
        IoStats::bump(&self.stats.physical_reads);
        let mut buf = zeroed_page();
        self.backend.read_page(pid, &mut buf)?;
        shard.frames.insert(
            pid.0,
            Frame {
                data: Arc::from(buf),
                dirty_owner: None,
                committed_dirty: false,
                // Clear on insertion: the bit means "hit since faulted
                // in", so one-touch pages lose to re-referenced ones.
                referenced: false,
                pins: Arc::new(AtomicU64::new(0)),
            },
        );
        shard.clock.push(pid.0);
        Ok(true)
    }

    /// Reads page `pid` into `out` (logical read; miss = physical read).
    pub fn read(&self, pid: PageId, out: &mut [u8; PAGE_SIZE]) -> Result<()> {
        IoStats::bump(&self.stats.logical_reads);
        let mut shard = self.shard(pid).lock();
        let inserted = self.fault_in(&mut shard, pid)?;
        let f = shard.frames.get_mut(&pid.0).expect("just faulted in");
        if !inserted {
            f.referenced = true;
        }
        out.copy_from_slice(&f.data[..]);
        if inserted {
            self.evict_to_capacity(&mut shard);
        }
        Ok(())
    }

    /// Pins page `pid` and returns a zero-copy guard over its bytes.
    /// The frame cannot be evicted while the guard lives; a concurrent
    /// writer gets a private copy (copy-on-write), so the guard always
    /// sees the bytes as of the pin.
    pub fn read_pinned(&self, pid: PageId) -> Result<PageGuard> {
        IoStats::bump(&self.stats.logical_reads);
        IoStats::bump(&self.stats.pinned_reads);
        let idx = self.shard_idx(pid);
        let mut shard = self.shards[idx].lock();
        let inserted = self.fault_in(&mut shard, pid)?;
        let f = shard.frames.get_mut(&pid.0).expect("just faulted in");
        if !inserted {
            f.referenced = true;
        }
        f.pins.fetch_add(1, Ordering::AcqRel);
        self.shard_pins[idx].fetch_add(1, Ordering::AcqRel);
        let guard = PageGuard {
            data: Arc::clone(&f.data),
            frame_pins: Arc::clone(&f.pins),
            shard_pins: Arc::clone(&self.shard_pins[idx]),
        };
        if inserted {
            self.evict_to_capacity(&mut shard);
        }
        Ok(guard)
    }

    /// Buffers a transactional write of page `pid` by `txn` (no-steal:
    /// nothing reaches the backend until commit).
    pub fn write_txn(&self, txn: TxnId, pid: PageId, data: &[u8; PAGE_SIZE]) {
        IoStats::bump(&self.stats.logical_writes);
        let mut shard = self.shard(pid).lock();
        let inserted = !shard.frames.contains_key(&pid.0);
        let frame = shard.frames.entry(pid.0).or_insert_with(|| Frame {
            data: Arc::new([0u8; PAGE_SIZE]),
            dirty_owner: None,
            committed_dirty: false,
            referenced: false,
            pins: Arc::new(AtomicU64::new(0)),
        });
        // Copy-on-write: pinned guards keep their snapshot.
        Arc::make_mut(&mut frame.data).copy_from_slice(data);
        frame.dirty_owner = Some(txn);
        // A transaction only writes pages it allocated (shadow paging
        // redirects everything else), and allocation always passes
        // through a write-through of the free-list image — so a frame
        // can never be committed-dirty when it becomes txn-dirty.
        frame.committed_dirty = false;
        frame.referenced = true;
        if inserted {
            shard.clock.push(pid.0);
            self.evict_to_capacity(&mut shard);
        }
    }

    /// Writes a metadata page through to the backend immediately (its
    /// redo image must already be in the log) and refreshes the cache.
    pub fn write_through(&self, pid: PageId, data: &[u8; PAGE_SIZE]) -> Result<()> {
        IoStats::bump(&self.stats.logical_writes);
        IoStats::bump(&self.stats.physical_writes);
        self.backend.write_page(pid, data)?;
        let mut shard = self.shard(pid).lock();
        let inserted = !shard.frames.contains_key(&pid.0);
        let frame = shard.frames.entry(pid.0).or_insert_with(|| Frame {
            data: Arc::new([0u8; PAGE_SIZE]),
            dirty_owner: None,
            committed_dirty: false,
            referenced: false,
            pins: Arc::new(AtomicU64::new(0)),
        });
        Arc::make_mut(&mut frame.data).copy_from_slice(data);
        frame.dirty_owner = None;
        frame.committed_dirty = false;
        frame.referenced = true;
        if inserted {
            shard.clock.push(pid.0);
            self.evict_to_capacity(&mut shard);
        }
        Ok(())
    }

    /// Returns all dirty frames owned by `txn` as shared references
    /// (`Arc` clones, no page copies), sorted by page id for the WAL.
    pub fn dirty_of(&self, txn: TxnId) -> Vec<(PageId, Arc<[u8; PAGE_SIZE]>)> {
        let mut out: Vec<(PageId, PageArc)> = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock();
            out.extend(
                shard
                    .frames
                    .iter()
                    .filter(|(_, f)| f.dirty_owner == Some(txn))
                    .map(|(&pid, f)| (PageId(pid), Arc::clone(&f.data))),
            );
        }
        out.sort_by_key(|(pid, _)| pid.0);
        out
    }

    /// Flushes `txn`'s dirty frames to the backend and marks them clean
    /// (the force step of commit — call after their images are logged).
    ///
    /// The backend is synced only when `sync` is requested **and** the
    /// transaction actually dirtied pages: a read-only commit performs
    /// no backend I/O at all. Group commit passes `sync = false` — the
    /// redo images in the WAL are already durable, so the data sync is
    /// deferred to the next checkpoint (no-force).
    pub fn flush_txn(&self, txn: TxnId, sync: bool) -> Result<()> {
        let mut flushed = 0usize;
        for shard in &self.shards {
            let mut shard = shard.lock();
            let pids: Vec<u32> = shard
                .frames
                .iter()
                .filter(|(_, f)| f.dirty_owner == Some(txn))
                .map(|(&pid, _)| pid)
                .collect();
            for pid in pids {
                let frame = shard.frames.get_mut(&pid).expect("frame exists");
                IoStats::bump(&self.stats.physical_writes);
                self.backend.write_page(PageId(pid), &frame.data)?;
                frame.dirty_owner = None;
                flushed += 1;
            }
            self.evict_to_capacity(&mut shard);
        }
        if sync && flushed > 0 {
            IoStats::bump(&self.stats.data_syncs);
            self.backend.sync()?;
        }
        Ok(())
    }

    /// Relabels `txn`'s dirty frames as committed-dirty without writing
    /// them (the no-force commit path: the redo images just became
    /// durable in the WAL, so the data writes are deferred to the
    /// checkpointer — or to write-on-evict under pool pressure).
    pub fn mark_committed(&self, txn: TxnId) {
        for shard in &self.shards {
            let mut shard = shard.lock();
            for f in shard.frames.values_mut() {
                if f.dirty_owner == Some(txn) {
                    f.dirty_owner = None;
                    f.committed_dirty = true;
                }
            }
        }
    }

    /// Writes every committed-dirty frame to the backend and marks it
    /// clean, one shard at a time — the fuzzy-checkpoint walk. Writers
    /// on other shards proceed while one shard flushes; a frame that
    /// turns committed-dirty behind the walk is simply caught by the
    /// next checkpoint. Returns how many frames were written. The
    /// caller syncs the backend afterwards.
    pub fn flush_committed(&self) -> Result<usize> {
        let mut flushed = 0usize;
        for shard in &self.shards {
            let mut shard = shard.lock();
            let pids: Vec<u32> = shard
                .frames
                .iter()
                .filter(|(_, f)| f.committed_dirty)
                .map(|(&pid, _)| pid)
                .collect();
            for pid in pids {
                let frame = shard.frames.get_mut(&pid).expect("frame exists");
                IoStats::bump(&self.stats.physical_writes);
                self.backend.write_page(PageId(pid), &frame.data)?;
                frame.committed_dirty = false;
                flushed += 1;
            }
        }
        Ok(flushed)
    }

    /// Number of committed-dirty frames across all shards (test hook).
    pub fn committed_dirty_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .frames
                    .values()
                    .filter(|f| f.committed_dirty)
                    .count()
            })
            .sum()
    }

    /// Discards `txn`'s dirty frames (abort: the backend still holds the
    /// pre-transaction images).
    pub fn discard_txn(&self, txn: TxnId) {
        for shard in &self.shards {
            let mut shard = shard.lock();
            shard.frames.retain(|_, f| f.dirty_owner != Some(txn));
            let shard = &mut *shard;
            let frames = &shard.frames;
            shard.clock.retain(|pid| frames.contains_key(pid));
            shard.hand = 0;
        }
    }

    /// True if any frame is dirty (used by checkpoint assertions).
    pub fn any_dirty(&self) -> bool {
        self.shards
            .iter()
            .any(|s| s.lock().frames.values().any(|f| f.dirty_owner.is_some()))
    }

    /// Drops the entire cache (used after out-of-band backend changes,
    /// e.g. recovery replay). Outstanding guards keep their snapshots
    /// but no longer pin anything resident.
    pub fn invalidate(&self) {
        for shard in &self.shards {
            let mut shard = shard.lock();
            shard.frames.clear();
            shard.clock.clear();
            shard.hand = 0;
        }
    }

    /// Durably syncs the backend.
    pub fn sync_backend(&self) -> Result<()> {
        IoStats::bump(&self.stats.data_syncs);
        self.backend.sync()
    }

    /// Direct backend write used by recovery (bypasses cache and stats).
    pub fn recovery_write(&self, pid: PageId, data: &[u8; PAGE_SIZE]) -> Result<()> {
        self.backend.write_page(pid, data)
    }

    /// Direct backend read used by recovery.
    pub fn recovery_read(&self, pid: PageId, out: &mut [u8; PAGE_SIZE]) -> Result<()> {
        self.backend.read_page(pid, out)
    }

    /// Number of cached frames across all shards (test hook).
    pub fn cached_frames(&self) -> usize {
        self.shards.iter().map(|s| s.lock().frames.len()).sum()
    }
}

impl Drop for BufferPool {
    fn drop(&mut self) {
        // A PageGuard outliving the pool means a pin was leaked past the
        // storage layer's lifetime — catch it loudly in tests rather
        // than silently in production traces.
        if !std::thread::panicking() {
            let pins = self.outstanding_pins();
            assert_eq!(pins, 0, "{pins} PageGuard(s) outlive their BufferPool");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;
    use crate::page::page_from_slice;

    fn pool(cap: usize, shards: usize) -> BufferPool {
        BufferPool::new(
            Box::new(MemBackend::new()),
            cap,
            shards,
            IoStats::new_shared(),
        )
    }

    #[test]
    fn txn_writes_invisible_to_backend_until_flush() {
        let p = pool(8, 2);
        let data = page_from_slice(b"uncommitted");
        p.write_txn(TxnId(1), PageId(3), &data);
        // The cache serves the new data...
        let mut out = zeroed_page();
        p.read(PageId(3), &mut out).unwrap();
        assert_eq!(&out[..11], b"uncommitted");
        // ...but after discarding, the backend's (zero) image returns.
        p.discard_txn(TxnId(1));
        p.read(PageId(3), &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0));
    }

    #[test]
    fn flush_persists_and_cleans() {
        let p = pool(8, 2);
        let data = page_from_slice(b"committed");
        p.write_txn(TxnId(1), PageId(3), &data);
        assert_eq!(p.dirty_of(TxnId(1)).len(), 1);
        p.flush_txn(TxnId(1), true).unwrap();
        assert!(p.dirty_of(TxnId(1)).is_empty());
        assert!(!p.any_dirty());
        p.invalidate();
        let mut out = zeroed_page();
        p.read(PageId(3), &mut out).unwrap();
        assert_eq!(&out[..9], b"committed");
    }

    #[test]
    fn clock_evicts_clean_not_dirty() {
        // One shard so all four pages compete for two frames.
        let p = pool(2, 1);
        let d = page_from_slice(b"d");
        p.write_txn(TxnId(1), PageId(0), &d);
        let mut out = zeroed_page();
        p.read(PageId(1), &mut out).unwrap();
        p.read(PageId(2), &mut out).unwrap();
        p.read(PageId(3), &mut out).unwrap();
        // Capacity 2: the dirty frame survives every eviction.
        assert!(p.dirty_of(TxnId(1)).iter().any(|(pid, _)| pid.0 == 0));
        assert!(p.cached_frames() <= 2);
    }

    #[test]
    fn hit_miss_accounting() {
        let stats = IoStats::new_shared();
        let p = BufferPool::new(Box::new(MemBackend::new()), 8, 2, Arc::clone(&stats));
        let mut out = zeroed_page();
        p.read(PageId(5), &mut out).unwrap(); // miss
        p.read(PageId(5), &mut out).unwrap(); // hit
        let s = stats.snapshot();
        assert_eq!(s.logical_reads, 2);
        assert_eq!(s.physical_reads, 1);
    }

    #[test]
    fn write_through_is_immediate() {
        let stats = IoStats::new_shared();
        let p = BufferPool::new(Box::new(MemBackend::new()), 8, 2, Arc::clone(&stats));
        p.write_through(PageId(9), &page_from_slice(b"meta"))
            .unwrap();
        assert!(!p.any_dirty());
        p.invalidate();
        let mut out = zeroed_page();
        p.read(PageId(9), &mut out).unwrap();
        assert_eq!(&out[..4], b"meta");
        assert_eq!(stats.snapshot().physical_writes, 1);
    }

    #[test]
    fn pinned_read_is_zero_copy_and_snapshot_isolated() {
        let p = pool(8, 2);
        p.write_through(PageId(4), &page_from_slice(b"before"))
            .unwrap();
        let g = p.read_pinned(PageId(4)).unwrap();
        assert_eq!(&g[..6], b"before");
        assert_eq!(p.outstanding_pins(), 1);
        // A writer replaces the frame's bytes; the guard's snapshot
        // survives (copy-on-write).
        p.write_txn(TxnId(1), PageId(4), &page_from_slice(b"after!"));
        assert_eq!(&g[..6], b"before");
        let g2 = p.read_pinned(PageId(4)).unwrap();
        assert_eq!(&g2[..6], b"after!");
        drop(g);
        drop(g2);
        assert_eq!(p.outstanding_pins(), 0);
        p.discard_txn(TxnId(1));
    }

    #[test]
    fn pinned_pages_survive_eviction_pressure() {
        let stats = IoStats::new_shared();
        let p = BufferPool::new(Box::new(MemBackend::new()), 2, 1, Arc::clone(&stats));
        p.write_through(PageId(0), &page_from_slice(b"pinned"))
            .unwrap();
        let guard = p.read_pinned(PageId(0)).unwrap();
        let mut out = zeroed_page();
        for pid in 1..20 {
            p.read(PageId(pid), &mut out).unwrap();
        }
        // The pinned frame is still resident: reading it again is a hit.
        let before = stats.snapshot().physical_reads;
        p.read(PageId(0), &mut out).unwrap();
        assert_eq!(stats.snapshot().physical_reads, before);
        assert_eq!(&out[..6], b"pinned");
        assert!(stats.snapshot().evictions > 0, "pressure did evict others");
        drop(guard);
    }

    #[test]
    fn clock_gives_second_chance() {
        let stats = IoStats::new_shared();
        let p = BufferPool::new(Box::new(MemBackend::new()), 2, 1, Arc::clone(&stats));
        let mut out = zeroed_page();
        p.read(PageId(0), &mut out).unwrap();
        p.read(PageId(1), &mut out).unwrap();
        // Re-reference page 0, then fault page 2: the sweep clears 0's
        // bit, passes it over once, and evicts page 1 instead.
        p.read(PageId(0), &mut out).unwrap();
        p.read(PageId(2), &mut out).unwrap();
        let before = stats.snapshot().physical_reads;
        p.read(PageId(0), &mut out).unwrap(); // still resident: hit
        assert_eq!(stats.snapshot().physical_reads, before);
        p.read(PageId(1), &mut out).unwrap(); // evicted: miss
        assert_eq!(stats.snapshot().physical_reads, before + 1);
    }

    #[test]
    fn all_dirty_overflows_capacity() {
        let stats = IoStats::new_shared();
        let p = BufferPool::new(Box::new(MemBackend::new()), 2, 1, Arc::clone(&stats));
        for pid in 0..5 {
            p.write_txn(TxnId(1), PageId(pid), &page_from_slice(b"dirty"));
        }
        // No-steal: every frame is dirty, so the pool grows past its
        // two-frame budget instead of evicting.
        assert_eq!(p.cached_frames(), 5);
        assert!(stats.snapshot().dirty_overflows > 0);
        assert_eq!(stats.snapshot().evictions, 0);
        p.discard_txn(TxnId(1));
    }

    #[test]
    fn committed_dirty_frames_flush_and_write_on_evict() {
        let stats = IoStats::new_shared();
        let p = BufferPool::new(Box::new(MemBackend::new()), 2, 1, Arc::clone(&stats));
        for pid in 0..5u32 {
            p.write_txn(TxnId(1), PageId(pid), &page_from_slice(&[b'a' + pid as u8]));
        }
        p.mark_committed(TxnId(1));
        assert!(!p.any_dirty());
        assert_eq!(p.committed_dirty_count(), 5);
        // Faulting one more page forces eviction: with more committed
        // frames than capacity, some must be written out on evict
        // instead of overflowing the pool.
        let mut out = zeroed_page();
        p.read(PageId(10), &mut out).unwrap();
        assert!(p.cached_frames() <= 2, "pool stayed bounded");
        assert!(p.committed_dirty_count() < 5, "write-on-evict fired");
        // flush_committed writes whatever is still resident.
        let resident = p.committed_dirty_count();
        assert_eq!(p.flush_committed().unwrap(), resident);
        assert_eq!(p.committed_dirty_count(), 0);
        // Every committed write reached the backend, one way or the other.
        p.invalidate();
        for pid in 0..5u32 {
            p.read(PageId(pid), &mut out).unwrap();
            assert_eq!(out[0], b'a' + pid as u8, "page {pid} durable");
        }
    }

    #[test]
    fn guard_outliving_pool_trips_assertion() {
        let p = pool(4, 2);
        p.write_through(PageId(1), &page_from_slice(b"x")).unwrap();
        let guard = p.read_pinned(PageId(1)).unwrap();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| drop(p)));
        assert!(
            err.is_err(),
            "dropping the pool under a live pin must panic"
        );
        drop(guard);
    }

    #[test]
    fn concurrent_readers_on_distinct_shards() {
        let p = Arc::new(pool(64, 8));
        for pid in 0..8 {
            p.write_through(PageId(pid), &page_from_slice(&[b'a' + pid as u8]))
                .unwrap();
        }
        let barrier = Arc::new(std::sync::Barrier::new(8));
        let handles: Vec<_> = (0..8u32)
            .map(|pid| {
                let p = Arc::clone(&p);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    for _ in 0..500 {
                        let g = p.read_pinned(PageId(pid)).unwrap();
                        assert_eq!(g[0], b'a' + pid as u8);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(p.outstanding_pins(), 0);
    }
}
