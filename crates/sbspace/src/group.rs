//! WAL group commit: one log append + sync per group of committers.
//!
//! Committing transactions encode their log records (page images plus
//! the commit record) into one contiguous byte batch and enqueue it
//! here. The first committer to find no leader becomes the leader: it
//! drains the queue (up to `max_batch` batches), appends everything in
//! one `WalStore::append`, issues a single `sync`, and wakes the
//! followers whose batches rode along. Under a commit burst of `k`
//! transactions this collapses `k` WAL syncs into a handful.
//!
//! Ordering is sound without extra coordination because sbspace holds
//! LO-level two-phase locks until after commit: two conflicting
//! transactions can never be in the queue at once, so any queue order
//! of the non-conflicting residents is serialisable. Within the queue,
//! batches retain enqueue order (sequence numbers are handed out under
//! the same lock), so the log stream stays a valid history.
//!
//! If the leader's append or sync fails, every batch in that group
//! failed: the error is recorded against the group's sequence range and
//! returned to each affected committer. The committer also *poisons*
//! itself — a partial append may have left garbage at the log tail, and
//! appending more records past it would strand them beyond the torn
//! region where recovery cannot decode them — so every later commit
//! fails too, until the space is reopened (which replays and resets the
//! log).

use crate::stats::IoStats;
use crate::wal::WalStore;
use crate::{Result, SbError};
use parking_lot::{Condvar, Mutex};

struct State {
    /// Pending batches in enqueue order: `(seq, encoded records)`.
    queue: Vec<(u64, Vec<u8>)>,
    next_seq: u64,
    /// Every batch with `seq <= durable_seq` has been appended and
    /// synced (or failed — see `failed`).
    durable_seq: u64,
    /// A leader is currently appending and syncing.
    leader: bool,
    /// Sequence ranges whose group flush failed, with the error.
    failed: Vec<(u64, u64, String)>,
    /// Set once any group flush fails: a partial append may have left
    /// garbage at the log tail, and appending past it would strand
    /// later records beyond the torn region where recovery's stream
    /// decoder cannot reach them. Every commit fails from then on.
    poisoned: Option<String>,
}

/// The group-commit coordinator (one per space).
pub(crate) struct GroupCommitter {
    state: Mutex<State>,
    cond: Condvar,
    max_batch: usize,
}

impl GroupCommitter {
    /// A coordinator flushing at most `max_batch` batches per group.
    pub fn new(max_batch: usize) -> GroupCommitter {
        GroupCommitter {
            state: Mutex::new(State {
                queue: Vec::new(),
                next_seq: 1,
                durable_seq: 0,
                leader: false,
                failed: Vec::new(),
                poisoned: None,
            }),
            cond: Condvar::new(),
            max_batch: max_batch.max(1),
        }
    }

    fn outcome(state: &State, seq: u64) -> Result<()> {
        for (lo, hi, msg) in &state.failed {
            if (*lo..=*hi).contains(&seq) {
                return Err(SbError::Io(format!("group commit failed: {msg}")));
            }
        }
        Ok(())
    }

    /// Makes `batch` durable in the WAL, riding or leading a group.
    /// Returns once the batch is synced (or its group's flush failed).
    pub fn commit(&self, wal: &dyn WalStore, stats: &IoStats, batch: Vec<u8>) -> Result<()> {
        let mut state = self.state.lock();
        if let Some(msg) = &state.poisoned {
            return Err(SbError::Io(format!("wal unavailable: {msg}")));
        }
        let seq = state.next_seq;
        state.next_seq += 1;
        state.queue.push((seq, batch));
        loop {
            if state.durable_seq >= seq {
                return Self::outcome(&state, seq);
            }
            if let Some(msg) = &state.poisoned {
                // A flush failed while this batch waited: the tail is
                // suspect and the batch will never be written.
                return Err(SbError::Io(format!("wal unavailable: {msg}")));
            }
            if state.leader || state.queue.is_empty() {
                self.cond.wait(&mut state);
                continue;
            }
            // Lead: drain a group and flush it outside the lock.
            state.leader = true;
            let take = state.queue.len().min(self.max_batch);
            let group: Vec<(u64, Vec<u8>)> = state.queue.drain(..take).collect();
            let (lo, hi) = (group[0].0, group[take - 1].0);
            drop(state);

            let flat: Vec<u8> = group.into_iter().flat_map(|(_, b)| b).collect();
            let res = wal.append(&flat).and_then(|()| wal.sync());
            IoStats::bump(&stats.wal_syncs);
            IoStats::bump(&stats.group_commits);

            state = self.state.lock();
            state.leader = false;
            state.durable_seq = state.durable_seq.max(hi);
            if let Err(e) = &res {
                // Kept forever: a follower may observe its range long
                // after later groups succeed, and failed flushes are
                // rare enough that the list stays tiny.
                state.failed.push((lo, hi, e.to_string()));
                state.poisoned = Some(e.to_string());
            }
            self.cond.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::{MemWal, WalRecord};
    use crate::TxnId;
    use std::sync::Arc;

    #[test]
    fn burst_of_commits_shares_syncs() {
        let gc = Arc::new(GroupCommitter::new(32));
        let wal = Arc::new(MemWal::new());
        let stats = IoStats::new_shared();
        let barrier = Arc::new(std::sync::Barrier::new(16));
        let handles: Vec<_> = (0..16u64)
            .map(|i| {
                let (gc, wal, stats, barrier) = (
                    Arc::clone(&gc),
                    Arc::clone(&wal),
                    Arc::clone(&stats),
                    Arc::clone(&barrier),
                );
                std::thread::spawn(move || {
                    barrier.wait();
                    let batch = WalRecord::Commit { txn: TxnId(i) }.encode();
                    gc.commit(wal.as_ref(), &stats, batch).unwrap();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // All 16 commit records are durable...
        let records = WalRecord::decode_stream(&wal.read_all().unwrap());
        assert_eq!(records.len(), 16);
        // ...in strictly fewer syncs than committers (groups formed).
        let syncs = stats.snapshot().wal_syncs;
        assert!(syncs <= 16, "at most one sync per committer, got {syncs}");
        assert_eq!(stats.snapshot().group_commits, syncs);
    }

    #[test]
    fn single_commit_still_works() {
        let gc = GroupCommitter::new(8);
        let wal = MemWal::new();
        let stats = IoStats::new_shared();
        gc.commit(&wal, &stats, WalRecord::Commit { txn: TxnId(1) }.encode())
            .unwrap();
        let records = WalRecord::decode_stream(&wal.read_all().unwrap());
        assert_eq!(records, vec![WalRecord::Commit { txn: TxnId(1) }]);
        assert_eq!(stats.snapshot().wal_syncs, 1);
    }

    struct FailingWal;
    impl WalStore for FailingWal {
        fn append(&self, _bytes: &[u8]) -> Result<()> {
            Err(SbError::Io("disk full".into()))
        }
        fn sync(&self) -> Result<()> {
            Ok(())
        }
        fn read_segment(&self, _seg: u64) -> Result<Vec<u8>> {
            Ok(Vec::new())
        }
        fn truncate(&self) -> Result<()> {
            Ok(())
        }
    }

    #[test]
    fn failure_poisons_later_commits() {
        let gc = GroupCommitter::new(8);
        let stats = IoStats::new_shared();
        let first = gc.commit(
            &FailingWal,
            &stats,
            WalRecord::Commit { txn: TxnId(1) }.encode(),
        );
        assert!(matches!(first, Err(SbError::Io(_))));
        // The log tail is suspect: a later commit over a healthy WAL
        // must still fail rather than append past possible garbage.
        let wal = MemWal::new();
        let later = gc.commit(&wal, &stats, WalRecord::Commit { txn: TxnId(2) }.encode());
        assert!(matches!(later, Err(SbError::Io(_))), "{later:?}");
        assert!(wal.read_all().unwrap().is_empty());
    }

    #[test]
    fn leader_failure_reaches_every_rider() {
        let gc = Arc::new(GroupCommitter::new(32));
        let stats = IoStats::new_shared();
        let barrier = Arc::new(std::sync::Barrier::new(4));
        let handles: Vec<_> = (0..4u64)
            .map(|i| {
                let (gc, stats, barrier) =
                    (Arc::clone(&gc), Arc::clone(&stats), Arc::clone(&barrier));
                std::thread::spawn(move || {
                    barrier.wait();
                    gc.commit(
                        &FailingWal,
                        &stats,
                        WalRecord::Commit { txn: TxnId(i) }.encode(),
                    )
                })
            })
            .collect();
        for h in handles {
            let res = h.join().unwrap();
            assert!(matches!(res, Err(SbError::Io(_))), "{res:?}");
        }
    }
}
