//! Shared I/O counters — the platform-independent cost metric of the
//! benchmark harness.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Monotone counters of logical and physical I/O, shared by handle.
///
/// * *Logical* reads/writes count buffer-pool requests — the number the
///   tree algorithms "ask for" and the metric that is independent of
///   buffer-pool size.
/// * *Physical* reads/writes count backend page transfers (buffer-pool
///   misses and flushes).
#[derive(Debug, Default)]
pub struct IoStats {
    /// Buffer-pool page read requests.
    pub logical_reads: AtomicU64,
    /// Buffer-pool page write requests.
    pub logical_writes: AtomicU64,
    /// Pages fetched from the backend (pool misses).
    pub physical_reads: AtomicU64,
    /// Pages flushed to the backend.
    pub physical_writes: AtomicU64,
    /// Large objects opened (the paper notes LO open/close can be
    /// time-consuming — the storage-granularity ablation counts them).
    pub lo_opens: AtomicU64,
    /// Lock waits that actually blocked.
    pub lock_waits: AtomicU64,
    /// Deadlocks detected (victim aborted).
    pub deadlocks: AtomicU64,
    /// Frames evicted by the clock sweep.
    pub evictions: AtomicU64,
    /// Times a shard overflowed its capacity because every frame was
    /// dirty or pinned (no-steal forbids eviction).
    pub dirty_overflows: AtomicU64,
    /// WAL flush groups written by a group-commit leader.
    pub group_commits: AtomicU64,
    /// Zero-copy pinned page reads ([`crate::buffer::BufferPool::read_pinned`]).
    /// `logical_reads - pinned_reads` is the number of copying reads.
    pub pinned_reads: AtomicU64,
    /// Durable WAL syncs.
    pub wal_syncs: AtomicU64,
    /// Durable data-backend syncs.
    pub data_syncs: AtomicU64,
}

/// A point-in-time copy of the counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoSnapshot {
    pub logical_reads: u64,
    pub logical_writes: u64,
    pub physical_reads: u64,
    pub physical_writes: u64,
    pub lo_opens: u64,
    pub lock_waits: u64,
    pub deadlocks: u64,
    pub evictions: u64,
    pub dirty_overflows: u64,
    pub group_commits: u64,
    pub pinned_reads: u64,
    pub wal_syncs: u64,
    pub data_syncs: u64,
}

impl IoStats {
    /// A fresh shared counter block.
    pub fn new_shared() -> Arc<IoStats> {
        Arc::new(IoStats::default())
    }

    /// Takes a snapshot of all counters.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            logical_reads: self.logical_reads.load(Ordering::Relaxed),
            logical_writes: self.logical_writes.load(Ordering::Relaxed),
            physical_reads: self.physical_reads.load(Ordering::Relaxed),
            physical_writes: self.physical_writes.load(Ordering::Relaxed),
            lo_opens: self.lo_opens.load(Ordering::Relaxed),
            lock_waits: self.lock_waits.load(Ordering::Relaxed),
            deadlocks: self.deadlocks.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            dirty_overflows: self.dirty_overflows.load(Ordering::Relaxed),
            group_commits: self.group_commits.load(Ordering::Relaxed),
            pinned_reads: self.pinned_reads.load(Ordering::Relaxed),
            wal_syncs: self.wal_syncs.load(Ordering::Relaxed),
            data_syncs: self.data_syncs.load(Ordering::Relaxed),
        }
    }

    /// Adds one to a counter (internal convenience).
    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

impl IoSnapshot {
    /// Counter deltas since an earlier snapshot.
    #[must_use]
    pub fn since(&self, earlier: &IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            logical_reads: self.logical_reads - earlier.logical_reads,
            logical_writes: self.logical_writes - earlier.logical_writes,
            physical_reads: self.physical_reads - earlier.physical_reads,
            physical_writes: self.physical_writes - earlier.physical_writes,
            lo_opens: self.lo_opens - earlier.lo_opens,
            lock_waits: self.lock_waits - earlier.lock_waits,
            deadlocks: self.deadlocks - earlier.deadlocks,
            evictions: self.evictions - earlier.evictions,
            dirty_overflows: self.dirty_overflows - earlier.dirty_overflows,
            group_commits: self.group_commits - earlier.group_commits,
            pinned_reads: self.pinned_reads - earlier.pinned_reads,
            wal_syncs: self.wal_syncs - earlier.wal_syncs,
            data_syncs: self.data_syncs - earlier.data_syncs,
        }
    }

    /// Total durable sync calls (WAL plus data backend) — the metric the
    /// group-commit benchmark compares.
    pub fn total_syncs(&self) -> u64 {
        self.wal_syncs + self.data_syncs
    }
}

impl std::fmt::Display for IoSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "lr={} lw={} pr={} pw={} opens={} waits={} dl={} ev={} ovf={} gc={} pin={} ws={} ds={}",
            self.logical_reads,
            self.logical_writes,
            self.physical_reads,
            self.physical_writes,
            self.lo_opens,
            self.lock_waits,
            self.deadlocks,
            self.evictions,
            self.dirty_overflows,
            self.group_commits,
            self.pinned_reads,
            self.wal_syncs,
            self.data_syncs
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_delta() {
        let s = IoStats::new_shared();
        let before = s.snapshot();
        IoStats::bump(&s.logical_reads);
        IoStats::bump(&s.logical_reads);
        IoStats::bump(&s.physical_writes);
        IoStats::bump(&s.evictions);
        IoStats::bump(&s.group_commits);
        IoStats::bump(&s.wal_syncs);
        let after = s.snapshot();
        let d = after.since(&before);
        assert_eq!(d.logical_reads, 2);
        assert_eq!(d.physical_writes, 1);
        assert_eq!(d.logical_writes, 0);
        assert_eq!(d.evictions, 1);
        assert_eq!(d.group_commits, 1);
        assert_eq!(d.total_syncs(), 1);
    }
}
