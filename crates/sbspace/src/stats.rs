//! Shared I/O counters — the platform-independent cost metric of the
//! benchmark harness.
//!
//! The counters are [`grt_metrics::Counter`] cells so the whole block
//! can be adopted into an engine-wide [`grt_metrics::Metrics`] registry
//! (see [`IoStats::register_in`]): the same cell is then visible both
//! through the typed [`IoSnapshot`] and through the registry's named
//! `sbspace.*` snapshot, with no double counting.

use grt_metrics::{Counter, Metrics};
use std::sync::Arc;

/// Monotone counters of logical and physical I/O, shared by handle.
///
/// * *Logical* reads/writes count buffer-pool requests — the number the
///   tree algorithms "ask for" and the metric that is independent of
///   buffer-pool size.
/// * *Physical* reads/writes count backend page transfers (buffer-pool
///   misses and flushes).
#[derive(Debug, Default)]
pub struct IoStats {
    /// Buffer-pool page read requests.
    pub logical_reads: Counter,
    /// Buffer-pool page write requests.
    pub logical_writes: Counter,
    /// Pages fetched from the backend (pool misses).
    pub physical_reads: Counter,
    /// Pages flushed to the backend.
    pub physical_writes: Counter,
    /// Large objects opened (the paper notes LO open/close can be
    /// time-consuming — the storage-granularity ablation counts them).
    pub lo_opens: Counter,
    /// Lock waits that actually blocked.
    pub lock_waits: Counter,
    /// Deadlocks detected (victim aborted).
    pub deadlocks: Counter,
    /// Frames evicted by the clock sweep.
    pub evictions: Counter,
    /// Times a shard overflowed its capacity because every frame was
    /// dirty or pinned (no-steal forbids eviction).
    pub dirty_overflows: Counter,
    /// WAL flush groups written by a group-commit leader.
    pub group_commits: Counter,
    /// Zero-copy pinned page reads ([`crate::buffer::BufferPool::read_pinned`]).
    /// `logical_reads - pinned_reads` is the number of copying reads.
    pub pinned_reads: Counter,
    /// Durable WAL syncs.
    pub wal_syncs: Counter,
    /// Durable data-backend syncs.
    pub data_syncs: Counter,
    /// Transactions that reached their WAL commit point.
    pub txn_commits: Counter,
    /// Transactions aborted, whether explicitly or by a failed commit.
    pub txn_aborts: Counter,
    /// Pages enqueued for asynchronous prefetch.
    pub prefetch_issued: Counter,
    /// Demand reads that found a frame a prefetch worker had installed.
    pub prefetch_hits: Counter,
    /// Prefetched frames evicted before any demand read touched them.
    pub prefetch_wasted: Counter,
    /// Demand reads that blocked on another thread's in-flight fault
    /// instead of issuing their own physical read.
    pub inflight_waits: Counter,
    /// Pages that rode along in a coalesced multi-page write (pages
    /// written minus write calls issued).
    pub coalesced_writes: Counter,
    /// Contiguous runs emitted by batched flushes (one per backend
    /// write call when the backend coalesces).
    pub write_runs: Counter,
    /// Contiguous runs emitted by batched prefetch reads.
    pub read_runs: Counter,
}

/// A point-in-time copy of the counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoSnapshot {
    pub logical_reads: u64,
    pub logical_writes: u64,
    pub physical_reads: u64,
    pub physical_writes: u64,
    pub lo_opens: u64,
    pub lock_waits: u64,
    pub deadlocks: u64,
    pub evictions: u64,
    pub dirty_overflows: u64,
    pub group_commits: u64,
    pub pinned_reads: u64,
    pub wal_syncs: u64,
    pub data_syncs: u64,
    pub txn_commits: u64,
    pub txn_aborts: u64,
    pub prefetch_issued: u64,
    pub prefetch_hits: u64,
    pub prefetch_wasted: u64,
    pub inflight_waits: u64,
    pub coalesced_writes: u64,
    pub write_runs: u64,
    pub read_runs: u64,
}

impl IoStats {
    /// A fresh shared counter block.
    pub fn new_shared() -> Arc<IoStats> {
        Arc::new(IoStats::default())
    }

    /// Takes a snapshot of all counters.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            logical_reads: self.logical_reads.get(),
            logical_writes: self.logical_writes.get(),
            physical_reads: self.physical_reads.get(),
            physical_writes: self.physical_writes.get(),
            lo_opens: self.lo_opens.get(),
            lock_waits: self.lock_waits.get(),
            deadlocks: self.deadlocks.get(),
            evictions: self.evictions.get(),
            dirty_overflows: self.dirty_overflows.get(),
            group_commits: self.group_commits.get(),
            pinned_reads: self.pinned_reads.get(),
            wal_syncs: self.wal_syncs.get(),
            data_syncs: self.data_syncs.get(),
            txn_commits: self.txn_commits.get(),
            txn_aborts: self.txn_aborts.get(),
            prefetch_issued: self.prefetch_issued.get(),
            prefetch_hits: self.prefetch_hits.get(),
            prefetch_wasted: self.prefetch_wasted.get(),
            inflight_waits: self.inflight_waits.get(),
            coalesced_writes: self.coalesced_writes.get(),
            write_runs: self.write_runs.get(),
            read_runs: self.read_runs.get(),
        }
    }

    /// Adopts every counter into `metrics` under `sbspace.*` names, so
    /// the registry snapshot and [`IoSnapshot`] read the same cells.
    pub fn register_in(&self, metrics: &Metrics) {
        for (name, c) in [
            ("sbspace.logical_reads", &self.logical_reads),
            ("sbspace.logical_writes", &self.logical_writes),
            ("sbspace.physical_reads", &self.physical_reads),
            ("sbspace.physical_writes", &self.physical_writes),
            ("sbspace.lo_opens", &self.lo_opens),
            ("sbspace.lock_waits", &self.lock_waits),
            ("sbspace.deadlocks", &self.deadlocks),
            ("sbspace.evictions", &self.evictions),
            ("sbspace.dirty_overflows", &self.dirty_overflows),
            ("sbspace.group_commits", &self.group_commits),
            ("sbspace.pinned_reads", &self.pinned_reads),
            ("sbspace.wal_syncs", &self.wal_syncs),
            ("sbspace.data_syncs", &self.data_syncs),
            ("sbspace.txn_commits", &self.txn_commits),
            ("sbspace.txn_aborts", &self.txn_aborts),
            ("sbspace.prefetch_issued", &self.prefetch_issued),
            ("sbspace.prefetch_hits", &self.prefetch_hits),
            ("sbspace.prefetch_wasted", &self.prefetch_wasted),
            ("sbspace.inflight_waits", &self.inflight_waits),
            // I/O-shape counters live under io.* — they describe how the
            // backend was driven, not what the pool was asked for.
            ("io.coalesced_writes", &self.coalesced_writes),
            ("io.write_runs", &self.write_runs),
            ("io.read_runs", &self.read_runs),
        ] {
            metrics.adopt_counter(name, c.clone());
        }
    }

    /// Adds one to a counter (internal convenience).
    pub(crate) fn bump(counter: &Counter) {
        counter.inc();
    }
}

impl IoSnapshot {
    /// Counter deltas since an earlier snapshot.
    #[must_use]
    pub fn since(&self, earlier: &IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            logical_reads: self.logical_reads - earlier.logical_reads,
            logical_writes: self.logical_writes - earlier.logical_writes,
            physical_reads: self.physical_reads - earlier.physical_reads,
            physical_writes: self.physical_writes - earlier.physical_writes,
            lo_opens: self.lo_opens - earlier.lo_opens,
            lock_waits: self.lock_waits - earlier.lock_waits,
            deadlocks: self.deadlocks - earlier.deadlocks,
            evictions: self.evictions - earlier.evictions,
            dirty_overflows: self.dirty_overflows - earlier.dirty_overflows,
            group_commits: self.group_commits - earlier.group_commits,
            pinned_reads: self.pinned_reads - earlier.pinned_reads,
            wal_syncs: self.wal_syncs - earlier.wal_syncs,
            data_syncs: self.data_syncs - earlier.data_syncs,
            txn_commits: self.txn_commits - earlier.txn_commits,
            txn_aborts: self.txn_aborts - earlier.txn_aborts,
            prefetch_issued: self.prefetch_issued - earlier.prefetch_issued,
            prefetch_hits: self.prefetch_hits - earlier.prefetch_hits,
            prefetch_wasted: self.prefetch_wasted - earlier.prefetch_wasted,
            inflight_waits: self.inflight_waits - earlier.inflight_waits,
            coalesced_writes: self.coalesced_writes - earlier.coalesced_writes,
            write_runs: self.write_runs - earlier.write_runs,
            read_runs: self.read_runs - earlier.read_runs,
        }
    }

    /// Total durable sync calls (WAL plus data backend) — the metric the
    /// group-commit benchmark compares.
    pub fn total_syncs(&self) -> u64 {
        self.wal_syncs + self.data_syncs
    }
}

impl std::fmt::Display for IoSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "lr={} lw={} pr={} pw={} opens={} waits={} dl={} ev={} ovf={} gc={} pin={} ws={} ds={} tc={} ta={} pfi={} pfh={} pfw={} ifw={} cw={} wruns={} rruns={}",
            self.logical_reads,
            self.logical_writes,
            self.physical_reads,
            self.physical_writes,
            self.lo_opens,
            self.lock_waits,
            self.deadlocks,
            self.evictions,
            self.dirty_overflows,
            self.group_commits,
            self.pinned_reads,
            self.wal_syncs,
            self.data_syncs,
            self.txn_commits,
            self.txn_aborts,
            self.prefetch_issued,
            self.prefetch_hits,
            self.prefetch_wasted,
            self.inflight_waits,
            self.coalesced_writes,
            self.write_runs,
            self.read_runs
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_delta() {
        let s = IoStats::new_shared();
        let before = s.snapshot();
        IoStats::bump(&s.logical_reads);
        IoStats::bump(&s.logical_reads);
        IoStats::bump(&s.physical_writes);
        IoStats::bump(&s.evictions);
        IoStats::bump(&s.group_commits);
        IoStats::bump(&s.wal_syncs);
        IoStats::bump(&s.txn_commits);
        let after = s.snapshot();
        let d = after.since(&before);
        assert_eq!(d.logical_reads, 2);
        assert_eq!(d.physical_writes, 1);
        assert_eq!(d.logical_writes, 0);
        assert_eq!(d.evictions, 1);
        assert_eq!(d.group_commits, 1);
        assert_eq!(d.total_syncs(), 1);
        assert_eq!(d.txn_commits, 1);
        assert_eq!(d.txn_aborts, 0);
    }

    #[test]
    fn registry_adoption_shares_cells() {
        let s = IoStats::new_shared();
        let m = Metrics::new();
        s.register_in(&m);
        IoStats::bump(&s.logical_reads);
        IoStats::bump(&s.txn_aborts);
        let snap = m.snapshot();
        assert_eq!(snap.get("sbspace.logical_reads"), 1);
        assert_eq!(snap.get("sbspace.txn_aborts"), 1);
        assert_eq!(snap.get("sbspace.evictions"), 0);
        // Registering twice keeps the original cells.
        s.register_in(&m);
        IoStats::bump(&s.logical_reads);
        assert_eq!(m.snapshot().get("sbspace.logical_reads"), 2);
    }
}
