//! Physical page backends: memory, file, and fault injection.

use crate::page::{zeroed_page, PageBuf, PageId, PAGE_SIZE};
use crate::{Result, SbError};
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A physical page store. Implementations must be safe to call from
/// multiple threads (the buffer pool serialises access to individual
/// pages, but different pages may be read concurrently).
pub trait Backend: Send + Sync {
    /// Reads page `pid` into `out`. Reading a page beyond the current
    /// end yields zeroes (sparse semantics).
    fn read_page(&self, pid: PageId, out: &mut [u8; PAGE_SIZE]) -> Result<()>;
    /// Writes page `pid`, extending the store as needed.
    fn write_page(&self, pid: PageId, data: &[u8; PAGE_SIZE]) -> Result<()>;
    /// Number of pages the store currently extends to.
    fn page_count(&self) -> u32;
    /// Durably flushes all previous writes.
    fn sync(&self) -> Result<()>;
}

/// In-memory backend for tests and benchmarks.
#[derive(Default)]
pub struct MemBackend {
    pages: Mutex<Vec<PageBuf>>,
}

impl MemBackend {
    /// Creates an empty in-memory store.
    pub fn new() -> MemBackend {
        MemBackend::default()
    }
}

impl Backend for MemBackend {
    fn read_page(&self, pid: PageId, out: &mut [u8; PAGE_SIZE]) -> Result<()> {
        let pages = self.pages.lock();
        match pages.get(pid.0 as usize) {
            Some(p) => out.copy_from_slice(&p[..]),
            None => out.fill(0),
        }
        Ok(())
    }

    fn write_page(&self, pid: PageId, data: &[u8; PAGE_SIZE]) -> Result<()> {
        let mut pages = self.pages.lock();
        while pages.len() <= pid.0 as usize {
            pages.push(zeroed_page());
        }
        pages[pid.0 as usize].copy_from_slice(data);
        Ok(())
    }

    fn page_count(&self) -> u32 {
        self.pages.lock().len() as u32
    }

    fn sync(&self) -> Result<()> {
        Ok(())
    }
}

/// File-backed store (one flat file of pages).
pub struct FileBackend {
    file: Mutex<File>,
}

impl FileBackend {
    /// Opens (or creates) the file at `path`.
    pub fn open(path: &Path) -> Result<FileBackend> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(|e| SbError::Io(format!("open {}: {e}", path.display())))?;
        Ok(FileBackend {
            file: Mutex::new(file),
        })
    }
}

impl Backend for FileBackend {
    fn read_page(&self, pid: PageId, out: &mut [u8; PAGE_SIZE]) -> Result<()> {
        let mut f = self.file.lock();
        let len = f.metadata().map_err(|e| SbError::Io(e.to_string()))?.len();
        let off = pid.0 as u64 * PAGE_SIZE as u64;
        if off >= len {
            out.fill(0);
            return Ok(());
        }
        f.seek(SeekFrom::Start(off))
            .map_err(|e| SbError::Io(e.to_string()))?;
        // A short read at the tail is zero-filled.
        out.fill(0);
        let avail = ((len - off) as usize).min(PAGE_SIZE);
        f.read_exact(&mut out[..avail])
            .map_err(|e| SbError::Io(e.to_string()))?;
        Ok(())
    }

    fn write_page(&self, pid: PageId, data: &[u8; PAGE_SIZE]) -> Result<()> {
        let mut f = self.file.lock();
        f.seek(SeekFrom::Start(pid.0 as u64 * PAGE_SIZE as u64))
            .map_err(|e| SbError::Io(e.to_string()))?;
        f.write_all(data).map_err(|e| SbError::Io(e.to_string()))
    }

    fn page_count(&self) -> u32 {
        let f = self.file.lock();
        f.metadata()
            .map(|m| (m.len() / PAGE_SIZE as u64) as u32)
            .unwrap_or(0)
    }

    fn sync(&self) -> Result<()> {
        self.file
            .lock()
            .sync_data()
            .map_err(|e| SbError::Io(e.to_string()))
    }
}

/// Wraps another backend and fails the N-th physical operation — the
/// failure-injection harness for recovery and error-path tests.
pub struct FaultInjector<B: Backend> {
    inner: B,
    ops: AtomicU64,
    /// Fail every operation once this many operations have happened.
    /// `u64::MAX` disables injection.
    fail_after: AtomicU64,
    /// Operations actually failed by injection.
    injected: AtomicU64,
}

impl<B: Backend> FaultInjector<B> {
    /// Wraps `inner` with injection disabled.
    pub fn new(inner: B) -> FaultInjector<B> {
        FaultInjector {
            inner,
            ops: AtomicU64::new(0),
            fail_after: AtomicU64::new(u64::MAX),
            injected: AtomicU64::new(0),
        }
    }

    /// Starts failing after `n` more physical operations.
    pub fn fail_after(&self, n: u64) {
        let now = self.ops.load(Ordering::SeqCst);
        self.fail_after.store(now + n, Ordering::SeqCst);
    }

    /// Stops injecting failures.
    pub fn heal(&self) {
        self.fail_after.store(u64::MAX, Ordering::SeqCst);
    }

    fn tick(&self) -> Result<()> {
        let n = self.ops.fetch_add(1, Ordering::SeqCst);
        if n >= self.fail_after.load(Ordering::SeqCst) {
            self.injected.fetch_add(1, Ordering::SeqCst);
            return Err(SbError::Io("injected fault".into()));
        }
        Ok(())
    }

    /// Number of operations this injector has failed so far — what the
    /// fault-injection tests reconcile abort counters against.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::SeqCst)
    }
}

impl<B: Backend> Backend for FaultInjector<B> {
    fn read_page(&self, pid: PageId, out: &mut [u8; PAGE_SIZE]) -> Result<()> {
        self.tick()?;
        self.inner.read_page(pid, out)
    }

    fn write_page(&self, pid: PageId, data: &[u8; PAGE_SIZE]) -> Result<()> {
        self.tick()?;
        self.inner.write_page(pid, data)
    }

    fn page_count(&self) -> u32 {
        self.inner.page_count()
    }

    fn sync(&self) -> Result<()> {
        self.tick()?;
        self.inner.sync()
    }
}

impl<B: Backend> Backend for Arc<B> {
    fn read_page(&self, pid: PageId, out: &mut [u8; PAGE_SIZE]) -> Result<()> {
        (**self).read_page(pid, out)
    }
    fn write_page(&self, pid: PageId, data: &[u8; PAGE_SIZE]) -> Result<()> {
        (**self).write_page(pid, data)
    }
    fn page_count(&self) -> u32 {
        (**self).page_count()
    }
    fn sync(&self) -> Result<()> {
        (**self).sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::page_from_slice;

    fn roundtrip(b: &dyn Backend) {
        let p7 = page_from_slice(b"seven");
        let p2 = page_from_slice(b"two");
        b.write_page(PageId(7), &p7).unwrap();
        b.write_page(PageId(2), &p2).unwrap();
        let mut out = zeroed_page();
        b.read_page(PageId(7), &mut out).unwrap();
        assert_eq!(&out[..5], b"seven");
        b.read_page(PageId(2), &mut out).unwrap();
        assert_eq!(&out[..3], b"two");
        // Unwritten page within the extent reads as zero.
        b.read_page(PageId(5), &mut out).unwrap();
        assert!(out.iter().all(|&x| x == 0));
        // Beyond the extent too.
        b.read_page(PageId(100), &mut out).unwrap();
        assert!(out.iter().all(|&x| x == 0));
        assert!(b.page_count() >= 8);
        b.sync().unwrap();
    }

    #[test]
    fn mem_backend_roundtrip() {
        roundtrip(&MemBackend::new());
    }

    #[test]
    fn file_backend_roundtrip() {
        let dir = std::env::temp_dir().join(format!("sbspace-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pages.db");
        roundtrip(&FileBackend::open(&path).unwrap());
        // Re-open and observe persistence.
        let b = FileBackend::open(&path).unwrap();
        let mut out = zeroed_page();
        b.read_page(PageId(7), &mut out).unwrap();
        assert_eq!(&out[..5], b"seven");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fault_injection_fires_and_heals() {
        let b = FaultInjector::new(MemBackend::new());
        let p = page_from_slice(b"x");
        b.write_page(PageId(0), &p).unwrap();
        b.fail_after(1);
        let mut out = zeroed_page();
        b.read_page(PageId(0), &mut out).unwrap(); // the allowed op
        assert!(matches!(
            b.read_page(PageId(0), &mut out),
            Err(SbError::Io(_))
        ));
        assert!(matches!(b.write_page(PageId(0), &p), Err(SbError::Io(_))));
        b.heal();
        b.read_page(PageId(0), &mut out).unwrap();
    }
}
