//! Physical page backends: memory, file, and fault injection.

use crate::page::{zeroed_page, PageBuf, PageId, PAGE_SIZE};
use crate::{Result, SbError};
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A physical page store. Implementations must be safe to call from
/// multiple threads (the buffer pool serialises access to individual
/// pages, but different pages may be read concurrently).
pub trait Backend: Send + Sync {
    /// Reads page `pid` into `out`. Reading a page beyond the current
    /// end yields zeroes (sparse semantics).
    fn read_page(&self, pid: PageId, out: &mut [u8; PAGE_SIZE]) -> Result<()>;
    /// Writes page `pid`, extending the store as needed.
    fn write_page(&self, pid: PageId, data: &[u8; PAGE_SIZE]) -> Result<()>;
    /// Number of pages the store currently extends to.
    fn page_count(&self) -> u32;
    /// Durably flushes all previous writes.
    fn sync(&self) -> Result<()>;

    /// Reads a batch of pages; `pids` and `out` are parallel slices.
    /// The default forwards page by page; backends with positional I/O
    /// override it to coalesce contiguous `PageId` runs into single
    /// transfers. Callers that want coalescing should pass `pids` in
    /// ascending order.
    fn read_pages(&self, pids: &[PageId], out: &mut [PageBuf]) -> Result<()> {
        debug_assert_eq!(pids.len(), out.len());
        for (pid, buf) in pids.iter().zip(out.iter_mut()) {
            self.read_page(*pid, buf)?;
        }
        Ok(())
    }

    /// Writes a batch of pages. Same contract as [`Backend::read_pages`]:
    /// the default forwards page by page, positional backends coalesce
    /// ascending contiguous runs.
    fn write_pages(&self, pages: &[(PageId, &[u8; PAGE_SIZE])]) -> Result<()> {
        for (pid, data) in pages {
            self.write_page(*pid, data)?;
        }
        Ok(())
    }
}

/// In-memory backend for tests and benchmarks.
#[derive(Default)]
pub struct MemBackend {
    pages: Mutex<Vec<PageBuf>>,
}

impl MemBackend {
    /// Creates an empty in-memory store.
    pub fn new() -> MemBackend {
        MemBackend::default()
    }
}

impl Backend for MemBackend {
    fn read_page(&self, pid: PageId, out: &mut [u8; PAGE_SIZE]) -> Result<()> {
        let pages = self.pages.lock();
        match pages.get(pid.0 as usize) {
            Some(p) => out.copy_from_slice(&p[..]),
            None => out.fill(0),
        }
        Ok(())
    }

    fn write_page(&self, pid: PageId, data: &[u8; PAGE_SIZE]) -> Result<()> {
        let mut pages = self.pages.lock();
        while pages.len() <= pid.0 as usize {
            pages.push(zeroed_page());
        }
        pages[pid.0 as usize].copy_from_slice(data);
        Ok(())
    }

    fn page_count(&self) -> u32 {
        self.pages.lock().len() as u32
    }

    fn sync(&self) -> Result<()> {
        Ok(())
    }
}

/// File-backed store (one flat file of pages).
pub struct FileBackend {
    file: Mutex<File>,
}

impl FileBackend {
    /// Opens (or creates) the file at `path`.
    pub fn open(path: &Path) -> Result<FileBackend> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(|e| SbError::Io(format!("open {}: {e}", path.display())))?;
        Ok(FileBackend {
            file: Mutex::new(file),
        })
    }
}

impl Backend for FileBackend {
    fn read_page(&self, pid: PageId, out: &mut [u8; PAGE_SIZE]) -> Result<()> {
        let mut f = self.file.lock();
        let len = f.metadata().map_err(|e| SbError::Io(e.to_string()))?.len();
        let off = pid.0 as u64 * PAGE_SIZE as u64;
        if off >= len {
            out.fill(0);
            return Ok(());
        }
        f.seek(SeekFrom::Start(off))
            .map_err(|e| SbError::Io(e.to_string()))?;
        // A short read at the tail is zero-filled.
        out.fill(0);
        let avail = ((len - off) as usize).min(PAGE_SIZE);
        f.read_exact(&mut out[..avail])
            .map_err(|e| SbError::Io(e.to_string()))?;
        Ok(())
    }

    fn write_page(&self, pid: PageId, data: &[u8; PAGE_SIZE]) -> Result<()> {
        let mut f = self.file.lock();
        f.seek(SeekFrom::Start(pid.0 as u64 * PAGE_SIZE as u64))
            .map_err(|e| SbError::Io(e.to_string()))?;
        f.write_all(data).map_err(|e| SbError::Io(e.to_string()))
    }

    fn page_count(&self) -> u32 {
        let f = self.file.lock();
        f.metadata()
            .map(|m| (m.len() / PAGE_SIZE as u64) as u32)
            .unwrap_or(0)
    }

    fn sync(&self) -> Result<()> {
        self.file
            .lock()
            .sync_data()
            .map_err(|e| SbError::Io(e.to_string()))
    }

    /// Coalesces ascending contiguous `PageId` runs into one positioned
    /// read each, zero-filling past the end of the file.
    fn read_pages(&self, pids: &[PageId], out: &mut [PageBuf]) -> Result<()> {
        debug_assert_eq!(pids.len(), out.len());
        let mut f = self.file.lock();
        let len = f.metadata().map_err(|e| SbError::Io(e.to_string()))?.len();
        let mut i = 0;
        while i < pids.len() {
            let run = contiguous_run(&pids[i..]);
            let off = pids[i].0 as u64 * PAGE_SIZE as u64;
            let want = run * PAGE_SIZE;
            let avail = if off >= len {
                0
            } else {
                ((len - off) as usize).min(want)
            };
            let mut buf = vec![0u8; want];
            if avail > 0 {
                f.seek(SeekFrom::Start(off))
                    .map_err(|e| SbError::Io(e.to_string()))?;
                f.read_exact(&mut buf[..avail])
                    .map_err(|e| SbError::Io(e.to_string()))?;
            }
            for (k, chunk) in buf.chunks_exact(PAGE_SIZE).enumerate() {
                out[i + k].copy_from_slice(chunk);
            }
            i += run;
        }
        Ok(())
    }

    /// Coalesces ascending contiguous `PageId` runs into one positioned
    /// write each.
    fn write_pages(&self, pages: &[(PageId, &[u8; PAGE_SIZE])]) -> Result<()> {
        let mut f = self.file.lock();
        let mut i = 0;
        while i < pages.len() {
            let run = contiguous_run_pairs(&pages[i..]);
            let mut buf = Vec::with_capacity(run * PAGE_SIZE);
            for (_, data) in &pages[i..i + run] {
                buf.extend_from_slice(&data[..]);
            }
            f.seek(SeekFrom::Start(pages[i].0 .0 as u64 * PAGE_SIZE as u64))
                .map_err(|e| SbError::Io(e.to_string()))?;
            f.write_all(&buf).map_err(|e| SbError::Io(e.to_string()))?;
            i += run;
        }
        Ok(())
    }
}

/// Length of the ascending contiguous run at the head of `pids`.
fn contiguous_run(pids: &[PageId]) -> usize {
    let mut n = 1;
    while n < pids.len() && pids[n].0 == pids[n - 1].0.wrapping_add(1) {
        n += 1;
    }
    n
}

/// Length of the ascending contiguous run at the head of `pages`.
fn contiguous_run_pairs(pages: &[(PageId, &[u8; PAGE_SIZE])]) -> usize {
    let mut n = 1;
    while n < pages.len() && pages[n].0 .0 == pages[n - 1].0 .0.wrapping_add(1) {
        n += 1;
    }
    n
}

/// Wraps another backend and fails the N-th physical operation — the
/// failure-injection harness for recovery and error-path tests.
pub struct FaultInjector<B: Backend> {
    inner: B,
    ops: AtomicU64,
    /// Fail every operation once this many operations have happened.
    /// `u64::MAX` disables injection.
    fail_after: AtomicU64,
    /// Operations actually failed by injection.
    injected: AtomicU64,
}

impl<B: Backend> FaultInjector<B> {
    /// Wraps `inner` with injection disabled.
    pub fn new(inner: B) -> FaultInjector<B> {
        FaultInjector {
            inner,
            ops: AtomicU64::new(0),
            fail_after: AtomicU64::new(u64::MAX),
            injected: AtomicU64::new(0),
        }
    }

    /// Starts failing after `n` more physical operations.
    pub fn fail_after(&self, n: u64) {
        let now = self.ops.load(Ordering::SeqCst);
        self.fail_after.store(now + n, Ordering::SeqCst);
    }

    /// Stops injecting failures.
    pub fn heal(&self) {
        self.fail_after.store(u64::MAX, Ordering::SeqCst);
    }

    fn tick(&self) -> Result<()> {
        let n = self.ops.fetch_add(1, Ordering::SeqCst);
        if n >= self.fail_after.load(Ordering::SeqCst) {
            self.injected.fetch_add(1, Ordering::SeqCst);
            return Err(SbError::Io("injected fault".into()));
        }
        Ok(())
    }

    /// Number of operations this injector has failed so far — what the
    /// fault-injection tests reconcile abort counters against.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::SeqCst)
    }
}

impl<B: Backend> Backend for FaultInjector<B> {
    fn read_page(&self, pid: PageId, out: &mut [u8; PAGE_SIZE]) -> Result<()> {
        self.tick()?;
        self.inner.read_page(pid, out)
    }

    fn write_page(&self, pid: PageId, data: &[u8; PAGE_SIZE]) -> Result<()> {
        self.tick()?;
        self.inner.write_page(pid, data)
    }

    fn page_count(&self) -> u32 {
        self.inner.page_count()
    }

    fn sync(&self) -> Result<()> {
        self.tick()?;
        self.inner.sync()
    }

    // Vectored calls forward page by page so each page costs exactly one
    // tick — `fail_after(n)` keeps meaning "the n-th page transfer",
    // whether the pool batched it or not. (Coalescing in the wrapped
    // backend is forfeited under injection; the tests that count faults
    // matter more than the syscalls they no longer share.)
    fn read_pages(&self, pids: &[PageId], out: &mut [PageBuf]) -> Result<()> {
        debug_assert_eq!(pids.len(), out.len());
        for (pid, buf) in pids.iter().zip(out.iter_mut()) {
            self.read_page(*pid, buf)?;
        }
        Ok(())
    }

    fn write_pages(&self, pages: &[(PageId, &[u8; PAGE_SIZE])]) -> Result<()> {
        for (pid, data) in pages {
            self.write_page(*pid, data)?;
        }
        Ok(())
    }
}

impl<B: Backend> Backend for Arc<B> {
    fn read_page(&self, pid: PageId, out: &mut [u8; PAGE_SIZE]) -> Result<()> {
        (**self).read_page(pid, out)
    }
    fn write_page(&self, pid: PageId, data: &[u8; PAGE_SIZE]) -> Result<()> {
        (**self).write_page(pid, data)
    }
    fn page_count(&self) -> u32 {
        (**self).page_count()
    }
    fn sync(&self) -> Result<()> {
        (**self).sync()
    }
    fn read_pages(&self, pids: &[PageId], out: &mut [PageBuf]) -> Result<()> {
        (**self).read_pages(pids, out)
    }
    fn write_pages(&self, pages: &[(PageId, &[u8; PAGE_SIZE])]) -> Result<()> {
        (**self).write_pages(pages)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::page_from_slice;

    fn roundtrip(b: &dyn Backend) {
        let p7 = page_from_slice(b"seven");
        let p2 = page_from_slice(b"two");
        b.write_page(PageId(7), &p7).unwrap();
        b.write_page(PageId(2), &p2).unwrap();
        let mut out = zeroed_page();
        b.read_page(PageId(7), &mut out).unwrap();
        assert_eq!(&out[..5], b"seven");
        b.read_page(PageId(2), &mut out).unwrap();
        assert_eq!(&out[..3], b"two");
        // Unwritten page within the extent reads as zero.
        b.read_page(PageId(5), &mut out).unwrap();
        assert!(out.iter().all(|&x| x == 0));
        // Beyond the extent too.
        b.read_page(PageId(100), &mut out).unwrap();
        assert!(out.iter().all(|&x| x == 0));
        assert!(b.page_count() >= 8);
        b.sync().unwrap();
    }

    #[test]
    fn mem_backend_roundtrip() {
        roundtrip(&MemBackend::new());
    }

    #[test]
    fn file_backend_roundtrip() {
        let dir = std::env::temp_dir().join(format!("sbspace-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pages.db");
        roundtrip(&FileBackend::open(&path).unwrap());
        // Re-open and observe persistence.
        let b = FileBackend::open(&path).unwrap();
        let mut out = zeroed_page();
        b.read_page(PageId(7), &mut out).unwrap();
        assert_eq!(&out[..5], b"seven");
        std::fs::remove_dir_all(&dir).ok();
    }

    fn vectored_roundtrip(b: &dyn Backend) {
        // Two contiguous runs with a gap: [3,4,5] and [9,10].
        let pids: Vec<PageId> = [3u32, 4, 5, 9, 10].iter().map(|&p| PageId(p)).collect();
        let images: Vec<PageBuf> = pids
            .iter()
            .map(|pid| page_from_slice(&[pid.0 as u8; 16]))
            .collect();
        let pairs: Vec<(PageId, &[u8; PAGE_SIZE])> = pids
            .iter()
            .zip(images.iter())
            .map(|(pid, img)| (*pid, &**img))
            .collect();
        b.write_pages(&pairs).unwrap();
        // Vectored read agrees with single-page reads, including an
        // unwritten page inside the batch and one past the extent.
        let read_pids: Vec<PageId> = [3u32, 4, 5, 7, 9, 10, 500]
            .iter()
            .map(|&p| PageId(p))
            .collect();
        let mut out: Vec<PageBuf> = (0..read_pids.len()).map(|_| zeroed_page()).collect();
        b.read_pages(&read_pids, &mut out).unwrap();
        for (pid, got) in read_pids.iter().zip(&out) {
            let mut single = zeroed_page();
            b.read_page(*pid, &mut single).unwrap();
            assert_eq!(&got[..], &single[..], "page {pid} diverged");
        }
        assert_eq!(out[0][0], 3);
        assert_eq!(out[5][0], 10);
        assert!(out[3].iter().all(|&x| x == 0), "gap page must be zero");
        assert!(out[6].iter().all(|&x| x == 0), "past-extent page zero");
    }

    #[test]
    fn mem_backend_vectored_roundtrip() {
        vectored_roundtrip(&MemBackend::new());
    }

    #[test]
    fn file_backend_vectored_roundtrip() {
        let dir = std::env::temp_dir().join(format!("sbspace-vec-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pages.db");
        vectored_roundtrip(&FileBackend::open(&path).unwrap());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fault_injector_ticks_per_page_in_vectored_calls() {
        let b = FaultInjector::new(MemBackend::new());
        let images: Vec<PageBuf> = (0..3u32).map(|p| page_from_slice(&[p as u8])).collect();
        let pairs: Vec<(PageId, &[u8; PAGE_SIZE])> = images
            .iter()
            .enumerate()
            .map(|(i, img)| (PageId(i as u32), &**img))
            .collect();
        b.write_pages(&pairs).unwrap(); // 3 ticks
        b.fail_after(2);
        // The third page of the batch trips the injector: two pages made
        // it down, exactly as three single-page writes would behave.
        assert!(matches!(b.write_pages(&pairs), Err(SbError::Io(_))));
        assert_eq!(b.injected(), 1);
        let mut out: Vec<PageBuf> = (0..3).map(|_| zeroed_page()).collect();
        let pids: Vec<PageId> = (0..3).map(PageId).collect();
        assert!(matches!(b.read_pages(&pids, &mut out), Err(SbError::Io(_))));
        b.heal();
        b.read_pages(&pids, &mut out).unwrap();
        assert_eq!(out[2][0], 2);
    }

    #[test]
    fn fault_injection_fires_and_heals() {
        let b = FaultInjector::new(MemBackend::new());
        let p = page_from_slice(b"x");
        b.write_page(PageId(0), &p).unwrap();
        b.fail_after(1);
        let mut out = zeroed_page();
        b.read_page(PageId(0), &mut out).unwrap(); // the allowed op
        assert!(matches!(
            b.read_page(PageId(0), &mut out),
            Err(SbError::Io(_))
        ));
        assert!(matches!(b.write_page(PageId(0), &p), Err(SbError::Io(_))));
        b.heal();
        b.read_page(PageId(0), &mut out).unwrap();
    }
}
