//! A stand-in for Informix's *sbspace*: a page-backed store of smart
//! large objects (BLOBs) with the concurrency and recovery semantics the
//! paper analyses in Section 5.3.
//!
//! The paper's GR-tree DataBlade stores each index inside **one smart
//! large object** in an sbspace. The properties it relies on — and
//! criticises — are reproduced here:
//!
//! * automatic **two-phase locking at the large-object level**: a lock
//!   is acquired when an LO is opened for reading or writing and,
//!   depending on the lock mode and the transaction's isolation level,
//!   released either when the LO is closed or at transaction end;
//! * no sub-LO locking: a DataBlade developer "has no control over the
//!   locking of large objects, nor over logging and recovery", so
//!   R-link-style concurrency protocols are impossible — which this
//!   crate's benchmarks make measurable;
//! * crash safety via a **write-ahead log**: data-page writes are
//!   buffered (no-steal) and forced at commit after their redo images
//!   reach the log; space-allocation metadata is logged separately with
//!   per-transaction compensation so an abort or crash frees what an
//!   unfinished transaction allocated.
//!
//! The store runs over an in-memory backend (for tests and benchmarks)
//! or a file backend (for recovery tests), with optional fault
//! injection. A shared [`IoStats`] counter block exposes logical and
//! physical I/O, which the benchmark harness uses as its platform-
//! independent cost metric.

pub mod backend;
pub mod buffer;
pub(crate) mod group;
pub mod lo;
pub mod lock;
pub mod page;
pub mod space;
pub mod stats;
pub mod txn;
pub mod wal;

pub use backend::{Backend, FaultInjector, FileBackend, MemBackend};
pub use buffer::PageGuard;
pub use lo::LoId;
pub use lock::{IsolationLevel, LockMode};
pub use page::{PageBuf, PageId, PAGE_SIZE};
pub use space::{
    LoHandle, LoReader, PageSource, Sbspace, SbspaceOptions, SpaceInfo, SpaceSnapshot,
};
pub use stats::{IoSnapshot, IoStats};
pub use txn::{Txn, TxnEnd, TxnId};
pub use wal::{FileWal, MemWal, WalStore, DEFAULT_SEGMENT_BYTES};

/// Errors produced by the storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SbError {
    /// An I/O failure from the backend (or injected fault).
    Io(String),
    /// The requested page or large object does not exist.
    NotFound(String),
    /// Lock acquisition failed because it would deadlock.
    Deadlock(String),
    /// Lock acquisition timed out.
    LockTimeout(String),
    /// The store's on-disk state is corrupt.
    Corrupt(String),
    /// Misuse of the API (e.g. writing through a read-only handle).
    Usage(String),
    /// The transaction has already ended.
    TxnEnded,
}

impl std::fmt::Display for SbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SbError::Io(m) => write!(f, "io error: {m}"),
            SbError::NotFound(m) => write!(f, "not found: {m}"),
            SbError::Deadlock(m) => write!(f, "deadlock: {m}"),
            SbError::LockTimeout(m) => write!(f, "lock timeout: {m}"),
            SbError::Corrupt(m) => write!(f, "corrupt store: {m}"),
            SbError::Usage(m) => write!(f, "usage error: {m}"),
            SbError::TxnEnded => write!(f, "transaction already ended"),
        }
    }
}

impl std::error::Error for SbError {}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, SbError>;
