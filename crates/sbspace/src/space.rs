//! The sbspace facade: transactions, large-object lifecycle, and
//! recovery.
//!
//! This is the surface the DataBlade's BLOB-manipulation layer talks to
//! (the paper's `Create()`, `Drop()`, `Open()`, `Close()`, `Read()`,
//! `Write()` functions): create/open/drop large objects under automatic
//! LO-level two-phase locking, read/write them by page or by byte
//! range, and commit or abort atomically. Opening a space replays the
//! write-ahead log: metadata images unconditionally, data images of
//! committed transactions, and compensation (freeing) of pages
//! allocated by transactions that never finished.

use crate::backend::{Backend, FileBackend, MemBackend};
use crate::buffer::{BufferPool, PageGuard};
use crate::group::GroupCommitter;
use crate::lo::{decode_free_next, encode_free_page, Header, Inode, LoId};
use crate::lock::{IsolationLevel, LockManager, LockMode};
use crate::page::{PageBuf, PageId, NO_PAGE, PAGE_SIZE};
use crate::stats::IoStats;
use crate::txn::{TxnEnd, TxnId, TxnState};
use crate::wal::{FileWal, MemWal, WalRecord, WalStore};
use crate::{Result, SbError};
use grt_metrics::{Counter, Gauge, Metrics};
use parking_lot::{Condvar, Mutex};
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Tuning knobs for an sbspace.
#[derive(Debug, Clone)]
pub struct SbspaceOptions {
    /// Buffer-pool capacity in pages.
    pub pool_pages: usize,
    /// Number of lock-striped buffer-pool shards (`page_id % shards`).
    /// More shards reduce contention between threads touching different
    /// pages; a power of two near the expected thread count works well.
    pub pool_shards: usize,
    /// Lock-wait timeout.
    pub lock_timeout: Duration,
    /// When true, committing transactions share WAL appends and syncs
    /// through a group-commit leader, and the data-page writes are
    /// deferred entirely (no-force — the WAL's redo images carry
    /// durability): the checkpointer, or eviction pressure, writes them
    /// later. When false (the default), every commit forces the log and
    /// the data pages itself.
    pub group_commit: bool,
    /// Maximum commit batches a group-commit leader flushes per sync.
    pub commit_batch_size: usize,
    /// Size at which a WAL segment rolls. Together with the checkpoint
    /// cadence this bounds both the log's footprint and how much of it
    /// recovery replays.
    pub wal_segment_bytes: usize,
    /// When set, a background thread fuzzy-checkpoints the space at
    /// this cadence: it incrementally flushes committed-dirty frames,
    /// writes a checkpoint record, recycles every WAL segment below the
    /// active-transaction low-water mark, and sweeps retired page
    /// batches whose snapshots have drained. `None` (the default) runs
    /// no thread; [`Sbspace::checkpoint`] still checkpoints on demand.
    pub checkpoint_interval: Option<Duration>,
    /// Background prefetch worker threads in the buffer pool. Scans
    /// announce upcoming pages ([`LoHandle::prefetch`],
    /// [`LoReader::prefetch`]) and the workers fault them in through
    /// vectored backend reads, overlapping I/O with compute. `0` (the
    /// default) disables prefetch entirely — announcements are no-ops.
    pub prefetch_workers: usize,
    /// Bound on the prefetch queue, in pages. Announcements past the
    /// bound are dropped (prefetch is advisory, never back-pressure).
    pub prefetch_depth: usize,
}

impl Default for SbspaceOptions {
    fn default() -> Self {
        SbspaceOptions {
            pool_pages: 256,
            pool_shards: 8,
            lock_timeout: Duration::from_secs(2),
            group_commit: false,
            commit_batch_size: 32,
            wal_segment_bytes: crate::wal::DEFAULT_SEGMENT_BYTES,
            checkpoint_interval: None,
            prefetch_workers: 0,
            prefetch_depth: 64,
        }
    }
}

/// A snapshot of space occupancy (see [`Sbspace::space_info`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpaceInfo {
    /// Allocation watermark (pages ever handed out, header included).
    pub total_pages: u32,
    /// Pages currently on the free list.
    pub free_pages: u32,
    /// Live large objects (advisory).
    pub lo_count: u32,
}

type EndCallback = Box<dyn Fn(TxnId, TxnEnd) + Send + Sync>;

/// A committed page table of one large object, as last published.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct LoTable {
    pub pages: Vec<u32>,
    pub size: u64,
}

/// The versioned registry of committed page tables. `tables` is swapped
/// wholesale at each publishing commit, so cloning the `Arc` yields a
/// transactionally consistent cut across every large object; `epoch`
/// counts publishes that retired pages, and `open`/`retired` gate the
/// reclamation of superseded pages on the oldest live snapshot.
struct PublishedState {
    epoch: u64,
    tables: Arc<HashMap<u32, Arc<LoTable>>>,
    /// Live snapshots per epoch (count of [`SpaceSnapshot`]s opened
    /// while `epoch` had that value).
    open: BTreeMap<u64, usize>,
    /// Retired page batches, each tagged with the epoch whose snapshots
    /// may still reference them. A batch is freed once every open
    /// snapshot's epoch is strictly newer.
    retired: VecDeque<(u64, Vec<u32>)>,
}

pub(crate) struct SpaceInner {
    /// Sharded and internally synchronised — no outer lock.
    pool: BufferPool,
    wal: Box<dyn WalStore>,
    group: GroupCommitter,
    group_commit: bool,
    pub(crate) lm: LockManager,
    stats: Arc<IoStats>,
    /// Engine-wide metrics registry; holds the [`IoStats`] cells under
    /// `sbspace.*` names and is shared upward so higher layers (ids,
    /// the tree access methods) register their counters alongside.
    metrics: Arc<Metrics>,
    /// Serialises header/free-list operations.
    meta: Mutex<()>,
    txns: Mutex<HashMap<u64, TxnState>>,
    next_txn: AtomicU64,
    callbacks: Mutex<Vec<EndCallback>>,
    /// Committed page tables and snapshot/reclamation bookkeeping.
    published: Mutex<PublishedState>,
    /// Excludes retired-batch reclamation from a checkpoint's
    /// capture-to-durable window. A checkpoint copies `retired` into its
    /// record and only *later* gets that record on disk; if a snapshot
    /// drop or a commit popped one of those batches in between, its
    /// pages could be freed, reallocated, and the reallocation's
    /// `AllocNote` logged *before* the checkpoint record — replay would
    /// then honour the record's stale claim and free a live page. Held
    /// by the checkpoint from capture until the record is durable (and
    /// through its own sweep, so concurrent checkpoints serialise), and
    /// by every site that pops batches via `reclaimable` and frees them.
    /// Lock order: `retire_guard` before `published`.
    retire_guard: Mutex<()>,
    /// Transactions past their durable commit point whose frames are
    /// not yet relabelled committed-dirty in the pool, keyed by txn id
    /// with the segment active at their begin. A checkpoint's low-water
    /// mark covers these as well as `txns`: recycling the segment
    /// holding such a transaction's redo images before the pool knows
    /// about them would lose a committed transaction on crash.
    committing: Mutex<HashMap<u64, u64>>,
    /// Snapshot reads taken (`sbspace.snapshot_reads`).
    snapshot_reads: Counter,
    /// Snapshots currently open (`sbspace.snapshots_open`).
    snapshots_open: Gauge,
    /// Published page-table entries superseded (`sbspace.page_tables_retired`).
    page_tables_retired: Counter,
    /// Fuzzy checkpoints completed (`sbspace.checkpoints`).
    checkpoints: Counter,
    /// Checkpoint attempts that failed (`sbspace.checkpoint_failures`).
    /// The previous checkpoint stays authoritative: nothing was
    /// recycled or truncated.
    checkpoint_failures: Counter,
    /// WAL segments deleted by checkpoints (`wal.segments_recycled`).
    segments_recycled: Counter,
    /// Bytes across live WAL segments as of the last checkpoint
    /// (`wal.live_bytes`).
    wal_live_bytes: Gauge,
    /// The configured `(prefetch_workers, prefetch_depth)` — surfaced
    /// by [`Sbspace::prefetch_params`] so EXPLAIN output can report the
    /// scan prefetch mode.
    prefetch_params: (usize, usize),
    /// Background checkpointer shutdown flag + wakeup.
    ckpt_stop: Arc<(Mutex<bool>, Condvar)>,
    /// The background checkpointer, when `checkpoint_interval` is set.
    ckpt_thread: Mutex<Option<std::thread::JoinHandle<()>>>,
}

/// A store of smart large objects. Cheap to clone (shared handle).
#[derive(Clone)]
pub struct Sbspace {
    inner: Arc<SpaceInner>,
}

/// A transaction handle. Dropping an unfinished transaction aborts it.
pub struct Txn {
    inner: Arc<SpaceInner>,
    id: TxnId,
    done: AtomicBool,
}

/// An open large object, holding the lock its open acquired.
pub struct LoHandle {
    inner: Arc<SpaceInner>,
    txn: TxnId,
    lo: LoId,
    mode: LockMode,
    inode: Inode,
    inode_dirty: bool,
    closed: bool,
}

impl Sbspace {
    /// Opens a space over arbitrary backend and log, running recovery
    /// and initialising a fresh header when the store is blank.
    pub fn open_with(
        backend: impl Backend + 'static,
        wal: impl WalStore + 'static,
        opts: SbspaceOptions,
    ) -> Result<Sbspace> {
        let stats = IoStats::new_shared();
        let metrics = Metrics::shared();
        stats.register_in(&metrics);
        let pool = BufferPool::with_prefetch(
            Box::new(backend),
            opts.pool_pages,
            opts.pool_shards,
            Arc::clone(&stats),
            opts.prefetch_workers,
            opts.prefetch_depth,
        );
        Self::recover(&pool, &wal)?;
        // Initialise the header if the space is brand new.
        let mut page0 = crate::page::zeroed_page();
        pool.recovery_read(PageId(0), &mut page0)?;
        if Header::is_blank(&page0) {
            pool.recovery_write(PageId(0), &Header::fresh().encode())?;
            pool.sync_backend()?;
        } else {
            Header::decode(&page0)?;
        }
        pool.invalidate();
        let snapshot_reads = metrics.counter("sbspace.snapshot_reads");
        let snapshots_open = metrics.gauge("sbspace.snapshots_open");
        let page_tables_retired = metrics.counter("sbspace.page_tables_retired");
        let checkpoints = metrics.counter("sbspace.checkpoints");
        let checkpoint_failures = metrics.counter("sbspace.checkpoint_failures");
        let segments_recycled = metrics.counter("wal.segments_recycled");
        let wal_live_bytes = metrics.gauge("wal.live_bytes");
        let space = Sbspace {
            inner: Arc::new(SpaceInner {
                pool,
                wal: Box::new(wal),
                group: GroupCommitter::new(opts.commit_batch_size),
                group_commit: opts.group_commit,
                lm: LockManager::new(opts.lock_timeout, Arc::clone(&stats)),
                stats,
                metrics,
                meta: Mutex::new(()),
                txns: Mutex::new(HashMap::new()),
                next_txn: AtomicU64::new(1),
                callbacks: Mutex::new(Vec::new()),
                published: Mutex::new(PublishedState {
                    epoch: 0,
                    tables: Arc::new(HashMap::new()),
                    open: BTreeMap::new(),
                    retired: VecDeque::new(),
                }),
                retire_guard: Mutex::new(()),
                committing: Mutex::new(HashMap::new()),
                snapshot_reads,
                snapshots_open,
                page_tables_retired,
                checkpoints,
                checkpoint_failures,
                segments_recycled,
                wal_live_bytes,
                prefetch_params: (opts.prefetch_workers, opts.prefetch_depth),
                ckpt_stop: Arc::new((Mutex::new(false), Condvar::new())),
                ckpt_thread: Mutex::new(None),
            }),
        };
        if let Some(interval) = opts.checkpoint_interval {
            space.spawn_checkpointer(interval);
        }
        Ok(space)
    }

    /// An in-memory space (tests, benchmarks).
    pub fn mem(opts: SbspaceOptions) -> Sbspace {
        let wal = MemWal::with_segment_bytes(opts.wal_segment_bytes);
        Sbspace::open_with(MemBackend::new(), wal, opts).expect("mem space")
    }

    /// A file-backed space in `dir` (`pages.db` + a `wal/` segment
    /// directory).
    pub fn file(dir: &Path, opts: SbspaceOptions) -> Result<Sbspace> {
        std::fs::create_dir_all(dir).map_err(|e| SbError::Io(e.to_string()))?;
        let backend = FileBackend::open(&dir.join("pages.db"))?;
        let wal = FileWal::open_with(&dir.join("wal"), opts.wal_segment_bytes)?;
        Sbspace::open_with(backend, wal, opts)
    }

    /// Spawns the background fuzzy checkpointer. The thread holds only
    /// a weak handle, so it never keeps a closed space alive; it skips
    /// ticks where nothing new was logged and no retired batch waits.
    fn spawn_checkpointer(&self, interval: Duration) {
        let weak = Arc::downgrade(&self.inner);
        let stop = Arc::clone(&self.inner.ckpt_stop);
        let handle = std::thread::Builder::new()
            .name("sbspace-checkpoint".into())
            .spawn(move || {
                let mut last_appended = u64::MAX; // first tick always runs
                loop {
                    {
                        let (flag, cond) = &*stop;
                        let mut stopped = flag.lock();
                        if !*stopped {
                            cond.wait_for(&mut stopped, interval);
                        }
                        if *stopped {
                            return;
                        }
                    }
                    let Some(inner) = weak.upgrade() else { return };
                    let appended = inner.wal.appended_total();
                    let retire_pending = !inner.published.lock().retired.is_empty();
                    if appended != last_appended || retire_pending {
                        last_appended = appended;
                        // Failure leaves the previous checkpoint
                        // authoritative; the failure counter is bumped
                        // inside and the next tick retries.
                        let _ = inner.run_checkpoint();
                    }
                }
            })
            .expect("spawn checkpointer");
        *self.inner.ckpt_thread.lock() = Some(handle);
    }

    /// Log replay, streamed one segment at a time so recovery memory is
    /// O(segment), not O(log): metadata images always, data images of
    /// committed transactions, checkpoint retire carry-overs, then
    /// compensation for unfinished allocations.
    ///
    /// A torn tail — an undecodable suffix — is a legal crash artefact
    /// only in the youngest segment; older segments were sealed by a
    /// roll and must decode cleanly, so an unclean tail there is real
    /// corruption and recovery refuses to guess past it.
    fn recover(pool: &BufferPool, wal: &dyn WalStore) -> Result<()> {
        let segs = wal.segments()?;
        // Pass 1: transaction statuses (and the sealed-segment
        // cleanliness check). Only ids are retained — page images are
        // decoded again in pass 2 and dropped segment by segment.
        let mut finished: HashSet<TxnId> = HashSet::new();
        let mut committed: HashSet<TxnId> = HashSet::new();
        let mut any = false;
        for (i, &seg) in segs.iter().enumerate() {
            let bytes = wal.read_segment(seg)?;
            let (records, clean) = WalRecord::decode_segment(&bytes);
            if !clean && i + 1 != segs.len() {
                return Err(SbError::Corrupt(format!(
                    "wal segment {seg} is sealed but does not decode cleanly"
                )));
            }
            any |= !records.is_empty();
            for r in &records {
                match r {
                    WalRecord::Commit { txn } => {
                        committed.insert(*txn);
                        finished.insert(*txn);
                    }
                    WalRecord::Abort { txn } => {
                        finished.insert(*txn);
                    }
                    _ => {}
                }
            }
        }
        if !any {
            return Ok(());
        }
        let mut leaked: Vec<u32> = Vec::new();
        // Pages retired by committed transactions whose deferred
        // reclamation may not have reached the free list (a snapshot
        // held them at the crash), plus retire claims a checkpoint
        // record carried forward from recycled segments. A later
        // AllocNote for the same page proves its reclamation DID
        // complete — the page was handed out again — so the retire
        // claim is cancelled in log order.
        let mut retired: HashSet<u32> = HashSet::new();
        for &seg in &segs {
            let bytes = wal.read_segment(seg)?;
            let (records, _) = WalRecord::decode_segment(&bytes);
            for r in &records {
                match r {
                    WalRecord::MetaImage { pid, data } => {
                        pool.recovery_write(PageId(*pid), data)?;
                    }
                    WalRecord::PageImage { txn, pid, data } if committed.contains(txn) => {
                        pool.recovery_write(PageId(*pid), data)?;
                    }
                    WalRecord::AllocNote { txn, pages } => {
                        for p in pages {
                            retired.remove(p);
                        }
                        if !finished.contains(txn) {
                            leaked.extend_from_slice(pages);
                        }
                    }
                    WalRecord::RetireNote { txn, pages } if committed.contains(txn) => {
                        retired.extend(pages.iter().copied());
                    }
                    WalRecord::Checkpoint { pending_retire } => {
                        // Retired pages still pinned by snapshots when
                        // the checkpoint ran: a crash ended those
                        // snapshots, so they free exactly like committed
                        // retire notes (idempotently — the free-list
                        // scan below skips pages already freed).
                        retired.extend(pending_retire.iter().copied());
                    }
                    _ => {}
                }
            }
        }
        leaked.extend(retired);
        if !leaked.is_empty() {
            // Free leaked pages, skipping any already on the free list
            // (a crash mid-abort may have freed a prefix).
            let mut page0 = crate::page::zeroed_page();
            pool.recovery_read(PageId(0), &mut page0)?;
            if !Header::is_blank(&page0) {
                let mut header = Header::decode(&page0)?;
                let mut free: HashSet<u32> = HashSet::new();
                let mut cursor = header.free_head;
                while cursor != NO_PAGE {
                    if !free.insert(cursor) {
                        return Err(SbError::Corrupt("free-list cycle".into()));
                    }
                    let mut p = crate::page::zeroed_page();
                    pool.recovery_read(PageId(cursor), &mut p)?;
                    cursor = decode_free_next(&p)?;
                }
                for pid in leaked {
                    if pid == 0 || pid >= header.total_pages || free.contains(&pid) {
                        continue;
                    }
                    pool.recovery_write(PageId(pid), &encode_free_page(header.free_head))?;
                    header.free_head = pid;
                    free.insert(pid);
                }
                pool.recovery_write(PageId(0), &header.encode())?;
            }
        }
        pool.sync_backend()?;
        wal.truncate()?;
        pool.invalidate();
        Ok(())
    }

    /// Starts a transaction.
    pub fn begin(&self, iso: IsolationLevel) -> Txn {
        let id = TxnId(self.inner.next_txn.fetch_add(1, Ordering::SeqCst));
        // Read the active segment *before* publishing the transaction:
        // segment ids only grow, so this is a valid lower bound on
        // where any of the transaction's records can land.
        let start_seg = self.inner.wal.active_segment();
        self.inner
            .txns
            .lock()
            .insert(id.0, TxnState::new(iso, start_seg));
        // Deliberately not logged: recovery infers unfinished
        // transactions from the absence of a Commit/Abort record, and a
        // fire-and-forget Begin append could tear and strand every
        // later record beyond the garbage.
        Txn {
            inner: Arc::clone(&self.inner),
            id,
            done: AtomicBool::new(false),
        }
    }

    /// Registers an end-of-transaction callback (the paper's Section 5.4
    /// mechanism for clearing per-transaction named memory).
    pub fn on_txn_end(&self, f: impl Fn(TxnId, TxnEnd) + Send + Sync + 'static) {
        self.inner.callbacks.lock().push(Box::new(f));
    }

    /// The shared I/O counters.
    pub fn stats(&self) -> Arc<IoStats> {
        Arc::clone(&self.inner.stats)
    }

    /// The engine-wide metrics registry. The `sbspace.*` counters are
    /// pre-registered; callers add their own counters and histograms
    /// next to them and diff [`Metrics::snapshot`]s for per-phase costs.
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.inner.metrics)
    }

    /// Number of large objects currently locked (diagnostic).
    pub fn locked_objects(&self) -> usize {
        self.inner.lm.lock_count()
    }

    /// The configured `(prefetch_workers, prefetch_depth)` pair.
    /// `(0, _)` means scan prefetch is off.
    pub fn prefetch_params(&self) -> (usize, usize) {
        self.inner.prefetch_params
    }

    /// Blocks until the prefetch queue has drained (benchmark hook;
    /// no-op when prefetch is off).
    pub fn prefetch_quiesce(&self) {
        self.inner.pool.prefetch_quiesce();
    }

    /// Drops every cached frame, so the next reads hit the backend cold
    /// (benchmark hook — lets a cold-scan harness measure physical I/O
    /// without reopening the space). Quiesces the prefetcher first so
    /// in-flight installs don't repopulate the cache behind the drop.
    pub fn drop_page_cache(&self) {
        self.inner.pool.prefetch_quiesce();
        self.inner.pool.invalidate();
    }

    /// The lock mode `txn` currently holds on `lo`, if any (diagnostic).
    pub fn lock_held(&self, txn: &Txn, lo: LoId) -> Option<LockMode> {
        self.inner.lm.held(txn.id(), lo.0)
    }

    /// Number of transactions currently blocked on a lock (diagnostic).
    pub fn lock_waiters(&self) -> usize {
        self.inner.lm.waiter_count()
    }

    /// True when the lock table and the wait-for graph are both empty.
    /// A correctly quiesced workload — every session's transactions
    /// committed or aborted — must leave the lock manager in this
    /// state; the stress harness asserts it.
    pub fn locks_quiescent(&self) -> bool {
        self.inner.lm.is_quiescent()
    }

    /// Creates a new large object, exclusively locked by `txn`.
    pub fn create_lo(&self, txn: &Txn) -> Result<LoId> {
        txn.check_live()?;
        let pid = self.inner.alloc_pages(txn.id, 1)?.pop().expect("one page");
        let id = LoId(pid);
        self.inner.lock_for(txn.id, id, LockMode::Exclusive)?;
        // The inode itself is transactional data: invisible until commit.
        let images = Inode::empty().encode(id);
        for (p, data) in images {
            self.inner.pool.write_txn(txn.id, PageId(p), &data);
        }
        Ok(id)
    }

    /// Opens a large object, acquiring a shared (read) or exclusive
    /// (write) lock per the paper's sbspace semantics.
    pub fn open_lo(&self, txn: &Txn, lo: LoId, mode: LockMode) -> Result<LoHandle> {
        txn.check_live()?;
        self.inner.lock_for(txn.id, lo, mode)?;
        IoStats::bump(&self.inner.stats.lo_opens);
        let inode = self.inner.load_inode(lo)?;
        Ok(LoHandle {
            inner: Arc::clone(&self.inner),
            txn: txn.id,
            lo,
            mode,
            inode,
            inode_dirty: false,
            closed: false,
        })
    }

    /// Schedules a large object for destruction at commit (it stays
    /// exclusively locked until then).
    pub fn drop_lo(&self, txn: &Txn, lo: LoId) -> Result<()> {
        txn.check_live()?;
        self.inner.lock_for(txn.id, lo, LockMode::Exclusive)?;
        // Validate it exists now rather than failing at commit.
        self.inner.load_inode(lo)?;
        let mut txns = self.inner.txns.lock();
        let st = txns.get_mut(&txn.id.0).ok_or(SbError::TxnEnded)?;
        st.pending_drops.push(lo.0);
        Ok(())
    }

    /// Verifies a large object's page table (the `am_check` primitive):
    /// in-range page ids and no duplicates.
    pub fn verify_lo(&self, txn: &Txn, lo: LoId) -> Result<()> {
        txn.check_live()?;
        self.inner.lock_for(txn.id, lo, LockMode::Shared)?;
        let inode = self.inner.load_inode(lo)?;
        let header = self.inner.read_header()?;
        let mut seen = HashSet::new();
        for pid in inode.all_pages(lo) {
            if pid >= header.total_pages {
                return Err(SbError::Corrupt(format!("{lo}: page {pid} out of range")));
            }
            if !seen.insert(pid) {
                return Err(SbError::Corrupt(format!("{lo}: duplicate page {pid}")));
            }
        }
        Ok(())
    }

    /// Space occupancy: allocation watermark, free pages, live objects.
    pub fn space_info(&self) -> Result<SpaceInfo> {
        let _g = self.inner.meta.lock();
        let header = self.inner.read_header()?;
        let mut free = 0u32;
        let mut cursor = header.free_head;
        let mut seen = HashSet::new();
        while cursor != NO_PAGE {
            if !seen.insert(cursor) {
                return Err(SbError::Corrupt("free-list cycle".into()));
            }
            free += 1;
            let mut p = crate::page::zeroed_page();
            self.inner.pool.read(PageId(cursor), &mut p)?;
            cursor = decode_free_next(&p)?;
        }
        Ok(SpaceInfo {
            total_pages: header.total_pages,
            free_pages: free,
            lo_count: header.lo_count,
        })
    }

    /// Runs one fuzzy checkpoint now (the same routine the background
    /// thread runs): flushes committed-dirty frames shard by shard —
    /// writers proceed meanwhile — syncs the backend, writes a
    /// checkpoint record carrying the snapshot-pinned retire backlog,
    /// recycles every WAL segment wholly below the active-transaction
    /// low-water mark, and sweeps retired page batches whose snapshots
    /// have drained. Active transactions are fine: their segments are
    /// simply kept.
    pub fn checkpoint(&self) -> Result<()> {
        self.inner.run_checkpoint()
    }

    /// Bytes across all live WAL segments.
    pub fn wal_live_bytes(&self) -> Result<u64> {
        self.inner.wal.live_bytes()
    }

    /// Number of live WAL segments.
    pub fn wal_segment_count(&self) -> Result<usize> {
        Ok(self.inner.wal.segments()?.len())
    }

    /// Retired page batches still gated behind open snapshots
    /// (diagnostic; the checkpointer sweeps drained batches).
    pub fn retired_batches(&self) -> usize {
        self.inner.published.lock().retired.len()
    }

    /// Takes a consistent snapshot covering the given large objects:
    /// their last **committed** page tables, pinned against reclamation
    /// until the snapshot drops. No LO-level lock is held by the
    /// snapshot — concurrent writers proceed under 2PL and shadow
    /// paging, and this snapshot keeps seeing the pre-commit pages.
    ///
    /// Objects never published since the space opened are seeded from
    /// their inodes under a momentary shared lock (so an in-flight
    /// writer's uncommitted table is never captured). Errors if an
    /// object does not exist — callers fall back to the locked read
    /// path.
    pub fn snapshot_for(&self, los: &[LoId]) -> Result<SpaceSnapshot> {
        for &lo in los {
            self.inner.publish_if_absent(lo)?;
        }
        let mut published = self.inner.published.lock();
        for &lo in los {
            if !published.tables.contains_key(&lo.0) {
                return Err(SbError::NotFound(format!("{lo}: not published")));
            }
        }
        let epoch = published.epoch;
        *published.open.entry(epoch).or_insert(0) += 1;
        let tables = Arc::clone(&published.tables);
        drop(published);
        self.inner.snapshot_reads.inc();
        self.inner.snapshots_open.inc();
        Ok(SpaceSnapshot {
            inner: Arc::clone(&self.inner),
            epoch,
            tables,
        })
    }

    /// Number of snapshots currently open (diagnostic; also exported as
    /// the `sbspace.snapshots_open` gauge).
    pub fn snapshots_open(&self) -> u64 {
        self.inner.snapshots_open.get()
    }
}

/// A consistent read view over the committed page tables of a set of
/// large objects, taken by [`Sbspace::snapshot_for`]. Holding the
/// snapshot pins every page it references: pages a concurrent writer
/// retires stay readable and are only returned to the free list after
/// the last snapshot of their epoch drops.
///
/// Cheap to clone at the `Arc` level by the caller; internally it is
/// one epoch registration, deregistered on drop.
pub struct SpaceSnapshot {
    inner: Arc<SpaceInner>,
    epoch: u64,
    tables: Arc<HashMap<u32, Arc<LoTable>>>,
}

impl SpaceSnapshot {
    /// The publish epoch this snapshot pinned.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// True when the snapshot covers `lo`.
    pub fn contains(&self, lo: LoId) -> bool {
        self.tables.contains_key(&lo.0)
    }

    /// Opens a lock-free reader over `lo`'s snapshotted page table.
    /// The returned [`LoReader`] must not outlive this snapshot — the
    /// snapshot's registration is what keeps the pages unreclaimed.
    pub fn reader(&self, lo: LoId) -> Result<LoReader> {
        let table = self
            .tables
            .get(&lo.0)
            .ok_or_else(|| SbError::NotFound(format!("{lo}: not in snapshot")))?;
        Ok(LoReader {
            inner: Arc::clone(&self.inner),
            lo,
            pages: table.pages.clone(),
        })
    }

    /// Byte size of `lo` in the snapshot.
    pub fn len_of(&self, lo: LoId) -> Result<u64> {
        self.tables
            .get(&lo.0)
            .map(|t| t.size)
            .ok_or_else(|| SbError::NotFound(format!("{lo}: not in snapshot")))
    }
}

impl Drop for SpaceSnapshot {
    fn drop(&mut self) {
        // Pop and free under the retire guard: a checkpoint that has
        // already captured these batches for its record must get that
        // record durable before the pages can re-enter circulation.
        let retire = self.inner.retire_guard.lock();
        let to_reclaim = {
            let mut published = self.inner.published.lock();
            match published.open.get_mut(&self.epoch) {
                Some(n) if *n > 1 => *n -= 1,
                _ => {
                    published.open.remove(&self.epoch);
                }
            }
            SpaceInner::reclaimable(&mut published)
        };
        self.inner.snapshots_open.dec();
        // Reclamation failure in a destructor is unreportable; on a
        // store whose metadata writes fail the pages stay unreachable
        // until the next recovery replays their retire notes.
        let _ = self.inner.free_pages(&to_reclaim);
        drop(retire);
    }
}

impl SpaceInner {
    fn read_header(&self) -> Result<Header> {
        let mut buf = crate::page::zeroed_page();
        self.pool.read(PageId(0), &mut buf)?;
        Header::decode(&buf)
    }

    fn lock_for(&self, txn: TxnId, lo: LoId, mode: LockMode) -> Result<()> {
        self.lm.acquire(txn, lo.0, mode)?;
        if let Some(st) = self.txns.lock().get_mut(&txn.0) {
            st.locks.insert(lo.0);
        }
        Ok(())
    }

    fn load_inode(&self, lo: LoId) -> Result<Inode> {
        // Pinned reads: the inode and indirect pages are decoded in
        // place, no page copies.
        Inode::decode(lo, |pid| self.pool.read_pinned(PageId(pid)))
    }

    /// Seeds the published registry with `lo`'s committed page table
    /// when it has never been published since the space opened (e.g. a
    /// file-backed space freshly reopened). A momentary shared lock —
    /// under a throwaway transaction id that holds nothing else, so it
    /// cannot deadlock — excludes in-flight writers while the inode is
    /// read; no epoch bump, since nothing is superseded.
    fn publish_if_absent(&self, lo: LoId) -> Result<()> {
        if self.published.lock().tables.contains_key(&lo.0) {
            return Ok(());
        }
        let tid = TxnId(self.next_txn.fetch_add(1, Ordering::SeqCst));
        self.lm.acquire(tid, lo.0, LockMode::Shared)?;
        let seeded = (|| -> Result<()> {
            let inode = self.load_inode(lo)?;
            let mut published = self.published.lock();
            if !published.tables.contains_key(&lo.0) {
                let mut tables = (*published.tables).clone();
                tables.insert(
                    lo.0,
                    Arc::new(LoTable {
                        pages: inode.data_pages.clone(),
                        size: inode.size,
                    }),
                );
                published.tables = Arc::new(tables);
            }
            Ok(())
        })();
        self.lm.release(tid, lo.0);
        seeded
    }

    /// Pops every retired batch no open snapshot can still reference.
    /// Call with the published-state lock held; free the returned pages
    /// *after* releasing it.
    fn reclaimable(published: &mut PublishedState) -> Vec<u32> {
        let min_open = published.open.keys().next().copied().unwrap_or(u64::MAX);
        let mut out = Vec::new();
        while let Some((tag, _)) = published.retired.front() {
            if *tag < min_open {
                out.extend(published.retired.pop_front().expect("front exists").1);
            } else {
                break;
            }
        }
        out
    }

    /// Durably applies metadata page images: log first, then write
    /// through.
    fn meta_apply(&self, images: Vec<(u32, PageBuf)>) -> Result<()> {
        for (pid, data) in &images {
            self.wal.append(
                &WalRecord::MetaImage {
                    pid: *pid,
                    data: data.clone(),
                }
                .encode(),
            )?;
        }
        IoStats::bump(&self.stats.wal_syncs);
        self.wal.sync()?;
        for (pid, data) in &images {
            self.pool.write_through(PageId(*pid), data)?;
        }
        Ok(())
    }

    /// Allocates `n` pages for `txn`, noting them for crash/abort
    /// compensation.
    pub(crate) fn alloc_pages(&self, txn: TxnId, n: usize) -> Result<Vec<u32>> {
        let _g = self.meta.lock();
        let mut header = self.read_header()?;
        let mut got = Vec::with_capacity(n);
        let mut images: Vec<(u32, PageBuf)> = Vec::new();
        for _ in 0..n {
            if header.free_head != NO_PAGE {
                let pid = header.free_head;
                let mut buf = crate::page::zeroed_page();
                self.pool.read(PageId(pid), &mut buf)?;
                header.free_head = decode_free_next(&buf)?;
                got.push(pid);
            } else {
                let pid = header.total_pages;
                header.total_pages += 1;
                got.push(pid);
            }
        }
        self.wal.append(
            &WalRecord::AllocNote {
                txn,
                pages: got.clone(),
            }
            .encode(),
        )?;
        images.push((0, header.encode()));
        self.meta_apply(images)?;
        if let Some(st) = self.txns.lock().get_mut(&txn.0) {
            st.alloc_pages.extend_from_slice(&got);
            st.owned.extend(got.iter().copied());
        }
        Ok(got)
    }

    /// Returns pages to the free list (system transaction).
    fn free_pages(&self, pages: &[u32]) -> Result<()> {
        if pages.is_empty() {
            return Ok(());
        }
        let _g = self.meta.lock();
        let mut header = self.read_header()?;
        let mut images: Vec<(u32, PageBuf)> = Vec::with_capacity(pages.len() + 1);
        for &pid in pages {
            debug_assert!(pid != 0, "cannot free the header page");
            images.push((pid, encode_free_page(header.free_head)));
            header.free_head = pid;
        }
        images.push((0, header.encode()));
        self.meta_apply(images)
    }

    fn adjust_lo_count(&self, delta: i64) -> Result<()> {
        let _g = self.meta.lock();
        let mut header = self.read_header()?;
        header.lo_count = (header.lo_count as i64 + delta).max(0) as u32;
        self.meta_apply(vec![(0, header.encode())])
    }

    fn run_callbacks(&self, txn: TxnId, end: TxnEnd) {
        // Clone nothing: callbacks are invoked under no internal locks.
        let cbs = self.callbacks.lock();
        for cb in cbs.iter() {
            cb(txn, end);
        }
    }

    /// Removes `txn` from the active map while anchoring the checkpoint
    /// low-water mark: between leaving `txns` and finishing its end
    /// protocol the transaction is invisible to the checkpointer's
    /// active scan, yet its log records (redo images and commit record,
    /// or allocation notes awaiting compensation) must not be recycled.
    /// Callers MUST remove the `committing` entry on every exit path.
    fn take_txn_anchored(&self, txn: TxnId) -> Result<TxnState> {
        let mut txns = self.txns.lock();
        let start_seg = txns
            .get(&txn.0)
            .map(|st| st.start_seg)
            .ok_or(SbError::TxnEnded)?;
        self.committing.lock().insert(txn.0, start_seg);
        Ok(txns.remove(&txn.0).expect("present under lock"))
    }

    pub(crate) fn commit_txn(&self, txn: TxnId) -> Result<()> {
        let mut state = self.take_txn_anchored(txn)?;
        // 0. Resolve deferred LO drops into their page sets now, under
        //    the exclusive locks this transaction still holds. The
        //    whole set — inode, indirect chain, data pages — is retired
        //    rather than freed: an open snapshot may still be reading
        //    the data pages. A failure here aborts cleanly.
        let mut all_retired = std::mem::take(&mut state.retired);
        let mut drop_failed = None;
        for lo in &state.pending_drops {
            match self.load_inode(LoId(*lo)) {
                Ok(inode) => all_retired.extend(inode.all_pages(LoId(*lo))),
                Err(e) => {
                    drop_failed = Some(e);
                    break;
                }
            }
        }
        if let Some(e) = drop_failed {
            self.pool.discard_txn(txn);
            self.committing.lock().remove(&txn.0);
            self.lm.release_all(txn);
            IoStats::bump(&self.stats.txn_aborts);
            self.run_callbacks(txn, TxnEnd::Abort);
            return Err(e);
        }
        // 1. Log redo images of every page this transaction dirtied,
        //    a retire note for the pages it superseded, then the commit
        //    record, then force the log. A read-only transaction (no
        //    dirty pages, no logged allocations, nothing retired) has
        //    nothing to redo or compensate and skips the WAL entirely.
        let dirty = self.pool.dirty_of(txn);
        let read_only = dirty.is_empty() && state.alloc_pages.is_empty() && all_retired.is_empty();
        let logged = if read_only {
            // No WAL traffic, no sync.
            Ok(())
        } else if self.group_commit {
            // Group commit: encode everything into one batch and ride a
            // shared append + sync. Held 2PL locks serialise conflicting
            // transactions, so queue order is a valid history.
            let mut batch = Vec::new();
            for (pid, data) in &dirty {
                batch.extend_from_slice(
                    &WalRecord::PageImage {
                        txn,
                        pid: pid.0,
                        data: crate::page::page_from_slice(&data[..]),
                    }
                    .encode(),
                );
            }
            if !all_retired.is_empty() {
                batch.extend_from_slice(
                    &WalRecord::RetireNote {
                        txn,
                        pages: all_retired.clone(),
                    }
                    .encode(),
                );
            }
            batch.extend_from_slice(&WalRecord::Commit { txn }.encode());
            self.group.commit(self.wal.as_ref(), &self.stats, batch)
        } else {
            (|| {
                for (pid, data) in &dirty {
                    self.wal.append(
                        &WalRecord::PageImage {
                            txn,
                            pid: pid.0,
                            data: crate::page::page_from_slice(&data[..]),
                        }
                        .encode(),
                    )?;
                }
                if !all_retired.is_empty() {
                    self.wal.append(
                        &WalRecord::RetireNote {
                            txn,
                            pages: all_retired.clone(),
                        }
                        .encode(),
                    )?;
                }
                self.wal.append(&WalRecord::Commit { txn }.encode())?;
                IoStats::bump(&self.stats.wal_syncs);
                self.wal.sync()
            })()
        };
        if let Err(e) = logged {
            // The commit record never became durable, so this is an
            // abort: shed the dirty frames and the locks rather than
            // leaking them (the allocated pages are reclaimed by the
            // next recovery, as for any unfinished transaction).
            self.pool.discard_txn(txn);
            self.committing.lock().remove(&txn.0);
            self.lm.release_all(txn);
            IoStats::bump(&self.stats.txn_aborts);
            self.run_callbacks(txn, TxnEnd::Abort);
            return Err(e);
        }
        // The commit record is durable — past the commit point. From
        // here every path must still publish, release locks, and fire
        // callbacks: a failure below is reported but cannot un-commit
        // the transaction (the durable redo images repair the backend
        // on the next recovery), and leaked locks would wedge every
        // later transaction touching the same objects.
        IoStats::bump(&self.stats.txn_commits);
        // 2. The data pages. Group commit is no-force: the frames are
        //    merely relabelled committed-dirty — the checkpointer (or
        //    eviction pressure) writes them later, since the durable
        //    redo images above repair any crash from here. Without
        //    group commit the pages are forced immediately.
        let flush_result = if self.group_commit {
            self.pool.mark_committed(txn);
            Ok(())
        } else {
            self.pool.flush_txn(txn, true)
        };
        // 3. Publish the new page tables atomically (one map swap =
        //    one consistent cut for future snapshots) and queue the
        //    retired pages behind the epoch gate. Pages shared between
        //    the old and new table versions are never in the retired
        //    set, so superseding a published entry frees nothing by
        //    itself.
        // Excluded from any in-flight checkpoint's capture window: once
        // a checkpoint has copied the retired queue into its record, no
        // batch from that copy may reach the free list (and be handed
        // out again) before the record is durable.
        let _retire = self.retire_guard.lock();
        let to_reclaim = {
            let mut published = self.published.lock();
            if !state.pending_publish.is_empty() || !state.pending_drops.is_empty() {
                let mut tables = (*published.tables).clone();
                for (lo, table) in state.pending_publish.drain() {
                    match table {
                        Some(t) => {
                            if tables.get(&lo).is_some_and(|prev| **prev == t) {
                                continue; // unchanged (e.g. an idle exclusive open)
                            }
                            if tables.insert(lo, Arc::new(t)).is_some() {
                                self.page_tables_retired.inc();
                            }
                        }
                        None => {
                            if tables.remove(&lo).is_some() {
                                self.page_tables_retired.inc();
                            }
                        }
                    }
                }
                for lo in &state.pending_drops {
                    if tables.remove(lo).is_some() {
                        self.page_tables_retired.inc();
                    }
                }
                published.tables = Arc::new(tables);
            }
            if !all_retired.is_empty() {
                let tag = published.epoch;
                published.epoch += 1;
                published.retired.push_back((tag, all_retired));
            }
            Self::reclaimable(&mut published)
        };
        // Frames are marked and the retired batch is queued (a
        // checkpoint from here carries it in its record), so the
        // low-water anchor can drop.
        self.committing.lock().remove(&txn.0);
        let reclaim_result = self.free_pages(&to_reclaim);
        // Released before callbacks run: a callback may drop a snapshot,
        // whose destructor takes the guard itself.
        drop(_retire);
        let count_result = if state.pending_drops.is_empty() {
            Ok(())
        } else {
            self.adjust_lo_count(-(state.pending_drops.len() as i64))
        };
        // 4. Release locks and notify.
        self.lm.release_all(txn);
        self.run_callbacks(txn, TxnEnd::Commit);
        flush_result.and(reclaim_result).and(count_result)
    }

    pub(crate) fn abort_txn(&self, txn: TxnId) -> Result<()> {
        // Anchored like a commit: until the abort record (or at least
        // the free-list compensation) is logged, recycling the segment
        // holding this transaction's allocation notes would leak its
        // pages if we then crash.
        let state = self.take_txn_anchored(txn)?;
        // Counted up front: a failure while compensating below still
        // ends the transaction as an abort.
        IoStats::bump(&self.stats.txn_aborts);
        // 1. Drop uncommitted frames (no-steal: the backend is clean).
        self.pool.discard_txn(txn);
        // 2./3. Compensate allocations (the pages go back to the free
        //    list) and record the abort so recovery does not
        //    re-compensate. Shadow paging allocates a fresh page for
        //    every copy-on-write redirect, so this compensation does
        //    real free-list I/O for any aborted writer — and it can
        //    fail on a faulty backend. The locks are released either
        //    way: a compensation failure leaks at most free pages
        //    (repaired by the next recovery), while a leaked lock
        //    wedges every later transaction on the same objects.
        let compensated = (|| {
            self.free_pages(&state.alloc_pages)?;
            self.wal.append(&WalRecord::Abort { txn }.encode())?;
            IoStats::bump(&self.stats.wal_syncs);
            self.wal.sync()
        })();
        self.committing.lock().remove(&txn.0);
        // 4. Release locks and notify.
        self.lm.release_all(txn);
        self.run_callbacks(txn, TxnEnd::Abort);
        compensated
    }

    /// One fuzzy checkpoint. The ordering is the crash-safety argument:
    ///
    /// 1. capture the low-water mark — the oldest segment any live
    ///    (active or mid-end) transaction may still need. Transactions
    ///    that begin or commit during the walk either anchored the mark
    ///    or append into segments at or above it, which survive;
    /// 2. flush committed-dirty frames shard by shard (writers on other
    ///    shards proceed — the fuzzy part) and sync the backend. Every
    ///    redo image below the mark is now redundant;
    /// 3. append a checkpoint record carrying the retire backlog still
    ///    pinned by open snapshots, and make it durable. Only *after*
    ///    that record is on disk
    /// 4. recycle the segments below the mark, then sweep retired
    ///    batches whose snapshots have drained.
    ///
    /// A failure at any step returns before the later steps run, so a
    /// failed checkpoint never truncates or recycles anything: the
    /// previous checkpoint stays authoritative and the next attempt
    /// retries the whole sequence.
    fn checkpoint_once(&self) -> Result<()> {
        let lwm = {
            let txns = self.txns.lock();
            let committing = self.committing.lock();
            txns.values()
                .map(|st| st.start_seg)
                .chain(committing.values().copied())
                .min()
                .unwrap_or_else(|| self.wal.active_segment())
        };
        self.pool.flush_committed()?;
        self.pool.sync_backend()?;
        // From here to the end of the sweep: no snapshot drop or commit
        // may pop-and-free a retired batch. The record below claims the
        // batches captured here, and a claim is only crash-safe if any
        // later reallocation of those pages logs its `AllocNote` *after*
        // the record (see `retire_guard`).
        let _capture = self.retire_guard.lock();
        // The segments holding the original retire notes may be
        // recycled below; a crash ends every snapshot, so recovery
        // frees these exactly like committed retire notes.
        let pending_retire: Vec<u32> = {
            let published = self.published.lock();
            published
                .retired
                .iter()
                .flat_map(|(_, pages)| pages.iter().copied())
                .collect()
        };
        let record = WalRecord::Checkpoint { pending_retire }.encode();
        if self.group_commit {
            // Ride the group committer: honours its poisoning (never
            // append past a possibly-torn tail) and serialises with
            // concurrent commit batches.
            self.group.commit(self.wal.as_ref(), &self.stats, record)?;
        } else {
            self.wal.append(&record)?;
            IoStats::bump(&self.stats.wal_syncs);
            self.wal.sync()?;
        }
        let recycled = self.wal.recycle_below(lwm)?;
        self.segments_recycled.add(recycled as u64);
        // Sweep drained retire batches online — previously they were
        // only freed when a snapshot dropped or a commit ran, so a
        // batch whose last snapshot died without reclaiming (e.g. a
        // failed destructor-side free) stayed stranded until reboot.
        let to_reclaim = {
            let mut published = self.published.lock();
            Self::reclaimable(&mut published)
        };
        self.free_pages(&to_reclaim)?;
        self.wal_live_bytes.set(self.wal.live_bytes()?);
        Ok(())
    }

    /// Runs one checkpoint, keeping score: success bumps
    /// `sbspace.checkpoints`, failure bumps `sbspace.checkpoint_failures`
    /// and — by the ordering inside [`SpaceInner::checkpoint_once`] —
    /// leaves the previous checkpoint authoritative.
    pub(crate) fn run_checkpoint(&self) -> Result<()> {
        let result = self.checkpoint_once();
        match &result {
            Ok(()) => self.checkpoints.inc(),
            Err(_) => self.checkpoint_failures.inc(),
        }
        result
    }
}

impl Drop for SpaceInner {
    fn drop(&mut self) {
        *self.ckpt_stop.0.lock() = true;
        self.ckpt_stop.1.notify_all();
        if let Some(handle) = self.ckpt_thread.get_mut().take() {
            // The checkpointer's own weak upgrade can briefly make it
            // the last owner, in which case this drop runs *on* that
            // thread — and a thread cannot join itself. It exits on its
            // next loop iteration instead.
            if handle.thread().id() != std::thread::current().id() {
                let _ = handle.join();
            }
        }
    }
}

impl Txn {
    /// This transaction's id.
    pub fn id(&self) -> TxnId {
        self.id
    }

    /// The transaction's isolation level.
    pub fn isolation(&self) -> IsolationLevel {
        self.inner
            .txns
            .lock()
            .get(&self.id.0)
            .map(|s| s.iso)
            .unwrap_or_default()
    }

    fn check_live(&self) -> Result<()> {
        if self.done.load(Ordering::SeqCst) {
            return Err(SbError::TxnEnded);
        }
        Ok(())
    }

    /// Commits: redo images to the log, force, apply deferred drops,
    /// release locks, fire callbacks.
    pub fn commit(self) -> Result<()> {
        self.check_live()?;
        self.done.store(true, Ordering::SeqCst);
        self.inner.commit_txn(self.id)
    }

    /// Aborts: uncommitted writes vanish, allocations are compensated.
    pub fn abort(self) -> Result<()> {
        self.check_live()?;
        self.done.store(true, Ordering::SeqCst);
        self.inner.abort_txn(self.id)
    }
}

impl Drop for Txn {
    fn drop(&mut self) {
        if !self.done.swap(true, Ordering::SeqCst) {
            let _ = self.inner.abort_txn(self.id);
        }
    }
}

impl LoHandle {
    /// The object's id.
    pub fn id(&self) -> LoId {
        self.lo
    }

    /// Number of data pages.
    pub fn page_count(&self) -> u32 {
        self.inode.data_pages.len() as u32
    }

    /// Byte size of the object.
    pub fn len(&self) -> u64 {
        self.inode.size
    }

    /// True when the object holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.inode.size == 0
    }

    /// True when the handle was opened for writing.
    pub fn is_writable(&self) -> bool {
        self.mode == LockMode::Exclusive
    }

    fn check_writable(&self) -> Result<()> {
        if self.mode != LockMode::Exclusive {
            return Err(SbError::Usage(format!("{} opened read-only", self.lo)));
        }
        Ok(())
    }

    fn phys(&self, logical: u32) -> Result<u32> {
        self.inode
            .data_pages
            .get(logical as usize)
            .copied()
            .ok_or_else(|| SbError::NotFound(format!("{}: page {logical}", self.lo)))
    }

    /// Shadow paging: returns a physical page this transaction may
    /// overwrite. A page the transaction allocated itself is written in
    /// place; a committed page is superseded instead — a fresh page
    /// takes its page-table slot and the old one is retired, freed at
    /// commit once no snapshot can still be reading it. Callers always
    /// supply the full page image, so the old contents are never copied
    /// forward here.
    fn redirect(&mut self, logical: u32) -> Result<u32> {
        let pid = self.phys(logical)?;
        if self
            .inner
            .txns
            .lock()
            .get(&self.txn.0)
            .is_some_and(|st| st.owned.contains(&pid))
        {
            return Ok(pid);
        }
        let fresh = self.inner.alloc_pages(self.txn, 1)?[0];
        self.inode.data_pages[logical as usize] = fresh;
        self.inode_dirty = true;
        self.retire(vec![pid]);
        Ok(fresh)
    }

    /// Queues committed pages this transaction superseded for the
    /// epoch-gated free at commit (forgotten on abort — the committed
    /// versions remain live).
    fn retire(&self, pages: Vec<u32>) {
        if pages.is_empty() {
            return;
        }
        if let Some(st) = self.inner.txns.lock().get_mut(&self.txn.0) {
            st.retired.extend(pages);
        }
    }

    /// Reads logical page `logical` of the object into a fresh buffer.
    /// Prefer [`LoHandle::read_page_pinned`] on hot paths — it avoids
    /// the page copy.
    pub fn read_page(&self, logical: u32) -> Result<PageBuf> {
        let pid = self.phys(logical)?;
        let mut buf = crate::page::zeroed_page();
        self.inner.pool.read(PageId(pid), &mut buf)?;
        Ok(buf)
    }

    /// Pins logical page `logical` and returns a zero-copy view of its
    /// bytes. The underlying frame stays resident until the guard drops;
    /// concurrent writers see a private copy (copy-on-write), so the
    /// guard is a stable snapshot.
    pub fn read_page_pinned(&self, logical: u32) -> Result<PageGuard> {
        let pid = self.phys(logical)?;
        self.inner.pool.read_pinned(PageId(pid))
    }

    /// Announces logical pages an upcoming scan will read, letting the
    /// pool's prefetch workers fault them in while the caller computes.
    /// Advisory: out-of-range pages are skipped, and the call is a
    /// no-op when the space runs without prefetch workers.
    pub fn prefetch(&self, logical: &[u32]) {
        let pids: Vec<PageId> = logical
            .iter()
            .filter_map(|&l| self.inode.data_pages.get(l as usize).map(|&p| PageId(p)))
            .collect();
        if !pids.is_empty() {
            self.inner.pool.prefetch(&pids);
        }
    }

    /// Writes logical page `logical` (buffered until commit).
    ///
    /// The page-level API does not touch the byte size — an index that
    /// manages whole pages reports its extent via [`LoHandle::page_count`].
    pub fn write_page(&mut self, logical: u32, data: &[u8; PAGE_SIZE]) -> Result<()> {
        self.check_writable()?;
        let pid = self.redirect(logical)?;
        self.inner.pool.write_txn(self.txn, PageId(pid), data);
        Ok(())
    }

    /// Appends a page, returning its logical number.
    pub fn append_page(&mut self, data: &[u8; PAGE_SIZE]) -> Result<u32> {
        self.check_writable()?;
        let pid = self.inner.alloc_pages(self.txn, 1)?[0];
        self.inode.data_pages.push(pid);
        let logical = self.inode.data_pages.len() as u32 - 1;
        self.inode_dirty = true;
        self.inner.pool.write_txn(self.txn, PageId(pid), data);
        Ok(logical)
    }

    /// Drops pages from the tail. Their storage is retired, not freed:
    /// reclamation happens after commit, once no snapshot can still
    /// reference them (which also keeps an abort from clobbering the
    /// committed page table — nothing durable moves before the commit
    /// record).
    pub fn truncate_pages(&mut self, keep: u32) -> Result<()> {
        self.check_writable()?;
        if (keep as usize) >= self.inode.data_pages.len() {
            return Ok(());
        }
        let dropped: Vec<u32> = self.inode.data_pages.split_off(keep as usize);
        self.inode.size = self.inode.size.min(keep as u64 * PAGE_SIZE as u64);
        self.inode_dirty = true;
        self.retire(dropped);
        Ok(())
    }

    /// Reads `out.len()` bytes at byte `offset`; short reads past the
    /// end are zero-filled and the valid prefix length is returned.
    pub fn read_at(&self, offset: u64, out: &mut [u8]) -> Result<usize> {
        out.fill(0);
        if offset >= self.inode.size {
            return Ok(0);
        }
        let valid = ((self.inode.size - offset) as usize).min(out.len());
        let mut done = 0usize;
        while done < valid {
            let pos = offset + done as u64;
            let page = (pos / PAGE_SIZE as u64) as u32;
            let in_page = (pos % PAGE_SIZE as u64) as usize;
            let n = (PAGE_SIZE - in_page).min(valid - done);
            let buf = self.read_page(page)?;
            out[done..done + n].copy_from_slice(&buf[in_page..in_page + n]);
            done += n;
        }
        Ok(valid)
    }

    /// Writes `data` at byte `offset`, extending the object as needed.
    pub fn write_at(&mut self, offset: u64, data: &[u8]) -> Result<()> {
        self.check_writable()?;
        let end = offset + data.len() as u64;
        let pages_needed = end.div_ceil(PAGE_SIZE as u64) as u32;
        while self.page_count() < pages_needed {
            self.append_page(&crate::page::zeroed_page())?;
        }
        let mut done = 0usize;
        while done < data.len() {
            let pos = offset + done as u64;
            let page = (pos / PAGE_SIZE as u64) as u32;
            let in_page = (pos % PAGE_SIZE as u64) as usize;
            let n = (PAGE_SIZE - in_page).min(data.len() - done);
            let mut buf = self.read_page(page)?;
            buf[in_page..in_page + n].copy_from_slice(&data[done..done + n]);
            self.write_page(page, &buf)?;
            done += n;
        }
        if end > self.inode.size {
            self.inode.size = end;
            self.inode_dirty = true;
        }
        Ok(())
    }

    /// Flushes the cached inode (page-table and size changes) into the
    /// transaction's buffered writes.
    pub fn flush(&mut self) -> Result<()> {
        if !self.inode_dirty {
            return Ok(());
        }
        // Size the indirect chain to the page table.
        let needed = Inode::indirect_needed(self.inode.data_pages.len());
        while self.inode.indirect_pids.len() < needed {
            let pid = self.inner.alloc_pages(self.txn, 1)?[0];
            self.inode.indirect_pids.push(pid);
        }
        if self.inode.indirect_pids.len() > needed {
            let extra = self.inode.indirect_pids.split_off(needed);
            self.retire(extra);
        }
        let images = self.inode.encode(self.lo);
        for (pid, data) in images {
            self.inner.pool.write_txn(self.txn, PageId(pid), &data);
        }
        self.inode_dirty = false;
        Ok(())
    }

    /// Closes the handle: flushes the inode and, for a shared lock under
    /// `ReadCommitted`, releases the lock early (the paper's LO-close
    /// semantics).
    pub fn close(mut self) -> Result<()> {
        self.do_close()
    }

    fn do_close(&mut self) -> Result<()> {
        if self.closed {
            return Ok(());
        }
        self.closed = true;
        self.flush()?;
        if self.mode == LockMode::Exclusive {
            // Stage the (possibly rewritten) page table for the atomic
            // publish at commit; the latest close of an LO wins. Staged
            // state dies with the transaction on abort.
            if let Some(st) = self.inner.txns.lock().get_mut(&self.txn.0) {
                st.pending_publish.insert(
                    self.lo.0,
                    Some(LoTable {
                        pages: self.inode.data_pages.clone(),
                        size: self.inode.size,
                    }),
                );
            }
        }
        let iso = self
            .inner
            .txns
            .lock()
            .get(&self.txn.0)
            .map(|s| s.iso)
            .unwrap_or_default();
        if self.mode == LockMode::Shared && iso == IsolationLevel::ReadCommitted {
            self.inner.lm.release(self.txn, self.lo.0);
            if let Some(st) = self.inner.txns.lock().get_mut(&self.txn.0) {
                st.locks.remove(&self.lo.0);
            }
        }
        Ok(())
    }
}

impl Drop for LoHandle {
    fn drop(&mut self) {
        let _ = self.do_close();
    }
}

/// A `Send + Sync` read-only view of a large object: the page table is
/// snapshotted at creation and every read goes through the shared
/// buffer pool's pinned path, so any number of threads can traverse the
/// same object concurrently without a lock-manager interaction per
/// read.
///
/// The view is as stable as whatever pins the page table it was built
/// from: a reader taken from a [`LoHandle`] is protected by that
/// handle's lock (keep the handle open while the reader lives); a
/// reader taken from a [`SpaceSnapshot`] is protected by the snapshot's
/// epoch registration — shadow paging means committed pages are never
/// overwritten in place, and the epoch gate keeps them off the free
/// list (keep the snapshot alive while the reader lives). Readers hand
/// out [`PageGuard`]s, which must all be dropped before the owning
/// space shuts down.
pub struct LoReader {
    inner: Arc<SpaceInner>,
    lo: LoId,
    pages: Vec<u32>,
}

impl LoReader {
    /// The object's id.
    pub fn id(&self) -> LoId {
        self.lo
    }

    /// Number of data pages in the snapshot.
    pub fn page_count(&self) -> u32 {
        self.pages.len() as u32
    }

    fn phys(&self, logical: u32) -> Result<u32> {
        self.pages
            .get(logical as usize)
            .copied()
            .ok_or_else(|| SbError::NotFound(format!("{}: page {logical}", self.lo)))
    }

    /// Reads logical page `logical` into a fresh buffer, exactly like
    /// [`LoHandle::read_page`].
    pub fn read_page(&self, logical: u32) -> Result<PageBuf> {
        let pid = self.phys(logical)?;
        let mut buf = crate::page::zeroed_page();
        self.inner.pool.read(PageId(pid), &mut buf)?;
        Ok(buf)
    }

    /// Pins logical page `logical` and returns a zero-copy view of its
    /// bytes, exactly like [`LoHandle::read_page_pinned`].
    pub fn read_page_pinned(&self, logical: u32) -> Result<PageGuard> {
        let pid = self.phys(logical)?;
        self.inner.pool.read_pinned(PageId(pid))
    }

    /// Announces logical pages an upcoming scan will read, exactly like
    /// [`LoHandle::prefetch`]: advisory, skips out-of-range pages,
    /// no-op without prefetch workers.
    pub fn prefetch(&self, logical: &[u32]) {
        let pids: Vec<PageId> = logical
            .iter()
            .filter_map(|&l| self.pages.get(l as usize).map(|&p| PageId(p)))
            .collect();
        if !pids.is_empty() {
            self.inner.pool.prefetch(&pids);
        }
    }
}

/// Page-granular read access shared by the locked and the snapshot
/// paths: code generic over `PageSource` (the heap scanner, the tree
/// cursors) runs identically over a [`LoHandle`] — 2PL, sees the
/// transaction's own writes — and over a [`LoReader`] — lock-free, a
/// frozen committed view.
pub trait PageSource {
    /// Number of data pages visible through this source.
    fn page_count(&self) -> u32;
    /// Reads logical page `logical` into a fresh buffer.
    fn read_page(&self, logical: u32) -> Result<PageBuf>;
    /// Pins logical page `logical` for zero-copy access.
    fn read_page_pinned(&self, logical: u32) -> Result<PageGuard>;
    /// Announces logical pages an upcoming scan will read. Advisory —
    /// the default does nothing, so sources without a prefetcher (or
    /// tests with trivial sources) need no code.
    fn prefetch(&self, _logical: &[u32]) {}
}

impl PageSource for LoHandle {
    fn page_count(&self) -> u32 {
        LoHandle::page_count(self)
    }
    fn read_page(&self, logical: u32) -> Result<PageBuf> {
        LoHandle::read_page(self, logical)
    }
    fn read_page_pinned(&self, logical: u32) -> Result<PageGuard> {
        LoHandle::read_page_pinned(self, logical)
    }
    fn prefetch(&self, logical: &[u32]) {
        LoHandle::prefetch(self, logical);
    }
}

impl PageSource for LoReader {
    fn page_count(&self) -> u32 {
        LoReader::page_count(self)
    }
    fn read_page(&self, logical: u32) -> Result<PageBuf> {
        LoReader::read_page(self, logical)
    }
    fn read_page_pinned(&self, logical: u32) -> Result<PageGuard> {
        LoReader::read_page_pinned(self, logical)
    }
    fn prefetch(&self, logical: &[u32]) {
        LoReader::prefetch(self, logical);
    }
}

impl<P: PageSource + ?Sized> PageSource for &P {
    fn page_count(&self) -> u32 {
        (**self).page_count()
    }
    fn read_page(&self, logical: u32) -> Result<PageBuf> {
        (**self).read_page(logical)
    }
    fn read_page_pinned(&self, logical: u32) -> Result<PageGuard> {
        (**self).read_page_pinned(logical)
    }
    fn prefetch(&self, logical: &[u32]) {
        (**self).prefetch(logical)
    }
}

impl LoHandle {
    /// Snapshots this handle into a [`LoReader`] that worker threads can
    /// share. The handle's lock protects the reader: keep the handle
    /// open for as long as any reader (or guard it produced) is live.
    pub fn reader(&self) -> LoReader {
        LoReader {
            inner: self.inner.clone(),
            lo: self.lo,
            pages: self.inode.data_pages.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> Sbspace {
        Sbspace::mem(SbspaceOptions {
            pool_pages: 64,
            lock_timeout: Duration::from_millis(200),
            ..Default::default()
        })
    }

    #[test]
    fn create_write_read_roundtrip() {
        let sb = space();
        let txn = sb.begin(IsolationLevel::ReadCommitted);
        let lo = sb.create_lo(&txn).unwrap();
        let mut h = sb.open_lo(&txn, lo, LockMode::Exclusive).unwrap();
        h.write_at(0, b"hello large object").unwrap();
        h.write_at(10_000, b"far away").unwrap();
        let mut buf = [0u8; 18];
        h.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"hello large object");
        let mut far = [0u8; 8];
        h.read_at(10_000, &mut far).unwrap();
        assert_eq!(&far, b"far away");
        h.close().unwrap();
        txn.commit().unwrap();

        // Visible to a later transaction.
        let txn2 = sb.begin(IsolationLevel::ReadCommitted);
        let h2 = sb.open_lo(&txn2, lo, LockMode::Shared).unwrap();
        let mut buf2 = [0u8; 18];
        h2.read_at(0, &mut buf2).unwrap();
        assert_eq!(&buf2, b"hello large object");
        assert_eq!(h2.len(), 10_008);
    }

    #[test]
    fn abort_undoes_everything() {
        let sb = space();
        let txn = sb.begin(IsolationLevel::ReadCommitted);
        let lo = sb.create_lo(&txn).unwrap();
        {
            let mut h = sb.open_lo(&txn, lo, LockMode::Exclusive).unwrap();
            h.write_at(0, b"doomed").unwrap();
        }
        txn.abort().unwrap();
        // The object does not exist for later transactions.
        let txn2 = sb.begin(IsolationLevel::ReadCommitted);
        assert!(sb.open_lo(&txn2, lo, LockMode::Shared).is_err());
    }

    #[test]
    fn aborted_pages_are_reused() {
        let sb = space();
        let txn = sb.begin(IsolationLevel::ReadCommitted);
        let lo = sb.create_lo(&txn).unwrap();
        txn.abort().unwrap();
        let txn2 = sb.begin(IsolationLevel::ReadCommitted);
        let lo2 = sb.create_lo(&txn2).unwrap();
        // The freed inode page comes straight back off the free list.
        assert_eq!(lo2, lo);
        txn2.commit().unwrap();
    }

    #[test]
    fn drop_lo_deferred_to_commit() {
        let sb = space();
        let txn = sb.begin(IsolationLevel::ReadCommitted);
        let lo = sb.create_lo(&txn).unwrap();
        let mut h = sb.open_lo(&txn, lo, LockMode::Exclusive).unwrap();
        h.write_at(0, b"bytes").unwrap();
        h.close().unwrap();
        txn.commit().unwrap();

        let t2 = sb.begin(IsolationLevel::ReadCommitted);
        sb.drop_lo(&t2, lo).unwrap();
        t2.abort().unwrap();
        // Abort cancelled the drop.
        let t3 = sb.begin(IsolationLevel::ReadCommitted);
        assert!(sb.open_lo(&t3, lo, LockMode::Shared).is_ok());
        sb.drop_lo(&t3, lo).unwrap();
        t3.commit().unwrap();
        let t4 = sb.begin(IsolationLevel::ReadCommitted);
        assert!(sb.open_lo(&t4, lo, LockMode::Shared).is_err());
    }

    #[test]
    fn page_level_api() {
        let sb = space();
        let txn = sb.begin(IsolationLevel::ReadCommitted);
        let lo = sb.create_lo(&txn).unwrap();
        let mut h = sb.open_lo(&txn, lo, LockMode::Exclusive).unwrap();
        let p0 = crate::page::page_from_slice(b"node zero");
        let p1 = crate::page::page_from_slice(b"node one");
        assert_eq!(h.append_page(&p0).unwrap(), 0);
        assert_eq!(h.append_page(&p1).unwrap(), 1);
        assert_eq!(&h.read_page(1).unwrap()[..8], b"node one");
        let p1b = crate::page::page_from_slice(b"NODE ONE");
        h.write_page(1, &p1b).unwrap();
        assert_eq!(&h.read_page(1).unwrap()[..8], b"NODE ONE");
        assert!(h.read_page(2).is_err());
        h.truncate_pages(1).unwrap();
        assert_eq!(h.page_count(), 1);
        assert!(h.read_page(1).is_err());
        h.close().unwrap();
        txn.commit().unwrap();
        sb.checkpoint().unwrap();
    }

    #[test]
    fn writes_need_exclusive_handle() {
        let sb = space();
        let txn = sb.begin(IsolationLevel::ReadCommitted);
        let lo = sb.create_lo(&txn).unwrap();
        {
            let mut h = sb.open_lo(&txn, lo, LockMode::Exclusive).unwrap();
            h.write_at(0, b"x").unwrap();
        }
        txn.commit().unwrap();
        let t2 = sb.begin(IsolationLevel::ReadCommitted);
        let mut h = sb.open_lo(&t2, lo, LockMode::Shared).unwrap();
        assert!(matches!(h.write_at(0, b"y"), Err(SbError::Usage(_))));
    }

    #[test]
    fn lo_level_locking_blocks_writers() {
        let sb = space();
        let setup = sb.begin(IsolationLevel::ReadCommitted);
        let lo = sb.create_lo(&setup).unwrap();
        setup.commit().unwrap();

        let reader = sb.begin(IsolationLevel::RepeatableRead);
        let _h = sb.open_lo(&reader, lo, LockMode::Shared).unwrap();
        let writer = sb.begin(IsolationLevel::ReadCommitted);
        // Under repeatable read the shared lock is held even though we
        // could close the handle — so the writer times out.
        let err = match sb.open_lo(&writer, lo, LockMode::Exclusive) {
            Err(e) => e,
            Ok(_) => panic!("writer should have blocked"),
        };
        assert!(matches!(err, SbError::LockTimeout(_)), "{err}");
    }

    #[test]
    fn read_committed_releases_shared_lock_on_close() {
        let sb = space();
        let setup = sb.begin(IsolationLevel::ReadCommitted);
        let lo = sb.create_lo(&setup).unwrap();
        setup.commit().unwrap();

        let reader = sb.begin(IsolationLevel::ReadCommitted);
        let h = sb.open_lo(&reader, lo, LockMode::Shared).unwrap();
        h.close().unwrap();
        let writer = sb.begin(IsolationLevel::ReadCommitted);
        assert!(sb.open_lo(&writer, lo, LockMode::Exclusive).is_ok());
    }

    #[test]
    fn txn_end_callbacks_fire() {
        let sb = space();
        let log = Arc::new(Mutex::new(Vec::new()));
        let log2 = Arc::clone(&log);
        sb.on_txn_end(move |id, end| log2.lock().push((id, end)));
        let t1 = sb.begin(IsolationLevel::ReadCommitted);
        let id1 = t1.id();
        t1.commit().unwrap();
        let t2 = sb.begin(IsolationLevel::ReadCommitted);
        let id2 = t2.id();
        drop(t2); // implicit abort
        let got = log.lock().clone();
        assert_eq!(got, vec![(id1, TxnEnd::Commit), (id2, TxnEnd::Abort)]);
    }

    #[test]
    fn large_object_spanning_indirect_pages() {
        let sb = Sbspace::mem(SbspaceOptions {
            pool_pages: 4096,
            lock_timeout: Duration::from_millis(200),
            ..Default::default()
        });
        let txn = sb.begin(IsolationLevel::ReadCommitted);
        let lo = sb.create_lo(&txn).unwrap();
        let mut h = sb.open_lo(&txn, lo, LockMode::Exclusive).unwrap();
        let n = (crate::lo::DIRECT_CAP + 40) as u32;
        for i in 0..n {
            let page = crate::page::page_from_slice(&i.to_le_bytes());
            h.append_page(&page).unwrap();
        }
        h.close().unwrap();
        txn.commit().unwrap();

        let t2 = sb.begin(IsolationLevel::ReadCommitted);
        let h2 = sb.open_lo(&t2, lo, LockMode::Shared).unwrap();
        assert_eq!(h2.page_count(), n);
        for i in (0..n).step_by(97) {
            let page = h2.read_page(i).unwrap();
            assert_eq!(&page[..4], &i.to_le_bytes());
        }
        sb.verify_lo(&t2, lo).unwrap();
    }

    #[test]
    fn snapshot_sees_pre_write_state_and_reclaims_on_drop() {
        let sb = space();
        let txn = sb.begin(IsolationLevel::ReadCommitted);
        let lo = sb.create_lo(&txn).unwrap();
        let mut h = sb.open_lo(&txn, lo, LockMode::Exclusive).unwrap();
        h.write_at(0, b"version one").unwrap();
        h.close().unwrap();
        txn.commit().unwrap();

        let snap = sb.snapshot_for(&[lo]).unwrap();
        assert_eq!(sb.snapshots_open(), 1);
        let reader = snap.reader(lo).unwrap();
        assert_eq!(&reader.read_page(0).unwrap()[..11], b"version one");

        // A writer overwrites and commits; the snapshot never blocks it.
        let w = sb.begin(IsolationLevel::ReadCommitted);
        let mut hw = sb.open_lo(&w, lo, LockMode::Exclusive).unwrap();
        hw.write_at(0, b"version two").unwrap();
        hw.close().unwrap();
        w.commit().unwrap();

        // The snapshot still reads the superseded page...
        assert_eq!(&reader.read_page(0).unwrap()[..11], b"version one");
        // ...while a fresh snapshot sees the committed overwrite.
        let snap2 = sb.snapshot_for(&[lo]).unwrap();
        let r2 = snap2.reader(lo).unwrap();
        assert_eq!(&r2.read_page(0).unwrap()[..11], b"version two");
        drop(r2);
        drop(snap2);

        let free_before = sb.space_info().unwrap().free_pages;
        drop(reader);
        drop(snap);
        assert_eq!(sb.snapshots_open(), 0);
        // Dropping the last snapshot of the old epoch frees the retired
        // page.
        assert!(sb.space_info().unwrap().free_pages > free_before);
    }

    #[test]
    fn snapshot_taken_while_writer_holds_exclusive_lock() {
        let sb = space();
        let txn = sb.begin(IsolationLevel::ReadCommitted);
        let lo = sb.create_lo(&txn).unwrap();
        let mut h = sb.open_lo(&txn, lo, LockMode::Exclusive).unwrap();
        h.write_at(0, b"committed").unwrap();
        h.close().unwrap();
        txn.commit().unwrap();

        let w = sb.begin(IsolationLevel::ReadCommitted);
        let mut hw = sb.open_lo(&w, lo, LockMode::Exclusive).unwrap();
        hw.write_at(0, b"uncommitt").unwrap();
        // With the writer's exclusive lock still held, the snapshot
        // completes immediately (no LO-level lock on this path — a
        // blocked acquire would trip the 200ms lock timeout) and sees
        // only committed state.
        let snap = sb.snapshot_for(&[lo]).unwrap();
        let r = snap.reader(lo).unwrap();
        assert_eq!(&r.read_page(0).unwrap()[..9], b"committed");
        drop(r);
        drop(snap);
        hw.close().unwrap();
        w.abort().unwrap();
        // The abort freed only the copied-out pages; committed data is
        // intact.
        let t = sb.begin(IsolationLevel::ReadCommitted);
        let hr = sb.open_lo(&t, lo, LockMode::Shared).unwrap();
        let mut buf = [0u8; 9];
        hr.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"committed");
    }

    #[test]
    fn truncated_pages_stay_readable_under_snapshot() {
        let sb = space();
        let txn = sb.begin(IsolationLevel::ReadCommitted);
        let lo = sb.create_lo(&txn).unwrap();
        let mut h = sb.open_lo(&txn, lo, LockMode::Exclusive).unwrap();
        for i in 0..3u8 {
            h.append_page(&crate::page::page_from_slice(&[b'a' + i; 8]))
                .unwrap();
        }
        h.close().unwrap();
        txn.commit().unwrap();

        let snap = sb.snapshot_for(&[lo]).unwrap();
        let w = sb.begin(IsolationLevel::ReadCommitted);
        let mut hw = sb.open_lo(&w, lo, LockMode::Exclusive).unwrap();
        hw.truncate_pages(1).unwrap();
        hw.close().unwrap();
        w.commit().unwrap();

        // The snapshot still spans all three pages; the current view is
        // truncated.
        let reader = snap.reader(lo).unwrap();
        assert_eq!(reader.page_count(), 3);
        assert_eq!(&reader.read_page(2).unwrap()[..8], &[b'c'; 8]);
        let t = sb.begin(IsolationLevel::ReadCommitted);
        let hr = sb.open_lo(&t, lo, LockMode::Shared).unwrap();
        assert_eq!(hr.page_count(), 1);
    }
}
