//! Write-ahead log: redo images plus allocation notes for compensation.
//!
//! The log carries four kinds of information:
//!
//! * `MetaImage` — a full after-image of a *space metadata* page (the
//!   header, free-list pages). Meta operations are system transactions:
//!   their images are replayed unconditionally, in log order.
//! * `PageImage` — a full after-image of a *data* page written by a user
//!   transaction. Replayed only if that transaction committed (no-steal
//!   buffering means uncommitted data images never reach the log in the
//!   first place, but the rule is enforced anyway).
//! * `AllocNote` — pages a transaction allocated. If the transaction
//!   neither commits nor aborts (a crash), recovery frees these pages,
//!   mirroring the online abort path's compensation.
//! * `RetireNote` — pages a transaction superseded by shadow-paging
//!   copy-out (or dropped LOs). Online they are freed only after the
//!   commit point, once no snapshot can reference them; recovery frees
//!   them for transactions that **did** commit, since a crash ends
//!   every snapshot.
//! * `Begin` / `Commit` / `Abort` — transaction status.
//!
//! Records are length-prefixed with a simple checksum; a torn tail is
//! truncated at the first bad record, as a real log would.

use crate::page::{PageBuf, PAGE_SIZE};
use crate::txn::TxnId;
use crate::{Result, SbError};
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

/// A single log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// A user transaction started.
    Begin { txn: TxnId },
    /// Redo image of a data page, owned by `txn`.
    PageImage { txn: TxnId, pid: u32, data: PageBuf },
    /// Redo image of a metadata page (always replayed).
    MetaImage { pid: u32, data: PageBuf },
    /// Pages allocated by `txn`, to be freed if it never finishes.
    AllocNote { txn: TxnId, pages: Vec<u32> },
    /// Pages `txn` retired (shadow-paging copy-out, truncation, LO
    /// drop), to be freed if it committed but crashed before its
    /// deferred reclamation reached the free list.
    RetireNote { txn: TxnId, pages: Vec<u32> },
    /// The transaction committed (its page images are durable intent).
    Commit { txn: TxnId },
    /// The transaction aborted and its compensation has been applied.
    Abort { txn: TxnId },
}

const K_BEGIN: u8 = 1;
const K_PAGE: u8 = 2;
const K_META: u8 = 3;
const K_ALLOC: u8 = 4;
const K_COMMIT: u8 = 5;
const K_ABORT: u8 = 6;
const K_RETIRE: u8 = 7;

fn checksum(bytes: &[u8]) -> u32 {
    // FNV-1a, cheap and adequate for torn-write detection.
    let mut h: u32 = 0x811c_9dc5;
    for &b in bytes {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

impl WalRecord {
    fn encode_body(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            WalRecord::Begin { txn } => {
                out.push(K_BEGIN);
                out.extend_from_slice(&txn.0.to_le_bytes());
            }
            WalRecord::PageImage { txn, pid, data } => {
                out.push(K_PAGE);
                out.extend_from_slice(&txn.0.to_le_bytes());
                out.extend_from_slice(&pid.to_le_bytes());
                out.extend_from_slice(&data[..]);
            }
            WalRecord::MetaImage { pid, data } => {
                out.push(K_META);
                out.extend_from_slice(&pid.to_le_bytes());
                out.extend_from_slice(&data[..]);
            }
            WalRecord::AllocNote { txn, pages } => {
                out.push(K_ALLOC);
                out.extend_from_slice(&txn.0.to_le_bytes());
                out.extend_from_slice(&(pages.len() as u32).to_le_bytes());
                for p in pages {
                    out.extend_from_slice(&p.to_le_bytes());
                }
            }
            WalRecord::RetireNote { txn, pages } => {
                out.push(K_RETIRE);
                out.extend_from_slice(&txn.0.to_le_bytes());
                out.extend_from_slice(&(pages.len() as u32).to_le_bytes());
                for p in pages {
                    out.extend_from_slice(&p.to_le_bytes());
                }
            }
            WalRecord::Commit { txn } => {
                out.push(K_COMMIT);
                out.extend_from_slice(&txn.0.to_le_bytes());
            }
            WalRecord::Abort { txn } => {
                out.push(K_ABORT);
                out.extend_from_slice(&txn.0.to_le_bytes());
            }
        }
        out
    }

    /// Serialises with framing: `len | checksum | body`.
    pub fn encode(&self) -> Vec<u8> {
        let body = self.encode_body();
        let mut out = Vec::with_capacity(body.len() + 8);
        out.extend_from_slice(&(body.len() as u32).to_le_bytes());
        out.extend_from_slice(&checksum(&body).to_le_bytes());
        out.extend_from_slice(&body);
        out
    }

    fn decode_body(body: &[u8]) -> Result<WalRecord> {
        let bad = || SbError::Corrupt("truncated wal record body".into());
        let kind = *body.first().ok_or_else(bad)?;
        let rest = &body[1..];
        let u64_at = |off: usize| -> Result<u64> {
            rest.get(off..off + 8)
                .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
                .ok_or_else(bad)
        };
        let u32_at = |off: usize| -> Result<u32> {
            rest.get(off..off + 4)
                .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
                .ok_or_else(bad)
        };
        let page_at = |off: usize| -> Result<PageBuf> {
            let slice = rest.get(off..off + PAGE_SIZE).ok_or_else(bad)?;
            Ok(crate::page::page_from_slice(slice))
        };
        match kind {
            K_BEGIN => Ok(WalRecord::Begin {
                txn: TxnId(u64_at(0)?),
            }),
            K_PAGE => Ok(WalRecord::PageImage {
                txn: TxnId(u64_at(0)?),
                pid: u32_at(8)?,
                data: page_at(12)?,
            }),
            K_META => Ok(WalRecord::MetaImage {
                pid: u32_at(0)?,
                data: page_at(4)?,
            }),
            K_ALLOC => {
                let txn = TxnId(u64_at(0)?);
                let n = u32_at(8)? as usize;
                let mut pages = Vec::with_capacity(n);
                for i in 0..n {
                    pages.push(u32_at(12 + 4 * i)?);
                }
                Ok(WalRecord::AllocNote { txn, pages })
            }
            K_RETIRE => {
                let txn = TxnId(u64_at(0)?);
                let n = u32_at(8)? as usize;
                let mut pages = Vec::with_capacity(n);
                for i in 0..n {
                    pages.push(u32_at(12 + 4 * i)?);
                }
                Ok(WalRecord::RetireNote { txn, pages })
            }
            K_COMMIT => Ok(WalRecord::Commit {
                txn: TxnId(u64_at(0)?),
            }),
            K_ABORT => Ok(WalRecord::Abort {
                txn: TxnId(u64_at(0)?),
            }),
            other => Err(SbError::Corrupt(format!("unknown wal record kind {other}"))),
        }
    }

    /// Decodes the record stream, stopping cleanly at a torn tail.
    pub fn decode_stream(mut bytes: &[u8]) -> Vec<WalRecord> {
        let mut out = Vec::new();
        loop {
            if bytes.len() < 8 {
                return out;
            }
            let len = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
            let sum = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
            if bytes.len() < 8 + len {
                return out; // torn tail
            }
            let body = &bytes[8..8 + len];
            if checksum(body) != sum {
                return out; // torn or corrupt tail
            }
            match WalRecord::decode_body(body) {
                Ok(r) => out.push(r),
                Err(_) => return out,
            }
            bytes = &bytes[8 + len..];
        }
    }
}

/// Where the log bytes live.
pub trait WalStore: Send + Sync {
    /// Appends raw bytes to the log.
    fn append(&self, bytes: &[u8]) -> Result<()>;
    /// Durably flushes appended bytes.
    fn sync(&self) -> Result<()>;
    /// Reads the whole log.
    fn read_all(&self) -> Result<Vec<u8>>;
    /// Empties the log (checkpoint).
    fn truncate(&self) -> Result<()>;
}

impl<W: WalStore> WalStore for std::sync::Arc<W> {
    fn append(&self, bytes: &[u8]) -> Result<()> {
        (**self).append(bytes)
    }
    fn sync(&self) -> Result<()> {
        (**self).sync()
    }
    fn read_all(&self) -> Result<Vec<u8>> {
        (**self).read_all()
    }
    fn truncate(&self) -> Result<()> {
        (**self).truncate()
    }
}

/// In-memory log (for tests and benchmarks; "crash" = reopen the space
/// over the same backend and log).
#[derive(Default)]
pub struct MemWal {
    bytes: Mutex<Vec<u8>>,
}

impl MemWal {
    /// Creates an empty in-memory log.
    pub fn new() -> MemWal {
        MemWal::default()
    }
}

impl WalStore for MemWal {
    fn append(&self, bytes: &[u8]) -> Result<()> {
        self.bytes.lock().extend_from_slice(bytes);
        Ok(())
    }
    fn sync(&self) -> Result<()> {
        Ok(())
    }
    fn read_all(&self) -> Result<Vec<u8>> {
        Ok(self.bytes.lock().clone())
    }
    fn truncate(&self) -> Result<()> {
        self.bytes.lock().clear();
        Ok(())
    }
}

/// File-backed log.
pub struct FileWal {
    file: Mutex<File>,
}

impl FileWal {
    /// Opens (or creates) the log file at `path`.
    pub fn open(path: &Path) -> Result<FileWal> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(|e| SbError::Io(format!("open wal {}: {e}", path.display())))?;
        file.seek(SeekFrom::End(0)).ok();
        Ok(FileWal {
            file: Mutex::new(file),
        })
    }
}

impl WalStore for FileWal {
    fn append(&self, bytes: &[u8]) -> Result<()> {
        let mut f = self.file.lock();
        f.seek(SeekFrom::End(0))
            .map_err(|e| SbError::Io(e.to_string()))?;
        f.write_all(bytes).map_err(|e| SbError::Io(e.to_string()))
    }
    fn sync(&self) -> Result<()> {
        self.file
            .lock()
            .sync_data()
            .map_err(|e| SbError::Io(e.to_string()))
    }
    fn read_all(&self) -> Result<Vec<u8>> {
        let mut f = self.file.lock();
        f.seek(SeekFrom::Start(0))
            .map_err(|e| SbError::Io(e.to_string()))?;
        let mut buf = Vec::new();
        f.read_to_end(&mut buf)
            .map_err(|e| SbError::Io(e.to_string()))?;
        Ok(buf)
    }
    fn truncate(&self) -> Result<()> {
        let f = self.file.lock();
        f.set_len(0).map_err(|e| SbError::Io(e.to_string()))?;
        f.sync_data().map_err(|e| SbError::Io(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::page_from_slice;

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Begin { txn: TxnId(7) },
            WalRecord::AllocNote {
                txn: TxnId(7),
                pages: vec![3, 4, 9],
            },
            WalRecord::MetaImage {
                pid: 0,
                data: page_from_slice(b"header"),
            },
            WalRecord::PageImage {
                txn: TxnId(7),
                pid: 3,
                data: page_from_slice(b"node"),
            },
            WalRecord::RetireNote {
                txn: TxnId(7),
                pages: vec![2],
            },
            WalRecord::Commit { txn: TxnId(7) },
            WalRecord::Abort { txn: TxnId(8) },
        ]
    }

    #[test]
    fn records_roundtrip() {
        let recs = sample_records();
        let mut bytes = Vec::new();
        for r in &recs {
            bytes.extend_from_slice(&r.encode());
        }
        assert_eq!(WalRecord::decode_stream(&bytes), recs);
    }

    #[test]
    fn torn_tail_is_dropped() {
        let recs = sample_records();
        let mut bytes = Vec::new();
        for r in &recs {
            bytes.extend_from_slice(&r.encode());
        }
        // Chop mid-record: only complete records survive.
        let cut = bytes.len() - 5;
        let got = WalRecord::decode_stream(&bytes[..cut]);
        assert_eq!(got.len(), recs.len() - 1);
        assert_eq!(got[..], recs[..recs.len() - 1]);
    }

    #[test]
    fn corrupt_checksum_stops_decode() {
        let recs = sample_records();
        let mut bytes = Vec::new();
        for r in &recs {
            bytes.extend_from_slice(&r.encode());
        }
        // Flip a byte inside the second record's body.
        let first_len = recs[0].encode().len();
        bytes[first_len + 10] ^= 0xff;
        let got = WalRecord::decode_stream(&bytes);
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn mem_wal_store_roundtrip() {
        let w = MemWal::new();
        w.append(b"abc").unwrap();
        w.append(b"def").unwrap();
        w.sync().unwrap();
        assert_eq!(w.read_all().unwrap(), b"abcdef");
        w.truncate().unwrap();
        assert!(w.read_all().unwrap().is_empty());
    }

    #[test]
    fn file_wal_store_roundtrip() {
        let dir = std::env::temp_dir().join(format!("sbwal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");
        {
            let w = FileWal::open(&path).unwrap();
            w.append(b"hello ").unwrap();
            w.append(b"wal").unwrap();
            w.sync().unwrap();
        }
        let w = FileWal::open(&path).unwrap();
        assert_eq!(w.read_all().unwrap(), b"hello wal");
        w.append(b"!").unwrap();
        assert_eq!(w.read_all().unwrap(), b"hello wal!");
        w.truncate().unwrap();
        assert!(w.read_all().unwrap().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }
}
