//! Write-ahead log: redo images plus allocation notes for compensation,
//! stored as a sequence of fixed-size segments.
//!
//! The log carries five kinds of information:
//!
//! * `MetaImage` — a full after-image of a *space metadata* page (the
//!   header, free-list pages). Meta operations are system transactions:
//!   their images are replayed unconditionally, in log order.
//! * `PageImage` — a full after-image of a *data* page written by a user
//!   transaction. Replayed only if that transaction committed (no-steal
//!   buffering means uncommitted data images never reach the log in the
//!   first place, but the rule is enforced anyway).
//! * `AllocNote` — pages a transaction allocated. If the transaction
//!   neither commits nor aborts (a crash), recovery frees these pages,
//!   mirroring the online abort path's compensation.
//! * `RetireNote` — pages a transaction superseded by shadow-paging
//!   copy-out (or dropped LOs). Online they are freed only after the
//!   commit point, once no snapshot can reference them; recovery frees
//!   them for transactions that **did** commit, since a crash ends
//!   every snapshot.
//! * `Checkpoint` — written by the fuzzy checkpointer after it has
//!   flushed every committed-dirty frame and synced the backend. It
//!   carries the retired pages still pinned by open snapshots at that
//!   moment, so a crash after older `RetireNote`s are recycled still
//!   frees them (they replay exactly like committed retire notes).
//! * `Begin` / `Commit` / `Abort` — transaction status.
//!
//! Records are length-prefixed with a simple checksum; a torn tail is
//! truncated at the first bad record, as a real log would. With
//! segmentation a torn tail is legal **only in the youngest segment** —
//! older segments were sealed by a roll, so an undecodable byte there
//! is real corruption, not a crash artefact.
//!
//! A [`WalStore`] appends to its *active* segment and rolls to a fresh
//! one when the active segment is full; one append never spans two
//! segments, so each segment is independently stream-decodable. The
//! checkpointer recycles every segment wholly below the active-
//! transaction low-water mark, which is what bounds the log.

use crate::page::{PageBuf, PAGE_SIZE};
use crate::txn::TxnId;
use crate::{Result, SbError};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// A single log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// A user transaction started.
    Begin { txn: TxnId },
    /// Redo image of a data page, owned by `txn`.
    PageImage { txn: TxnId, pid: u32, data: PageBuf },
    /// Redo image of a metadata page (always replayed).
    MetaImage { pid: u32, data: PageBuf },
    /// Pages allocated by `txn`, to be freed if it never finishes.
    AllocNote { txn: TxnId, pages: Vec<u32> },
    /// Pages `txn` retired (shadow-paging copy-out, truncation, LO
    /// drop), to be freed if it committed but crashed before its
    /// deferred reclamation reached the free list.
    RetireNote { txn: TxnId, pages: Vec<u32> },
    /// The transaction committed (its page images are durable intent).
    Commit { txn: TxnId },
    /// The transaction aborted and its compensation has been applied.
    Abort { txn: TxnId },
    /// A fuzzy checkpoint completed: all committed frames were flushed
    /// and the backend synced. `pending_retire` lists retired pages
    /// still held by open snapshots — recovery frees them like
    /// committed retire notes (a crash ends every snapshot), so
    /// recycling the segments that held the original notes loses
    /// nothing.
    Checkpoint { pending_retire: Vec<u32> },
}

const K_BEGIN: u8 = 1;
const K_PAGE: u8 = 2;
const K_META: u8 = 3;
const K_ALLOC: u8 = 4;
const K_COMMIT: u8 = 5;
const K_ABORT: u8 = 6;
const K_RETIRE: u8 = 7;
const K_CKPT: u8 = 8;

fn checksum(bytes: &[u8]) -> u32 {
    // FNV-1a, cheap and adequate for torn-write detection.
    let mut h: u32 = 0x811c_9dc5;
    for &b in bytes {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

impl WalRecord {
    fn encode_body(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            WalRecord::Begin { txn } => {
                out.push(K_BEGIN);
                out.extend_from_slice(&txn.0.to_le_bytes());
            }
            WalRecord::PageImage { txn, pid, data } => {
                out.push(K_PAGE);
                out.extend_from_slice(&txn.0.to_le_bytes());
                out.extend_from_slice(&pid.to_le_bytes());
                out.extend_from_slice(&data[..]);
            }
            WalRecord::MetaImage { pid, data } => {
                out.push(K_META);
                out.extend_from_slice(&pid.to_le_bytes());
                out.extend_from_slice(&data[..]);
            }
            WalRecord::AllocNote { txn, pages } => {
                out.push(K_ALLOC);
                out.extend_from_slice(&txn.0.to_le_bytes());
                out.extend_from_slice(&(pages.len() as u32).to_le_bytes());
                for p in pages {
                    out.extend_from_slice(&p.to_le_bytes());
                }
            }
            WalRecord::RetireNote { txn, pages } => {
                out.push(K_RETIRE);
                out.extend_from_slice(&txn.0.to_le_bytes());
                out.extend_from_slice(&(pages.len() as u32).to_le_bytes());
                for p in pages {
                    out.extend_from_slice(&p.to_le_bytes());
                }
            }
            WalRecord::Commit { txn } => {
                out.push(K_COMMIT);
                out.extend_from_slice(&txn.0.to_le_bytes());
            }
            WalRecord::Abort { txn } => {
                out.push(K_ABORT);
                out.extend_from_slice(&txn.0.to_le_bytes());
            }
            WalRecord::Checkpoint { pending_retire } => {
                out.push(K_CKPT);
                out.extend_from_slice(&(pending_retire.len() as u32).to_le_bytes());
                for p in pending_retire {
                    out.extend_from_slice(&p.to_le_bytes());
                }
            }
        }
        out
    }

    /// Serialises with framing: `len | checksum | body`.
    pub fn encode(&self) -> Vec<u8> {
        let body = self.encode_body();
        let mut out = Vec::with_capacity(body.len() + 8);
        out.extend_from_slice(&(body.len() as u32).to_le_bytes());
        out.extend_from_slice(&checksum(&body).to_le_bytes());
        out.extend_from_slice(&body);
        out
    }

    fn decode_body(body: &[u8]) -> Result<WalRecord> {
        let bad = || SbError::Corrupt("truncated wal record body".into());
        let kind = *body.first().ok_or_else(bad)?;
        let rest = &body[1..];
        let u64_at = |off: usize| -> Result<u64> {
            rest.get(off..off + 8)
                .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
                .ok_or_else(bad)
        };
        let u32_at = |off: usize| -> Result<u32> {
            rest.get(off..off + 4)
                .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
                .ok_or_else(bad)
        };
        let page_at = |off: usize| -> Result<PageBuf> {
            let slice = rest.get(off..off + PAGE_SIZE).ok_or_else(bad)?;
            Ok(crate::page::page_from_slice(slice))
        };
        match kind {
            K_BEGIN => Ok(WalRecord::Begin {
                txn: TxnId(u64_at(0)?),
            }),
            K_PAGE => Ok(WalRecord::PageImage {
                txn: TxnId(u64_at(0)?),
                pid: u32_at(8)?,
                data: page_at(12)?,
            }),
            K_META => Ok(WalRecord::MetaImage {
                pid: u32_at(0)?,
                data: page_at(4)?,
            }),
            K_ALLOC => {
                let txn = TxnId(u64_at(0)?);
                let n = u32_at(8)? as usize;
                let mut pages = Vec::with_capacity(n);
                for i in 0..n {
                    pages.push(u32_at(12 + 4 * i)?);
                }
                Ok(WalRecord::AllocNote { txn, pages })
            }
            K_RETIRE => {
                let txn = TxnId(u64_at(0)?);
                let n = u32_at(8)? as usize;
                let mut pages = Vec::with_capacity(n);
                for i in 0..n {
                    pages.push(u32_at(12 + 4 * i)?);
                }
                Ok(WalRecord::RetireNote { txn, pages })
            }
            K_COMMIT => Ok(WalRecord::Commit {
                txn: TxnId(u64_at(0)?),
            }),
            K_ABORT => Ok(WalRecord::Abort {
                txn: TxnId(u64_at(0)?),
            }),
            K_CKPT => {
                let n = u32_at(0)? as usize;
                let mut pending_retire = Vec::with_capacity(n);
                for i in 0..n {
                    pending_retire.push(u32_at(4 + 4 * i)?);
                }
                Ok(WalRecord::Checkpoint { pending_retire })
            }
            other => Err(SbError::Corrupt(format!("unknown wal record kind {other}"))),
        }
    }

    /// Decodes the record stream, stopping cleanly at a torn tail.
    pub fn decode_stream(bytes: &[u8]) -> Vec<WalRecord> {
        Self::decode_segment(bytes).0
    }

    /// Decodes one segment's record stream, reporting whether every
    /// byte decoded (`true`) or the stream ended in a torn/corrupt
    /// tail (`false`). A sealed (non-youngest) segment must decode
    /// cleanly — an unclean tail there is corruption, not a crash.
    pub fn decode_segment(mut bytes: &[u8]) -> (Vec<WalRecord>, bool) {
        let mut out = Vec::new();
        loop {
            if bytes.is_empty() {
                return (out, true);
            }
            if bytes.len() < 8 {
                return (out, false);
            }
            let len = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
            let sum = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
            if bytes.len() < 8 + len {
                return (out, false); // torn tail
            }
            let body = &bytes[8..8 + len];
            if checksum(body) != sum {
                return (out, false); // torn or corrupt tail
            }
            match WalRecord::decode_body(body) {
                Ok(r) => out.push(r),
                Err(_) => return (out, false),
            }
            bytes = &bytes[8 + len..];
        }
    }
}

/// Where the log bytes live: an ordered sequence of segments, the
/// youngest of which (the *active* segment) receives appends.
///
/// One append call never spans segments — [`WalStore::append`] rolls
/// *before* writing when the batch would overflow the active segment —
/// so every sealed segment is a self-contained record stream. Simple
/// test doubles can ignore segmentation entirely: the provided
/// defaults model a single never-rolling segment `0`.
pub trait WalStore: Send + Sync {
    /// Appends raw bytes to the active segment, rolling first if the
    /// segment is non-empty and the bytes would overflow it.
    fn append(&self, bytes: &[u8]) -> Result<()>;
    /// Durably flushes appended bytes (the active segment; sealed
    /// segments were synced when they were rolled away from).
    fn sync(&self) -> Result<()>;
    /// Empties the log entirely (end of recovery).
    fn truncate(&self) -> Result<()>;
    /// Reads one segment's bytes.
    fn read_segment(&self, seg: u64) -> Result<Vec<u8>>;
    /// Segment ids in append order, the active segment last.
    fn segments(&self) -> Result<Vec<u64>> {
        Ok(vec![0])
    }
    /// The segment id the next append (absent a roll) lands in. Reading
    /// it *before* appending yields a valid lower bound on where the
    /// append lands — ids only grow.
    fn active_segment(&self) -> u64 {
        0
    }
    /// Seals the active segment and opens a fresh one, returning the
    /// new active id. A no-op (returning the current id) when the
    /// active segment is already empty.
    fn roll(&self) -> Result<u64> {
        Ok(self.active_segment())
    }
    /// Deletes every segment with id strictly below `seg`, returning
    /// how many were removed. The active segment is never below any
    /// low-water mark a checkpoint computes, so it is never recycled.
    fn recycle_below(&self, _seg: u64) -> Result<usize> {
        Ok(0)
    }
    /// Total bytes across all live segments.
    fn live_bytes(&self) -> Result<u64> {
        let mut total = 0u64;
        for seg in self.segments()? {
            total += self.read_segment(seg)?.len() as u64;
        }
        Ok(total)
    }
    /// Monotonic count of bytes ever appended (not reduced by recycle
    /// or truncate). The background checkpointer uses it to skip ticks
    /// where nothing was logged. Stores that do not track it return 0,
    /// which reads as "never any new work".
    fn appended_total(&self) -> u64 {
        0
    }
    /// Reads the concatenation of every live segment (tests and small
    /// tools; recovery streams per segment instead).
    fn read_all(&self) -> Result<Vec<u8>> {
        let mut out = Vec::new();
        for seg in self.segments()? {
            out.extend_from_slice(&self.read_segment(seg)?);
        }
        Ok(out)
    }
}

impl<W: WalStore> WalStore for std::sync::Arc<W> {
    fn append(&self, bytes: &[u8]) -> Result<()> {
        (**self).append(bytes)
    }
    fn sync(&self) -> Result<()> {
        (**self).sync()
    }
    fn truncate(&self) -> Result<()> {
        (**self).truncate()
    }
    fn read_segment(&self, seg: u64) -> Result<Vec<u8>> {
        (**self).read_segment(seg)
    }
    fn segments(&self) -> Result<Vec<u64>> {
        (**self).segments()
    }
    fn active_segment(&self) -> u64 {
        (**self).active_segment()
    }
    fn roll(&self) -> Result<u64> {
        (**self).roll()
    }
    fn recycle_below(&self, seg: u64) -> Result<usize> {
        (**self).recycle_below(seg)
    }
    fn live_bytes(&self) -> Result<u64> {
        (**self).live_bytes()
    }
    fn appended_total(&self) -> u64 {
        (**self).appended_total()
    }
    fn read_all(&self) -> Result<Vec<u8>> {
        (**self).read_all()
    }
}

/// Default segment size: 1 MiB. Big enough that a burst of page-image
/// batches amortises the roll, small enough that recycling visibly
/// bounds the log in tests.
pub const DEFAULT_SEGMENT_BYTES: usize = 1 << 20;

struct MemWalState {
    segments: BTreeMap<u64, Vec<u8>>,
    active: u64,
}

/// In-memory segmented log (for tests and benchmarks; "crash" = reopen
/// the space over the same backend and log).
pub struct MemWal {
    state: Mutex<MemWalState>,
    segment_bytes: usize,
    appended: AtomicU64,
}

impl Default for MemWal {
    fn default() -> Self {
        MemWal::new()
    }
}

impl MemWal {
    /// Creates an empty in-memory log with the default segment size.
    pub fn new() -> MemWal {
        MemWal::with_segment_bytes(DEFAULT_SEGMENT_BYTES)
    }

    /// Creates an empty in-memory log that rolls at `segment_bytes`.
    pub fn with_segment_bytes(segment_bytes: usize) -> MemWal {
        MemWal {
            state: Mutex::new(MemWalState {
                segments: BTreeMap::from([(0, Vec::new())]),
                active: 0,
            }),
            segment_bytes: segment_bytes.max(1),
            appended: AtomicU64::new(0),
        }
    }
}

impl WalStore for MemWal {
    fn append(&self, bytes: &[u8]) -> Result<()> {
        let mut st = self.state.lock();
        let len = st.segments[&st.active].len();
        if len > 0 && len + bytes.len() > self.segment_bytes {
            let next = st.active + 1;
            st.segments.insert(next, Vec::new());
            st.active = next;
        }
        let active = st.active;
        st.segments
            .get_mut(&active)
            .expect("active segment exists")
            .extend_from_slice(bytes);
        self.appended
            .fetch_add(bytes.len() as u64, Ordering::Relaxed);
        Ok(())
    }
    fn sync(&self) -> Result<()> {
        Ok(())
    }
    fn truncate(&self) -> Result<()> {
        let mut st = self.state.lock();
        let active = st.active;
        st.segments = BTreeMap::from([(active, Vec::new())]);
        Ok(())
    }
    fn read_segment(&self, seg: u64) -> Result<Vec<u8>> {
        self.state
            .lock()
            .segments
            .get(&seg)
            .cloned()
            .ok_or_else(|| SbError::NotFound(format!("wal segment {seg}")))
    }
    fn segments(&self) -> Result<Vec<u64>> {
        Ok(self.state.lock().segments.keys().copied().collect())
    }
    fn active_segment(&self) -> u64 {
        self.state.lock().active
    }
    fn roll(&self) -> Result<u64> {
        let mut st = self.state.lock();
        if st.segments[&st.active].is_empty() {
            return Ok(st.active);
        }
        let next = st.active + 1;
        st.segments.insert(next, Vec::new());
        st.active = next;
        Ok(next)
    }
    fn recycle_below(&self, seg: u64) -> Result<usize> {
        let mut st = self.state.lock();
        let keep = st.segments.split_off(&seg);
        let removed = st.segments.len();
        st.segments = keep;
        debug_assert!(st.segments.contains_key(&st.active));
        Ok(removed)
    }
    fn live_bytes(&self) -> Result<u64> {
        Ok(self
            .state
            .lock()
            .segments
            .values()
            .map(|s| s.len() as u64)
            .sum())
    }
    fn appended_total(&self) -> u64 {
        self.appended.load(Ordering::Relaxed)
    }
}

struct FileWalState {
    /// Live segment ids, ascending; the last is the active one.
    ids: Vec<u64>,
    active: File,
    active_len: u64,
}

/// File-backed segmented log: a directory of `seg-<id>.log` files.
pub struct FileWal {
    dir: PathBuf,
    segment_bytes: usize,
    state: Mutex<FileWalState>,
    appended: AtomicU64,
}

impl FileWal {
    /// Opens (or creates) a segmented log in directory `dir` with the
    /// default segment size.
    pub fn open(dir: &Path) -> Result<FileWal> {
        FileWal::open_with(dir, DEFAULT_SEGMENT_BYTES)
    }

    /// Opens (or creates) a segmented log in `dir` rolling at
    /// `segment_bytes`.
    pub fn open_with(dir: &Path, segment_bytes: usize) -> Result<FileWal> {
        std::fs::create_dir_all(dir)
            .map_err(|e| SbError::Io(format!("create wal dir {}: {e}", dir.display())))?;
        let mut ids: Vec<u64> = Vec::new();
        for entry in std::fs::read_dir(dir).map_err(|e| SbError::Io(e.to_string()))? {
            let entry = entry.map_err(|e| SbError::Io(e.to_string()))?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(id) = name
                .strip_prefix("seg-")
                .and_then(|r| r.strip_suffix(".log"))
                .and_then(|r| r.parse::<u64>().ok())
            {
                ids.push(id);
            }
        }
        ids.sort_unstable();
        if ids.is_empty() {
            ids.push(0);
        }
        let active_id = *ids.last().expect("at least one segment");
        let path = Self::seg_path(dir, active_id);
        let mut active = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .map_err(|e| SbError::Io(format!("open wal {}: {e}", path.display())))?;
        let active_len = active
            .seek(SeekFrom::End(0))
            .map_err(|e| SbError::Io(e.to_string()))?;
        Ok(FileWal {
            dir: dir.to_path_buf(),
            segment_bytes: segment_bytes.max(1),
            state: Mutex::new(FileWalState {
                ids,
                active,
                active_len,
            }),
            appended: AtomicU64::new(0),
        })
    }

    fn seg_path(dir: &Path, id: u64) -> PathBuf {
        dir.join(format!("seg-{id:010}.log"))
    }

    /// Seals the active segment (durably) and opens the next one. Call
    /// with the state lock held.
    fn roll_locked(&self, st: &mut FileWalState) -> Result<u64> {
        // Sealed segments must be fully durable: the per-commit `sync`
        // only covers the active file.
        st.active
            .sync_data()
            .map_err(|e| SbError::Io(e.to_string()))?;
        let next = st.ids.last().expect("nonempty") + 1;
        let path = Self::seg_path(&self.dir, next);
        let active = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)
            .map_err(|e| SbError::Io(format!("open wal {}: {e}", path.display())))?;
        st.ids.push(next);
        st.active = active;
        st.active_len = 0;
        Ok(next)
    }
}

impl WalStore for FileWal {
    fn append(&self, bytes: &[u8]) -> Result<()> {
        let mut st = self.state.lock();
        if st.active_len > 0 && st.active_len + bytes.len() as u64 > self.segment_bytes as u64 {
            self.roll_locked(&mut st)?;
        }
        st.active
            .seek(SeekFrom::End(0))
            .map_err(|e| SbError::Io(e.to_string()))?;
        st.active
            .write_all(bytes)
            .map_err(|e| SbError::Io(e.to_string()))?;
        st.active_len += bytes.len() as u64;
        self.appended
            .fetch_add(bytes.len() as u64, Ordering::Relaxed);
        Ok(())
    }
    fn sync(&self) -> Result<()> {
        self.state
            .lock()
            .active
            .sync_data()
            .map_err(|e| SbError::Io(e.to_string()))
    }
    fn truncate(&self) -> Result<()> {
        let mut st = self.state.lock();
        let active_id = *st.ids.last().expect("nonempty");
        for &id in st.ids.iter().filter(|&&id| id != active_id) {
            let path = Self::seg_path(&self.dir, id);
            std::fs::remove_file(&path)
                .map_err(|e| SbError::Io(format!("remove wal {}: {e}", path.display())))?;
        }
        st.ids = vec![active_id];
        st.active
            .set_len(0)
            .map_err(|e| SbError::Io(e.to_string()))?;
        st.active_len = 0;
        st.active
            .sync_data()
            .map_err(|e| SbError::Io(e.to_string()))
    }
    fn read_segment(&self, seg: u64) -> Result<Vec<u8>> {
        let st = self.state.lock();
        if !st.ids.contains(&seg) {
            return Err(SbError::NotFound(format!("wal segment {seg}")));
        }
        // The active file's cursor floats with appends; reading via a
        // fresh handle leaves it alone.
        let path = Self::seg_path(&self.dir, seg);
        let mut f = File::open(&path)
            .map_err(|e| SbError::Io(format!("read wal {}: {e}", path.display())))?;
        let mut buf = Vec::new();
        f.read_to_end(&mut buf)
            .map_err(|e| SbError::Io(e.to_string()))?;
        Ok(buf)
    }
    fn segments(&self) -> Result<Vec<u64>> {
        Ok(self.state.lock().ids.clone())
    }
    fn active_segment(&self) -> u64 {
        *self.state.lock().ids.last().expect("nonempty")
    }
    fn roll(&self) -> Result<u64> {
        let mut st = self.state.lock();
        if st.active_len == 0 {
            return Ok(*st.ids.last().expect("nonempty"));
        }
        self.roll_locked(&mut st)
    }
    fn recycle_below(&self, seg: u64) -> Result<usize> {
        let mut st = self.state.lock();
        let mut removed = 0usize;
        st.ids.retain(|&id| {
            if id < seg {
                // Removal failure leaves a stale file that the next
                // recycle retries; losing the count is worse than
                // leaking one segment briefly.
                if std::fs::remove_file(Self::seg_path(&self.dir, id)).is_ok() {
                    removed += 1;
                    return false;
                }
            }
            true
        });
        Ok(removed)
    }
    fn live_bytes(&self) -> Result<u64> {
        let st = self.state.lock();
        let mut total = st.active_len;
        let active_id = *st.ids.last().expect("nonempty");
        for &id in st.ids.iter().filter(|&&id| id != active_id) {
            total += std::fs::metadata(Self::seg_path(&self.dir, id))
                .map(|m| m.len())
                .unwrap_or(0);
        }
        Ok(total)
    }
    fn appended_total(&self) -> u64 {
        self.appended.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::page_from_slice;

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Begin { txn: TxnId(7) },
            WalRecord::AllocNote {
                txn: TxnId(7),
                pages: vec![3, 4, 9],
            },
            WalRecord::MetaImage {
                pid: 0,
                data: page_from_slice(b"header"),
            },
            WalRecord::PageImage {
                txn: TxnId(7),
                pid: 3,
                data: page_from_slice(b"node"),
            },
            WalRecord::RetireNote {
                txn: TxnId(7),
                pages: vec![2],
            },
            WalRecord::Commit { txn: TxnId(7) },
            WalRecord::Abort { txn: TxnId(8) },
            WalRecord::Checkpoint {
                pending_retire: vec![11, 12],
            },
        ]
    }

    #[test]
    fn records_roundtrip() {
        let recs = sample_records();
        let mut bytes = Vec::new();
        for r in &recs {
            bytes.extend_from_slice(&r.encode());
        }
        let (got, clean) = WalRecord::decode_segment(&bytes);
        assert!(clean);
        assert_eq!(got, recs);
    }

    #[test]
    fn torn_tail_is_dropped_and_flagged() {
        let recs = sample_records();
        let mut bytes = Vec::new();
        for r in &recs {
            bytes.extend_from_slice(&r.encode());
        }
        // Chop mid-record: only complete records survive, unclean.
        let cut = bytes.len() - 5;
        let (got, clean) = WalRecord::decode_segment(&bytes[..cut]);
        assert!(!clean);
        assert_eq!(got.len(), recs.len() - 1);
        assert_eq!(got[..], recs[..recs.len() - 1]);
    }

    #[test]
    fn corrupt_checksum_stops_decode() {
        let recs = sample_records();
        let mut bytes = Vec::new();
        for r in &recs {
            bytes.extend_from_slice(&r.encode());
        }
        // Flip a byte inside the second record's body.
        let first_len = recs[0].encode().len();
        bytes[first_len + 10] ^= 0xff;
        let (got, clean) = WalRecord::decode_segment(&bytes);
        assert!(!clean);
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn empty_segment_is_clean() {
        let (got, clean) = WalRecord::decode_segment(&[]);
        assert!(clean);
        assert!(got.is_empty());
    }

    #[test]
    fn mem_wal_store_roundtrip() {
        let w = MemWal::new();
        w.append(b"abc").unwrap();
        w.append(b"def").unwrap();
        w.sync().unwrap();
        assert_eq!(w.read_all().unwrap(), b"abcdef");
        assert_eq!(w.live_bytes().unwrap(), 6);
        assert_eq!(w.appended_total(), 6);
        w.truncate().unwrap();
        assert!(w.read_all().unwrap().is_empty());
        assert_eq!(w.appended_total(), 6, "truncate keeps the monotonic total");
    }

    #[test]
    fn mem_wal_rolls_and_never_splits_an_append() {
        let w = MemWal::with_segment_bytes(8);
        w.append(b"aaaa").unwrap(); // seg 0: 4 bytes
        w.append(b"bbbb").unwrap(); // fits exactly: seg 0 -> 8 bytes
        w.append(b"cccccc").unwrap(); // would overflow: rolls to seg 1
        assert_eq!(w.segments().unwrap(), vec![0, 1]);
        assert_eq!(w.read_segment(0).unwrap(), b"aaaabbbb");
        assert_eq!(w.read_segment(1).unwrap(), b"cccccc");
        // An oversized batch still lands whole (in its own segment).
        w.append(b"ddddddddddddd").unwrap();
        assert_eq!(w.read_segment(2).unwrap(), b"ddddddddddddd");
        assert_eq!(w.live_bytes().unwrap(), 8 + 6 + 13);
    }

    #[test]
    fn mem_wal_roll_and_recycle() {
        let w = MemWal::with_segment_bytes(1024);
        w.append(b"one").unwrap();
        assert_eq!(w.roll().unwrap(), 1);
        assert_eq!(w.roll().unwrap(), 1, "rolling an empty segment is a no-op");
        w.append(b"two").unwrap();
        assert_eq!(w.roll().unwrap(), 2);
        assert_eq!(w.segments().unwrap(), vec![0, 1, 2]);
        assert_eq!(w.recycle_below(2).unwrap(), 2);
        assert_eq!(w.segments().unwrap(), vec![2]);
        assert_eq!(w.active_segment(), 2);
        assert!(w.read_all().unwrap().is_empty());
        assert!(matches!(w.read_segment(0), Err(SbError::NotFound(_))));
    }

    #[test]
    fn file_wal_store_roundtrip() {
        let dir = std::env::temp_dir().join(format!("sbwal-test-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        {
            let w = FileWal::open(&dir).unwrap();
            w.append(b"hello ").unwrap();
            w.append(b"wal").unwrap();
            w.sync().unwrap();
        }
        let w = FileWal::open(&dir).unwrap();
        assert_eq!(w.read_all().unwrap(), b"hello wal");
        w.append(b"!").unwrap();
        assert_eq!(w.read_all().unwrap(), b"hello wal!");
        assert_eq!(w.live_bytes().unwrap(), 10);
        w.truncate().unwrap();
        assert!(w.read_all().unwrap().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_wal_segments_survive_reopen() {
        let dir = std::env::temp_dir().join(format!("sbwal-seg-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        {
            let w = FileWal::open_with(&dir, 8).unwrap();
            w.append(b"aaaa").unwrap();
            w.append(b"bbbbbb").unwrap(); // rolls to seg 1
            assert_eq!(w.roll().unwrap(), 2);
            w.append(b"cc").unwrap();
            assert_eq!(w.segments().unwrap(), vec![0, 1, 2]);
        }
        let w = FileWal::open_with(&dir, 8).unwrap();
        assert_eq!(w.segments().unwrap(), vec![0, 1, 2]);
        assert_eq!(w.active_segment(), 2);
        assert_eq!(w.read_segment(0).unwrap(), b"aaaa");
        assert_eq!(w.read_segment(1).unwrap(), b"bbbbbb");
        assert_eq!(w.read_segment(2).unwrap(), b"cc");
        assert_eq!(w.recycle_below(2).unwrap(), 2);
        assert_eq!(w.segments().unwrap(), vec![2]);
        assert_eq!(w.read_all().unwrap(), b"cc");
        // Appends continue into the surviving active segment.
        w.append(b"dd").unwrap();
        assert_eq!(w.read_all().unwrap(), b"ccdd");
        std::fs::remove_dir_all(&dir).ok();
    }
}
