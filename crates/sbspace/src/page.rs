//! Fixed-size pages — the unit of I/O, buffering, and logging.

/// Size of every page in bytes. A GR-tree node occupies exactly one
/// page, as in the paper ("a node ... is stored in one disk page").
pub const PAGE_SIZE: usize = 4096;

/// A physical page number within an sbspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageId(pub u32);

/// Sentinel for "no page" in on-disk chains.
pub const NO_PAGE: u32 = u32::MAX;

/// An owned page image.
pub type PageBuf = Box<[u8; PAGE_SIZE]>;

/// Allocates a zeroed page buffer.
pub fn zeroed_page() -> PageBuf {
    vec![0u8; PAGE_SIZE].into_boxed_slice().try_into().unwrap()
}

/// Copies a slice into a fresh page buffer, zero-padding the tail.
///
/// # Panics
///
/// Panics if `data` is longer than a page.
pub fn page_from_slice(data: &[u8]) -> PageBuf {
    assert!(data.len() <= PAGE_SIZE, "page overflow: {}", data.len());
    let mut p = zeroed_page();
    p[..data.len()].copy_from_slice(data);
    p
}

/// Little-endian u32 read at a byte offset.
pub fn get_u32(buf: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(buf[off..off + 4].try_into().unwrap())
}

/// Little-endian u32 write at a byte offset.
pub fn put_u32(buf: &mut [u8], off: usize, v: u32) {
    buf[off..off + 4].copy_from_slice(&v.to_le_bytes());
}

/// Little-endian u64 read at a byte offset.
pub fn get_u64(buf: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(buf[off..off + 8].try_into().unwrap())
}

/// Little-endian u64 write at a byte offset.
pub fn put_u64(buf: &mut [u8], off: usize, v: u64) {
    buf[off..off + 8].copy_from_slice(&v.to_le_bytes());
}

impl std::fmt::Display for PageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_from_slice_pads() {
        let p = page_from_slice(&[1, 2, 3]);
        assert_eq!(&p[..3], &[1, 2, 3]);
        assert!(p[3..].iter().all(|&b| b == 0));
    }

    #[test]
    #[should_panic(expected = "page overflow")]
    fn oversized_slice_panics() {
        let _ = page_from_slice(&vec![0u8; PAGE_SIZE + 1]);
    }

    #[test]
    fn endian_helpers_roundtrip() {
        let mut p = zeroed_page();
        put_u32(&mut p[..], 100, 0xdead_beef);
        put_u64(&mut p[..], 200, 0x0123_4567_89ab_cdef);
        assert_eq!(get_u32(&p[..], 100), 0xdead_beef);
        assert_eq!(get_u64(&p[..], 200), 0x0123_4567_89ab_cdef);
    }
}
