//! Transaction identities, outcomes, and per-transaction bookkeeping.

use crate::lock::IsolationLevel;
use std::collections::HashSet;

/// A transaction identifier, unique within an sbspace lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TxnId(pub u64);

/// How a transaction ended — passed to end-of-transaction callbacks,
/// the mechanism the paper's Section 5.4 uses to free the cached
/// current-time value stored in session named memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnEnd {
    /// The transaction committed.
    Commit,
    /// The transaction aborted (explicitly, or via drop/deadlock).
    Abort,
}

/// Internal per-transaction state kept by the space.
#[derive(Debug)]
pub(crate) struct TxnState {
    pub iso: IsolationLevel,
    /// The WAL segment that was active when the transaction began — a
    /// lower bound on where any of its records can live. The fuzzy
    /// checkpointer's low-water mark is the minimum over all live
    /// transactions, so no segment a live transaction may still need
    /// is ever recycled.
    pub start_seg: u64,
    /// Objects this transaction holds locks on (for release at end).
    pub locks: HashSet<u32>,
    /// Pages allocated by this transaction (compensated on abort).
    pub alloc_pages: Vec<u32>,
    /// The same pages as a set, for the shadow-paging ownership test:
    /// a page this transaction allocated may be written in place; any
    /// other page must be copied out first.
    pub owned: HashSet<u32>,
    /// Committed pages this transaction superseded by copy-out (or
    /// truncation). Freed after commit once no snapshot can reference
    /// them; simply forgotten on abort (the committed versions live).
    pub retired: Vec<u32>,
    /// Page tables to publish at commit: LO id → its new table, or
    /// `None` for a dropped LO.
    pub pending_publish: std::collections::HashMap<u32, Option<crate::space::LoTable>>,
    /// Large objects whose drop is deferred to commit.
    pub pending_drops: Vec<u32>,
}

impl TxnState {
    pub fn new(iso: IsolationLevel, start_seg: u64) -> TxnState {
        TxnState {
            iso,
            start_seg,
            locks: HashSet::new(),
            alloc_pages: Vec::new(),
            owned: HashSet::new(),
            retired: Vec::new(),
            pending_publish: std::collections::HashMap::new(),
            pending_drops: Vec::new(),
        }
    }
}

/// Re-exported by `space` as the public transaction handle; defined
/// there because it owns an `Arc` of the space internals.
pub use crate::space::Txn;

impl std::fmt::Display for TxnId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "txn{}", self.0)
    }
}
