//! Two-phase locking at the large-object level.
//!
//! This reproduces the concurrency regime the paper describes for
//! sbspaces: "Informix provides automatic two-phase locking at the
//! large-object level. Locks are acquired upon opening a large object
//! for reading or writing and, depending on the lock mode and the
//! isolation level of a transaction, are released either upon closing
//! the object or at the end of a transaction." The DataBlade developer
//! has **no** finer-grained control — which is exactly what makes
//! R-link-style tree concurrency impossible here and what the
//! concurrency benchmark quantifies.
//!
//! Blocking waits carry deadlock detection (wait-for-graph cycle check;
//! the requester that closes a cycle is the victim) and a timeout.

use crate::stats::IoStats;
use crate::txn::TxnId;
use crate::{Result, SbError};
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Duration;

/// Lock modes on a large object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    /// Shared (read) lock.
    Shared,
    /// Exclusive (write) lock.
    Exclusive,
}

/// Transaction isolation levels, with the paper's release semantics:
/// under `ReadCommitted`, shared locks are released when the large
/// object is closed; under `RepeatableRead` "even the shared locks on
/// large objects will be released only when a transaction commits".
/// Exclusive locks are always held to transaction end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IsolationLevel {
    /// Shared locks released at LO close.
    #[default]
    ReadCommitted,
    /// All locks held to transaction end.
    RepeatableRead,
}

#[derive(Default)]
struct LockEntry {
    holders: HashMap<TxnId, LockMode>,
}

impl LockEntry {
    fn compatible(&self, txn: TxnId, mode: LockMode) -> bool {
        match mode {
            LockMode::Shared => self
                .holders
                .iter()
                .all(|(&t, &m)| t == txn || m == LockMode::Shared),
            LockMode::Exclusive => self.holders.keys().all(|&t| t == txn),
        }
    }

    fn blockers(&self, txn: TxnId, mode: LockMode) -> Vec<TxnId> {
        self.holders
            .iter()
            .filter(|&(&t, &m)| {
                t != txn
                    && match mode {
                        LockMode::Shared => m == LockMode::Exclusive,
                        LockMode::Exclusive => true,
                    }
            })
            .map(|(&t, _)| t)
            .collect()
    }
}

struct LmState {
    locks: HashMap<u32, LockEntry>,
    /// Current wait records (waiter -> the object and mode it waits
    /// for). Wait-for *edges* are recomputed from the live holder sets
    /// during cycle detection, so a blocker that released after the
    /// waiter went to sleep never contributes a phantom edge — and an
    /// upgrader's own shared hold never hides the opposing upgrader.
    waits: HashMap<TxnId, (u32, LockMode)>,
}

impl LmState {
    /// The transactions `waiter` is blocked on right now.
    fn edges(&self, waiter: TxnId) -> Vec<TxnId> {
        match self.waits.get(&waiter) {
            Some(&(obj, mode)) => self
                .locks
                .get(&obj)
                .map(|e| e.blockers(waiter, mode))
                .unwrap_or_default(),
            None => Vec::new(),
        }
    }
}

/// The lock manager. One instance per sbspace.
pub struct LockManager {
    state: Mutex<LmState>,
    cond: Condvar,
    timeout: Duration,
    stats: Arc<IoStats>,
}

impl LockManager {
    /// Creates a lock manager with the given wait timeout.
    pub fn new(timeout: Duration, stats: Arc<IoStats>) -> LockManager {
        LockManager {
            state: Mutex::new(LmState {
                locks: HashMap::new(),
                waits: HashMap::new(),
            }),
            cond: Condvar::new(),
            timeout,
            stats,
        }
    }

    /// Would adding edge `from -> to*` close a cycle through `from`?
    fn closes_cycle(state: &LmState, from: TxnId, targets: &[TxnId]) -> bool {
        // DFS over the wait-for graph starting at each target. Edges
        // are derived from the current holder sets, never from stale
        // blocker snapshots.
        let mut stack: Vec<TxnId> = targets.to_vec();
        let mut seen = HashSet::new();
        while let Some(t) = stack.pop() {
            if t == from {
                return true;
            }
            if !seen.insert(t) {
                continue;
            }
            stack.extend(state.edges(t));
        }
        false
    }

    /// Acquires (or upgrades to) `mode` on object `obj` for `txn`,
    /// blocking until granted, deadlock, or timeout.
    pub fn acquire(&self, txn: TxnId, obj: u32, mode: LockMode) -> Result<()> {
        let mut state = self.state.lock();
        let deadline = std::time::Instant::now() + self.timeout;
        loop {
            let entry = state.locks.entry(obj).or_default();
            // Re-acquiring a weaker or equal mode is a no-op.
            if let Some(&held) = entry.holders.get(&txn) {
                if held == LockMode::Exclusive || mode == LockMode::Shared {
                    return Ok(());
                }
            }
            if entry.compatible(txn, mode) {
                entry.holders.insert(txn, mode);
                state.waits.remove(&txn);
                return Ok(());
            }
            let blockers = entry.blockers(txn, mode);
            if Self::closes_cycle(&state, txn, &blockers) {
                state.waits.remove(&txn);
                IoStats::bump(&self.stats.deadlocks);
                return Err(SbError::Deadlock(format!(
                    "txn {txn:?} requesting {mode:?} on lo {obj}"
                )));
            }
            state.waits.insert(txn, (obj, mode));
            IoStats::bump(&self.stats.lock_waits);
            let timed_out = self.cond.wait_until(&mut state, deadline).timed_out();
            if timed_out {
                state.waits.remove(&txn);
                return Err(SbError::LockTimeout(format!(
                    "txn {txn:?} on lo {obj} ({:?})",
                    self.timeout
                )));
            }
        }
    }

    /// Releases `txn`'s lock on `obj` (early release of a shared lock at
    /// LO close under `ReadCommitted`).
    pub fn release(&self, txn: TxnId, obj: u32) {
        let mut state = self.state.lock();
        if let Some(e) = state.locks.get_mut(&obj) {
            e.holders.remove(&txn);
            if e.holders.is_empty() {
                state.locks.remove(&obj);
            }
        }
        self.cond.notify_all();
    }

    /// Releases everything `txn` holds (transaction end).
    pub fn release_all(&self, txn: TxnId) {
        let mut state = self.state.lock();
        state.locks.retain(|_, e| {
            e.holders.remove(&txn);
            !e.holders.is_empty()
        });
        state.waits.remove(&txn);
        self.cond.notify_all();
    }

    /// The mode `txn` currently holds on `obj`, if any.
    pub fn held(&self, txn: TxnId, obj: u32) -> Option<LockMode> {
        self.state
            .lock()
            .locks
            .get(&obj)
            .and_then(|e| e.holders.get(&txn).copied())
    }

    /// Number of large objects with at least one lock holder
    /// (diagnostic — the stress harness asserts zero at quiesce).
    pub fn lock_count(&self) -> usize {
        self.state.lock().locks.len()
    }

    /// Number of transactions currently blocked inside [`acquire`]
    /// (diagnostic).
    ///
    /// [`acquire`]: LockManager::acquire
    pub fn waiter_count(&self) -> usize {
        self.state.lock().waits.len()
    }

    /// True when no lock is held and no waiter is queued — every
    /// transaction either committed or aborted and released everything.
    pub fn is_quiescent(&self) -> bool {
        let state = self.state.lock();
        state.locks.is_empty() && state.waits.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn lm() -> Arc<LockManager> {
        Arc::new(LockManager::new(
            Duration::from_millis(200),
            IoStats::new_shared(),
        ))
    }

    #[test]
    fn shared_locks_coexist() {
        let m = lm();
        m.acquire(TxnId(1), 9, LockMode::Shared).unwrap();
        m.acquire(TxnId(2), 9, LockMode::Shared).unwrap();
        assert_eq!(m.held(TxnId(1), 9), Some(LockMode::Shared));
        assert_eq!(m.held(TxnId(2), 9), Some(LockMode::Shared));
    }

    #[test]
    fn exclusive_blocks_until_release() {
        let m = lm();
        m.acquire(TxnId(1), 9, LockMode::Exclusive).unwrap();
        let m2 = Arc::clone(&m);
        let h = std::thread::spawn(move || m2.acquire(TxnId(2), 9, LockMode::Shared));
        std::thread::sleep(Duration::from_millis(30));
        m.release_all(TxnId(1));
        h.join().unwrap().unwrap();
    }

    #[test]
    fn exclusive_times_out() {
        let m = lm();
        m.acquire(TxnId(1), 9, LockMode::Exclusive).unwrap();
        let err = m.acquire(TxnId(2), 9, LockMode::Exclusive).unwrap_err();
        assert!(matches!(err, SbError::LockTimeout(_)), "{err}");
    }

    #[test]
    fn upgrade_when_sole_holder() {
        let m = lm();
        m.acquire(TxnId(1), 9, LockMode::Shared).unwrap();
        m.acquire(TxnId(1), 9, LockMode::Exclusive).unwrap();
        assert_eq!(m.held(TxnId(1), 9), Some(LockMode::Exclusive));
        // Downgrade requests are no-ops.
        m.acquire(TxnId(1), 9, LockMode::Shared).unwrap();
        assert_eq!(m.held(TxnId(1), 9), Some(LockMode::Exclusive));
    }

    #[test]
    fn deadlock_detected() {
        let m = lm();
        m.acquire(TxnId(1), 1, LockMode::Exclusive).unwrap();
        m.acquire(TxnId(2), 2, LockMode::Exclusive).unwrap();
        let m2 = Arc::clone(&m);
        // Txn 1 waits for object 2 (held by txn 2)...
        let h = std::thread::spawn(move || m2.acquire(TxnId(1), 2, LockMode::Exclusive));
        std::thread::sleep(Duration::from_millis(50));
        // ...and txn 2 requesting object 1 closes the cycle.
        let err = m.acquire(TxnId(2), 1, LockMode::Exclusive).unwrap_err();
        assert!(matches!(err, SbError::Deadlock(_)), "{err}");
        // Resolve: the victim gives up its locks; txn 1 proceeds.
        m.release_all(TxnId(2));
        h.join().unwrap().unwrap();
    }

    #[test]
    fn upgrade_deadlock_between_readers() {
        // Two shared holders that both try to upgrade deadlock.
        let m = lm();
        m.acquire(TxnId(1), 5, LockMode::Shared).unwrap();
        m.acquire(TxnId(2), 5, LockMode::Shared).unwrap();
        let m2 = Arc::clone(&m);
        let h = std::thread::spawn(move || m2.acquire(TxnId(1), 5, LockMode::Exclusive));
        std::thread::sleep(Duration::from_millis(50));
        let err = m.acquire(TxnId(2), 5, LockMode::Exclusive).unwrap_err();
        assert!(matches!(err, SbError::Deadlock(_)), "{err}");
        m.release_all(TxnId(2));
        h.join().unwrap().unwrap();
    }

    #[test]
    fn upgrade_deadlock_victim_keeps_its_shared_lock() {
        // The deadlock error must not silently drop the victim's
        // pre-existing shared lock: the *transaction* decides what to
        // do (abort and release_all, or keep reading) — the failed
        // upgrade itself only refuses the exclusive mode.
        let m = lm();
        m.acquire(TxnId(1), 5, LockMode::Shared).unwrap();
        m.acquire(TxnId(2), 5, LockMode::Shared).unwrap();
        let m2 = Arc::clone(&m);
        let h = std::thread::spawn(move || m2.acquire(TxnId(1), 5, LockMode::Exclusive));
        std::thread::sleep(Duration::from_millis(50));
        let err = m.acquire(TxnId(2), 5, LockMode::Exclusive).unwrap_err();
        assert!(matches!(err, SbError::Deadlock(_)), "{err}");
        assert_eq!(
            m.held(TxnId(2), 5),
            Some(LockMode::Shared),
            "victim's shared lock dropped by the failed upgrade"
        );
        // Only release_all (victim abort) lets the survivor through.
        m.release_all(TxnId(2));
        h.join().unwrap().unwrap();
        assert_eq!(m.held(TxnId(1), 5), Some(LockMode::Exclusive));
    }

    #[test]
    fn stale_wait_edges_do_not_report_phantom_deadlocks() {
        // Txn 1 blocks on object 9 held exclusively by txn 2; txn 2
        // then releases 9 but — before txn 1 wakes and clears its wait
        // record — requests an object held by txn 1. With snapshotted
        // blocker edges this read as a cycle 2 -> 1 -> 2; live-edge
        // recomputation sees that txn 1 no longer waits on txn 2.
        let m = lm();
        m.acquire(TxnId(1), 1, LockMode::Exclusive).unwrap();
        m.acquire(TxnId(2), 9, LockMode::Exclusive).unwrap();
        let m2 = Arc::clone(&m);
        let h = std::thread::spawn(move || m2.acquire(TxnId(1), 9, LockMode::Exclusive));
        std::thread::sleep(Duration::from_millis(50));
        {
            // Hold the state lock across release + re-acquire so txn 1
            // provably cannot wake in between.
            let mut state = m.state.lock();
            if let Some(e) = state.locks.get_mut(&9) {
                e.holders.remove(&TxnId(2));
            }
            let entry = state.locks.entry(1).or_default();
            assert!(!entry.compatible(TxnId(2), LockMode::Exclusive));
            let blockers = entry.blockers(TxnId(2), LockMode::Exclusive);
            assert!(
                !LockManager::closes_cycle(&state, TxnId(2), &blockers),
                "stale wait record for txn 1 reported a phantom cycle"
            );
        }
        m.cond.notify_all();
        h.join().unwrap().unwrap();
        m.release_all(TxnId(1));
        assert!(m.is_quiescent());
    }

    #[test]
    fn quiescence_reports_locks_and_waiters() {
        let m = lm();
        assert!(m.is_quiescent());
        m.acquire(TxnId(1), 1, LockMode::Shared).unwrap();
        m.acquire(TxnId(1), 2, LockMode::Exclusive).unwrap();
        assert_eq!(m.lock_count(), 2);
        assert_eq!(m.waiter_count(), 0);
        assert!(!m.is_quiescent());
        let m2 = Arc::clone(&m);
        let h = std::thread::spawn(move || m2.acquire(TxnId(2), 2, LockMode::Shared));
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(m.waiter_count(), 1);
        m.release_all(TxnId(1));
        h.join().unwrap().unwrap();
        m.release_all(TxnId(2));
        assert!(m.is_quiescent(), "locks or waiters leaked");
    }

    #[test]
    fn release_single_object() {
        let m = lm();
        m.acquire(TxnId(1), 1, LockMode::Shared).unwrap();
        m.acquire(TxnId(1), 2, LockMode::Shared).unwrap();
        m.release(TxnId(1), 1);
        assert_eq!(m.held(TxnId(1), 1), None);
        assert_eq!(m.held(TxnId(1), 2), Some(LockMode::Shared));
    }
}
