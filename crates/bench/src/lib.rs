//! Shared harness for the benchmark suite and the table/figure
//! reproduction binary.

pub mod fixtures;
pub mod gate;
pub mod report;
pub mod trailer;

pub use fixtures::{
    apply_history_gr, apply_history_gr_opts, apply_history_rstar, fresh_gr_tree, fresh_lo,
    fresh_rstar_tree, run_queries_gr, run_queries_rstar, GrFixture, QueryStats, RStarFixture,
};
pub use report::Table;
pub use trailer::CostTrailer;
