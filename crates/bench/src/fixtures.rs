//! Index fixtures built from synthetic histories, with I/O accounting.

use grt_grtree::{GrTree, GrTreeOptions};
use grt_rstar::bitemporal::{horizon_refresh_plan, NowStrategy};
use grt_rstar::{RStarOptions, RStarTree, SpatialPredicate};
use grt_sbspace::{IoSnapshot, IsolationLevel, LoHandle, LockMode, Sbspace, SbspaceOptions};
use grt_temporal::{Day, Predicate, TimeExtent};
use grt_workload::{History, HistoryEvent};
use std::collections::HashMap;

/// Creates an in-memory space (with the given buffer-pool size) and an
/// exclusively opened empty large object inside it. The transaction is
/// leaked: benchmark fixtures live for the process.
pub fn fresh_lo(pool_pages: usize) -> (Sbspace, LoHandle) {
    let sb = Sbspace::mem(SbspaceOptions {
        pool_pages,
        ..Default::default()
    });
    let txn = sb.begin(IsolationLevel::ReadCommitted);
    let lo = sb.create_lo(&txn).unwrap();
    let h = sb.open_lo(&txn, lo, LockMode::Exclusive).unwrap();
    std::mem::forget(txn);
    (sb, h)
}

/// A GR-tree plus the space it lives in.
pub struct GrFixture {
    /// The backing space (for I/O statistics).
    pub space: Sbspace,
    /// The tree.
    pub tree: GrTree,
    /// Total logical reads spent building it.
    pub build_reads: u64,
    /// Total logical writes spent building it.
    pub build_writes: u64,
}

/// An R\*-tree baseline plus its bookkeeping.
pub struct RStarFixture {
    /// The backing space.
    pub space: Sbspace,
    /// The tree.
    pub tree: RStarTree,
    /// The grounding strategy in force.
    pub strategy: NowStrategy,
    /// Final extents by rowid (the refinement "base table").
    pub extents: HashMap<u64, TimeExtent>,
    /// Total logical reads spent building (including refreshes).
    pub build_reads: u64,
    /// Total logical writes spent building (including refreshes).
    pub build_writes: u64,
    /// Entries reinserted by Horizon refreshes.
    pub refreshed_entries: u64,
}

/// An empty GR-tree in a fresh space.
pub fn fresh_gr_tree(pool_pages: usize, max_entries: usize) -> (Sbspace, GrTree) {
    let (sb, lo) = fresh_lo(pool_pages);
    let tree = GrTree::create(
        lo,
        GrTreeOptions {
            max_entries,
            ..Default::default()
        },
    )
    .unwrap();
    (sb, tree)
}

/// An empty R\*-tree in a fresh space.
pub fn fresh_rstar_tree(pool_pages: usize, max_entries: usize) -> (Sbspace, RStarTree) {
    let (sb, lo) = fresh_lo(pool_pages);
    let tree = RStarTree::create(
        lo,
        RStarOptions {
            max_entries,
            ..Default::default()
        },
    )
    .unwrap();
    (sb, tree)
}

/// Replays a history into a GR-tree: inserts at their day; a logical
/// deletion is delete(old) + insert(new).
pub fn apply_history_gr(h: &History, pool_pages: usize, max_entries: usize) -> GrFixture {
    apply_history_gr_opts(
        h,
        pool_pages,
        GrTreeOptions {
            max_entries,
            ..Default::default()
        },
    )
}

/// Like [`apply_history_gr`] with full control over the tree options
/// (ablations).
pub fn apply_history_gr_opts(h: &History, pool_pages: usize, opts: GrTreeOptions) -> GrFixture {
    let sb = Sbspace::mem(SbspaceOptions {
        pool_pages,
        ..Default::default()
    });
    let build_txn = sb.begin(IsolationLevel::ReadCommitted);
    let lo_id = sb.create_lo(&build_txn).unwrap();
    let handle = sb.open_lo(&build_txn, lo_id, LockMode::Exclusive).unwrap();
    let mut tree = GrTree::create(handle, opts).unwrap();
    let before = sb.stats().snapshot();
    for (day, ev) in &h.events {
        match ev {
            HistoryEvent::Insert { id, extent } => {
                tree.insert(*extent, *id, *day).unwrap();
            }
            HistoryEvent::LogicalDelete { id, old, new } => {
                assert!(tree.delete(old, *id, *day).unwrap().found);
                tree.insert(*new, *id, *day).unwrap();
            }
        }
    }
    let delta = sb.stats().snapshot().since(&before);
    // Commit the build so pages become clean (and evictable under pool
    // pressure), then reopen read-only for the query phase.
    tree.into_lo().unwrap().close().unwrap();
    build_txn.commit().unwrap();
    let read_txn = sb.begin(IsolationLevel::ReadCommitted);
    let handle = sb.open_lo(&read_txn, lo_id, LockMode::Shared).unwrap();
    std::mem::forget(read_txn);
    let tree = GrTree::open(handle).unwrap();
    GrFixture {
        space: sb,
        tree,
        build_reads: delta.logical_reads,
        build_writes: delta.logical_writes,
    }
}

/// Replays a history into an R\*-tree baseline, applying Horizon
/// refreshes at quantum boundaries.
pub fn apply_history_rstar(
    h: &History,
    strategy: NowStrategy,
    pool_pages: usize,
    max_entries: usize,
) -> RStarFixture {
    let sb = Sbspace::mem(SbspaceOptions {
        pool_pages,
        ..Default::default()
    });
    let build_txn = sb.begin(IsolationLevel::ReadCommitted);
    let lo_id = sb.create_lo(&build_txn).unwrap();
    let handle = sb.open_lo(&build_txn, lo_id, LockMode::Exclusive).unwrap();
    let mut tree = RStarTree::create(
        handle,
        RStarOptions {
            max_entries,
            ..Default::default()
        },
    )
    .unwrap();
    let space = sb;
    let before = space.stats().snapshot();
    let mut extents: HashMap<u64, TimeExtent> = HashMap::new();
    let mut open: Vec<(u64, TimeExtent)> = Vec::new();
    let mut last_day = h.params.start;
    let mut refreshed = 0u64;
    let refresh = |tree: &mut RStarTree,
                   open: &[(u64, TimeExtent)],
                   from: Day,
                   to: Day,
                   refreshed: &mut u64| {
        for (id, old_rect, new_rect) in horizon_refresh_plan(strategy, open, from, to) {
            assert!(tree.delete(old_rect, id).unwrap().found);
            tree.insert(new_rect, id).unwrap();
            *refreshed += 1;
        }
    };
    for (day, ev) in &h.events {
        if *day != last_day {
            refresh(&mut tree, &open, last_day, *day, &mut refreshed);
            last_day = *day;
        }
        match ev {
            HistoryEvent::Insert { id, extent } => {
                tree.insert(strategy.to_rect(extent, *day), *id).unwrap();
                extents.insert(*id, *extent);
                open.push((*id, *extent));
            }
            HistoryEvent::LogicalDelete { id, old, new } => {
                assert!(
                    tree.delete(strategy.to_rect(old, *day), *id).unwrap().found,
                    "baseline lost entry {id}"
                );
                tree.insert(strategy.to_rect(new, *day), *id).unwrap();
                extents.insert(*id, *new);
                open.retain(|(oid, _)| oid != id);
                open.push((*id, *new));
            }
        }
    }
    let delta = space.stats().snapshot().since(&before);
    tree.into_lo().unwrap().close().unwrap();
    build_txn.commit().unwrap();
    let read_txn = space.begin(IsolationLevel::ReadCommitted);
    let handle = space.open_lo(&read_txn, lo_id, LockMode::Shared).unwrap();
    std::mem::forget(read_txn);
    let tree = RStarTree::open(handle).unwrap();
    RStarFixture {
        space,
        tree,
        strategy,
        extents,
        build_reads: delta.logical_reads,
        build_writes: delta.logical_writes,
        refreshed_entries: refreshed,
    }
}

/// Aggregated measurements of a query batch.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct QueryStats {
    /// Queries executed.
    pub queries: u64,
    /// Exact result tuples across all queries.
    pub results: u64,
    /// Index candidates examined (equals `results` for the GR-tree; the
    /// baselines pay refinement for the difference).
    pub candidates: u64,
    /// Logical page reads.
    pub logical_reads: u64,
    /// Physical page reads (pool misses).
    pub physical_reads: u64,
}

impl QueryStats {
    fn from_delta(queries: u64, results: u64, candidates: u64, d: IoSnapshot) -> QueryStats {
        QueryStats {
            queries,
            results,
            candidates,
            logical_reads: d.logical_reads,
            physical_reads: d.physical_reads,
        }
    }

    /// Logical reads per query.
    pub fn reads_per_query(&self) -> f64 {
        self.logical_reads as f64 / self.queries.max(1) as f64
    }

    /// Candidates per true result (1.0 = no false positives).
    pub fn candidate_ratio(&self) -> f64 {
        self.candidates as f64 / self.results.max(1) as f64
    }
}

/// Runs an `Overlaps` query batch against a GR-tree at `ct`.
pub fn run_queries_gr(fx: &GrFixture, queries: &[TimeExtent], ct: Day) -> QueryStats {
    let before = fx.space.stats().snapshot();
    let mut results = 0u64;
    for q in queries {
        results += fx.tree.search(Predicate::Overlaps, q, ct).unwrap().len() as u64;
    }
    let d = fx.space.stats().snapshot().since(&before);
    QueryStats::from_delta(queries.len() as u64, results, results, d)
}

/// Runs an `Overlaps` query batch against an R\*-tree baseline at `ct`,
/// refining candidates against the stored extents. Each refinement
/// lookup is charged one logical read (the base-table fetch).
pub fn run_queries_rstar(fx: &RStarFixture, queries: &[TimeExtent], ct: Day) -> QueryStats {
    let before = fx.space.stats().snapshot();
    let mut results = 0u64;
    let mut candidates = 0u64;
    for q in queries {
        let qrect = fx.strategy.query_rect(q, ct);
        let cands = fx.tree.search(SpatialPredicate::Overlap, &qrect).unwrap();
        candidates += cands.len() as u64;
        for rowid in cands {
            let stored = fx.extents[&rowid];
            if Predicate::Overlaps.eval(&stored, q, ct) {
                results += 1;
            }
        }
    }
    let mut d = fx.space.stats().snapshot().since(&before);
    // Charge the refinement fetches as base-table reads.
    d.logical_reads += candidates;
    QueryStats::from_delta(queries.len() as u64, results, candidates, d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use grt_workload::HistoryParams;

    fn small_history() -> History {
        History::generate(HistoryParams {
            inserts: 300,
            ..Default::default()
        })
    }

    #[test]
    fn gr_and_baselines_agree_on_results() {
        let h = small_history();
        let gr = apply_history_gr(&h, 4096, 16);
        gr.tree.check(h.end).unwrap();
        let maxts = apply_history_rstar(&h, NowStrategy::MaxTimestamp, 4096, 16);
        let horizon = apply_history_rstar(&h, NowStrategy::Horizon { slack: 100 }, 4096, 16);
        maxts.tree.check().unwrap();
        horizon.tree.check().unwrap();

        let queries: Vec<TimeExtent> = grt_workload::QuerySet::generate(
            grt_workload::QueryParams {
                count: 40,
                kind: grt_workload::QueryKind::Window,
                tt_range: (h.params.start, h.end),
                window: 25,
                seed: 3,
            },
            h.end,
        )
        .queries;
        let ct = h.end;
        let a = run_queries_gr(&gr, &queries, ct);
        let b = run_queries_rstar(&maxts, &queries, ct);
        let c = run_queries_rstar(&horizon, &queries, ct);
        assert_eq!(a.results, b.results, "gr vs max-timestamp");
        assert_eq!(a.results, c.results, "gr vs horizon");
        assert!(b.candidates >= b.results);
        assert_eq!(a.candidates, a.results, "gr-tree needs no refinement");
    }

    #[test]
    fn horizon_refreshes_cost_writes() {
        let h = History::generate(HistoryParams {
            inserts: 400,
            days_per_insert: 2,
            ..Default::default()
        });
        let tight = apply_history_rstar(&h, NowStrategy::Horizon { slack: 50 }, 4096, 16);
        let loose = apply_history_rstar(&h, NowStrategy::Horizon { slack: 5000 }, 4096, 16);
        assert!(tight.refreshed_entries > 0);
        assert!(
            tight.refreshed_entries > loose.refreshed_entries,
            "tighter quanta refresh more: {} vs {}",
            tight.refreshed_entries,
            loose.refreshed_entries
        );
        assert!(tight.build_writes > loose.build_writes);
    }
}

#[cfg(test)]
mod shape_tests {
    use super::*;
    use grt_workload::{HistoryParams, QueryKind, QueryParams, QuerySet};

    /// A miniature version of perf-search asserting the paper's
    /// headline shape in the regular test suite.
    #[test]
    fn grtree_beats_maxts_on_now_relative_data() {
        let h = History::generate(HistoryParams {
            inserts: 800,
            now_relative_fraction: 1.0,
            delete_rate: 0.3,
            seed: 11,
            ..Default::default()
        });
        let queries = QuerySet::generate(
            QueryParams {
                count: 50,
                kind: QueryKind::Window,
                tt_range: (h.params.start, h.end),
                window: 20,
                seed: 5,
            },
            h.end,
        )
        .queries;
        let gr = apply_history_gr(&h, 1 << 14, 42);
        let maxts = apply_history_rstar(&h, NowStrategy::MaxTimestamp, 1 << 14, 42);
        let a = run_queries_gr(&gr, &queries, h.end);
        let b = run_queries_rstar(&maxts, &queries, h.end);
        assert_eq!(a.results, b.results, "answers must agree");
        assert!(
            a.reads_per_query() * 3.0 < b.reads_per_query(),
            "the GR-tree must clearly win on fully now-relative data: \
             {:.1} vs {:.1} reads/query",
            a.reads_per_query(),
            b.reads_per_query()
        );
        assert!(b.candidate_ratio() > 1.2, "the baseline pays refinement");
        assert!(
            (a.candidate_ratio() - 1.0).abs() < 1e-9,
            "the GR-tree does not"
        );
    }
}
