//! The perf-regression gate over checked-in bench reports.
//!
//! Reads the figures of a checked-in baseline and a fresh candidate run
//! and fails when any shared `(config, N)` pair regressed beyond the
//! tolerance — `ns_per_read` latencies from `BENCH_bufferpool.json`
//! (lower is better), `stmt_per_sec` throughputs from
//! `BENCH_concurrency.json`, and parallel-scan `speedup` ratios from
//! `BENCH_scan.json` (both higher is better). The parser handles
//! exactly the JSON the bench binaries write — a deliberate choice over
//! a vendored JSON dependency, since both sides of the comparison come
//! from the same writer.

use std::collections::BTreeMap;

/// `(config name, reader threads) -> ns per read`.
pub type ReadRates = BTreeMap<(String, u64), f64>;

/// Extracts every `ns_per_read` figure from a bench report.
pub fn parse_read_rates(json: &str) -> ReadRates {
    let mut out = ReadRates::new();
    let mut config = String::new();
    for line in json.lines() {
        let t = line.trim();
        // A top-level section opens as `"name": {` with no other keys.
        if let Some(rest) = t.strip_prefix('"') {
            if let Some((name, tail)) = rest.split_once('"') {
                if tail.trim() == ": {" {
                    config = name.to_string();
                    continue;
                }
            }
        }
        let (Some(threads), Some(ns)) = (field(t, "threads"), field(t, "ns_per_read")) else {
            continue;
        };
        out.insert((config.clone(), threads as u64), ns);
    }
    out
}

/// Extracts every `stmt_per_sec` figure from a concurrency bench
/// report, keyed by `(config, sessions)`.
pub fn parse_throughputs(json: &str) -> ReadRates {
    let mut out = ReadRates::new();
    let mut config = String::new();
    for line in json.lines() {
        let t = line.trim();
        if let Some(rest) = t.strip_prefix('"') {
            if let Some((name, tail)) = rest.split_once('"') {
                if tail.trim() == ": {" {
                    config = name.to_string();
                    continue;
                }
            }
        }
        let (Some(sessions), Some(tps)) = (field(t, "sessions"), field(t, "stmt_per_sec")) else {
            continue;
        };
        out.insert((config.clone(), sessions as u64), tps);
    }
    out
}

/// Extracts every parallel-scan `speedup` figure from a scan bench
/// report, keyed by `(config, workers)`. Rows without a `workers`
/// field (the `index_build` section) are skipped.
pub fn parse_speedups(json: &str) -> ReadRates {
    let mut out = ReadRates::new();
    let mut config = String::new();
    for line in json.lines() {
        let t = line.trim();
        if let Some(rest) = t.strip_prefix('"') {
            if let Some((name, tail)) = rest.split_once('"') {
                if tail.trim() == ": {" {
                    config = name.to_string();
                    continue;
                }
            }
        }
        let (Some(workers), Some(speedup)) = (field(t, "workers"), field(t, "speedup")) else {
            continue;
        };
        out.insert((config.clone(), workers as u64), speedup);
    }
    out
}

/// `sessions -> prepared/uncached speedup` from the concurrency
/// report's `prepared_speedup` section.
pub type PreparedSpeedups = BTreeMap<u64, f64>;

/// Extracts the prepared-statement speedup figures from a concurrency
/// bench report. Only rows inside the `prepared_speedup` section
/// count — the per-config `sessions` rows elsewhere in the report
/// carry different fields and are skipped.
pub fn parse_prepared_speedups(json: &str) -> PreparedSpeedups {
    let mut out = PreparedSpeedups::new();
    let mut config = String::new();
    for line in json.lines() {
        let t = line.trim();
        if let Some(rest) = t.strip_prefix('"') {
            if let Some((name, tail)) = rest.split_once('"') {
                if tail.trim() == ": {" {
                    config = name.to_string();
                    continue;
                }
            }
        }
        if config != "prepared_speedup" {
            continue;
        }
        let (Some(sessions), Some(speedup)) = (field(t, "sessions"), field(t, "speedup")) else {
            continue;
        };
        out.insert(sessions as u64, speedup);
    }
    out
}

/// Gate verdict over the prepared-statement speedups: every session
/// count must beat compile-every-time (> 1.0), and the single-session
/// figure — where compile cost is the largest share of a statement —
/// must reach `threshold`. Returns one message per violation; empty
/// means the gate passes.
pub fn prepared_speedup_failures(speedups: &PreparedSpeedups, threshold: f64) -> Vec<String> {
    let mut out = Vec::new();
    for (&sessions, &speedup) in speedups {
        if speedup <= 1.0 {
            out.push(format!(
                "{sessions} session(s): {speedup:.2}x does not beat compile-every-time"
            ));
        }
    }
    if let Some(&single) = speedups.get(&1) {
        if single < threshold {
            out.push(format!(
                "1 session(s): {single:.2}x is below the {threshold:.2}x target"
            ));
        }
    }
    out
}

/// Gate verdict over read-mostly scaling: the report must carry the
/// 1- and 8-session `read_mostly` throughputs, and the 8-session
/// figure must reach `threshold` × the 1-session one. Snapshot reads
/// make the scan-dominated workload flat-to-rising in the session
/// count even on one core; falling back below the single-session rate
/// means readers are queueing on writer LO locks again. Returns one
/// message per violation; empty means the gate passes.
pub fn read_scaling_failures(tps: &ReadRates, threshold: f64) -> Vec<String> {
    let one = tps.get(&("read_mostly".to_string(), 1)).copied();
    let eight = tps.get(&("read_mostly".to_string(), 8)).copied();
    match (one, eight) {
        (Some(one), Some(eight)) if eight < one * threshold => vec![format!(
            "read_mostly: 8-session {eight:.1} stmt/s fell below {threshold:.2}x \
             the 1-session {one:.1} stmt/s"
        )],
        (Some(_), Some(_)) => Vec::new(),
        _ => vec!["read_mostly: report lacks the 1- and 8-session figures \
             (rerun the sessions bench)"
            .to_string()],
    }
}

/// `sessions -> embedded/wire overhead ratio` from a wire bench
/// report's `wire` section.
pub type WireOverheads = BTreeMap<u64, f64>;

/// Extracts the `(sessions, overhead_ratio)` figures and the
/// connection rate from a `BENCH_wire.json`-shaped report. Returns
/// `(overheads, connections_per_sec)`.
pub fn parse_wire_overheads(json: &str) -> (WireOverheads, f64) {
    let mut out = WireOverheads::new();
    let mut conn_per_sec = 0.0;
    for line in json.lines() {
        let t = line.trim();
        if let Some(rate) = field(t, "per_sec") {
            conn_per_sec = rate;
        }
        let (Some(sessions), Some(ratio)) = (field(t, "sessions"), field(t, "overhead_ratio"))
        else {
            continue;
        };
        out.insert(sessions as u64, ratio);
    }
    (out, conn_per_sec)
}

/// Gate verdict over the wire overhead: the report must contain
/// figures at all, the connection path must work (rate > 0), and no
/// session count may pay more than `threshold`× the embedded rate for
/// going over the wire. Returns one message per violation; empty
/// means the gate passes.
pub fn wire_overhead_failures(
    overheads: &WireOverheads,
    conn_per_sec: f64,
    threshold: f64,
) -> Vec<String> {
    let mut out = Vec::new();
    if overheads.is_empty() {
        out.push("no wire overhead figures in the report".to_string());
    }
    if conn_per_sec <= 0.0 {
        out.push("connection rate missing or zero".to_string());
    }
    for (&sessions, &ratio) in overheads {
        if ratio > threshold {
            out.push(format!(
                "{sessions} session(s): wire costs {ratio:.2}x embedded \
                 (above the {threshold:.2}x ceiling)"
            ));
        }
    }
    out
}

/// The figures of a soak report's `soak` section, keyed by field name.
pub type SoakFigures = BTreeMap<String, f64>;

/// Extracts every numeric field inside the `soak` section of a
/// `BENCH_soak.json`-shaped report. The soak writes one figure per
/// line, so each line yields at most one `(key, value)` pair.
pub fn parse_soak(json: &str) -> SoakFigures {
    let mut out = SoakFigures::new();
    let mut config = String::new();
    for line in json.lines() {
        let t = line.trim();
        if let Some(rest) = t.strip_prefix('"') {
            if let Some((name, tail)) = rest.split_once('"') {
                if tail.trim() == ": {" {
                    config = name.to_string();
                    continue;
                }
            }
        }
        if config != "soak" {
            continue;
        }
        if let Some((key, _)) = t.trim_start_matches('"').split_once('"') {
            if let Some(v) = field(t, key) {
                out.insert(key.to_string(), v);
            }
        }
    }
    out
}

/// Gate verdict over a soak report, absolute like the wire gate: the
/// live WAL must stay under the limit the run was sized for, recovery
/// must finish under its limit, checkpoint-active throughput must
/// reach `threshold` × the checkpoint-off rate, and the checkpointer
/// must actually have recycled segments (a bounded log with zero
/// recycles proves nothing). Returns one message per violation; empty
/// means the gate passes.
pub fn wal_bound_failures(soak: &SoakFigures, threshold: f64) -> Vec<String> {
    let mut out = Vec::new();
    let get = |key: &str| soak.get(key).copied();
    let Some(live_max) = get("wal_live_bytes_max") else {
        return vec!["no soak figures in the report (rerun the soak bench)".to_string()];
    };
    match get("wal_live_bytes_limit") {
        Some(limit) if live_max > limit => out.push(format!(
            "live WAL peaked at {live_max:.0} bytes, above the {limit:.0}-byte bound"
        )),
        Some(_) => {}
        None => out.push("report lacks wal_live_bytes_limit".to_string()),
    }
    match (get("recovery_ms"), get("recovery_ms_limit")) {
        (Some(ms), Some(limit)) if ms > limit => out.push(format!(
            "recovery took {ms:.1} ms, above the {limit:.0} ms bound"
        )),
        (Some(_), Some(_)) => {}
        _ => out.push("report lacks the recovery figures".to_string()),
    }
    match get("throughput_ratio") {
        Some(ratio) if ratio < threshold => out.push(format!(
            "checkpoint-active churn ran at {ratio:.2}x the idle rate \
             (below the {threshold:.2}x floor)"
        )),
        Some(_) => {}
        None => out.push("report lacks throughput_ratio".to_string()),
    }
    if get("checkpoints").unwrap_or(0.0) <= 0.0 {
        out.push("no checkpoints completed during the soak".to_string());
    }
    if get("segments_recycled").unwrap_or(0.0) <= 0.0 {
        out.push("no WAL segments were recycled during the soak".to_string());
    }
    out
}

/// Extracts every numeric field inside the `coldscan` and `checkpoint`
/// sections of a `BENCH_io.json`-shaped report into one flat map — the
/// field names are disjoint across the two sections by construction.
pub fn parse_cold_scan(json: &str) -> SoakFigures {
    let mut out = SoakFigures::new();
    let mut config = String::new();
    for line in json.lines() {
        let t = line.trim();
        if let Some(rest) = t.strip_prefix('"') {
            if let Some((name, tail)) = rest.split_once('"') {
                if tail.trim() == ": {" {
                    config = name.to_string();
                    continue;
                }
            }
        }
        if config != "coldscan" && config != "checkpoint" {
            continue;
        }
        if let Some((key, _)) = t.trim_start_matches('"').split_once('"') {
            if let Some(v) = field(t, key) {
                out.insert(key.to_string(), v);
            }
        }
    }
    out
}

/// Gate verdict over a cold-scan report, absolute like the soak gate:
/// the prefetched cold scan must reach `threshold` × the
/// prefetch-off latency (>= 1.0 full, relaxed to 0.8 by `--quick` —
/// prefetch must never *hurt*), prefetch hits must actually have
/// landed, vectored reads must have coalesced into multi-page runs
/// (`pages_per_run_on` > 1), the cold+warm window must show the pool
/// absorbing the revisit (physical < logical reads), and the batched
/// checkpoint flush must have coalesced sorted dirty pages. Returns
/// one message per violation; empty means the gate passes.
pub fn cold_scan_failures(figs: &SoakFigures, threshold: f64) -> Vec<String> {
    let mut out = Vec::new();
    let get = |key: &str| figs.get(key).copied();
    let Some(speedup) = get("cold_speedup") else {
        return vec!["no coldscan figures in the report (rerun the coldscan bench)".to_string()];
    };
    if speedup < threshold {
        out.push(format!(
            "prefetched cold scan ran at {speedup:.2}x the prefetch-off latency \
             (below the {threshold:.2}x floor)"
        ));
    }
    if get("prefetch_hits").unwrap_or(0.0) <= 0.0 {
        out.push("no prefetched page was ever hit by the scan".to_string());
    }
    match get("pages_per_run_on") {
        Some(ppr) if ppr <= 1.0 => out.push(format!(
            "prefetch reads never coalesced ({ppr:.2} pages per run)"
        )),
        Some(_) => {}
        None => out.push("report lacks pages_per_run_on".to_string()),
    }
    match (get("delta_physical_reads"), get("delta_logical_reads")) {
        (Some(phys), Some(logical)) if phys >= logical => out.push(format!(
            "cold+warm window did {phys:.0} physical reads against only \
             {logical:.0} logical — the pool absorbed nothing"
        )),
        (Some(_), Some(_)) => {}
        _ => out.push("report lacks the cold+warm read deltas".to_string()),
    }
    match get("pages_per_write_run") {
        Some(ppr) if ppr <= 1.0 => out.push(format!(
            "checkpoint flush never coalesced ({ppr:.2} pages per write run)"
        )),
        Some(_) => {}
        None => out.push("report lacks the checkpoint flush figures".to_string()),
    }
    out
}

/// The numeric value of `"key": <num>` inside a one-line JSON object.
fn field(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let rest = &line[line.find(&pat)? + pat.len()..];
    let num: String = rest
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect();
    num.parse().ok()
}

/// One compared `(config, threads)` pair.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    pub config: String,
    pub threads: u64,
    pub baseline_ns: f64,
    pub candidate_ns: f64,
    /// `candidate / baseline`; > 1 means slower for a latency metric,
    /// faster for a throughput metric.
    pub ratio: f64,
}

impl Comparison {
    /// Lower-is-better metric (latency): regressed when the candidate
    /// is more than `tolerance` above the baseline.
    pub fn regressed(&self, tolerance: f64) -> bool {
        self.ratio > 1.0 + tolerance
    }

    /// Higher-is-better metric (throughput): regressed when the
    /// candidate is more than `tolerance` below the baseline.
    pub fn regressed_throughput(&self, tolerance: f64) -> bool {
        self.ratio < 1.0 - tolerance
    }
}

/// Compares every pair present in both reports. Pairs only one side
/// measured (e.g. a quick run covering fewer thread counts) are
/// skipped, not failed.
pub fn compare(baseline: &ReadRates, candidate: &ReadRates) -> Vec<Comparison> {
    baseline
        .iter()
        .filter_map(|((config, threads), &base_ns)| {
            let cand_ns = *candidate.get(&(config.clone(), *threads))?;
            Some(Comparison {
                config: config.clone(),
                threads: *threads,
                baseline_ns: base_ns,
                candidate_ns: cand_ns,
                ratio: cand_ns / base_ns,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const REPORT: &str = r#"{
  "baseline": {
    "pool_shards": 1,
    "readers": [
      {"threads": 1, "ns_per_read": 2000.0, "reads": 10240, "zero_copy": true},
      {"threads": 4, "ns_per_read": 1000.0, "reads": 40960, "zero_copy": true}
    ],
    "commit_burst": {"txns": 16, "durable_syncs": 32}
  },
  "sharded+group": {
    "readers": [
      {"threads": 4, "ns_per_read": 500.0, "reads": 40960, "zero_copy": true}
    ]
  }
}
"#;

    #[test]
    fn parses_all_pairs() {
        let rates = parse_read_rates(REPORT);
        assert_eq!(rates.len(), 3);
        assert_eq!(rates[&("baseline".to_string(), 4)], 1000.0);
        assert_eq!(rates[&("sharded+group".to_string(), 4)], 500.0);
    }

    #[test]
    fn flags_only_regressions_beyond_tolerance() {
        let base = parse_read_rates(REPORT);
        let mut cand = base.clone();
        cand.insert(("baseline".to_string(), 4), 1200.0); // +20%: inside 25%
        cand.insert(("sharded+group".to_string(), 4), 700.0); // +40%: out
        let cmp = compare(&base, &cand);
        assert_eq!(cmp.len(), 3);
        let bad: Vec<_> = cmp.iter().filter(|c| c.regressed(0.25)).collect();
        assert_eq!(bad.len(), 1);
        assert_eq!(
            (bad[0].config.as_str(), bad[0].threads),
            ("sharded+group", 4)
        );
    }

    const THROUGHPUT_REPORT: &str = r#"{
  "read_committed": {
    "isolation": "read committed",
    "sessions": [
      {"sessions": 1, "stmt_per_sec": 5000.0, "statements": 400, "deadlocks": 0, "retries": 0},
      {"sessions": 4, "stmt_per_sec": 9000.0, "statements": 1600, "deadlocks": 2, "retries": 2}
    ]
  },
  "repeatable_read_mix": {
    "sessions": [
      {"sessions": 4, "stmt_per_sec": 6000.0, "statements": 1600, "deadlocks": 9, "retries": 9}
    ]
  }
}
"#;

    #[test]
    fn parses_throughput_pairs() {
        let tps = parse_throughputs(THROUGHPUT_REPORT);
        assert_eq!(tps.len(), 3);
        assert_eq!(tps[&("read_committed".to_string(), 4)], 9000.0);
        assert_eq!(tps[&("repeatable_read_mix".to_string(), 4)], 6000.0);
    }

    #[test]
    fn throughput_regression_is_directional() {
        let base = parse_throughputs(THROUGHPUT_REPORT);
        let mut cand = base.clone();
        // Faster is never a regression, even far outside the band.
        cand.insert(("read_committed".to_string(), 1), 20_000.0);
        // 20% slower: inside a 25% tolerance.
        cand.insert(("read_committed".to_string(), 4), 7200.0);
        // 40% slower: out.
        cand.insert(("repeatable_read_mix".to_string(), 4), 3600.0);
        let cmp = compare(&base, &cand);
        let bad: Vec<_> = cmp
            .iter()
            .filter(|c| c.regressed_throughput(0.25))
            .collect();
        assert_eq!(bad.len(), 1);
        assert_eq!(
            (bad[0].config.as_str(), bad[0].threads),
            ("repeatable_read_mix", 4)
        );
    }

    const SCAN_REPORT: &str = r#"{
  "selective": {
    "entries": 150000,
    "scans": [
      {"workers": 1, "ns_per_row": 80.0, "rows": 9000, "speedup": 1.000},
      {"workers": 4, "ns_per_row": 26.0, "rows": 9000, "speedup": 3.100}
    ]
  },
  "index_build": {
    "entries": 50000,
    "builds": [
      {"method": "bulk", "ns_per_row": 300.0, "advantage": 4.2},
      {"method": "incremental", "ns_per_row": 1260.0, "advantage": 1.0}
    ]
  }
}
"#;

    #[test]
    fn parses_speedup_pairs_and_skips_builds() {
        let s = parse_speedups(SCAN_REPORT);
        assert_eq!(s.len(), 2, "index_build rows must not parse as scans");
        assert_eq!(s[&("selective".to_string(), 1)], 1.0);
        assert_eq!(s[&("selective".to_string(), 4)], 3.1);
    }

    #[test]
    fn speedup_regression_is_directional() {
        let base = parse_speedups(SCAN_REPORT);
        let mut cand = base.clone();
        // Scaling *better* is never a regression.
        cand.insert(("selective".to_string(), 4), 3.9);
        assert!(compare(&base, &cand)
            .iter()
            .all(|c| !c.regressed_throughput(0.25)));
        // Collapsing to serial-equivalent is.
        cand.insert(("selective".to_string(), 4), 1.1);
        assert!(compare(&base, &cand)
            .iter()
            .any(|c| c.regressed_throughput(0.25)));
    }

    const PREPARED_REPORT: &str = r#"{
  "read_committed": {
    "sessions": [
      {"sessions": 1, "stmt_per_sec": 5000.0, "statements": 400, "deadlocks": 0, "retries": 0}
    ]
  },
  "prepared_speedup": {
    "baseline": "uncached_adhoc",
    "workload": "point_probe_select",
    "sessions": [
      {"sessions": 1, "speedup": 2.334, "prepared_stmt_per_sec": 60933.5, "uncached_stmt_per_sec": 26105.3, "cached_stmt_per_sec": 52394.8},
      {"sessions": 4, "speedup": 1.911, "prepared_stmt_per_sec": 58869.3, "uncached_stmt_per_sec": 30811.1, "cached_stmt_per_sec": 54663.4}
    ]
  },
  "batch_sweep": {
    "batches": [
      {"batch_rows": 16, "stmt_per_sec": 540.1, "sessions": 4}
    ]
  }
}
"#;

    #[test]
    fn parses_prepared_speedups_only_from_their_section() {
        let s = parse_prepared_speedups(PREPARED_REPORT);
        assert_eq!(s.len(), 2, "config and batch rows must not parse");
        assert_eq!(s[&1], 2.334);
        assert_eq!(s[&4], 1.911);
        // The extra *_stmt_per_sec fields must not leak into the
        // throughput parser either: its key is the exact `stmt_per_sec`.
        let tps = parse_throughputs(PREPARED_REPORT);
        assert!(!tps.contains_key(&("prepared_speedup".to_string(), 1)));
    }

    #[test]
    fn prepared_speedup_gate_is_directional() {
        let s = parse_prepared_speedups(PREPARED_REPORT);
        assert!(prepared_speedup_failures(&s, 1.3).is_empty());
        // The 1-session figure carries the headline target.
        let msgs = prepared_speedup_failures(&s, 2.5);
        assert_eq!(msgs.len(), 1);
        assert!(msgs[0].contains("below the 2.50x target"));
        // Any session count at or under parity fails outright.
        let mut bad = s.clone();
        bad.insert(4, 0.97);
        let msgs = prepared_speedup_failures(&bad, 1.3);
        assert_eq!(msgs.len(), 1);
        assert!(msgs[0].contains("does not beat compile-every-time"));
    }

    const READ_SCALING_REPORT: &str = r#"{
  "read_mostly": {
    "sessions": [
      {"sessions": 1, "stmt_per_sec": 4000.0, "statements": 200, "deadlocks": 0, "retries": 0},
      {"sessions": 8, "stmt_per_sec": 4400.0, "statements": 1600, "deadlocks": 0, "retries": 0}
    ]
  }
}
"#;

    #[test]
    fn read_scaling_gate_is_directional() {
        let tps = parse_throughputs(READ_SCALING_REPORT);
        assert!(read_scaling_failures(&tps, 1.0).is_empty());
        // Collapsing below the single-session rate fails.
        let mut bad = tps.clone();
        bad.insert(("read_mostly".to_string(), 8), 2000.0);
        let msgs = read_scaling_failures(&bad, 1.0);
        assert_eq!(msgs.len(), 1);
        assert!(msgs[0].contains("fell below"));
        // Scaling beyond the floor is never a failure.
        let mut good = tps.clone();
        good.insert(("read_mostly".to_string(), 8), 9000.0);
        assert!(read_scaling_failures(&good, 1.0).is_empty());
        // A report without the config (or missing one endpoint) cannot
        // pass — the gate must not silently approve an absent figure.
        assert!(!read_scaling_failures(&ReadRates::new(), 1.0).is_empty());
        let mut partial = ReadRates::new();
        partial.insert(("read_mostly".to_string(), 1), 4000.0);
        assert!(!read_scaling_failures(&partial, 1.0).is_empty());
    }

    const WIRE_REPORT: &str = r#"{
  "connections": {
    "per_sec": 4821.4
  },
  "wire": {
    "workload": "point_probe_select",
    "sessions": [
      {"sessions": 1, "stmt_per_sec": 18000.0, "p99_us": 210.0, "embedded_stmt_per_sec": 52000.0, "overhead_ratio": 2.889},
      {"sessions": 4, "stmt_per_sec": 30000.0, "p99_us": 400.0, "embedded_stmt_per_sec": 60000.0, "overhead_ratio": 2.000}
    ]
  }
}
"#;

    #[test]
    fn parses_wire_overheads_and_connection_rate() {
        let (overheads, conn) = parse_wire_overheads(WIRE_REPORT);
        assert_eq!(conn, 4821.4);
        assert_eq!(overheads.len(), 2);
        assert_eq!(overheads[&1], 2.889);
        assert_eq!(overheads[&4], 2.0);
    }

    #[test]
    fn wire_overhead_gate_is_absolute() {
        let (overheads, conn) = parse_wire_overheads(WIRE_REPORT);
        assert!(wire_overhead_failures(&overheads, conn, 10.0).is_empty());
        // Any session count over the ceiling fails.
        let msgs = wire_overhead_failures(&overheads, conn, 2.5);
        assert_eq!(msgs.len(), 1);
        assert!(msgs[0].contains("2.89x embedded"));
        // An empty report or a dead connect path can never pass.
        assert!(!wire_overhead_failures(&WireOverheads::new(), conn, 10.0).is_empty());
        assert!(!wire_overhead_failures(&overheads, 0.0, 10.0).is_empty());
    }

    const SOAK_REPORT: &str = r#"{
  "soak": {
    "rounds": 2000,
    "wal_live_bytes_max": 393216,
    "wal_live_bytes_limit": 1048576,
    "segments_max": 6,
    "segment_bound": 16,
    "recovery_ms": 41.50,
    "recovery_ms_limit": 2000.0,
    "checkpoints": 34,
    "segments_recycled": 88,
    "idle_ops_per_sec": 5100.0,
    "active_ops_per_sec": 4800.0,
    "throughput_ratio": 0.941
  }
}
"#;

    #[test]
    fn parses_soak_figures() {
        let s = parse_soak(SOAK_REPORT);
        assert_eq!(s["wal_live_bytes_max"], 393216.0);
        assert_eq!(s["recovery_ms"], 41.5);
        assert_eq!(s["throughput_ratio"], 0.941);
        assert_eq!(s["segments_recycled"], 88.0);
    }

    #[test]
    fn wal_bound_gate_is_absolute() {
        let s = parse_soak(SOAK_REPORT);
        assert!(wal_bound_failures(&s, 0.75).is_empty());
        // An unbounded log fails no matter how fast everything else is.
        let mut bad = s.clone();
        bad.insert("wal_live_bytes_max".into(), 2_000_000.0);
        let msgs = wal_bound_failures(&bad, 0.75);
        assert_eq!(msgs.len(), 1);
        assert!(msgs[0].contains("above the"));
        // Slow recovery fails.
        let mut bad = s.clone();
        bad.insert("recovery_ms".into(), 9_000.0);
        assert!(!wal_bound_failures(&bad, 0.75).is_empty());
        // A checkpoint-induced throughput cliff fails.
        let mut bad = s.clone();
        bad.insert("throughput_ratio".into(), 0.4);
        let msgs = wal_bound_failures(&bad, 0.75);
        assert_eq!(msgs.len(), 1);
        assert!(msgs[0].contains("below the 0.75x floor"));
        // A soak whose checkpointer never ran proves nothing.
        let mut bad = s.clone();
        bad.insert("segments_recycled".into(), 0.0);
        assert!(!wal_bound_failures(&bad, 0.75).is_empty());
        // An empty report can never pass.
        assert!(!wal_bound_failures(&SoakFigures::new(), 0.75).is_empty());
    }

    const IO_REPORT: &str = r#"{
  "coldscan": {
    "entries": 60000,
    "tree_pages": 2100,
    "pool_pages": 256,
    "rows": 60000,
    "cold_ns_off": 52000000,
    "cold_ns_on": 41000000,
    "cold_speedup": 1.268,
    "physical_reads_off": 2100,
    "physical_reads_on": 2100,
    "read_runs_on": 310,
    "pages_per_run_on": 6.77,
    "prefetch_issued": 2000,
    "prefetch_hits": 1800,
    "prefetch_wasted": 40,
    "delta_logical_reads": 4200,
    "delta_physical_reads": 2150
  },
  "checkpoint": {
    "dirty_pages": 2000,
    "flush_ms": 18.40,
    "mb_per_sec": 890.1,
    "write_runs": 12,
    "pages_per_write_run": 166.67,
    "coalesced_writes": 1988
  }
}
"#;

    #[test]
    fn parses_cold_scan_figures_from_both_sections() {
        let s = parse_cold_scan(IO_REPORT);
        assert_eq!(s["cold_speedup"], 1.268);
        assert_eq!(s["prefetch_hits"], 1800.0);
        assert_eq!(s["pages_per_run_on"], 6.77);
        assert_eq!(s["pages_per_write_run"], 166.67);
        assert_eq!(s["delta_physical_reads"], 2150.0);
    }

    #[test]
    fn cold_scan_gate_is_absolute() {
        let s = parse_cold_scan(IO_REPORT);
        assert!(cold_scan_failures(&s, 1.0).is_empty());
        // A prefetch pass slower than the floor fails.
        let mut bad = s.clone();
        bad.insert("cold_speedup".into(), 0.7);
        let msgs = cold_scan_failures(&bad, 1.0);
        assert_eq!(msgs.len(), 1);
        assert!(msgs[0].contains("below the 1.00x floor"));
        // ...but the quick floor tolerates the same figure.
        assert!(cold_scan_failures(&bad, 0.65).is_empty());
        // Zero hits means the prefetcher never actually warmed a read.
        let mut bad = s.clone();
        bad.insert("prefetch_hits".into(), 0.0);
        assert!(!cold_scan_failures(&bad, 1.0).is_empty());
        // Single-page runs mean vectored I/O never coalesced.
        let mut bad = s.clone();
        bad.insert("pages_per_run_on".into(), 1.0);
        assert!(!cold_scan_failures(&bad, 1.0).is_empty());
        let mut bad = s.clone();
        bad.insert("pages_per_write_run".into(), 1.0);
        assert!(!cold_scan_failures(&bad, 1.0).is_empty());
        // A window where every logical read went physical fails.
        let mut bad = s.clone();
        bad.insert("delta_physical_reads".into(), 4200.0);
        assert!(!cold_scan_failures(&bad, 1.0).is_empty());
        // An empty report can never pass.
        assert!(!cold_scan_failures(&SoakFigures::new(), 1.0).is_empty());
    }

    #[test]
    fn unmatched_pairs_are_skipped() {
        let base = parse_read_rates(REPORT);
        let mut cand = ReadRates::new();
        cand.insert(("baseline".to_string(), 4), 900.0);
        let cmp = compare(&base, &cand);
        assert_eq!(cmp.len(), 1, "only the shared pair is compared");
        assert!(!cmp[0].regressed(0.25));
    }
}
