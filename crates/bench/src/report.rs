//! Plain-text tables for the reproduction output.

/// A simple aligned text table.
#[derive(Debug, Default, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(headers: &[&str]) -> Table {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Appends a row of displayable items.
    pub fn push<T: std::fmt::Display>(&mut self, cells: &[T]) -> &mut Self {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells)
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join(" | ")
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(
            &widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("-+-"),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.push(&["a", "1"]).push(&["longer", "22"]);
        let s = t.render();
        assert!(s.contains("name   | value"));
        assert!(s.lines().count() == 4);
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn wrong_arity_panics() {
        Table::new(&["a"]).push(&["1", "2"]);
    }
}
